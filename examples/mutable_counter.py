#!/usr/bin/env python3
"""The section-4.2 mutable reference library in action.

F has no mutation.  The paper's remedy is stack-modifying lambdas: a T
library keeps an ``int`` cell on the machine stack, and the lambdas' arrow
types ``(..)[phi_i; phi_o] -> ..`` advertise exactly how each operation
changes the stack.  This script implements a small counter workload:

    alloc 10; repeat 3 times: write(read() + read()); free; return

i.e. three doublings of the cell: 10 -> 20 -> 40 -> 80.
"""

from repro.f.syntax import App, BinOp, FInt, FUnit, IntE, UnitE, Var
from repro.ft.machine import evaluate_ft
from repro.ft.typecheck import check_ft_expr
from repro.stdlib.prelude import seq_cell
from repro.stdlib.refs import alloc_cell, free_cell, read_cell, write_cell
from repro.tal.syntax import TInt

INT_CELL = (TInt(),)


def double_step(rest, index: int):
    """write(read() + read()); rest"""
    read_once = App(read_cell(), (UnitE(),))
    return seq_cell(
        read_once, f"v{index}", FInt(),
        seq_cell(
            App(write_cell(),
                (BinOp("+", Var(f"v{index}"), Var(f"v{index}")),)),
            f"w{index}", FUnit(),
            rest,
            INT_CELL, ()),
        INT_CELL, ())


def build_counter_program(initial: int, doublings: int):
    # innermost: read the final value, free the cell, return the value
    final = seq_cell(
        App(read_cell(), (UnitE(),)), "result", FInt(),
        seq_cell(
            App(free_cell(), (UnitE(),)), "freed", FUnit(),
            Var("result"),
            (), ()),
        INT_CELL, ())
    body = final
    for i in reversed(range(doublings)):
        body = double_step(body, i)
    return seq_cell(
        App(alloc_cell(), (IntE(initial),)), "cell", FUnit(),
        body,
        INT_CELL, ())


def main() -> None:
    program = build_counter_program(10, 3)
    ty, sigma = check_ft_expr(program)
    print(f"program type: {ty} ; output stack: {sigma}")
    value, machine = evaluate_ft(program)
    print(f"10 doubled 3 times = {value}   (machine steps: {machine.steps})")
    assert str(value) == "80"

    print()
    print("the library's types:")
    for name, builder in (("alloc", alloc_cell), ("read", read_cell),
                          ("write", write_cell), ("free", free_cell)):
        lam_ty, _ = check_ft_expr(builder())
        print(f"  {name:6s}: {lam_ty}")


if __name__ == "__main__":
    main()

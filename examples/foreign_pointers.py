#!/usr/bin/env python3
"""Foreign pointers (lump types): shared mutable state across the boundary.

Section 6 of the paper sketches an FT extension where references to
mutable T tuples flow into F as *opaque* lump values -- passable, storable,
but only usable back in T.  This script exercises the reproduction's
implementation:

1. a T library allocates a mutable counter and hands F the lump;
2. F passes the lump around (even into a higher-order function);
3. every bump/read crosses back into assembly;
4. aliasing is demonstrated -- the cost in reasoning the paper warns about.
"""

from repro.f.syntax import App, BinOp, FArrow, FInt, FUnit, IntE, Lam, Var
from repro.ft.machine import evaluate_ft
from repro.ft.typecheck import check_ft_expr
from repro.stdlib.foreign import (
    bump, counter_value, INT_CELL_LUMP, new_counter,
)
from repro.stdlib.prelude import let_


def main() -> None:
    print("=== the library ===")
    for name, build in (("new_counter", new_counter), ("bump", bump),
                        ("value", counter_value)):
        ty, _ = check_ft_expr(build())
        print(f"  {name:12s}: {ty}")

    print()
    print("=== F holds the handle, T does the mutation ===")
    # let c = new 5 in bump c; bump c; value c
    prog = let_(
        "c", INT_CELL_LUMP, App(new_counter(), (IntE(5),)),
        let_("u1", FUnit(), App(bump(), (Var("c"),)),
             let_("u2", FUnit(), App(bump(), (Var("c"),)),
                  App(counter_value(), (Var("c"),)))))
    ty, _ = check_ft_expr(prog)
    value, machine = evaluate_ft(prog)
    print(f"  new 5; bump; bump; value  =  {value} : {ty}")

    print()
    print("=== lumps travel through higher-order F code ===")
    # a generic 'apply twice' that never looks inside the lump
    twice = Lam(
        (("f", FArrow((INT_CELL_LUMP,), FUnit())),
         ("c", INT_CELL_LUMP)),
        let_("u1", FUnit(), App(Var("f"), (Var("c"),)),
             App(Var("f"), (Var("c"),))))
    prog2 = let_(
        "c", INT_CELL_LUMP, App(new_counter(), (IntE(100),)),
        let_("u", FUnit(), App(twice, (bump(), Var("c"))),
             App(counter_value(), (Var("c"),))))
    value2, _ = evaluate_ft(prog2)
    print(f"  new 100; twice bump; value  =  {value2}")

    print()
    print("=== aliasing: the reasoning cost ===")
    prog3 = let_(
        "c", INT_CELL_LUMP, App(new_counter(), (IntE(0),)),
        let_("d", INT_CELL_LUMP, Var("c"),          # alias!
             let_("u", FUnit(), App(bump(), (Var("c"),)),
                  App(counter_value(), (Var("d"),)))))
    value3, _ = evaluate_ft(prog3)
    print(f"  d aliases c; bump c; value d  =  {value3}  "
          "(referential transparency is gone)")


if __name__ == "__main__":
    main()

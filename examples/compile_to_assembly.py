#!/usr/bin/env python3
"""Compile F functions to typed assembly and verify the JIT obligation.

The paper's section 6 frames JIT correctness as: every replacement of a
high-level component by compiled assembly must be a contextual
equivalence in FT.  This script is that loop, executable:

1. take an F function in the arithmetic fragment;
2. compile it to a multi-block T component (repro.jit);
3. show the generated assembly;
4. check the equivalence obligation with the differential checker.
"""

from repro.equiv.checker import check_equivalence
from repro.f.syntax import App, BinOp, FArrow, FInt, If0, IntE, Lam, Var
from repro.ft.machine import evaluate_ft
from repro.ft.typecheck import check_ft_expr
from repro.jit.compiler import compile_function, jit_rewrite
from repro.surface.pretty import pretty_component


def main() -> None:
    # |x| clamped: if0 x then 0 else x * x
    source = Lam(
        (("x", FInt()),),
        If0(Var("x"), IntE(0), BinOp("*", Var("x"), Var("x"))))
    print("=== source F function ===")
    print(source)

    compiled = compile_function(source)
    comp = compiled.body.fn.comp
    print()
    print(f"=== compiled to {len(comp.heap)} basic blocks ===")
    print(pretty_component(comp))

    ty, _ = check_ft_expr(compiled)
    print(f"\ncompiled replacement typechecks at: {ty}")

    print("\n=== behaviour ===")
    for n in (-4, 0, 6):
        value, _ = evaluate_ft(App(compiled, (IntE(n),)))
        print(f"  compiled({n}) = {value}")

    print("\n=== the JIT correctness obligation ===")
    report = check_equivalence(source, compiled,
                               FArrow((FInt(),), FInt()), fuel=25_000)
    print(f"  source ~ compiled : {report}")

    print("\n=== whole-program rewriting ===")
    program = App(
        Lam((("f", FArrow((FInt(),), FInt())),),
            BinOp("+", App(Var("f"), (IntE(3),)),
                  App(Var("f"), (IntE(-3),)))),
        (source,))
    rewritten = jit_rewrite(program)
    before, _ = evaluate_ft(program)
    after, _ = evaluate_ft(rewritten)
    print(f"  source program value: {before}")
    print(f"  JIT-rewritten value:  {after}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""The evaluation service, end to end (see docs/serving.md).

This script embeds a :class:`~repro.serve.server.ServeServer` in-process
(the same thing ``funtal serve`` runs in the foreground), connects the
client library to it over TCP, and walks through the service's story:

1. the paper workloads as jobs: Fig 17's two factorials (run + traced)
   and Fig 16's two-block equivalence as an ``equiv`` job;
2. cached vs fresh latency: the same job resubmitted is served from the
   content-addressed result cache without touching a worker;
3. fault isolation: a job that kills its worker mid-execution is retried
   and reported ``crashed`` while the server keeps serving.
"""

import time

from repro.serve.client import ServeClient
from repro.serve.protocol import Job, JobOptions
from repro.serve.server import ServeServer


def timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, (time.perf_counter() - start) * 1000.0


def main() -> None:
    with ServeServer(port=0, workers=2) as server:
        print(f"serving on 127.0.0.1:{server.port} (2 workers)")
        with ServeClient(port=server.port) as client:
            print()
            print("=== Paper workloads as jobs ===")
            # Fig 17: both factorials (functional and imperative) on 6.
            fig17 = client.submit(Job("run", example="fig17"))
            print(f"fig17  {fig17.status}  value={fig17.output['value']}  "
                  f"steps={fig17.output['steps']}  "
                  f"{fig17.duration_ms:.2f}ms on worker {fig17.worker}")
            # Fig 16: the two-block components are contextually equivalent
            # -- here as an equiv job over behaviourally equal F wrappers.
            fig16 = client.submit(Job(
                "equiv", source="lam (x: int). (x + x)",
                options=JobOptions(right="lam (x: int). (x * 2)",
                                   type="(int) -> int", fuel=5_000)))
            print(f"fig16-style equiv  {fig16.status}  "
                  f"equivalent={fig16.output['equivalent']}  "
                  f"({fig16.output['report']})")

            print()
            print("=== Cached vs fresh latency ===")
            job = lambda: Job("run", example="fact-t",
                              options=JobOptions(trace=True))
            fresh, fresh_ms = timed(lambda: client.submit(job()))
            served, served_ms = timed(lambda: client.submit(job()))
            assert fresh.ok and served.ok and served.cached
            print(f"fresh run:  {fresh_ms:7.2f}ms round trip "
                  f"(executor {fresh.duration_ms:.2f}ms)")
            print(f"cache hit:  {served_ms:7.2f}ms round trip "
                  f"(no worker involved)")

            print()
            print("=== Fault isolation ===")
            boom = client.submit(Job(
                "run", source="(1 + 1)",
                options=JobOptions(inject_crash=True)))
            print(f"crashing job: status={boom.status} "
                  f"after {boom.attempts} attempts ({boom.error})")
            after = client.submit(Job("run", example="fact-f"))
            print(f"next job on the same connection: {after.status} "
                  f"value={after.output['value']} -- the server survived")

            stats = client.stats()
            pool = stats["pool"]
            print()
            print(f"pool: {pool['workers']} workers, "
                  f"cache {pool['cache']['hits']} hits / "
                  f"{pool['cache']['misses']} misses")
    print("server stopped")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: build, typecheck, and run a mixed FunTAL program.

Three ways to the same program -- a function whose body is embedded
assembly that doubles its argument and adds one:

1. construct the AST with the public API;
2. write the surface syntax and parse it;
3. run it, inspect the machine trace.
"""

from repro.analysis.trace import control_flow_table, format_table
from repro.f.syntax import App, FArrow, FInt, IntE, Lam, Var
from repro.ft.machine import evaluate_ft
from repro.ft.syntax import Boundary, Protect
from repro.ft.translate import continuation_type, type_translation
from repro.ft.typecheck import check_ft_expr
from repro.surface.parser import parse_fexpr
from repro.tal.syntax import (
    Aop, Component, DeltaBind, Halt, HCode, KIND_EPS, KIND_ZETA, Loc, Mv,
    QReg, RegFileTy, RegOp, Ret, Sfree, Sld, StackTy, TInt, WInt, WLoc, seq,
)


def build_double_plus_one() -> Lam:
    """lam(x: int). ((int)->int FT <assembly>) x"""
    arrow = FArrow((FInt(),), FInt())
    zstack = StackTy((), "z")
    cont = continuation_type(TInt(), zstack)
    label = Loc("ldouble")
    block = HCode(
        (DeltaBind(KIND_ZETA, "z"), DeltaBind(KIND_EPS, "e")),
        RegFileTy.of(ra=cont),
        StackTy((TInt(),), "z"),          # argument on top of the stack
        QReg("ra"),                       # return continuation in ra
        seq(
            Sld("r1", 0),                 # load the argument
            Aop("mul", "r1", "r1", WInt(2)),
            Aop("add", "r1", "r1", WInt(1)),
            Sfree(1),                     # pop the argument
            Ret("ra", "r1"),              # return through the marker
        ))
    comp = Component(
        seq(Protect((), "z"),
            Mv("r1", WLoc(label)),
            Halt(type_translation(arrow), zstack, "r1")),
        ((label, block),))
    return Lam((("x", FInt()),), App(Boundary(arrow, comp), (Var("x"),)))


def main() -> None:
    print("=== 1. build with the API ===")
    f = build_double_plus_one()
    ty, _ = check_ft_expr(f)
    print(f"type of f: {ty}")

    program = App(f, (IntE(20),))
    value, machine = evaluate_ft(program, trace=True)
    print(f"f 20 = {value}")

    print()
    print("=== 2. the same program through the surface syntax ===")
    source = str(program)      # every AST pretty-prints parseably
    print(source)
    reparsed = parse_fexpr(source)
    value2, _ = evaluate_ft(reparsed)
    assert str(value2) == str(value)
    print(f"re-parsed program also evaluates to {value2}")

    print()
    print("=== 3. the jump-level machine trace ===")
    print(format_table(control_flow_table(machine.trace),
                       title="control flow of f 20"))


if __name__ == "__main__":
    main()

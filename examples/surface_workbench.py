#!/usr/bin/env python3
"""The artifact workbench: typecheck and step surface-syntax programs.

The FunTAL authors shipped an in-browser typechecker and machine stepper;
this script is the reproduction's equivalent.  It processes a small suite
of surface programs -- well-typed and deliberately ill-typed -- printing
for each one the parse, the type (or the type error, which is the
interesting output for the ill-typed ones), and the value.

Run it, then try your own programs with ``funtal run -`` / ``funtal
typecheck -`` (reading from stdin).
"""

from repro.errors import FunTALError
from repro.ft.machine import evaluate_ft, run_ft_component
from repro.ft.typecheck import check_ft_component, check_ft_expr
from repro.surface.parser import parse_program
from repro.tal.syntax import Component, NIL_STACK, QEnd, TInt

PROGRAMS = [
    ("arithmetic",
     "((3 + 4) * 10)"),
    ("higher-order F",
     "(lam (f: (int) -> int, x: int). (f) ((f) (x))) "
     "(lam (y: int). (y + 1)) (5)"),
    ("recursion via fold/unfold (triangular numbers)",
     """
     (lam (n: int).
        (lam (f: mu a. (a) -> (int) -> int).
           (unfold (f)) (f) (n))
        (fold[mu a. (a) -> (int) -> int]
           (lam (self: mu a. (a) -> (int) -> int).
              lam (k: int).
                if0 k {0} {(k + (unfold (self)) (self) ((k - 1)))})))
     (10)
     """),
    ("a bare T component (import 1 + 1 and halt)",
     "(import r1, nil TF[int] ((1 + 1)); halt int, nil {r1}, .)"),
    ("embedded assembly: double via mul",
     """
     (lam (x: int).
        FT[(int) -> int](protect <>, z; mv r1, ldouble;
                         halt box forall[zeta z, eps e].{
                             ra: box forall[].{r1: int; z} e; int :: z} ra,
                         z {r1},
            {ldouble -> code[zeta z, eps e]{
                 ra: box forall[].{r1: int; z} e; int :: z} ra.
               sld r1, 0; mul r1, r1, 2; sfree 1; ret ra {r1}}))
     (21)
     """),
    ("ILL-TYPED: assembly leaves the stack changed under a plain lambda",
     """
     lam (x: int).
        FT[unit; 0; <int>](protect <>, z; mv r1, 7; salloc 1; sst 0, r1;
                           mv r1, (); halt unit, int :: z {r1}, .)
     """),
    ("ILL-TYPED: halt type disagrees with the boundary annotation",
     "FT[int](import r1, nil TF[unit] (()); halt unit, nil {r1}, .)"),
]


def process(name: str, source: str) -> None:
    print(f"--- {name} ---")
    try:
        node = parse_program(source)
    except FunTALError as err:
        print(f"  parse error: {err}")
        return
    try:
        if isinstance(node, Component):
            ty, sigma = check_ft_component(node, q=QEnd(TInt(), NIL_STACK))
            print(f"  type: {ty} ; {sigma}")
            halted, _ = run_ft_component(node)
            print(f"  halts with: {halted.word}")
        else:
            ty, sigma = check_ft_expr(node)
            print(f"  type: {ty} ; {sigma}")
            value, _ = evaluate_ft(node)
            print(f"  value: {value}")
    except FunTALError as err:
        print(f"  type error (expected for ILL-TYPED entries):")
        print(f"    {err}")
    print()


def main() -> None:
    for name, source in PROGRAMS:
        process(name, source)


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""The paper's JIT-compilation scenario (Figs 11 and 12).

A JIT replaces the F functions ``f`` and ``h`` with assembly while ``g``
stays interpreted.  This script:

1. evaluates the source and the mixed program (both give 2);
2. regenerates the Fig 12 cross-language control-flow table from the
   machine trace;
3. runs the bounded contextual-equivalence checker over the *function*
   position -- the JIT-correctness obligation of the paper's section 6 --
   and shows that a miscompiled variant is refuted.
"""

from repro.analysis.trace import control_flow_table, format_table
from repro.equiv.checker import check_equivalence
from repro.f.eval import evaluate
from repro.f.syntax import App, FArrow, FInt, IntE, Lam, Var
from repro.ft.machine import evaluate_ft
from repro.papers_examples.fig11_jit import (
    build_g, build_jit, build_source, INT_TO_INT, TAU,
)


def main() -> None:
    print("=== Fig 11: source vs JIT-compiled program ===")
    source = build_source()
    jit = build_jit()
    print(f"source (pure F) evaluates to: {evaluate(source)}")
    value, machine = evaluate_ft(jit, trace=True)
    print(f"mixed program evaluates to:  {value}")

    print()
    print("=== Fig 12: cross-language control flow ===")
    rows = control_flow_table(machine.trace)
    print(format_table(rows, title="jit control flow"))

    print()
    print("=== JIT correctness as equivalence ===")
    # The interesting component: interpreted h vs compiled h, both of type
    # (int) -> int, observed from arbitrary contexts (including assembly).
    h_interp = Lam((("x", FInt()),),
                   __mul(Var("x"), IntE(2)))
    from repro.papers_examples.fig16_two_blocks import build_f1

    report = check_equivalence(
        h_interp, _compiled_double(), FArrow((FInt(),), FInt()),
        fuel=30_000)
    print(f"interpreted h ~ compiled h: {report}")

    broken = Lam((("x", FInt()),), __mul(Var("x"), IntE(3)))
    report_bad = check_equivalence(
        h_interp, broken, FArrow((FInt(),), FInt()), fuel=30_000)
    print(f"interpreted h ~ mis-compiled h: {report_bad}")


def _compiled_double() -> Lam:
    """h compiled to assembly: the lh block of Fig 11 behind a boundary."""
    from repro.ft.syntax import Boundary, Protect
    from repro.ft.translate import continuation_type, type_translation
    from repro.tal.syntax import (
        Aop, Component, DeltaBind, Halt, HCode, Loc, Mv, QReg, RegFileTy,
        Ret, Sfree, Sld, StackTy, TInt, WInt, WLoc, seq,
    )

    arrow = FArrow((FInt(),), FInt())
    zstack = StackTy((), "z")
    cont = continuation_type(TInt(), zstack)
    lh = Loc("lh")
    block = HCode(
        (DeltaBind("zeta", "z"), DeltaBind("eps", "e")),
        RegFileTy.of(ra=cont), StackTy((TInt(),), "z"), QReg("ra"),
        seq(Sld("r1", 0), Sfree(1),
            Aop("mul", "r1", "r1", WInt(2)), Ret("ra", "r1")))
    comp = Component(
        seq(Protect((), "z"), Mv("r1", WLoc(lh)),
            Halt(type_translation(arrow), zstack, "r1")),
        ((lh, block),))
    return Lam((("x", FInt()),), App(Boundary(arrow, comp), (Var("x"),)))


def __mul(left, right):
    from repro.f.syntax import BinOp

    return BinOp("*", left, right)


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Fig 17: the two factorials, checked equivalent like the paper proves.

``factF`` (recursive F) and ``factT`` (register loop in T) agree on every
non-negative input and co-diverge on negative inputs -- the two cases of
the paper's logical-relation proof, here observed mechanically:

1. pointwise agreement on an input sweep,
2. co-divergence under a fuel bound,
3. the full differential contextual-equivalence check (which includes
   contexts that call the candidates *from assembly*),
4. the step-indexed value relation V[(int)->int].
"""

from repro.equiv.checker import check_equivalence
from repro.equiv.observation import observe
from repro.equiv.worlds import related_values, World
from repro.f.syntax import App, IntE
from repro.papers_examples.fig17_factorial import (
    ARROW, build_fact_f, build_fact_t, expected,
)


def main() -> None:
    fact_f = build_fact_f()
    fact_t = build_fact_t()

    print("=== pointwise agreement (n >= 0) ===")
    for n in range(0, 9):
        obs_f = observe(App(fact_f, (IntE(n),)))
        obs_t = observe(App(fact_t, (IntE(n),)))
        marker = "ok" if obs_f.agrees_with(obs_t) else "MISMATCH"
        print(f"  n={n}: factF={obs_f}  factT={obs_t}  "
              f"(expected {expected(n)})  [{marker}]")

    print()
    print("=== co-divergence (n < 0) ===")
    for n in (-1, -5):
        obs_f = observe(App(fact_f, (IntE(n),)), fuel=20_000)
        obs_t = observe(App(fact_t, (IntE(n),)), fuel=20_000)
        print(f"  n={n}: factF={obs_f}  factT={obs_t}")

    print()
    print("=== differential contextual-equivalence check ===")
    report = check_equivalence(fact_f, fact_t, ARROW, fuel=30_000)
    print(f"  {report}")
    for name, obs in report.agreements[:6]:
        print(f"    agreed on {name}: {obs}")

    print()
    print("=== step-indexed value relation ===")
    failure = related_values(World(k=3, fuel=30_000), fact_f, fact_t, ARROW)
    print("  related at (int) -> int up to k=3"
          if failure is None else f"  {failure}")


if __name__ == "__main__":
    main()

"""A shared mutable counter via foreign pointers (paper section 6).

Where :mod:`repro.stdlib.refs` keeps its state on the *stack* (so the type
system threads it through every call), this library keeps state in a
mutable T *heap tuple* and hands F an opaque lump handle.  F can store the
handle, pass it around, even send it through other functions -- but every
read or write crosses back into assembly, exactly the paper's
"passed but only used in T" discipline:

* ``new_counter()  : (int) -> L<int>``       allocate, initialized
* ``bump()         : (L<int>) -> unit``      increment in place
* ``counter_value(): (L<int>) -> int``       read

Because two F-held lumps can alias the same tuple, programs using this
library give up the referential-transparency conjecture of section 6 --
our tests demonstrate that too (a function that writes through one handle
changes what another observes).
"""

from __future__ import annotations

from repro.f.syntax import FInt, FUnit, Lam, Var
from repro.ft.lump import FLump
from repro.ft.syntax import Boundary, Import, Protect
from repro.tal.syntax import (
    Aop, Component, Halt, Ld, Mv, Ralloc, RegOp, Salloc, seq, Sst, St,
    StackTy, TInt, TRef, TUnit, WInt, WUnit,
)

__all__ = ["INT_CELL_LUMP", "new_counter", "bump", "counter_value"]

#: The lump type of a one-field int counter.
INT_CELL_LUMP = FLump((TInt(),))

_Z = "z"


def _zs(*prefix) -> StackTy:
    return StackTy(tuple(prefix), _Z)


def new_counter() -> Lam:
    """``lam(n: int). L<int>FT <ralloc a fresh cell holding n>``"""
    comp = Component(seq(
        Protect((), _Z),
        Import("r1", _zs(), FInt(), Var("n")),
        Salloc(1),
        Sst(0, "r1"),
        Ralloc("r1", 1),
        Halt(TRef((TInt(),)), _zs(), "r1"),
    ))
    return Lam((("n", FInt()),), Boundary(INT_CELL_LUMP, comp))


def bump() -> Lam:
    """``lam(c: L<int>). unitFT <c[0] := c[0] + 1>``"""
    comp = Component(seq(
        Protect((), _Z),
        Import("r2", _zs(), INT_CELL_LUMP, Var("c")),
        Ld("r1", "r2", 0),
        Aop("add", "r1", "r1", WInt(1)),
        St("r2", 0, "r1"),
        Mv("r1", WUnit()),
        Halt(TUnit(), _zs(), "r1"),
    ))
    return Lam((("c", INT_CELL_LUMP),), Boundary(FUnit(), comp))


def counter_value() -> Lam:
    """``lam(c: L<int>). intFT <read c[0]>``"""
    comp = Component(seq(
        Protect((), _Z),
        Import("r2", _zs(), INT_CELL_LUMP, Var("c")),
        Ld("r1", "r2", 0),
        Halt(TInt(), _zs(), "r1"),
    ))
    return Lam((("c", INT_CELL_LUMP),), Boundary(FInt(), comp))

"""Reusable F/FT combinators used by the examples and tests.

Pure-F helpers (``identity``, ``const_``, ``compose``, ``twice``,
``let_``) are ordinary lambda encodings.  ``seq_cell`` is the
FT-specific sequencing combinator for stack-cell programs: an ordinary
``let_`` hides the stack from its body (a plain lambda is checked under a
fresh abstract stack), so computations that keep state on the stack must
chain through *stack-modifying* lambdas whose ``phi`` annotations keep the
cell visible.
"""

from __future__ import annotations

from typing import Tuple

from repro.f.syntax import App, FArrow, FExpr, FType, Lam, Var
from repro.ft.syntax import StackLam
from repro.tal.syntax import TalType

__all__ = ["identity", "const_", "compose", "twice", "let_", "seq_cell"]


def identity(ty: FType) -> Lam:
    """``lam(x: ty). x``"""
    return Lam((("x", ty),), Var("x"))


def const_(ty: FType, value: FExpr, arg_ty: FType) -> Lam:
    """``lam(x: arg_ty). value`` (``value`` closed, of type ``ty``)."""
    return Lam((("x", arg_ty),), value)


def compose(f: FExpr, g: FExpr, a: FType, b: FType, c: FType) -> Lam:
    """``lam(x: a). f (g x)`` for ``g: (a)->b`` and ``f: (b)->c``."""
    return Lam((("x", a),), App(f, (App(g, (Var("x"),)),)))


def twice(f: FExpr, ty: FType) -> Lam:
    """``lam(x: ty). f (f x)`` for ``f: (ty)->ty``."""
    return Lam((("x", ty),), App(f, (App(f, (Var("x"),)),)))


def let_(name: str, ty: FType, value: FExpr, body: FExpr) -> App:
    """Pure-F let: ``(lam(name: ty). body) value``.

    The body is typed under a *fresh* abstract stack -- fine for pure
    computations, wrong for stack-cell programs (use :func:`seq_cell`).
    """
    return App(Lam(((name, ty),), body), (value,))


def seq_cell(step: FExpr, var: str, var_ty: FType, rest: FExpr,
             prefix_mid: Tuple[TalType, ...],
             prefix_out: Tuple[TalType, ...]) -> App:
    """Stack-aware let: run ``step``, bind its value, continue.

    ``prefix_mid`` is the stack prefix after ``step`` (the continuation's
    ``phi_in``); ``prefix_out`` is the prefix after ``rest``.  The
    continuation is a stack-modifying lambda so ``rest`` still sees the
    cell::

        seq_cell(alloc(5), "_", unit,
                 seq_cell(read(()), "v", int, ..., (int,), ...),
                 (int,), ...)
    """
    cont = StackLam(((var, var_ty),), rest, prefix_mid, prefix_out)
    return App(cont, (step,))

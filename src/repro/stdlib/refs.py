"""The mutable int-cell library from the paper's section 4.2.

F has no mutation; the paper notes that stack-modifying lambdas let a T
library provide it.  The cell is a single ``int`` stack slot, managed by
four stack-modifying lambdas whose arrow types make the protocol explicit:

================  ==========================================
``alloc_cell()``  ``(int) [.; int::.] -> unit``  -- push the initial value
``read_cell()``   ``(unit) [int::.; int::.] -> int``  -- read the cell
``write_cell()``  ``(int) [int::.; int::.] -> unit``  -- overwrite the cell
``free_cell()``   ``(unit) [int::.; .] -> unit``  -- pop the cell
================  ==========================================

A computation using the cell is written with
:func:`repro.stdlib.prelude.seq_cell`, which chains stack-modifying
lambdas so the cell stays visible between steps.  Every body is embedded
assembly: this module is the library the paper says you *can* write once
stack-modifying lambdas exist, and its tests double as integration tests
for ``protect``/``import`` typing.
"""

from __future__ import annotations

from repro.f.syntax import FInt, FUnit, Var
from repro.ft.syntax import Boundary, Import, Protect, StackDelta, StackLam
from repro.tal.syntax import (
    Component, Halt, Mv, Salloc, Sfree, Sld, Sst, StackTy, TInt, TUnit,
    WUnit, seq,
)

__all__ = ["alloc_cell", "read_cell", "write_cell", "free_cell"]

_INT_PREFIX = (TInt(),)
_Z = "z"


def _zstack(*prefix) -> StackTy:
    return StackTy(tuple(prefix), _Z)


def alloc_cell() -> StackLam:
    """``lam[.; int::.](x: int). <push x>`` -- allocate the cell."""
    comp = Component(seq(
        Protect((), _Z),
        Import("r1", _zstack(), FInt(), Var("x")),
        Salloc(1),
        Sst(0, "r1"),
        Mv("r1", WUnit()),
        Halt(TUnit(), _zstack(TInt()), "r1"),
    ))
    body = Boundary(FUnit(), comp, StackDelta(pushes=_INT_PREFIX))
    return StackLam((("x", FInt()),), body,
                    phi_in=(), phi_out=_INT_PREFIX)


def read_cell() -> StackLam:
    """``lam[int::.; int::.](u: unit). <read top>`` -- read the cell."""
    comp = Component(seq(
        Protect(_INT_PREFIX, _Z),
        Sld("r1", 0),
        Halt(TInt(), _zstack(TInt()), "r1"),
    ))
    body = Boundary(FInt(), comp)
    return StackLam((("u", FUnit()),), body,
                    phi_in=_INT_PREFIX, phi_out=_INT_PREFIX)


def write_cell() -> StackLam:
    """``lam[int::.; int::.](x: int). <overwrite top>``."""
    comp = Component(seq(
        Protect(_INT_PREFIX, _Z),
        Import("r1", _zstack(TInt()), FInt(), Var("x")),
        Sst(0, "r1"),
        Mv("r1", WUnit()),
        Halt(TUnit(), _zstack(TInt()), "r1"),
    ))
    body = Boundary(FUnit(), comp)
    return StackLam((("x", FInt()),), body,
                    phi_in=_INT_PREFIX, phi_out=_INT_PREFIX)


def free_cell() -> StackLam:
    """``lam[int::.; .](u: unit). <pop>`` -- release the cell."""
    comp = Component(seq(
        Protect(_INT_PREFIX, _Z),
        Sfree(1),
        Mv("r1", WUnit()),
        Halt(TUnit(), _zstack(), "r1"),
    ))
    body = Boundary(FUnit(), comp, StackDelta(pops=1))
    return StackLam((("u", FUnit()),), body,
                    phi_in=_INT_PREFIX, phi_out=())

"""Library code built *on top of* the FT public API.

* :mod:`repro.stdlib.refs` -- the paper's "very basic mutable reference
  library" (section 4.2 / technical appendix): a stack cell managed
  through stack-modifying lambdas;
* :mod:`repro.stdlib.prelude` -- reusable F combinators and sequencing
  helpers used by the examples and tests.
"""

from repro.stdlib.refs import (  # noqa: F401
    alloc_cell, free_cell, read_cell, write_cell,
)
from repro.stdlib.prelude import let_, seq_cell, compose, identity  # noqa: F401

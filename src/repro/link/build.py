"""``funtal build``: manifests, incremental recompilation, cached validation.

A *manifest* is a JSON object naming the components of a multi-component
program plus its main expression::

    {
      "components": {
        "double": "lam (x: int). (x + x)",
        "quad":   "lam (x: int). double (double x)",
        "fact":   {"builtin": "fact-t"}
      },
      "main": "quad (fact 3)"
    }

Component bodies are surface-syntax FT expressions (hand-written T
components ride along as ``FT[...]`` boundary terms) or ``builtin``
references to the paper-example builders (Figs 16-17).  Free variables
of a body are its *imports* and must name other components; the build
orders definitions by that dependency graph.

Incrementality is content addressing end to end: a component's digest
is the :func:`~repro.link.fingerprint.stable_fingerprint` of its parsed
body plus its import typing, so ``build`` consults the
:class:`~repro.link.store.ArtifactStore` first and only recompiles
components whose digest is absent -- i.e. whose source (or whose
*interface seen from its imports*) actually changed.  Editing one
component of an N-component program recompiles exactly that component
(plus any dependent whose import typing changed with it).

Translation validation is amortized the same way: a digest validated
once gets a ``validation`` receipt in the store, and later builds (and
``funtal compile --store``) skip re-validation with a
``compile.validate.cache_hit`` counter.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import LinkError
from repro.obs.events import OBS
from repro.compile.pipeline import (
    CompilationResult, compile_term, eligible_tier,
)
from repro.f.syntax import App, FExpr, FType, Lam
from repro.ft.syntax import Boundary, ft_free_vars
from repro.ft.typecheck import check_ft_expr
from repro.link.fingerprint import stable_fingerprint
from repro.link.interface import ComponentInterface
from repro.link.linker import (
    LinkedProgram, LinkUnit, link_components, topological_order,
)
from repro.link.store import ArtifactStore

__all__ = [
    "Manifest", "parse_manifest", "BuildRecord", "BuildReport",
    "build_manifest", "build_and_link", "cached_validation",
    "component_digest", "TIER_HANDWRITTEN", "BUILTIN_COMPONENTS",
]

TIER_HANDWRITTEN = "handwritten"


def _builtin_builders() -> Dict[str, Callable[[], FExpr]]:
    from repro.papers_examples.fig16_two_blocks import build_f1, build_f2
    from repro.papers_examples.fig17_factorial import (
        build_fact_f, build_fact_t,
    )

    return {"fact-t": build_fact_t, "fact-f": build_fact_f,
            "fig16-f1": build_f1, "fig16-f2": build_f2}


#: Raw paper-example builders addressable from a manifest as
#: ``{"builtin": NAME}`` -- the *unapplied* lambdas, unlike the example
#: registry, which wraps them in driver applications.
BUILTIN_COMPONENTS = tuple(sorted(_builtin_builders()))


@dataclass(frozen=True)
class Manifest:
    """A parsed manifest: named component bodies plus a main expression."""

    components: Tuple[Tuple[str, FExpr], ...]
    main: FExpr

    def component_map(self) -> Dict[str, FExpr]:
        return dict(self.components)


def parse_manifest(text: str) -> Manifest:
    """Parse manifest JSON; :class:`LinkError` (stage ``manifest``) on
    structural problems, :class:`~repro.errors.ParseError` on bad
    component syntax."""
    from repro.surface.parser import parse_fexpr

    try:
        data = json.loads(text)
    except ValueError as err:
        raise LinkError(f"manifest is not valid JSON: {err}",
                        stage="manifest") from None
    if not isinstance(data, dict):
        raise LinkError("manifest must be a JSON object", stage="manifest")
    unknown = set(data) - {"components", "main"}
    if unknown:
        raise LinkError(
            f"unknown manifest key(s): {', '.join(sorted(unknown))}",
            stage="manifest")
    defs = data.get("components")
    if not isinstance(defs, dict) or not defs:
        raise LinkError("manifest needs a non-empty 'components' object",
                        stage="manifest")
    if not isinstance(data.get("main"), str):
        raise LinkError("manifest needs a 'main' expression string",
                        stage="manifest")
    builders = _builtin_builders()
    parsed: List[Tuple[str, FExpr]] = []
    for name, body in defs.items():
        if isinstance(body, str):
            parsed.append((name, parse_fexpr(body)))
        elif isinstance(body, dict) and set(body) == {"source"}:
            parsed.append((name, parse_fexpr(body["source"])))
        elif isinstance(body, dict) and set(body) == {"builtin"}:
            builder = builders.get(body["builtin"])
            if builder is None:
                raise LinkError(
                    f"component {name!r}: unknown builtin "
                    f"{body['builtin']!r} (available: "
                    f"{', '.join(BUILTIN_COMPONENTS)})",
                    stage="manifest", subject=name)
            parsed.append((name, builder()))
        else:
            raise LinkError(
                f"component {name!r} must be a source string, "
                f"{{\"source\": ...}}, or {{\"builtin\": ...}}",
                stage="manifest", subject=name)
    return Manifest(components=tuple(parsed),
                    main=parse_fexpr(data["main"]))


# ---------------------------------------------------------------------------
# Content addressing
# ---------------------------------------------------------------------------

def component_digest(expr: FExpr,
                     imports: Sequence[Tuple[str, FType]],
                     optimize: bool = True) -> str:
    """The artifact address of one component: body + import typing +
    pipeline options.  Deliberately *not* the component's name -- two
    names for the same body share one artifact."""
    return stable_fingerprint(
        ("funtal.link.component", 1, expr, tuple(sorted(imports)),
         bool(optimize)))


@dataclass(frozen=True)
class StoredComponent:
    """The store payload: the interface plus the drop-in FT term."""

    iface: ComponentInterface
    term: FExpr


# ---------------------------------------------------------------------------
# Building
# ---------------------------------------------------------------------------

@dataclass
class BuildRecord:
    """One component's build outcome."""

    name: str
    digest: str
    tier: str
    cached: bool                     # served from the artifact store
    iface: ComponentInterface
    term: FExpr
    validation: Optional[Dict] = None
    validation_cached: bool = False

    def to_json(self) -> Dict:
        out = {"name": self.name, "digest": self.digest, "tier": self.tier,
               "cached": self.cached, "type": str(self.iface.ty),
               "imports": [f"{n}: {t}" for n, t in self.iface.imports]}
        if self.validation is not None:
            out["validation"] = dict(self.validation,
                                     cached=self.validation_cached)
        return out


@dataclass
class BuildReport:
    """Everything ``build_manifest`` did, in dependency order."""

    records: List[BuildRecord] = field(default_factory=list)
    main: Optional[FExpr] = None

    @property
    def recompiled(self) -> List[str]:
        return [r.name for r in self.records if not r.cached]

    @property
    def cached(self) -> List[str]:
        return [r.name for r in self.records if r.cached]

    def units(self) -> List[LinkUnit]:
        return [LinkUnit(iface=r.iface, term=r.term) for r in self.records]

    def to_json(self) -> Dict:
        return {"components": [r.to_json() for r in self.records],
                "recompiled": self.recompiled, "cached": self.cached}


def _dependency_order(manifest: Manifest) -> List[str]:
    names = {name for name, _ in manifest.components}
    deps: Dict[str, set] = {}
    for name, expr in manifest.components:
        free = ft_free_vars(expr)
        unknown = free - names
        if unknown:
            raise LinkError(
                f"component {name!r} has free variable(s) "
                f"{', '.join(sorted(unknown))} naming no component",
                stage="resolve", subject=name)
        if name in free:
            raise LinkError(
                f"component {name!r} imports itself (recurse inside the "
                f"component via fold/mu instead)",
                stage="cycle", subject=name)
        deps[name] = set(free)
    return topological_order(deps)


def _build_one(name: str, expr: FExpr, gamma: Dict[str, FType],
               optimize: bool) -> Tuple[ComponentInterface, FExpr, str]:
    """Compile (or adopt) one component; returns (iface, term, tier)."""
    imports = tuple(sorted((n, gamma[n]) for n in ft_free_vars(expr)))
    if eligible_tier(expr, dict(imports) or None) is not None:
        result = compile_term(expr, dict(imports) or None,
                              optimize=optimize)
        iface = ComponentInterface(name=name, ty=result.ty,
                                   imports=result.free, tier=result.tier)
        return iface, result.wrapped, result.tier
    # Outside every compiler tier: a hand-written FT term (e.g. Fig 17's
    # factT).  One static check here stands in for compilation.
    ty, _ = check_ft_expr(expr, gamma=dict(imports) if imports else None)
    iface = ComponentInterface(name=name, ty=ty, imports=imports,
                               tier=TIER_HANDWRITTEN)
    return iface, expr, TIER_HANDWRITTEN


def build_manifest(manifest: Manifest,
                   store: Optional[ArtifactStore] = None, *,
                   optimize: bool = True,
                   validate: bool = False,
                   validate_fuel: int = 30_000,
                   seed: int = 0) -> BuildReport:
    """Build every component of ``manifest``, store-first.

    With ``store=None`` every component is built in-process (no
    persistence).  With ``validate=True`` compiled components are
    translation-validated, reusing store receipts across builds.
    """
    order = _dependency_order(manifest)
    bodies = manifest.component_map()
    report = BuildReport(main=manifest.main)
    export_ty: Dict[str, FType] = {}

    with OBS.span("link.build", "link", components=len(order)):
        for name in order:
            expr = bodies[name]
            imports = tuple(sorted(
                (n, export_ty[n]) for n in ft_free_vars(expr)))
            digest = component_digest(expr, imports, optimize)
            record = None
            if store is not None:
                found = store.get(digest)
                if found is not None:
                    stored: StoredComponent = found[1]
                    record = BuildRecord(
                        name=name, digest=digest,
                        tier=stored.iface.tier, cached=True,
                        iface=replace(stored.iface, name=name),
                        term=stored.term)
            if record is None:
                iface, term, tier = _build_one(
                    name, expr, dict(imports), optimize)
                iface = replace(iface, digest=digest)
                record = BuildRecord(name=name, digest=digest, tier=tier,
                                     cached=False, iface=iface, term=term)
                if store is not None:
                    store.put(digest, StoredComponent(iface, term),
                              meta={"name": name, "tier": tier,
                                    "type": str(iface.ty)})
                if OBS.enabled:
                    OBS.metrics.inc("link.build.compiled")
            elif OBS.enabled:
                OBS.metrics.inc("link.build.store_hit")
            if validate and record.tier != TIER_HANDWRITTEN:
                record.validation, record.validation_cached = \
                    cached_validation(store, digest,
                                      _as_result(record, expr),
                                      fuel=validate_fuel, seed=seed)
            export_ty[name] = record.iface.ty
            report.records.append(record)
    return report


def _as_result(record: BuildRecord, source: FExpr) -> CompilationResult:
    """Reconstruct a :class:`CompilationResult` for validation of a
    store-loaded artifact (the validator reads source/wrapped/ty/free)."""
    term = record.term
    if isinstance(term, Lam) and isinstance(term.body, App) \
            and isinstance(term.body.fn, Boundary):
        component = term.body.fn.comp
    elif isinstance(term, Boundary):
        component = term.comp
    else:
        raise LinkError(
            f"component {record.name!r} ({record.tier} tier) has no "
            f"extractable boundary component to validate",
            stage="interface", subject=record.name)
    return CompilationResult(source=source, tier=record.tier,
                             ty=record.iface.ty, wrapped=term,
                             component=component,
                             free=record.iface.imports)


def cached_validation(store: Optional[ArtifactStore], digest: str,
                      result: CompilationResult,
                      **kwargs) -> Tuple[Dict, bool]:
    """Translation validation amortized by content hash.

    Returns ``(report json, was_cached)``.  An ``ok`` receipt stored
    under ``digest`` short-circuits the (orders-of-magnitude more
    expensive) validation run and counts
    ``compile.validate.cache_hit``; failing reports are never cached --
    a bad artifact should be re-diagnosed, not remembered.
    """
    from repro.compile.validate import validate_compilation

    if store is not None:
        receipt = store.get_validation(digest)
        if receipt is not None and receipt.get("ok"):
            if OBS.enabled:
                OBS.metrics.inc("compile.validate.cache_hit")
            return receipt, True
    report = validate_compilation(result, **kwargs)
    payload = report.to_json()
    if store is not None and report.ok:
        store.put_validation(digest, payload)
    return payload, False


def build_and_link(manifest: Manifest,
                   store: Optional[ArtifactStore] = None, *,
                   optimize: bool = True,
                   validate: bool = False,
                   validate_fuel: int = 30_000,
                   seed: int = 0) -> Tuple[BuildReport, LinkedProgram]:
    """The whole pipeline: incremental build, then typed linking."""
    report = build_manifest(manifest, store, optimize=optimize,
                            validate=validate,
                            validate_fuel=validate_fuel, seed=seed)
    linked = link_components(report.units(), manifest.main)
    return report, linked

"""The on-disk content-addressed artifact store (``~/.cache/funtal``).

One artifact per file, named by content digest::

    <root>/<digest>.<kind>.json

Each file is a small JSON envelope -- ``version``, ``kind``, ``digest``,
caller ``meta`` (plain JSON: tier, type strings, source hash...), a
base64 pickle ``payload`` carrying the actual syntax trees, and an
``integrity`` hash over the payload.  The envelope is self-verifying:
``get`` recomputes the integrity hash before unpickling, so a truncated
or bit-flipped file is *detected and deleted*, never deserialized --
the caller sees a miss and recompiles.

Durability discipline:

* **atomic writes** -- the envelope is written to a same-directory temp
  file and ``os.replace``d into place, so a reader (or a concurrent
  writer of the same digest) never observes a half-written artifact;
  last writer wins, and both writers wrote the same bytes anyway
  (content addressing);
* **LRU eviction** -- ``get`` touches the file's mtime; ``put`` evicts
  the stalest entries beyond ``maxsize``;
* **observability** -- ``link.store.hit`` / ``.miss`` / ``.put`` /
  ``.evict`` / ``.corrupt`` counters (:mod:`repro.obs`), mirroring the
  in-memory :class:`repro.caching.LRUCache` accounting so store traffic
  shows up in ``funtal stats``.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import pickle
import sys
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from repro.obs.events import OBS
from repro.resilience.chaos import probe

__all__ = ["ArtifactStore", "default_store_root", "STORE_VERSION"]

STORE_VERSION = 1

#: Artifact syntax trees nest arbitrarily deep (compiled recursive
#: lambdas); pickling walks them recursively, so give the host stack the
#: same headroom the checkpoint layer uses.
_PICKLE_RECURSION_LIMIT = 50_000


def default_store_root() -> Path:
    """``$FUNTAL_STORE`` if set, else ``~/.cache/funtal``."""
    env = os.environ.get("FUNTAL_STORE")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "funtal"


def _count(outcome: str, n: int = 1) -> None:
    if OBS.enabled:
        OBS.metrics.inc(f"link.store.{outcome}", n)


def _encode_payload(obj: Any) -> Tuple[str, str]:
    old = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old, _PICKLE_RECURSION_LIMIT))
    try:
        raw = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    finally:
        sys.setrecursionlimit(old)
    payload = base64.b64encode(raw).decode("ascii")
    return payload, hashlib.sha256(payload.encode("ascii")).hexdigest()


def _decode_payload(payload: str) -> Any:
    raw = base64.b64decode(payload.encode("ascii"))
    old = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old, _PICKLE_RECURSION_LIMIT))
    try:
        return pickle.loads(raw)
    finally:
        sys.setrecursionlimit(old)


class ArtifactStore:
    """A content-addressed, integrity-checked, LRU-bounded file store."""

    def __init__(self, root: Optional[os.PathLike] = None,
                 maxsize: int = 512):
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.root = Path(root) if root is not None else default_store_root()
        self.maxsize = maxsize
        self.root.mkdir(parents=True, exist_ok=True)

    # -- paths --------------------------------------------------------

    def path(self, digest: str, kind: str = "artifact") -> Path:
        return self.root / f"{digest}.{kind}.json"

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))

    # -- read ---------------------------------------------------------

    def get(self, digest: str,
            kind: str = "artifact") -> Optional[Tuple[Dict, Any]]:
        """``(meta, payload object)`` for ``digest``, or ``None``.

        A malformed, truncated, or integrity-failing file counts as
        ``link.store.corrupt``, is deleted, and reads as a miss -- the
        caller's recovery (recompile + re-put) heals the store.
        """
        probe("store.io", f"get {kind} {digest[:12]}")
        path = self.path(digest, kind)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            _count("miss")
            return None
        try:
            envelope = json.loads(text)
            if envelope["version"] != STORE_VERSION:
                raise ValueError(f"version {envelope['version']}")
            if envelope["digest"] != digest or envelope["kind"] != kind:
                raise ValueError("envelope names a different artifact")
            payload = envelope["payload"]
            actual = hashlib.sha256(
                payload.encode("ascii")).hexdigest()
            if actual != envelope["integrity"]:
                raise ValueError("integrity hash mismatch")
            obj = _decode_payload(payload)
            meta = envelope.get("meta", {})
        except Exception:   # noqa: BLE001 -- any damage reads as corrupt
            _count("corrupt")
            _count("miss")
            try:
                path.unlink()
            except OSError:
                pass
            return None
        _count("hit")
        try:
            os.utime(path)      # LRU touch
        except OSError:
            pass
        return meta, obj

    # -- write --------------------------------------------------------

    def put(self, digest: str, obj: Any, meta: Optional[Dict] = None,
            kind: str = "artifact") -> Path:
        """Persist ``obj`` under ``digest`` atomically; returns the path.

        Concurrent writers of the same digest race benignly: each writes
        a private temp file and ``os.replace`` is atomic, so readers see
        either the old complete file or the new complete file, never a
        torn one.
        """
        probe("store.io", f"put {kind} {digest[:12]}")
        payload, integrity = _encode_payload(obj)
        envelope = {
            "version": STORE_VERSION,
            "kind": kind,
            "digest": digest,
            "meta": meta or {},
            "payload": payload,
            "integrity": integrity,
        }
        path = self.path(digest, kind)
        fd, tmp = tempfile.mkstemp(dir=self.root, prefix=f".{digest[:12]}.",
                                   suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(envelope, handle, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        _count("put")
        self._evict()
        return path

    def delete(self, digest: str, kind: str = "artifact") -> bool:
        try:
            self.path(digest, kind).unlink()
            return True
        except OSError:
            return False

    def clear(self) -> None:
        for path in self.root.glob("*.json"):
            try:
                path.unlink()
            except OSError:
                pass

    def _evict(self) -> None:
        """Drop the least-recently-used entries beyond ``maxsize``."""
        entries = []
        for path in self.root.glob("*.json"):
            try:
                entries.append((path.stat().st_mtime, path))
            except OSError:
                continue
        excess = len(entries) - self.maxsize
        if excess <= 0:
            return
        entries.sort()
        evicted = 0
        for _, path in entries[:excess]:
            try:
                path.unlink()
                evicted += 1
            except OSError:
                continue
        if evicted:
            _count("evict", evicted)

    # -- validation receipts ------------------------------------------

    def get_validation(self, digest: str) -> Optional[Dict]:
        """A stored translation-validation receipt for an artifact."""
        found = self.get(digest, kind="validation")
        return None if found is None else found[1]

    def put_validation(self, digest: str, report: Dict) -> Path:
        return self.put(digest, report, kind="validation")

    def stats(self) -> Dict[str, int]:
        artifacts = sum(1 for _ in self.root.glob("*.artifact.json"))
        receipts = sum(1 for _ in self.root.glob("*.validation.json"))
        return {"entries": artifacts + receipts, "artifacts": artifacts,
                "validations": receipts, "maxsize": self.maxsize}

"""``repro.link`` -- separate compilation, artifact store, typed linking.

The production form of FunTAL's multi-language story: instead of one
whole-program compile (:mod:`repro.compile`), a program is a *set of
components* -- compiled F lambdas and hand-written T components -- each
built independently, persisted in an on-disk content-addressed store,
and combined by a linker that checks import/export interfaces (with TAL
register-file subtyping) without ever re-typechecking component bodies.

Layers (see ``docs/linking.md``):

* :mod:`repro.link.fingerprint` -- process-stable content addresses;
* :mod:`repro.link.store` -- the ``~/.cache/funtal`` artifact store
  (atomic writes, integrity hashes, LRU eviction, ``link.store.*``
  counters);
* :mod:`repro.link.interface` -- component interfaces and the link-time
  signature checker;
* :mod:`repro.link.linker` -- alpha-renaming + substitution linking of
  independently-built units into one closed FT program;
* :mod:`repro.link.build` -- manifests, incremental recompilation, and
  content-hash-amortized translation validation.

CLI: ``funtal build`` / ``funtal link``; service: the ``link`` job kind
(:mod:`repro.serve`).
"""

from repro.errors import LinkError
from repro.link.build import (
    BUILTIN_COMPONENTS, BuildRecord, BuildReport, Manifest,
    TIER_HANDWRITTEN, build_and_link, build_manifest, cached_validation,
    component_digest, parse_manifest,
)
from repro.link.fingerprint import canonical_encoding, stable_fingerprint
from repro.link.interface import (
    ComponentInterface, check_import, export_code_type, imports_compatible,
)
from repro.link.linker import (
    LinkedProgram, LinkUnit, collect_labels, link_components,
    rename_unit_labels, topological_order,
)
from repro.link.store import ArtifactStore, default_store_root

__all__ = [
    "LinkError", "ArtifactStore", "default_store_root",
    "canonical_encoding", "stable_fingerprint",
    "ComponentInterface", "check_import", "export_code_type",
    "imports_compatible",
    "LinkUnit", "LinkedProgram", "link_components", "collect_labels",
    "rename_unit_labels", "topological_order",
    "Manifest", "parse_manifest", "BuildRecord", "BuildReport",
    "build_manifest", "build_and_link", "cached_validation",
    "component_digest", "BUILTIN_COMPONENTS", "TIER_HANDWRITTEN",
]

"""The linker: merge separately-built components into one FT program.

A :class:`LinkUnit` pairs a component's interface with its drop-in FT
term (the compiler's ``wrapped`` form, or a hand-written FT expression),
open in its imports.  :func:`link_components` turns a set of units plus
a main expression into one *closed* program in four phases:

1. **export table** -- duplicate export names are rejected;
2. **resolution + interface check** -- every import edge (unit-to-unit
   and main-to-unit) must name an export whose interface satisfies the
   imported type (:func:`repro.link.interface.check_import`), *without*
   re-typechecking any body;
3. **alpha-renaming** -- each unit's heap labels are renamed to
   ``<name>$l0, <name>$l1, ...`` from one link-wide
   :class:`~repro.compile.names.NameSupply`, so the merged program's
   labels are globally unique and artifacts stay deterministic (two
   links of the same units are byte-identical);
4. **substitution** -- in dependency order, each unit's term replaces
   its import variables in its consumers; the fully-substituted main
   expression is the linked program.

Import cycles are rejected: F's binding forms cannot express mutual
recursion across component boundaries (recursion lives *inside* a
component via ``fold``/``mu`` or T loops, as in Fig 17).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

from repro.errors import LinkError
from repro.obs.events import OBS
from repro.compile.names import NameSupply
from repro.f.syntax import (
    App, BinOp, FExpr, Fold, If0, Lam, Proj, TupleE, Unfold, subst_expr,
)
from repro.ft.syntax import (
    Boundary, Import, ft_free_vars, rename_locs_in_fexpr,
)
from repro.link.interface import ComponentInterface, check_import
from repro.tal.machine import rename_locs
from repro.tal.syntax import Component, HCode, Loc

__all__ = [
    "LinkUnit", "LinkedProgram", "link_components", "collect_labels",
    "rename_unit_labels", "topological_order",
]


@dataclass(frozen=True)
class LinkUnit:
    """One linkable component: its interface plus its open FT term."""

    iface: ComponentInterface
    term: FExpr

    @property
    def name(self) -> str:
        return self.iface.name


@dataclass
class LinkedProgram:
    """The linker's output: a closed program plus its provenance."""

    program: FExpr
    order: Tuple[str, ...]              # units in substitution order
    interfaces: Dict[str, ComponentInterface] = field(default_factory=dict)
    labels_renamed: int = 0

    def __str__(self) -> str:
        return (f"linked program of {len(self.order)} component(s): "
                f"{', '.join(self.order)}")


# ---------------------------------------------------------------------------
# Label collection and renaming
# ---------------------------------------------------------------------------

def collect_labels(e: FExpr) -> Set[Loc]:
    """Every heap label *bound* anywhere in ``e`` (boundary components,
    including components nested inside ``import`` expressions).  Within
    one artifact these are unique -- the compiler mints them from a
    single per-compilation supply -- so one flat set is faithful."""
    acc: Set[Loc] = set()
    _collect_expr(e, acc)
    return acc


def _collect_expr(e: FExpr, acc: Set[Loc]) -> None:
    if isinstance(e, Boundary):
        _collect_component(e.comp, acc)
    elif isinstance(e, BinOp):
        _collect_expr(e.left, acc)
        _collect_expr(e.right, acc)
    elif isinstance(e, If0):
        _collect_expr(e.cond, acc)
        _collect_expr(e.then, acc)
        _collect_expr(e.els, acc)
    elif isinstance(e, Lam):
        _collect_expr(e.body, acc)
    elif isinstance(e, App):
        _collect_expr(e.fn, acc)
        for a in e.args:
            _collect_expr(a, acc)
    elif isinstance(e, (Fold, Unfold, Proj)):
        _collect_expr(e.body, acc)
    elif isinstance(e, TupleE):
        for item in e.items:
            _collect_expr(item, acc)
    # Var / IntE / UnitE / lump handles bind no labels


def _collect_component(comp: Component, acc: Set[Loc]) -> None:
    for loc, h in comp.heap:
        acc.add(loc)
        if isinstance(h, HCode):
            _collect_seq(h.instrs, acc)
    _collect_seq(comp.instrs, acc)


def _collect_seq(iseq, acc: Set[Loc]) -> None:
    for instr in iseq.instrs:
        if isinstance(instr, Import):
            _collect_expr(instr.expr, acc)


def rename_unit_labels(term: FExpr, name: str,
                       supply: NameSupply) -> Tuple[FExpr, int]:
    """Alpha-rename every label of ``term`` to ``<name>$lN`` (stable
    order: sorted by original label name).  Returns the renamed term and
    how many labels moved."""
    labels = sorted(collect_labels(term), key=lambda loc: loc.name)
    if not labels:
        return term, 0
    mapping = {loc: Loc(supply.fresh(f"{name}$l")) for loc in labels}
    return rename_locs_in_fexpr(term, mapping, rename_locs), len(mapping)


# ---------------------------------------------------------------------------
# Dependency order
# ---------------------------------------------------------------------------

def topological_order(deps: Dict[str, Set[str]]) -> List[str]:
    """Kahn's algorithm over ``name -> {names it depends on}``;
    deterministic (name order) and raising :class:`LinkError` on a
    cycle."""
    pending = {name: set(ds) for name, ds in deps.items()}
    order: List[str] = []
    while pending:
        ready = sorted(name for name, ds in pending.items() if not ds)
        if not ready:
            cycle = ", ".join(sorted(pending))
            raise LinkError(
                f"import cycle among components: {cycle} (cross-component "
                f"recursion is not linkable; recurse inside one component "
                f"via fold/mu or T loops instead)",
                stage="cycle", subject=cycle)
        for name in ready:
            order.append(name)
            del pending[name]
        for ds in pending.values():
            ds.difference_update(ready)
    return order


# ---------------------------------------------------------------------------
# Linking
# ---------------------------------------------------------------------------

def link_components(units: Sequence[LinkUnit],
                    main: FExpr) -> LinkedProgram:
    """Link ``units`` and close ``main`` over them; see module docstring.

    Raises :class:`LinkError` for duplicate exports, unresolved or
    cyclic imports, and interface mismatches.
    """
    with OBS.span("link.link", "link", components=len(units)):
        return _link(units, main)


def _link(units: Sequence[LinkUnit], main: FExpr) -> LinkedProgram:
    exports: Dict[str, LinkUnit] = {}
    for unit in units:
        if unit.name in exports:
            raise LinkError(
                f"duplicate export {unit.name!r} (digests "
                f"{exports[unit.name].iface.digest[:12]} and "
                f"{unit.iface.digest[:12]})",
                stage="exports", subject=unit.name)
        exports[unit.name] = unit

    # Resolve and interface-check every import edge.
    deps: Dict[str, Set[str]] = {}
    for unit in units:
        deps[unit.name] = set()
        for imported, required in unit.iface.imports:
            provider = exports.get(imported)
            if provider is None:
                raise LinkError(
                    f"component {unit.name!r} imports {imported!r}, which "
                    f"no linked component exports "
                    f"(available: {', '.join(sorted(exports)) or 'none'})",
                    stage="resolve", subject=imported)
            check_import(unit.name, imported, required, provider.iface)
            deps[unit.name].add(imported)

    main_imports = sorted(ft_free_vars(main))
    for imported in main_imports:
        if imported not in exports:
            raise LinkError(
                f"main expression imports {imported!r}, which no linked "
                f"component exports "
                f"(available: {', '.join(sorted(exports)) or 'none'})",
                stage="resolve", subject=imported)

    order = topological_order(deps)

    # Alpha-rename, then substitute bottom-up.
    supply = NameSupply()
    renamed_total = 0
    linked: Dict[str, FExpr] = {}
    for name in order:
        unit = exports[name]
        term, renamed = rename_unit_labels(unit.term, name, supply)
        renamed_total += renamed
        for imported, _ in unit.iface.imports:
            term = subst_expr(term, imported, linked[imported])
        linked[name] = term

    program = main
    for imported in main_imports:
        program = subst_expr(program, imported, linked[imported])

    leftover = ft_free_vars(program)
    if leftover:
        raise LinkError(
            f"linked program is still open in "
            f"{', '.join(sorted(leftover))}",
            stage="resolve", subject=", ".join(sorted(leftover)))

    if OBS.enabled:
        OBS.metrics.inc("link.components", len(units))
        OBS.metrics.inc("link.labels_renamed", renamed_total)
        OBS.metrics.inc("link.link")

    return LinkedProgram(
        program=program, order=tuple(order),
        interfaces={u.name: u.iface for u in units},
        labels_renamed=renamed_total)

"""Process-stable content addresses for syntax trees and artifacts.

The store and the build system key everything -- compiled components,
interfaces, validation receipts -- by the SHA-256 of a *canonical
structural encoding* of the object.  Pickle is no good here: its byte
stream leaks memoization order, protocol version, and interning
accidents (two structurally equal nodes pickle differently depending on
whether :class:`repro.caching.InternTable` collapsed them), so the same
lambda would hash differently in two worker processes and the on-disk
cache would never hit across runs.  The encoding below depends only on
the node classes and their field values:

* dataclasses encode as ``(module.QualName field-encodings...)`` in
  ``__dataclass_fields__`` order -- the declaration order is part of the
  class, not of the process;
* containers encode structurally (dicts and sets are sorted by their
  encoded keys/elements, so iteration order is irrelevant);
* atoms carry a type tag so ``1``, ``1.0`` and ``True`` stay distinct.

Anything else (functions, machines, open file handles) is rejected
loudly -- an artifact hash must never silently depend on unhashable
runtime state.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any

__all__ = ["canonical_encoding", "stable_fingerprint"]


def canonical_encoding(obj: Any) -> str:
    """A deterministic, process-independent text encoding of ``obj``."""
    out: list = []
    _encode(obj, out)
    return "".join(out)


def _encode(obj: Any, out: list) -> None:
    if obj is None:
        out.append("#n")
        return
    if obj is True or obj is False:
        out.append("#t" if obj else "#f")
        return
    if isinstance(obj, int):
        out.append(f"i{obj}")
        return
    if isinstance(obj, float):
        out.append(f"f{obj!r}")
        return
    if isinstance(obj, str):
        out.append(f"s{json.dumps(obj, ensure_ascii=True)}")
        return
    if isinstance(obj, bytes):
        out.append(f"b{obj.hex()}")
        return
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        cls = type(obj)
        out.append(f"({cls.__module__}.{cls.__qualname__}")
        for name in cls.__dataclass_fields__:
            out.append(" ")
            _encode(getattr(obj, name), out)
        out.append(")")
        return
    if isinstance(obj, (tuple, list)):
        out.append("(t" if isinstance(obj, tuple) else "(l")
        for item in obj:
            out.append(" ")
            _encode(item, out)
        out.append(")")
        return
    if isinstance(obj, dict):
        # Sort by the *encoded* key so mixed-type keys still order
        # deterministically, independent of insertion order.
        items = sorted((canonical_encoding(k), k, v)
                       for k, v in obj.items())
        out.append("(d")
        for enc_k, _, v in items:
            out.append(f" {enc_k} ")
            _encode(v, out)
        out.append(")")
        return
    if isinstance(obj, (set, frozenset)):
        out.append("(S")
        for enc in sorted(canonical_encoding(x) for x in obj):
            out.append(f" {enc}")
        out.append(")")
        return
    raise TypeError(
        f"cannot content-address a {type(obj).__module__}."
        f"{type(obj).__qualname__}: only dataclasses, containers, and "
        f"atoms have canonical encodings")


def stable_fingerprint(obj: Any) -> str:
    """SHA-256 hex digest of the canonical encoding -- identical across
    calls, runs, interpreters, and machines for structurally equal
    inputs."""
    return hashlib.sha256(
        canonical_encoding(obj).encode("utf-8")).hexdigest()

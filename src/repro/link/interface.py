"""Component interfaces and the link-time signature checker.

Every separately-compiled (or hand-written) component exports one named
value at one F type, and imports the components it was compiled against
as free variables with declared types.  A :class:`ComponentInterface`
records exactly that -- name, export type, import typing, tier -- plus
the artifact's content digest, and is all the linker ever looks at: the
component *body* was typechecked when it was built (by the compiler's
translation validation or by ``check_ft_expr`` for hand-written FT
terms), so linking re-checks **signatures only**, never bodies.

Import/export compatibility is checked at two levels:

1. **F equality** -- the provider's export type is alpha-equal to the
   type the consumer was compiled against (:func:`ftype_equal`).
2. **TAL calling convention** -- failing that, both types are pushed
   through the boundary type translation (paper Fig 9) and compared as
   T types, with *register-file width subtyping* on code types
   (:mod:`repro.tal.subtyping`): the provider's entry code may demand
   fewer registers than the consumer's call site supplies, exactly as
   T's jump rule allows.  This admits, e.g., a stack-modifying arrow
   with empty prefixes where a plain arrow is required -- distinct F
   types with identical calling conventions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import LinkError
from repro.f.syntax import FType, ftype_equal
from repro.ft.translate import type_translation
from repro.tal.equality import types_equal
from repro.tal.subtyping import is_regfile_subtype
from repro.tal.syntax import CodeType, RegFileTy, TalType, TBox

__all__ = [
    "ComponentInterface", "check_import", "export_code_type",
    "imports_compatible",
]


@dataclass(frozen=True)
class ComponentInterface:
    """The linkable surface of one component.

    ``imports`` is the free-variable typing the component was built
    against (name, F type), in name order; ``digest`` is the content
    address of the stored artifact; ``tier`` is the compilation tier
    (``arith``/``general``) or ``handwritten`` for FT terms taken as-is.
    """

    name: str
    ty: FType
    imports: Tuple[Tuple[str, FType], ...] = ()
    digest: str = ""
    tier: str = "general"

    def __post_init__(self) -> None:
        object.__setattr__(self, "imports",
                           tuple(sorted(self.imports,
                                        key=lambda item: item[0])))

    def __str__(self) -> str:
        needs = ", ".join(f"{n}: {t}" for n, t in self.imports)
        prefix = f"{{{needs}}} => " if needs else ""
        return f"{self.name} : {prefix}{self.ty}"


def export_code_type(ty: FType) -> Optional[CodeType]:
    """The TAL entry code type of an arrow export (the type a consumer's
    generated call site jumps to), or ``None`` for non-code exports."""
    translated = type_translation(ty)
    if isinstance(translated, TBox) and isinstance(translated.psi, CodeType):
        return translated.psi
    return None


def _erase_chi(code: CodeType) -> CodeType:
    return CodeType(code.delta, RegFileTy(), code.sigma, code.q)


def imports_compatible(required: FType, provided: FType) -> bool:
    """May a ``provided`` export satisfy a ``required`` import?"""
    if ftype_equal(provided, required):
        return True
    prov_t: TalType = type_translation(provided)
    req_t: TalType = type_translation(required)
    if types_equal(prov_t, req_t):
        return True
    # Code pointers get T's width subtyping: compare everything but the
    # register files up to alpha-equivalence, then require that every
    # register the provider's entry block demands is supplied by the
    # call sites generated for the required type.
    if (isinstance(prov_t, TBox) and isinstance(prov_t.psi, CodeType)
            and isinstance(req_t, TBox)
            and isinstance(req_t.psi, CodeType)):
        prov_code, req_code = prov_t.psi, req_t.psi
        return (types_equal(TBox(_erase_chi(prov_code)),
                            TBox(_erase_chi(req_code)))
                and is_regfile_subtype(req_code.chi, prov_code.chi))
    return False


def check_import(importer: str, name: str, required: FType,
                 provider: ComponentInterface) -> None:
    """Raise :class:`LinkError` unless ``provider`` can satisfy the
    import ``name : required`` of component ``importer``."""
    if imports_compatible(required, provider.ty):
        return
    raise LinkError(
        f"component {importer!r} imports {name} : {required}, but "
        f"{provider.name!r} exports {provider.ty} (incompatible even "
        f"under the TAL calling convention)",
        stage="interface", subject=name)

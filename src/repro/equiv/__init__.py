"""Bounded contextual-equivalence checking for FT (paper section 5).

The paper proves program equivalences with a step-indexed Kripke logical
relation.  A Python reproduction cannot *prove*; it can *check*: this
package implements the executable shadow of the relation --

* :mod:`repro.equiv.observation` -- whole-program observations under fuel
  (halt with a value / diverge-at-fuel / stuck), the ``O`` relation;
* :mod:`repro.equiv.worlds` -- step-indexed worlds and the bounded value
  relation ``V[tau]`` (structural at base/tuple/mu types, sampled
  application at arrow types);
* :mod:`repro.equiv.generators` -- typed generators for argument values;
* :mod:`repro.equiv.contexts` -- well-typed closing contexts, including
  cross-language contexts that pass the candidate into assembly;
* :mod:`repro.equiv.checker` -- the differential checker: plug both
  components into every context, compare observations, report the first
  counterexample or bounded-equivalence evidence.

Sound for *refutation* (a counterexample is a real inequivalence witness);
evidence, not proof, for equivalence -- exactly what a step-indexed
relation truncated at index k gives you.
"""

from repro.equiv.observation import Observation, observe  # noqa: F401
from repro.equiv.checker import (  # noqa: F401
    check_equivalence, EquivalenceReport,
)
from repro.equiv.worlds import related_values, World  # noqa: F401

"""The differential contextual-equivalence checker.

``check_equivalence(e1, e2, ty)`` plugs both candidates into every context
from :mod:`repro.equiv.contexts` (optionally after typechecking both at
``ty``), runs each resulting whole program to an observation, and compares.
The result is an :class:`EquivalenceReport`:

* ``equivalent = False`` carries the distinguishing context and both
  observations -- a *sound* refutation (the context is a real FT program);
* ``equivalent = True`` means all ``trials`` observations agreed under the
  fuel bound -- bounded evidence, the executable reading of proving
  relatedness at every step index up to ``k``.

This is what the benchmark harness runs to "check" the paper's claimed
equivalences (Figs 16 and 17) and the Fundamental Property's testable
shadow (every well-typed term is related to itself, Theorem 5.1).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.equiv.contexts import Context, contexts_for
from repro.equiv.observation import Observation, observe
from repro.errors import FTTypeError
from repro.f.syntax import FExpr, FType, ftype_equal
from repro.ft.typecheck import check_ft_expr

__all__ = ["check_equivalence", "EquivalenceReport", "Counterexample"]


@dataclass(frozen=True)
class Counterexample:
    """A context on which the two candidates disagree."""

    context_name: str
    obs1: Observation
    obs2: Observation

    def __str__(self) -> str:
        return (f"context {self.context_name!r}: "
                f"left {self.obs1}, right {self.obs2}")


@dataclass
class EquivalenceReport:
    """Outcome of a bounded-equivalence check."""

    equivalent: bool
    trials: int
    fuel: int
    counterexample: Optional[Counterexample] = None
    agreements: List[Tuple[str, Observation]] = field(default_factory=list)

    def __str__(self) -> str:
        if self.equivalent:
            return (f"indistinguishable on {self.trials} contexts "
                    f"(fuel {self.fuel})")
        return f"INEQUIVALENT: {self.counterexample}"


def check_equivalence(e1: FExpr, e2: FExpr, ty: FType, *,
                      fuel: int = 50_000, seed: int = 0, budget: int = 2,
                      typecheck: bool = True,
                      include_cross_language: bool = True,
                      max_contexts: Optional[int] = None
                      ) -> EquivalenceReport:
    """Differentially test ``e1 ~ e2 : ty`` over generated contexts."""
    if typecheck:
        for name, e in (("left", e1), ("right", e2)):
            actual, _ = check_ft_expr(e)
            if not ftype_equal(actual, ty):
                raise FTTypeError(
                    f"{name} candidate has type {actual}, expected {ty}",
                    judgment="equiv.check", subject=str(e))
    rng = random.Random(seed)
    contexts = contexts_for(ty, rng, budget,
                            include_cross_language=include_cross_language)
    if max_contexts is not None:
        contexts = contexts[:max_contexts]
    report = EquivalenceReport(True, 0, fuel)
    for name, plug in contexts:
        obs1 = observe(plug(e1), fuel=fuel)
        obs2 = observe(plug(e2), fuel=fuel)
        report.trials += 1
        if not obs1.agrees_with(obs2):
            report.equivalent = False
            report.counterexample = Counterexample(name, obs1, obs2)
            return report
        report.agreements.append((name, obs1))
    return report

"""Well-typed closing contexts for the differential checker.

A *context* here is a named function ``FExpr -> FExpr`` taking the
candidate term (closed, of the announced type) to a whole program whose
observation is first-order.  :func:`contexts_for` enumerates:

* the trivial context (observe the candidate itself -- only informative at
  first-order type);
* application contexts: apply to every generated argument tuple;
* reuse contexts: apply twice with different arguments and combine (checks
  that the candidate is not one-shot-stateful);
* higher-order contexts: pass the candidate to probe consumers;
* **cross-language contexts** (the FunTAL-specific part): embed the
  candidate into assembly -- an ``import`` pulls it into a T component,
  which saves it on the stack, ``call``s it following the calling
  convention, and halts with the result.  This exercises the candidate
  through the Fig 9/10 boundary machinery rather than through F
  application, exactly the distinction the paper's logical relation has to
  handle.
"""

from __future__ import annotations

import random
from typing import Callable, Iterator, List, Optional, Tuple

from repro.equiv.generators import values_of, values_of_arrow_args
from repro.f.syntax import (
    App, BinOp, FArrow, FExpr, FInt, FTupleT, FType, FUnit, IntE, Lam,
    Proj, Var,
)
from repro.ft.syntax import Boundary, Import, Protect
from repro.ft.translate import continuation_type, type_translation
from repro.tal.syntax import (
    Call, Component, Halt, Mv, NIL_STACK, QEnd, RegOp, Salloc, Sst, StackTy,
    TInt, seq,
)

__all__ = ["Context", "contexts_for", "t_application_context"]

Context = Tuple[str, Callable[[FExpr], FExpr]]


def contexts_for(ty: FType, rng: Optional[random.Random] = None,
                 budget: int = 2,
                 include_cross_language: bool = True) -> List[Context]:
    """Enumerate observing contexts for candidates of type ``ty``."""
    rng = rng or random.Random(0)
    out: List[Context] = []
    if isinstance(ty, (FInt, FUnit, FTupleT)):
        out.append(("identity", lambda hole: hole))
    if isinstance(ty, FTupleT):
        for i in range(len(ty.items)):
            if isinstance(ty.items[i], (FInt, FUnit)):
                out.append((f"proj{i}",
                            lambda hole, i=i: Proj(i, hole)))
    if isinstance(ty, FArrow) and type(ty) is FArrow:
        arg_tuples = list(values_of_arrow_args(ty, rng, budget))
        for k, args in enumerate(arg_tuples):
            out.append((f"apply#{k}",
                        lambda hole, args=args: App(hole, args)))
        if (len(arg_tuples) >= 2 and isinstance(ty.result, FInt)):
            first, second = arg_tuples[0], arg_tuples[1]
            out.append((
                "apply-twice",
                lambda hole: BinOp("+", App(hole, first),
                                   App(hole, second))))
        # Higher-order: hand the candidate to a consumer.
        consumer_ty = FArrow((ty,), ty.result if isinstance(
            ty.result, (FInt, FUnit)) else FInt())
        if isinstance(ty.result, FInt):
            for k, consumer in enumerate(
                    values_of(consumer_ty, rng, budget)):
                out.append((f"consume#{k}",
                            lambda hole, c=consumer: App(c, (hole,))))
        if include_cross_language and _t_callable(ty):
            for k, args in enumerate(arg_tuples[:3]):
                out.append((
                    f"t-apply#{k}",
                    lambda hole, args=args: t_application_context(
                        hole, ty, args)))
    return out


def _t_callable(ty: FArrow) -> bool:
    """Can the generic T application context drive this arrow?  It pushes
    arguments itself, so it handles any arity with int-observable result."""
    return isinstance(ty.result, FInt)


def t_application_context(hole: FExpr, ty: FArrow,
                          args: Tuple[FExpr, ...]) -> FExpr:
    """Observe ``hole`` *from assembly*.

    Builds the T component::

        import r1, nil TF[ty] hole;        // pull the candidate into T
        salloc 1; sst 0, r1;               // stash the code pointer
        import r1, <ty_T> :: nil TF[t_i] arg_i; salloc 1; sst 0, r1; ...
        sld r7, n; ...                     // recover the pointer
        mv ra, l_end; call r7 {nil, end{intT; nil}}

    and wraps it in an ``intFT`` boundary.  The candidate is thereby
    invoked through the T calling convention: arguments on the stack,
    continuation in ``ra`` -- a genuinely cross-language observation.
    """
    from repro.tal.syntax import HCode, Loc, RegFileTy, Sfree, Sld, WLoc

    ty_t = type_translation(ty)
    n = len(args)
    param_ts = tuple(type_translation(p) for p in ty.params)
    instrs: list = [
        Import("r1", NIL_STACK, ty, hole),
        Salloc(1),
        Sst(0, "r1"),
    ]
    stack_so_far: Tuple = (ty_t,)
    for i, (arg, arg_ty) in enumerate(zip(args, ty.params)):
        instrs.append(Import("r1", StackTy(stack_so_far, None), arg_ty, arg))
        instrs.append(Salloc(1))
        instrs.append(Sst(0, "r1"))
        stack_so_far = (param_ts[i],) + stack_so_far
    # Load the candidate pointer from under the arguments into r7.
    instrs.append(Sld("r7", n))
    result_t = TInt()
    marker = QEnd(result_t, NIL_STACK)
    # After the callee consumes its arguments the stack is the protected
    # tail: the stashed candidate pointer over nil; the continuation frees
    # it and halts.
    tail = StackTy((ty_t,), None)
    lend = Loc("lend_ctx")
    hend = HCode(
        (), RegFileTy.of(r1=result_t), tail, marker,
        seq(Sfree(1), Halt(result_t, NIL_STACK, "r1")))
    instrs.append(Mv("ra", WLoc(lend)))
    comp = Component(
        seq(*instrs, Call(RegOp("r7"), tail, marker)),
        ((lend, hend),))
    return Boundary(FInt(), comp)
"""Whole-program observations: the checker's ``O`` relation.

The paper's observation relation ``O`` says two configurations are related
when, with memories related at the current world, either both terminate or
both are still running after ``W.k`` steps.  Executable version: run each
program under a fuel budget and classify the outcome --

* ``halted`` with a canonicalized first-order value,
* ``diverged`` (fuel exhausted -- "still running after k steps"),
* ``stuck`` (a :class:`~repro.errors.MachineError`; never happens for
  well-typed programs, but the checker must classify it to be usable on
  candidate-buggy code).

Function values are canonicalized to an opaque token: contexts, not direct
inspection, are how functions are observed (biorthogonality).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

from repro.errors import FunTALError, MachineError, ResourceExhausted
from repro.f.syntax import FExpr, Fold, IntE, is_value, Lam, TupleE, UnitE
from repro.ft.machine import evaluate_ft

__all__ = ["Observation", "observe", "canonical_value"]

HALTED = "halted"
DIVERGED = "diverged"
STUCK = "stuck"


def canonical_value(v: FExpr) -> object:
    """A hashable, comparable image of an F value.

    Integers and unit map to themselves, tuples map pointwise, ``fold``
    is transparent (iso-recursion carries no runtime information), and
    functions map to the opaque token ``"<fn>"``.
    """
    if isinstance(v, IntE):
        return v.value
    if isinstance(v, UnitE):
        return ()
    if isinstance(v, TupleE):
        return tuple(canonical_value(x) for x in v.items)
    if isinstance(v, Fold):
        return ("fold", canonical_value(v.body))
    if isinstance(v, Lam):
        return "<fn>"
    from repro.ft.lump import LumpVal

    if isinstance(v, LumpVal):
        return "<lump>"
    raise MachineError(f"cannot canonicalize non-value {v}")


@dataclass(frozen=True)
class Observation:
    """The outcome of running one whole program."""

    kind: str
    value: Optional[object] = None
    detail: str = ""

    def __str__(self) -> str:
        if self.kind == HALTED:
            return f"halted({self.value!r})"
        return self.kind if not self.detail else f"{self.kind}: {self.detail}"

    def agrees_with(self, other: "Observation") -> bool:
        """The pointwise ``O`` check: same kind, and same value if halted."""
        if self.kind != other.kind:
            return False
        if self.kind == HALTED:
            return self.value == other.value
        return True


def observe(program: FExpr, fuel: int = 50_000) -> Observation:
    """Run a closed FT program to an observation."""
    try:
        value, _ = evaluate_ft(program, fuel=fuel)
    except ResourceExhausted:
        # Any tripped governor (fuel, heap cells, depth) reads as
        # divergence: the bounded observer could not tell the programs
        # apart within its budget.
        return Observation(DIVERGED)
    except FunTALError as err:
        return Observation(STUCK, detail=str(err))
    return Observation(HALTED, canonical_value(value))

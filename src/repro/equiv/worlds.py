"""Step-indexed worlds and the bounded value relation ``V[tau]``.

The paper's Kripke logical relation relates values under a world ``W``
whose step index ``k`` truncates the relation: nothing is claimed beyond
``k`` steps.  The executable counterpart here is literal about that
truncation:

* a :class:`World` carries the remaining step index and the fuel budget
  for observations;
* :func:`related_values` decides ``(W, v1, v2) in V[tau]``:

  - base types compare structurally (any ``k``),
  - tuples compare pointwise,
  - ``mu`` types unroll, *consuming a step index* (this is precisely how
    the paper avoids circularity at recursive types),
  - arrow types quantify over *sampled* related arguments in strictly
    future worlds and compare the resulting observations -- the
    given-related-inputs/related-outputs reading of the code-pointer
    relation (paper Fig 15), with the universal quantifier replaced by a
    finite probe set.

A ``True`` answer is evidence up to index ``k``; ``False`` comes with a
concrete distinguishing application and is a genuine refutation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Optional, Tuple

from repro.equiv.generators import values_of_arrow_args
from repro.equiv.observation import observe
from repro.f.syntax import (
    App, FArrow, FExpr, FInt, Fold, FRec, FTupleT, FType, FUnit, IntE,
    TupleE, UnitE,
)

__all__ = ["World", "related_values", "RelationFailure"]


@dataclass(frozen=True)
class World:
    """A (truncated) Kripke world: step index + observation fuel."""

    k: int = 3
    fuel: int = 50_000
    seed: int = 0

    def later(self) -> "World":
        """The strictly-future world (the paper's triangle operator)."""
        return replace(self, k=self.k - 1)


@dataclass(frozen=True)
class RelationFailure:
    """Why two values were found unrelated."""

    ty: str
    reason: str
    witness: str = ""

    def __str__(self) -> str:
        parts = [f"not related at {self.ty}: {self.reason}"]
        if self.witness:
            parts.append(f"witness: {self.witness}")
        return " | ".join(parts)


def related_values(world: World, v1: FExpr, v2: FExpr,
                   ty: FType) -> Optional[RelationFailure]:
    """``None`` when related up to ``world.k``; otherwise the failure."""
    if isinstance(ty, FInt):
        if isinstance(v1, IntE) and isinstance(v2, IntE) \
                and v1.value == v2.value:
            return None
        return RelationFailure(str(ty), f"{v1} vs {v2}")
    if isinstance(ty, FUnit):
        if isinstance(v1, UnitE) and isinstance(v2, UnitE):
            return None
        return RelationFailure(str(ty), f"{v1} vs {v2}")
    if isinstance(ty, FTupleT):
        if (not isinstance(v1, TupleE) or not isinstance(v2, TupleE)
                or len(v1.items) != len(ty.items)
                or len(v2.items) != len(ty.items)):
            return RelationFailure(str(ty), f"{v1} vs {v2}")
        for item1, item2, item_ty in zip(v1.items, v2.items, ty.items):
            failure = related_values(world, item1, item2, item_ty)
            if failure is not None:
                return failure
        return None
    if isinstance(ty, FRec):
        if world.k <= 0:
            return None  # related-by-truncation
        if not isinstance(v1, Fold) or not isinstance(v2, Fold):
            return RelationFailure(str(ty), f"{v1} vs {v2}")
        return related_values(world.later(), v1.body, v2.body, ty.unroll())
    if isinstance(ty, FArrow) and type(ty) is FArrow:
        if world.k <= 0:
            return None
        rng = random.Random(world.seed)
        for args in values_of_arrow_args(ty, rng, budget=1):
            obs1 = observe(App(v1, args), fuel=world.fuel)
            obs2 = observe(App(v2, args), fuel=world.fuel)
            if not obs1.agrees_with(obs2):
                witness = ", ".join(str(a) for a in args)
                return RelationFailure(
                    str(ty), f"{obs1} vs {obs2}", witness=f"args: {witness}")
            # Structural recursion on halted results at the result type,
            # in the later world, when results are themselves values we
            # can re-relate (first-order results already compared above).
        return None
    return RelationFailure(str(ty), "no decidable relation at this type")

"""Typed value generation for the equivalence checker.

``values_of(ty, rng, budget)`` yields closed F values of an FT type,
mixing a deterministic corpus (boundary cases the paper's examples hinge
on: 0, 1, negatives) with seeded random values.  Arrow-typed values are
generated as *probe functions* whose results encode their arguments, so a
context that treats two candidate functions differently is likely to
surface it:

* constant functions,
* argument-echoing / affine functions over int arguments,
* higher-order probes that call their functional arguments and combine the
  results.

Everything is plain F, hence memory-free and safe to reuse across runs.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional

from repro.f.syntax import (
    App, BinOp, FArrow, FExpr, FInt, Fold, FRec, FTupleT, FType, FUnit,
    If0, IntE, Lam, TupleE, UnitE, Var,
)

__all__ = ["values_of", "int_corpus", "probe_functions"]

#: Deterministic integer corpus covering the paper-relevant boundaries.
INT_CORPUS = (0, 1, 2, 5, -1, 7, 10, -3)


def int_corpus(rng: Optional[random.Random] = None,
               extra: int = 4) -> List[int]:
    """The fixed corpus plus ``extra`` seeded random integers."""
    values = list(INT_CORPUS)
    if rng is not None:
        values.extend(rng.randint(-50, 50) for _ in range(extra))
    return values


_probe_counter = [0]


def _fresh(base: str) -> str:
    _probe_counter[0] += 1
    return f"{base}_{_probe_counter[0]}"


def probe_functions(ty: FArrow, rng: random.Random,
                    budget: int) -> Iterator[Lam]:
    """Generate probe functions of arrow type ``ty``."""
    params = tuple((_fresh("p"), t) for t in ty.params)
    result = ty.result
    # 1. constants
    for const in _result_constants(result, rng, budget):
        yield Lam(params, const)
    if budget <= 0:
        return
    # 2. argument-sensitive bodies
    int_args = [Var(x) for x, t in params if isinstance(t, FInt)]
    fn_args = [(Var(x), t) for x, t in params if isinstance(t, FArrow)]
    if isinstance(result, FInt):
        if int_args:
            body: FExpr = int_args[0]
            for extra in int_args[1:]:
                body = BinOp("+", body, extra)
            yield Lam(params, body)
            coeff = rng.randint(2, 9)
            yield Lam(params, BinOp("*", int_args[0], IntE(coeff)))
            yield Lam(params, If0Chain(int_args[0]))
        for fn_var, fn_ty in fn_args:
            # call the functional argument with generated inputs and
            # combine, so candidates are *applied* by the probe.
            inner = list(values_of_arrow_args(fn_ty, rng, budget - 1))
            if inner and isinstance(fn_ty.result, FInt):
                first = App(fn_var, inner[0])
                body = first
                if len(inner) > 1:
                    body = BinOp("+", first, App(fn_var, inner[1]))
                yield Lam(params, body)


def If0Chain(scrutinee: FExpr) -> FExpr:
    """``if0 x 100 (x - 1)`` -- a branching probe body."""
    return If0(scrutinee, IntE(100), BinOp("-", scrutinee, IntE(1)))


def values_of_arrow_args(ty: FArrow, rng: random.Random,
                         budget: int) -> Iterator[tuple]:
    """Argument tuples for applying a function of type ``ty``."""
    pools = [list(values_of(p, rng, budget)) for p in ty.params]
    if any(not pool for pool in pools):
        return
    count = max(len(pool) for pool in pools)
    for i in range(count):
        yield tuple(pool[i % len(pool)] for pool in pools)


def _result_constants(ty: FType, rng: random.Random,
                      budget: int) -> Iterator[FExpr]:
    produced = 0
    for v in values_of(ty, rng, budget - 1):
        yield v
        produced += 1
        if produced >= 3:
            return


def values_of(ty: FType, rng: Optional[random.Random] = None,
              budget: int = 2) -> Iterator[FExpr]:
    """Yield closed values of ``ty`` (finitely many, corpus + seeded)."""
    rng = rng or random.Random(0)
    if isinstance(ty, FInt):
        for n in int_corpus(rng, extra=2):
            yield IntE(n)
        return
    if isinstance(ty, FUnit):
        yield UnitE()
        return
    if isinstance(ty, FTupleT):
        pools = [list(values_of(t, rng, budget - 1)) for t in ty.items]
        if any(not pool for pool in pools):
            return
        count = min(4, max(len(p) for p in pools))
        for i in range(count):
            yield TupleE(tuple(p[i % len(p)] for p in pools))
        return
    if isinstance(ty, FRec):
        if budget <= 0:
            return
        for inner in values_of(ty.unroll(), rng, budget - 1):
            yield Fold(ty, inner)
            return  # one representative is enough per level
        return
    if isinstance(ty, FArrow) and type(ty) is FArrow:
        if budget <= 0:
            return
        yield from probe_functions(ty, rng, budget)
        return
    # Stack-modifying arrows and unknown forms: no generic generator.
    return

"""Process-wide caching and interning primitives.

This module is dependency-neutral (it imports only :mod:`repro.obs`,
which imports nothing else from the package), so *any* layer -- syntax
nodes, the TAL substitution engine, the JIT, the serve result cache --
can use it without creating an import cycle.

Three pieces:

* :class:`LRUCache` -- a small, thread-safe, generic LRU with hit/miss/
  eviction accounting and optional :mod:`repro.obs` counter mirroring
  (``<prefix>.hit`` / ``.miss`` / ``.eviction``).  Moved here from
  :mod:`repro.serve.cache`, which re-exports it for compatibility; it
  also backs the JIT compile cache and the TAL substitution caches.
* :class:`PicklableSlots` -- a mixin giving frozen ``slots=True``
  dataclasses a portable ``__reduce__``.  Python only generates the
  ``__getstate__``/``__setstate__`` pair that makes frozen+slots
  dataclasses picklable from 3.11 on; reducing to
  ``(cls, field-values)`` works uniformly on every supported version
  and round-trips through the class constructor (so ``__post_init__``
  revalidation runs on load).
* :class:`InternTable` -- a bounded hash-cons table: structurally equal
  nodes collapse to one canonical instance, so downstream equality
  checks hit their ``a is b`` fast path.  First instance wins; the
  table never evicts (types are small and programs mint finitely many),
  it just stops admitting new entries at ``maxsize``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Hashable, Optional

from repro.obs.events import OBS

__all__ = ["LRUCache", "PicklableSlots", "InternTable", "intern_singleton"]


def intern_singleton(cls):
    """Class decorator: collapse a field-less frozen node to one shared
    instance.  ``cls()`` -- including the constructor call pickling emits
    via :class:`PicklableSlots` -- always returns the same object, so
    identity comparison is a complete equality check for these types.
    Apply *above* ``@dataclass`` (``slots=True`` replaces the class, so
    the singleton must be minted from the final class object).
    """
    inst = cls()

    def __new__(_cls):
        return inst

    cls.__new__ = __new__
    return cls


class LRUCache:
    """Bounded least-recently-used mapping with hit/miss accounting.

    ``metric_prefix`` mirrors the accounting into the process-wide
    metrics registry (``<prefix>.hit`` / ``.miss`` / ``.eviction``) when
    instrumentation is enabled, so cache behaviour shows up in
    ``funtal stats`` alongside machine steps and boundary crossings.
    """

    def __init__(self, maxsize: int = 1024,
                 metric_prefix: Optional[str] = None):
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = maxsize
        self.metric_prefix = metric_prefix
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _count(self, outcome: str) -> None:
        if self.metric_prefix and OBS.enabled:
            OBS.metrics.inc(f"{self.metric_prefix}.{outcome}")

    def get(self, key: Hashable, default: Any = None) -> Any:
        with self._lock:
            try:
                value = self._data[key]
            except KeyError:
                self.misses += 1
                hit = False
            else:
                self._data.move_to_end(key)
                self.hits += 1
                hit = True
        self._count("hit" if hit else "miss")
        return value if hit else default

    def put(self, key: Hashable, value: Any) -> None:
        evicted = False
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = value
            if len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self.evictions += 1
                evicted = True
        if evicted:
            self._count("eviction")

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._data

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "size": len(self._data),
                "maxsize": self.maxsize,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }


class PicklableSlots:
    """Mixin: portable pickling for frozen ``slots=True`` dataclasses.

    Reduces an instance to ``(class, tuple-of-field-values)`` in field
    order, which matches the generated ``__init__`` signature.  Classes
    whose ``__post_init__`` canonicalizes fields (sorting, tupling) are
    safe: canonicalization is idempotent, so re-running it on load is a
    no-op.
    """

    __slots__ = ()

    def __reduce__(self):
        cls = type(self)
        return (cls, tuple(getattr(self, name)
                           for name in cls.__dataclass_fields__))


class InternTable:
    """A bounded hash-cons table for immutable, hashable nodes.

    ``canon(node)`` returns the first structurally-equal node ever
    admitted, so repeated construction of the same type collapses to one
    instance and identity comparison becomes a valid fast path for
    structural equality.  Admission stops (but lookups keep working) once
    ``maxsize`` distinct nodes are held -- interning is an optimization,
    never a requirement.
    """

    def __init__(self, maxsize: int = 8192):
        self.maxsize = maxsize
        self._table: Dict[Any, Any] = {}

    def canon(self, node: Any) -> Any:
        cached = self._table.get(node)
        if cached is not None:
            return cached
        if len(self._table) < self.maxsize:
            self._table[node] = node
        return node

    def __len__(self) -> int:
        return len(self._table)

    def clear(self) -> None:
        self._table.clear()

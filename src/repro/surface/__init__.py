"""Concrete syntax for FunTAL programs.

The paper's artifact shipped an in-browser typechecker/stepper with a
textual syntax; this package is the reproduction's equivalent:

* :mod:`repro.surface.lexer` -- tokenizer;
* :mod:`repro.surface.parser` -- recursive-descent parser for F types and
  expressions, T types/operands/instructions/components, and the FT
  boundary forms;
* :mod:`repro.surface.pretty` -- the pretty-printer (the AST ``__str__``
  methods emit this syntax; parser round-trip is tested).

Grammar notes (documented in README): stack typings are
``t :: t :: z | nil``; code types are ``forall[a, zeta z, eps e].{r1: t,
...; sigma} q``; in a type-instantiation ``u[omega, ...]`` a *bare*
identifier is resolved by spelling -- names starting with ``z`` are stack
variables, names starting with ``e`` are return-marker variables, anything
else is a type variable (binder lists always carry explicit ``zeta``/
``eps`` sigils, so this convention only governs instantiation sites).
"""

from repro.surface.parser import (  # noqa: F401
    parse_fexpr, parse_ftype, parse_component, parse_ttype, parse_program,
)
from repro.surface.pretty import pretty  # noqa: F401

"""Recursive-descent parser for the FunTAL surface syntax.

The grammar is exactly what the AST ``__str__`` methods print (round-trip
tested), modelled on the paper's notation:

F types        ``int``, ``unit``, ``a``, ``mu a. t``, ``<t, t>``,
               ``(t, t) -> t``, ``(t) [phi; phi] -> t``
F expressions  ``x``, ``()``, ``42``, ``(e + e)``, ``if0 e {e} {e}``,
               ``lam (x: t). e``, ``lam[phi; phi] (x: t). e``,
               ``(f) (a) (b)``, ``fold[t] (e)``, ``unfold (e)``,
               ``<e, e>``, ``pi0(e)``, ``FT[t](I, H)``
T types        ``int``, ``unit``, ``a``, ``exists a. t``, ``mu a. t``,
               ``ref <t>``, ``box <t>``,
               ``box forall[a, zeta z, eps e].{r1: t; sigma} q``
stack typings  ``t :: t :: z`` / ``... :: nil`` / ``z`` / ``nil``
return markers ``r1``..``ra``, ``3``, ``e``, ``end{t; sigma}``, ``out``
operands       ``()``, ``7``, a label, a register,
               ``pack <t, u> as t``, ``fold[t] u``, ``u[omega, ...]``
instructions   as printed by :mod:`repro.tal.syntax` (``mv r1, 42`` ...),
               plus ``protect <phi>, z`` and
               ``import r1, sigma TF[t] (e)``
components     ``(I, .)`` or ``(I, {lab -> h; lab -> h})``

Instruction sequences are self-delimiting (they end at their ``jmp`` /
``call`` / ``ret`` / ``halt``), so no extra brackets are needed anywhere.

Disambiguation of a *bare identifier* in an instantiation ``u[omega]``:
names starting with ``z`` parse as stack variables, names starting with
``e`` as return-marker variables, all others as type variables.  Binder
lists always carry explicit ``zeta``/``eps`` sigils, so the convention
only applies at instantiation sites (see the package docstring).
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.errors import ParseError
from repro.f.syntax import (
    App, BinOp, FArrow, FExpr, FInt, Fold as FFold, FRec, FTupleT, FType,
    FTVar, FUnit, If0, IntE, Lam, Proj, TupleE, Unfold as FUnfold, UnitE,
    Var,
)
from repro.ft.syntax import (
    Boundary, FStackArrow, Import, Protect, StackDelta, StackLam,
)
from repro.surface.lexer import Token, tokenize
from repro.tal.syntax import (
    Aop, Balloc, Bnz, Call, CodeType, Component, DeltaBind, Fold as TFold,
    Halt, HCode, HeapValue, HTuple, InstrSeq, Instruction, Jmp, KIND_ALPHA,
    KIND_EPS, KIND_FALPHA, KIND_ZETA, Ld, Loc, Mv, NIL_STACK, Operand,
    Pack, QEnd, QEps, QIdx, QOut, QReg, Ralloc, RegFileTy, RegOp, Ret,
    RetMarker, Salloc, Sfree, Sld, Sst, St, StackTy, TalType, TBox,
    Terminator, TExists, TInt, TRec, TRef, TupleTy, TUnit, TVar, TyApp,
    UnfoldI, Unpack, WInt, WLoc, WordValue, WUnit,
)

__all__ = [
    "parse_fexpr", "parse_ftype", "parse_ttype", "parse_component",
    "parse_instr_seq", "parse_program", "Parser",
]

_PROJ_RE = re.compile(r"^pi(\d+)$")

_TERMINATOR_KEYWORDS = ("jmp", "call", "ret", "halt")
_INSTR_KEYWORDS = (
    "add", "sub", "mul", "bnz", "ld", "st", "ralloc", "balloc", "mv",
    "salloc", "sfree", "sld", "sst", "unpack", "unfold", "protect",
    "import",
)


class Parser:
    """A token cursor with the mutually recursive grammar productions."""

    def __init__(self, source: str):
        self.tokens = tokenize(source)
        self.pos = 0

    # -- cursor helpers -------------------------------------------------

    @property
    def cur(self) -> Token:
        return self.tokens[self.pos]

    def peek(self, offset: int = 1) -> Token:
        i = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[i]

    def advance(self) -> Token:
        tok = self.cur
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def at(self, kind: str, text: Optional[str] = None) -> bool:
        tok = self.cur
        return tok.kind == kind and (text is None or tok.text == text)

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        if self.at(kind, text):
            return self.advance()
        return None

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        if not self.at(kind, text):
            want = text if text is not None else kind
            raise ParseError(
                f"expected {want!r}, found {self.cur.text!r}",
                self.cur.line, self.cur.column)
        return self.advance()

    def fail(self, message: str):
        raise ParseError(message, self.cur.line, self.cur.column)

    def expect_eof(self) -> None:
        if not self.at("eof"):
            self.fail(f"trailing input starting at {self.cur.text!r}")

    # -- F types ----------------------------------------------------------

    def ftype(self) -> FType:
        if self.accept("keyword", "unit"):
            return FUnit()
        if self.accept("keyword", "int"):
            return FInt()
        if self.accept("keyword", "mu"):
            var = self.expect("ident").text
            self.expect("punct", ".")
            return FRec(var, self.ftype())
        if self.accept("punct", "<"):
            items = self._comma_list(self.ftype, closer=">")
            self.expect("punct", ">")
            return FTupleT(tuple(items))
        if self.accept("punct", "("):
            params = self._comma_list(self.ftype, closer=")")
            self.expect("punct", ")")
            if self.accept("punct", "["):
                phi_in = self._comma_list(self.ttype, closer=";")
                self.expect("punct", ";")
                phi_out = self._comma_list(self.ttype, closer="]")
                self.expect("punct", "]")
                self.expect("punct", "->")
                return FStackArrow(tuple(params), self.ftype(),
                                   tuple(phi_in), tuple(phi_out))
            self.expect("punct", "->")
            return FArrow(tuple(params), self.ftype())
        if self.at("keyword", "L") or (self.at("ident")
                                       and self.cur.text == "L"
                                       and self.peek().text == "<"):
            self.advance()
            self.expect("punct", "<")
            items = self._comma_list(self.ttype, closer=">")
            self.expect("punct", ">")
            from repro.ft.lump import FLump

            return FLump(tuple(items))
        if self.at("ident"):
            return FTVar(self.advance().text)
        self.fail(f"expected an F type, found {self.cur.text!r}")

    # -- T types ----------------------------------------------------------

    def ttype(self) -> TalType:
        if self.accept("keyword", "unit"):
            return TUnit()
        if self.accept("keyword", "int"):
            return TInt()
        if self.accept("keyword", "exists"):
            var = self.expect("ident").text
            self.expect("punct", ".")
            return TExists(var, self.ttype())
        if self.accept("keyword", "mu"):
            var = self.expect("ident").text
            self.expect("punct", ".")
            return TRec(var, self.ttype())
        if self.accept("keyword", "ref"):
            self.expect("punct", "<")
            items = self._comma_list(self.ttype, closer=">")
            self.expect("punct", ">")
            return TRef(tuple(items))
        if self.accept("keyword", "box"):
            return TBox(self.heap_val_type())
        if self.at("ident"):
            return TVar(self.advance().text)
        self.fail(f"expected a T type, found {self.cur.text!r}")

    def heap_val_type(self):
        if self.accept("punct", "<"):
            items = self._comma_list(self.ttype, closer=">")
            self.expect("punct", ">")
            return TupleTy(tuple(items))
        if self.accept("keyword", "forall"):
            self.expect("punct", "[")
            delta = self._delta_bindings()
            self.expect("punct", "]")
            self.expect("punct", ".")
            self.expect("punct", "{")
            chi = self._regfile()
            self.expect("punct", ";")
            sigma = self.stack_ty()
            self.expect("punct", "}")
            q = self.ret_marker()
            return CodeType(tuple(delta), chi, sigma, q)
        self.fail(f"expected a heap-value type, found {self.cur.text!r}")

    def _delta_bindings(self) -> List[DeltaBind]:
        out: List[DeltaBind] = []
        while not self.at("punct", "]"):
            if self.accept("keyword", "zeta"):
                out.append(DeltaBind(KIND_ZETA, self.expect("ident").text))
            elif self.accept("keyword", "eps"):
                out.append(DeltaBind(KIND_EPS, self.expect("ident").text))
            elif self.accept("keyword", "F"):
                out.append(DeltaBind(KIND_FALPHA, self.expect("ident").text))
            else:
                out.append(DeltaBind(KIND_ALPHA, self.expect("ident").text))
            if not self.accept("punct", ","):
                break
        return out

    def _regfile(self) -> RegFileTy:
        if self.accept("punct", "."):
            return RegFileTy()
        entries: List[Tuple[str, TalType]] = []
        while True:
            reg = self.expect("register").text
            self.expect("punct", ":")
            entries.append((reg, self.ttype()))
            if not self.accept("punct", ","):
                break
        return RegFileTy(tuple(entries))

    def stack_ty(self) -> StackTy:
        prefix: List[TalType] = []
        while True:
            if self.accept("keyword", "nil"):
                return StackTy(tuple(prefix), None)
            # A bare identifier not followed by '::' is the tail variable.
            if self.at("ident") and not self._ident_starts_type_operator():
                tail = self.advance().text
                return StackTy(tuple(prefix), tail)
            prefix.append(self.ttype())
            self.expect("punct", "::")

    def _ident_starts_type_operator(self) -> bool:
        """Is the current identifier a *type* (continued by ``::``) rather
        than the stack tail?"""
        return self.peek().kind == "punct" and self.peek().text == "::"

    def ret_marker(self) -> RetMarker:
        if self.at("register"):
            return QReg(self.advance().text)
        if self.at("int"):
            return QIdx(int(self.advance().text))
        if self.accept("keyword", "out"):
            return QOut()
        if self.accept("keyword", "end"):
            self.expect("punct", "{")
            ty = self.ttype()
            self.expect("punct", ";")
            sigma = self.stack_ty()
            self.expect("punct", "}")
            return QEnd(ty, sigma)
        if self.at("ident"):
            return QEps(self.advance().text)
        self.fail(f"expected a return marker, found {self.cur.text!r}")

    def omega(self):
        """One instantiation: a marker, a stack typing, or a value type."""
        if self.at("register") or self.at("int") \
                or self.at("keyword", "end") or self.at("keyword", "out"):
            return self.ret_marker()
        if self.at("keyword", "nil"):
            return self.stack_ty()
        if self.at("ident"):
            name = self.cur.text
            if self.peek().text == "::":
                return self.stack_ty()
            if name.startswith("z"):
                self.advance()
                return StackTy((), name)
            if name.startswith("e"):
                self.advance()
                return QEps(name)
            return self.ttype()
        ty = self.ttype()
        if self.at("punct", "::"):
            self.expect("punct", "::")
            rest = self.stack_ty()
            return rest.cons(ty)
        return ty

    # -- T operands -------------------------------------------------------

    def operand(self) -> Operand:
        u = self._operand_atom()
        while self.at("punct", "["):
            self.advance()
            insts = self._comma_list(self.omega, closer="]")
            self.expect("punct", "]")
            u = TyApp(u, tuple(insts))
        return u

    def _operand_atom(self) -> Operand:
        if self.at("punct", "(") and self.peek().text == ")":
            self.advance()
            self.advance()
            return WUnit()
        if self.at("int"):
            return WInt(int(self.advance().text))
        if self.at("punct", "-") and self.peek().kind == "int":
            self.advance()
            return WInt(-int(self.advance().text))
        if self.at("register"):
            return RegOp(self.advance().text)
        if self.accept("keyword", "pack"):
            self.expect("punct", "<")
            hidden = self.ttype()
            self.expect("punct", ",")
            body = self.operand()
            self.expect("punct", ">")
            self.expect("keyword", "as")
            return Pack(hidden, body, self.ttype())
        if self.accept("keyword", "fold"):
            self.expect("punct", "[")
            ty = self.ttype()
            self.expect("punct", "]")
            return TFold(ty, self.operand())
        if self.at("ident"):
            return WLoc(Loc(self.advance().text))
        self.fail(f"expected an operand, found {self.cur.text!r}")

    # -- T instructions and sequences --------------------------------------

    def instr_seq(self) -> InstrSeq:
        instrs: List[Instruction] = []
        while True:
            if self.cur.kind == "keyword" and \
                    self.cur.text in _TERMINATOR_KEYWORDS:
                return InstrSeq(tuple(instrs), self.terminator())
            instrs.append(self.instruction())
            self.expect("punct", ";")

    def instruction(self) -> Instruction:
        tok = self.cur
        if tok.kind != "keyword":
            self.fail(f"expected an instruction, found {tok.text!r}")
        name = tok.text
        if name in ("add", "sub", "mul"):
            self.advance()
            rd = self.expect("register").text
            self.expect("punct", ",")
            rs = self.expect("register").text
            self.expect("punct", ",")
            return Aop(name, rd, rs, self.operand())
        if name == "bnz":
            self.advance()
            r = self.expect("register").text
            self.expect("punct", ",")
            return Bnz(r, self.operand())
        if name == "ld":
            self.advance()
            rd = self.expect("register").text
            self.expect("punct", ",")
            rs = self.expect("register").text
            self.expect("punct", "[")
            i = int(self.expect("int").text)
            self.expect("punct", "]")
            return Ld(rd, rs, i)
        if name == "st":
            self.advance()
            rd = self.expect("register").text
            self.expect("punct", "[")
            i = int(self.expect("int").text)
            self.expect("punct", "]")
            self.expect("punct", ",")
            rs = self.expect("register").text
            return St(rd, i, rs)
        if name in ("ralloc", "balloc"):
            self.advance()
            rd = self.expect("register").text
            self.expect("punct", ",")
            n = int(self.expect("int").text)
            return (Ralloc if name == "ralloc" else Balloc)(rd, n)
        if name == "mv":
            self.advance()
            rd = self.expect("register").text
            self.expect("punct", ",")
            return Mv(rd, self.operand())
        if name in ("salloc", "sfree"):
            self.advance()
            n = int(self.expect("int").text)
            return (Salloc if name == "salloc" else Sfree)(n)
        if name == "sld":
            self.advance()
            rd = self.expect("register").text
            self.expect("punct", ",")
            return Sld(rd, int(self.expect("int").text))
        if name == "sst":
            self.advance()
            i = int(self.expect("int").text)
            self.expect("punct", ",")
            return Sst(i, self.expect("register").text)
        if name == "unpack":
            self.advance()
            self.expect("punct", "<")
            alpha = self.expect("ident").text
            self.expect("punct", ",")
            rd = self.expect("register").text
            self.expect("punct", ">")
            return Unpack(alpha, rd, self.operand())
        if name == "unfold":
            self.advance()
            rd = self.expect("register").text
            self.expect("punct", ",")
            return UnfoldI(rd, self.operand())
        if name == "protect":
            self.advance()
            self.expect("punct", "<")
            phi = self._comma_list(self.ttype, closer=">")
            self.expect("punct", ">")
            self.expect("punct", ",")
            return Protect(tuple(phi), self.expect("ident").text)
        if name == "import":
            self.advance()
            rd = self.expect("register").text
            self.expect("punct", ",")
            sigma = self.stack_ty()
            self.expect("keyword", "TF")
            self.expect("punct", "[")
            ty = self.ftype()
            self.expect("punct", "]")
            self.expect("punct", "(")
            expr = self.fexpr()
            self.expect("punct", ")")
            return Import(rd, sigma, ty, expr)
        self.fail(f"unknown instruction {name!r}")

    def terminator(self) -> Terminator:
        if self.accept("keyword", "jmp"):
            return Jmp(self.operand())
        if self.accept("keyword", "call"):
            u = self.operand()
            self.expect("punct", "{")
            sigma = self.stack_ty()
            self.expect("punct", ",")
            q = self.ret_marker()
            self.expect("punct", "}")
            return Call(u, sigma, q)
        if self.accept("keyword", "ret"):
            r = self.expect("register").text
            self.expect("punct", "{")
            rr = self.expect("register").text
            self.expect("punct", "}")
            return Ret(r, rr)
        if self.accept("keyword", "halt"):
            ty = self.ttype()
            self.expect("punct", ",")
            sigma = self.stack_ty()
            self.expect("punct", "{")
            r = self.expect("register").text
            self.expect("punct", "}")
            return Halt(ty, sigma, r)
        self.fail(f"expected a terminator, found {self.cur.text!r}")

    # -- components and heap values ----------------------------------------

    def component(self) -> Component:
        self.expect("punct", "(")
        instrs = self.instr_seq()
        self.expect("punct", ",")
        heap: List[Tuple[Loc, HeapValue]] = []
        if self.accept("punct", "."):
            pass
        else:
            self.expect("punct", "{")
            while not self.at("punct", "}"):
                label = self.expect("ident").text
                self.expect("punct", "->")
                heap.append((Loc(label), self.heap_value()))
                if not self.accept("punct", ";"):
                    break
            self.expect("punct", "}")
        self.expect("punct", ")")
        return Component(instrs, tuple(heap))

    def heap_value(self) -> HeapValue:
        if self.accept("keyword", "code"):
            self.expect("punct", "[")
            delta = self._delta_bindings()
            self.expect("punct", "]")
            self.expect("punct", "{")
            chi = self._regfile()
            self.expect("punct", ";")
            sigma = self.stack_ty()
            self.expect("punct", "}")
            q = self.ret_marker()
            self.expect("punct", ".")
            return HCode(tuple(delta), chi, sigma, q, self.instr_seq())
        if self.accept("punct", "<"):
            words = []
            if not self.at("punct", ">"):
                while True:
                    w = self.operand()
                    words.append(w)
                    if not self.accept("punct", ","):
                        break
            self.expect("punct", ">")
            return HTuple(tuple(words))
        self.fail(f"expected a heap value, found {self.cur.text!r}")

    # -- F expressions -------------------------------------------------------

    def fexpr(self) -> FExpr:
        # additive level (+, -) over a multiplicative level (*), both
        # left-associative; printed terms are always parenthesized, so
        # precedence only matters for hand-written programs.
        left = self._mul_expr()
        while self.cur.kind == "punct" and self.cur.text in ("+", "-"):
            op = self.advance().text
            right = self._mul_expr()
            left = BinOp(op, left, right)
        return left

    def _mul_expr(self) -> FExpr:
        left = self._application()
        while self.at("punct", "*"):
            self.advance()
            right = self._application()
            left = BinOp("*", left, right)
        return left

    def _application(self) -> FExpr:
        head = self._primary()
        args: List[FExpr] = []
        while self._starts_primary():
            args.append(self._primary())
        if args:
            return App(head, tuple(args))
        return head

    def _starts_primary(self) -> bool:
        tok = self.cur
        if tok.kind in ("int", "ident"):
            return True
        if tok.kind == "punct" and tok.text in ("(", "<"):
            return True
        if tok.kind == "keyword" and tok.text in (
                "lam", "if0", "fold", "unfold", "FT"):
            return True
        return False

    def _primary(self) -> FExpr:
        tok = self.cur
        if tok.kind == "int":
            self.advance()
            return IntE(int(tok.text))
        if self.at("punct", "-") and self.peek().kind == "int":
            self.advance()
            return IntE(-int(self.advance().text))
        if tok.kind == "ident":
            m = _PROJ_RE.match(tok.text)
            if m and self.peek().text == "(":
                self.advance()
                self.expect("punct", "(")
                body = self.fexpr()
                self.expect("punct", ")")
                return Proj(int(m.group(1)), body)
            self.advance()
            return Var(tok.text)
        if self.at("punct", "("):
            if self.peek().text == ")":
                self.advance()
                self.advance()
                return UnitE()
            self.advance()
            inner = self.fexpr()
            self.expect("punct", ")")
            return inner
        if self.at("punct", "<"):
            self.advance()
            items = self._comma_list(self.fexpr, closer=">")
            self.expect("punct", ">")
            return TupleE(tuple(items))
        if self.accept("keyword", "if0"):
            cond = self.fexpr()
            self.expect("punct", "{")
            then = self.fexpr()
            self.expect("punct", "}")
            self.expect("punct", "{")
            els = self.fexpr()
            self.expect("punct", "}")
            return If0(cond, then, els)
        if self.accept("keyword", "lam"):
            phi_in = phi_out = None
            if self.accept("punct", "["):
                phi_in = self._comma_list(self.ttype, closer=";")
                self.expect("punct", ";")
                phi_out = self._comma_list(self.ttype, closer="]")
                self.expect("punct", "]")
            self.expect("punct", "(")
            params: List[Tuple[str, FType]] = []
            while not self.at("punct", ")"):
                x = self.expect("ident").text
                self.expect("punct", ":")
                params.append((x, self.ftype()))
                if not self.accept("punct", ","):
                    break
            self.expect("punct", ")")
            self.expect("punct", ".")
            body = self.fexpr()
            if phi_in is None:
                return Lam(tuple(params), body)
            return StackLam(tuple(params), body,
                            tuple(phi_in), tuple(phi_out or ()))
        if self.accept("keyword", "fold"):
            self.expect("punct", "[")
            ann = self.ftype()
            self.expect("punct", "]")
            self.expect("punct", "(")
            body = self.fexpr()
            self.expect("punct", ")")
            return FFold(ann, body)
        if self.accept("keyword", "unfold"):
            self.expect("punct", "(")
            body = self.fexpr()
            self.expect("punct", ")")
            return FUnfold(body)
        if self.accept("keyword", "FT"):
            self.expect("punct", "[")
            ty = self.ftype()
            delta = StackDelta()
            if self.accept("punct", ";"):
                neg = bool(self.accept("punct", "-"))
                pops = int(self.expect("int").text)
                if not neg and pops:
                    self.fail("boundary pop count must be written -n")
                self.expect("punct", ";")
                self.expect("punct", "<")
                pushes = self._comma_list(self.ttype, closer=">")
                self.expect("punct", ">")
                delta = StackDelta(pops, tuple(pushes))
            self.expect("punct", "]")
            return Boundary(ty, self.component(), delta)
        self.fail(f"expected an expression, found {tok.text!r}")

    # -- generic helpers ------------------------------------------------------

    def _comma_list(self, production, closer: str) -> List:
        items: List = []
        if self.at("punct", closer):
            return items
        while True:
            items.append(production())
            if not self.accept("punct", ","):
                return items


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------

def parse_fexpr(source: str) -> FExpr:
    """Parse a complete F(T) expression."""
    p = Parser(source)
    e = p.fexpr()
    p.expect_eof()
    return e


def parse_ftype(source: str) -> FType:
    p = Parser(source)
    ty = p.ftype()
    p.expect_eof()
    return ty


def parse_ttype(source: str) -> TalType:
    p = Parser(source)
    ty = p.ttype()
    p.expect_eof()
    return ty


def parse_component(source: str) -> Component:
    p = Parser(source)
    comp = p.component()
    p.expect_eof()
    return comp


def parse_instr_seq(source: str) -> InstrSeq:
    p = Parser(source)
    iseq = p.instr_seq()
    p.expect_eof()
    return iseq


def parse_program(source: str):
    """Parse a whole program: an F expression, or a bare T component.

    T components open with ``(`` followed by an instruction keyword, which
    no F expression does; everything else parses as F.
    """
    probe = Parser(source)
    if probe.at("punct", "(") and probe.peek().kind == "keyword" and \
            probe.peek().text in _INSTR_KEYWORDS + _TERMINATOR_KEYWORDS:
        return parse_component(source)
    return parse_fexpr(source)

"""Tokenizer for the FunTAL surface syntax.

Line comments start with ``--`` (Haskell-style) or ``//`` and run to end of
line.  Tokens carry line/column for error reporting.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, List

from repro.errors import ParseError

__all__ = ["Token", "tokenize", "KEYWORDS", "REGISTERS"]

#: Reserved words of the surface language.
KEYWORDS = frozenset({
    "unit", "int", "exists", "mu", "ref", "box", "forall", "code", "nil",
    "end", "out", "zeta", "eps", "F", "lam", "if0", "fold", "unfold",
    "pack", "as", "jmp", "call", "ret", "halt", "add", "sub", "mul", "bnz",
    "ld", "st", "ralloc", "balloc", "mv", "salloc", "sfree", "sld", "sst",
    "unpack", "protect", "import", "FT", "TF",
})

REGISTERS = frozenset({"r1", "r2", "r3", "r4", "r5", "r6", "r7", "ra"})

_TOKEN_RE = re.compile(r"""
    (?P<ws>\s+)
  | (?P<comment>(--|//)[^\n]*)
  | (?P<int>\d+)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_']*)
  | (?P<punct>::|->|[()\[\]{}<>,;:.*+\-=])
""", re.VERBOSE)


@dataclass(frozen=True)
class Token:
    kind: str       # 'int' | 'ident' | 'keyword' | 'register' | 'punct' | 'eof'
    text: str
    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.text!r}@{self.line}:{self.column}"


def tokenize(source: str) -> List[Token]:
    """Tokenize ``source``; raises :class:`ParseError` on bad characters."""
    tokens: List[Token] = []
    line, col = 1, 1
    pos = 0
    n = len(source)
    while pos < n:
        m = _TOKEN_RE.match(source, pos)
        if m is None:
            raise ParseError(f"unexpected character {source[pos]!r}",
                             line, col)
        text = m.group(0)
        kind = m.lastgroup
        if kind not in ("ws", "comment"):
            if kind == "ident":
                if text in REGISTERS:
                    kind = "register"
                elif text in KEYWORDS:
                    kind = "keyword"
            tokens.append(Token(kind, text, line, col))
        newlines = text.count("\n")
        if newlines:
            line += newlines
            col = len(text) - text.rfind("\n")
        else:
            col += len(text)
        pos = m.end()
    tokens.append(Token("eof", "", line, col))
    return tokens

"""Pretty-printing helpers.

Every AST node already renders itself via ``str()`` in the surface syntax
(the parser round-trips it); this module adds human-oriented multi-line
layouts for components and heap fragments, used by the CLI and the
benchmark harness output.
"""

from __future__ import annotations

from typing import Union

from repro.f.syntax import FExpr, FType
from repro.tal.syntax import (
    Component, HCode, HeapValue, InstrSeq, StackTy, TalType,
)

__all__ = ["pretty", "pretty_component", "pretty_instr_seq"]


def pretty(node: Union[FExpr, FType, TalType, StackTy, Component,
                       InstrSeq, HeapValue]) -> str:
    """The single-line surface rendering (identical to ``str``)."""
    return str(node)


def pretty_instr_seq(iseq: InstrSeq, indent: str = "  ") -> str:
    """One instruction per line."""
    lines = [f"{indent}{instr};" for instr in iseq.instrs]
    lines.append(f"{indent}{iseq.term}")
    return "\n".join(lines)


def pretty_component(comp: Component) -> str:
    """A readable multi-line component listing."""
    lines = ["component:"]
    lines.append(pretty_instr_seq(comp.instrs))
    if comp.heap:
        lines.append("where:")
        for loc, h in comp.heap:
            if isinstance(h, HCode):
                delta = ", ".join(str(b) for b in h.delta)
                lines.append(
                    f"  {loc} -> code[{delta}]{{{h.chi}; {h.sigma}}} "
                    f"{h.q}.")
                lines.append(pretty_instr_seq(h.instrs, indent="    "))
            else:
                lines.append(f"  {loc} -> {h}")
    return "\n".join(lines)

"""``funtal`` -- command-line typechecker, stepper, and example runner.

The reproduction's counterpart to the paper artifact's in-browser tools::

    funtal parse FILE            # parse and pretty-print back
    funtal typecheck FILE        # infer and print the type (and out-stack)
    funtal run FILE [--fuel N] [--trace]   # evaluate; --trace prints the
                                 # jump-level control-flow table
    funtal examples [NAME]       # list / run the built-in paper examples

FILE contains either an F(T) expression or a bare T component in the
surface syntax (see README).  ``-`` reads from stdin.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Optional, Tuple

from repro.analysis.trace import control_flow_table, format_table
from repro.errors import FunTALError
from repro.f.syntax import FExpr
from repro.ft.machine import evaluate_ft, run_ft_component
from repro.ft.typecheck import check_ft_component, check_ft_expr
from repro.surface.parser import parse_program
from repro.surface.pretty import pretty_component
from repro.tal.syntax import Component, NIL_STACK, QEnd, TalType

__all__ = ["main", "EXAMPLES"]


def _load(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def cmd_parse(args: argparse.Namespace) -> int:
    node = parse_program(_load(args.file))
    if isinstance(node, Component):
        print(pretty_component(node))
    else:
        print(node)
    return 0


def cmd_typecheck(args: argparse.Namespace) -> int:
    node = parse_program(_load(args.file))
    if isinstance(node, Component):
        # A bare component needs a halting marker; --result-type names the
        # T type it halts with (surface syntax), default int.
        from repro.surface.parser import parse_ttype

        result: TalType = parse_ttype(args.result_type)
        ty, sigma = check_ft_component(node, q=QEnd(result, NIL_STACK))
        print(f"component : {ty} ; {sigma}")
    else:
        ty, sigma = check_ft_expr(node)
        print(f"expression : {ty} ; {sigma}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    node = parse_program(_load(args.file))
    if isinstance(node, Component):
        halted, machine = run_ft_component(node, fuel=args.fuel,
                                           trace=args.trace)
        print(f"halted with {halted.word} : {halted.ty}")
    else:
        value, machine = evaluate_ft(node, fuel=args.fuel, trace=args.trace)
        print(f"value: {value}")
    if args.trace:
        rows = control_flow_table(machine.trace)
        print()
        print(format_table(rows, title="control flow"))
    return 0


def cmd_equiv(args: argparse.Namespace) -> int:
    from repro.equiv.checker import check_equivalence
    from repro.surface.parser import parse_fexpr, parse_ftype

    left = parse_fexpr(_load(args.left))
    right = parse_fexpr(_load(args.right))
    ty = parse_ftype(args.type)
    report = check_equivalence(left, right, ty, fuel=args.fuel,
                               seed=args.seed)
    print(report)
    if not report.equivalent:
        return 3
    for name, obs in report.agreements:
        print(f"  agreed on {name}: {obs}")
    return 0


def cmd_jit(args: argparse.Namespace) -> int:
    from repro.f.syntax import Lam
    from repro.jit.compiler import compile_function, is_compilable
    from repro.surface.parser import parse_fexpr
    from repro.tal.optimize import optimize_component

    source = parse_fexpr(_load(args.file))
    if not is_compilable(source):
        print("error: not a compilable lambda (first-order arithmetic "
              "fragment: int parameters; literals, parameters, + - *, "
              "if0)", file=sys.stderr)
        return 2
    compiled = compile_function(source)
    comp = compiled.body.fn.comp
    if args.optimize:
        comp = optimize_component(comp)
    from repro.surface.pretty import pretty_component

    print(pretty_component(comp))
    if args.check:
        from repro.equiv.checker import check_equivalence
        from repro.f.typecheck import typecheck as f_typecheck
        from repro.ft.syntax import Boundary
        from repro.f.syntax import App, Var

        rebuilt = Lam(compiled.params,
                      App(Boundary(compiled.body.fn.ty, comp),
                          tuple(Var(x) for x, _ in compiled.params)))
        report = check_equivalence(source, rebuilt, f_typecheck(source),
                                   fuel=args.fuel)
        print()
        print(f"equivalence obligation: {report}")
        if not report.equivalent:
            return 3
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.lint import lint_component
    from repro.ft.syntax import Boundary

    node = parse_program(_load(args.file))
    components = []
    if isinstance(node, Component):
        components.append(("<program>", node))
    else:
        from repro.f.syntax import iter_subexprs

        for sub in iter_subexprs(node):
            if isinstance(sub, Boundary):
                components.append((f"FT[{sub.ty}]", sub.comp))
    total = 0
    for where, comp in components:
        for warning in lint_component(comp):
            print(f"{where} {warning}")
            total += 1
    if total == 0:
        print("clean: no lint warnings")
    return 0 if total == 0 else 4


def _example_entries() -> Dict[str, Tuple[str, Callable[[], FExpr]]]:
    from repro.f.syntax import App, IntE
    from repro.papers_examples import (
        fig11_jit, fig16_two_blocks, fig17_factorial,
    )

    return {
        "jit-source": ("Fig 11 source program (pure F)",
                       fig11_jit.build_source),
        "jit": ("Fig 11 JIT-compiled mixed program", fig11_jit.build_jit),
        "two-blocks-1": ("Fig 16 one-block add-two, applied to 5",
                         lambda: App(fig16_two_blocks.build_f1(),
                                     (IntE(5),))),
        "two-blocks-2": ("Fig 16 two-block add-two, applied to 5",
                         lambda: App(fig16_two_blocks.build_f2(),
                                     (IntE(5),))),
        "fact-f": ("Fig 17 functional factorial of 6",
                   lambda: App(fig17_factorial.build_fact_f(), (IntE(6),))),
        "fact-t": ("Fig 17 imperative factorial of 6",
                   lambda: App(fig17_factorial.build_fact_t(), (IntE(6),))),
    }


EXAMPLES = _example_entries


def cmd_examples(args: argparse.Namespace) -> int:
    entries = _example_entries()
    if not args.name:
        print("built-in paper examples (funtal examples NAME to run):")
        for name, (blurb, _) in entries.items():
            print(f"  {name:14s} {blurb}")
        return 0
    if args.name not in entries:
        print(f"unknown example {args.name!r}", file=sys.stderr)
        return 2
    blurb, build = entries[args.name]
    program = build()
    print(f"-- {blurb}")
    print(program)
    ty, _ = check_ft_expr(program)
    print(f"type: {ty}")
    value, machine = evaluate_ft(program, trace=args.trace)
    print(f"value: {value}")
    if args.trace:
        print()
        print(format_table(control_flow_table(machine.trace),
                           title="control flow"))
    return 0


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="funtal",
        description="FunTAL multi-language tools (PLDI 2017 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_parse = sub.add_parser("parse", help="parse and pretty-print")
    p_parse.add_argument("file")
    p_parse.set_defaults(fn=cmd_parse)

    p_check = sub.add_parser("typecheck", help="typecheck a program")
    p_check.add_argument("file")
    p_check.add_argument("--result-type", default="int",
                         help="halt type for bare T components")
    p_check.set_defaults(fn=cmd_typecheck)

    p_run = sub.add_parser("run", help="evaluate a program")
    p_run.add_argument("file")
    p_run.add_argument("--fuel", type=int, default=1_000_000)
    p_run.add_argument("--trace", action="store_true",
                       help="print the jump-level control-flow table")
    p_run.set_defaults(fn=cmd_run)

    p_eq = sub.add_parser(
        "equiv",
        help="differentially test two expressions for contextual "
             "equivalence at a type")
    p_eq.add_argument("left")
    p_eq.add_argument("right")
    p_eq.add_argument("--type", required=True,
                      help="the common F type, e.g. '(int) -> int'")
    p_eq.add_argument("--fuel", type=int, default=30_000)
    p_eq.add_argument("--seed", type=int, default=0)
    p_eq.set_defaults(fn=cmd_equiv)

    p_jit = sub.add_parser(
        "jit", help="compile an F lambda to typed assembly")
    p_jit.add_argument("file")
    p_jit.add_argument("--optimize", action="store_true",
                       help="run the peephole optimizer on the result")
    p_jit.add_argument("--check", action="store_true",
                       help="discharge the equivalence obligation")
    p_jit.add_argument("--fuel", type=int, default=25_000)
    p_jit.set_defaults(fn=cmd_jit)

    p_lint = sub.add_parser(
        "lint", help="static lints over the program's components")
    p_lint.add_argument("file")
    p_lint.set_defaults(fn=cmd_lint)

    p_ex = sub.add_parser("examples", help="list or run paper examples")
    p_ex.add_argument("name", nargs="?")
    p_ex.add_argument("--trace", action="store_true")
    p_ex.set_defaults(fn=cmd_examples)
    return parser


def main(argv: Optional[list] = None) -> int:
    parser = build_arg_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except FunTALError as err:
        print(f"error: {err}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())

"""``funtal`` -- command-line typechecker, stepper, and example runner.

The reproduction's counterpart to the paper artifact's in-browser tools::

    funtal parse FILE            # parse and pretty-print back
    funtal typecheck FILE        # infer and print the type (and out-stack)
    funtal run FILE [--fuel N] [--trace]   # evaluate; --trace prints the
                                 # jump-level control-flow table
    funtal build MANIFEST [--store DIR] [--validate]
                                 # separate compilation: build each
                                 # component of a manifest store-first
                                 # (only changed components recompile)
    funtal link MANIFEST [--store DIR] [--run]
                                 # build + typed linking (interface
                                 # checking, no body re-typechecking)
    funtal examples [NAME]       # list / run the built-in paper examples
    funtal examples --run        # run every example sequentially
    funtal trace NAME --format jsonl|chrome|table
                                 # run a paper example under the
                                 # observability layer and export the trace
    funtal stats [NAME] [--json] # metrics snapshot (optionally after
                                 # running an example under instrumentation);
                                 # histograms report p50/p95/p99
    funtal top NAME              # hot-code profile: rank lambdas/blocks
                                 # by self steps (content-hashed)
    funtal tiers [--store DIR]   # adaptive tiering: validation receipts
                                 # and per-digest promotion states
    funtal flame NAME            # folded-stack flamegraph lines
                                 # (flamegraph.pl / speedscope input)
    funtal slo [--p95-ms X]      # run the example fleet on a pool and
                                 # check serve.job.ms quantiles against
                                 # CI-checkable thresholds
    funtal serve [--port P] [--workers N]  # JSON-lines TCP evaluation
                                 # service over a crash-isolated pool
    funtal submit FILE [--kind K]          # send one job to a server
    funtal batch FILE.jsonl [--workers N]  # run a job file on a local pool
    funtal batch --examples --workers 4    # ... or all paper examples
    funtal batch --examples --trace-out t.jsonl  # ... capturing one
                                 # stitched cross-process trace (worker
                                 # spans reparented under serve.job)
    funtal chaos [--seeds 0,1,2] [--rate R]  # deterministic fault drill
                                 # over the paper examples (resilience)

``run``, ``trace``, ``stats``, ``submit``, and ``batch`` share the
uniform resource-governor knobs ``--fuel`` / ``--heap`` / ``--depth``
(see ``docs/resilience.md``).

FILE contains either an F(T) expression or a bare T component in the
surface syntax (see README).  ``-`` reads from stdin.  Figure names
(``fig11``, ``fig16``, ``fig17``) alias the corresponding examples; see
``docs/observability.md`` for the tracing workflow and
``docs/serving.md`` for the evaluation service.

Exit codes: 0 success; 1 library error (parse/type/machine); 2 bad
usage/unknown name; 3 equivalence refuted; 4 lint warnings; 5 a resource
governor tripped (:class:`~repro.errors.ResourceExhausted` -- fuel, heap
cells, or stack depth; the bounded machines' verdict, reported as one
line, never a traceback); 6 a served job failed (crashed/timed out/
rejected); 7 an SLO threshold was breached (``funtal slo``).
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Optional, Tuple

from repro.analysis.trace import control_flow_table, format_table
from repro.errors import FunTALError, ResourceExhausted
from repro.f.syntax import FExpr
from repro.ft.machine import evaluate_ft, run_ft_component
from repro.ft.typecheck import check_ft_component, check_ft_expr
from repro.papers_examples import (
    EXAMPLE_ALIASES, example_entries as _example_entries,
    resolve_example as _resolve_example,
)
from repro.resilience.budget import Budget
from repro.surface.parser import parse_program
from repro.surface.pretty import pretty_component
from repro.tal.syntax import Component, NIL_STACK, QEnd, TalType

__all__ = ["main", "EXAMPLES", "EXIT_FUEL_EXHAUSTED", "EXIT_JOB_FAILED",
           "EXIT_SLO_BREACH"]

#: Dedicated exit code for ResourceExhausted (a budget governor tripped:
#: fuel, heap cells, or stack depth).  The name keeps its historical
#: spelling -- fuel was the first and is still the most common governor.
EXIT_FUEL_EXHAUSTED = 5
#: Dedicated exit code for a failed served job (crashed/timed out/rejected).
EXIT_JOB_FAILED = 6
#: Dedicated exit code for ``funtal slo``: a latency/error threshold was
#: breached.  Distinct from job failure so CI can gate on SLOs alone.
EXIT_SLO_BREACH = 7


def _add_budget_args(parser: argparse.ArgumentParser) -> None:
    """The uniform resource-governor knobs (shared by run/trace/stats/
    submit/batch/chaos).  ``None`` defers to the unified defaults in
    :mod:`repro.resilience.budget`."""
    parser.add_argument("--fuel", type=int, default=None,
                        help="machine step budget (default 1,000,000)")
    parser.add_argument("--heap", type=int, default=None,
                        help="heap-cell budget (default 1,000,000)")
    parser.add_argument("--depth", type=int, default=None,
                        help="stack-depth budget (default 1,000,000)")


def _add_tiering_args(parser: argparse.ArgumentParser) -> None:
    """The adaptive-tiering knobs (shared by serve/batch).  ``None``
    defers to ``FUNTAL_TIERING`` / the active policy; precedence is
    env < config < cli (see docs/tiering.md)."""
    parser.add_argument("--tiering", choices=("off", "auto", "aggressive"),
                        default=None,
                        help="adaptive tiering: promote hot digests to "
                             "the fast tier after validating once "
                             "(default off; env FUNTAL_TIERING)")
    parser.add_argument("--tiering-threshold", type=int, default=None,
                        dest="tiering_threshold", metavar="N",
                        help="attributed self steps before a digest is "
                             "scheduled for promotion")
    parser.add_argument("--tiering-store", default=None,
                        dest="tiering_store", metavar="DIR",
                        help="artifact store holding validation receipts "
                             "and tier artifacts (default FUNTAL_STORE)")


def _add_engine_arg(parser: argparse.ArgumentParser) -> None:
    """The F-stepper selector (shared by run/trace/submit/batch).
    ``None`` defers to :data:`repro.f.cek.DEFAULT_ENGINE` (``cek``); the
    two engines are observably step-equivalent, so this is purely a
    performance knob (see docs/performance.md)."""
    parser.add_argument("--engine", choices=("subst", "cek"), default=None,
                        help="F stepper: cek (environment machine, the "
                             "default) or subst (literal substitution "
                             "semantics)")
    parser.add_argument("--tal-engine", choices=("ref", "fast"),
                        default=None, dest="tal_engine",
                        help="T engine: ref (typed reference stepper, the "
                             "default) or fast (type-erased direct-threaded "
                             "tier with template JIT); observably "
                             "equivalent, purely a performance knob")


def _budget_from_args(args: argparse.Namespace) -> Budget:
    return Budget(fuel=args.fuel, heap=args.heap, depth=args.depth)


def _load(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def cmd_parse(args: argparse.Namespace) -> int:
    node = parse_program(_load(args.file))
    if isinstance(node, Component):
        print(pretty_component(node))
    else:
        print(node)
    return 0


def cmd_typecheck(args: argparse.Namespace) -> int:
    node = parse_program(_load(args.file))
    if isinstance(node, Component):
        # A bare component needs a halting marker; --result-type names the
        # T type it halts with (surface syntax), default int.
        from repro.surface.parser import parse_ttype

        result: TalType = parse_ttype(args.result_type)
        ty, sigma = check_ft_component(node, q=QEnd(result, NIL_STACK))
        print(f"component : {ty} ; {sigma}")
    else:
        ty, sigma = check_ft_expr(node)
        print(f"expression : {ty} ; {sigma}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    node = parse_program(_load(args.file))
    budget = _budget_from_args(args)
    if isinstance(node, Component):
        halted, machine = run_ft_component(node, trace=args.trace,
                                           budget=budget,
                                           engine=args.engine,
                                           tal_engine=args.tal_engine)
        print(f"halted with {halted.word} : {halted.ty}")
    else:
        value, machine = evaluate_ft(node, trace=args.trace, budget=budget,
                                     engine=args.engine,
                                     tal_engine=args.tal_engine)
        print(f"value: {value}")
    if args.trace:
        rows = control_flow_table(machine.trace)
        print()
        print(format_table(rows, title="control flow"))
    return 0


def cmd_equiv(args: argparse.Namespace) -> int:
    from repro.equiv.checker import check_equivalence
    from repro.surface.parser import parse_fexpr, parse_ftype

    left = parse_fexpr(_load(args.left))
    right = parse_fexpr(_load(args.right))
    ty = parse_ftype(args.type)
    report = check_equivalence(left, right, ty, fuel=args.fuel,
                               seed=args.seed)
    print(report)
    if not report.equivalent:
        return 3
    for name, obs in report.agreements:
        print(f"  agreed on {name}: {obs}")
    return 0


def cmd_jit(args: argparse.Namespace) -> int:
    from repro.f.syntax import Lam
    from repro.jit.compiler import compile_function, is_compilable
    from repro.surface.parser import parse_fexpr
    from repro.tal.optimize import optimize_component

    source = parse_fexpr(_load(args.file))
    if not is_compilable(source):
        print("error: not a compilable lambda (first-order arithmetic "
              "fragment: int parameters; literals, parameters, + - *, "
              "if0)", file=sys.stderr)
        return 2
    compiled = compile_function(source)
    comp = compiled.body.fn.comp
    if args.optimize:
        comp = optimize_component(comp)
    from repro.surface.pretty import pretty_component

    print(pretty_component(comp))
    if args.check:
        from repro.equiv.checker import check_equivalence
        from repro.f.typecheck import typecheck as f_typecheck
        from repro.ft.syntax import Boundary
        from repro.f.syntax import App, Var

        rebuilt = Lam(compiled.params,
                      App(Boundary(compiled.body.fn.ty, comp),
                          tuple(Var(x) for x, _ in compiled.params)))
        report = check_equivalence(source, rebuilt, f_typecheck(source),
                                   fuel=args.fuel)
        print()
        print(f"equivalence obligation: {report}")
        if not report.equivalent:
            return 3
    return 0


def cmd_compile(args: argparse.Namespace) -> int:
    import sys as _sys

    from repro.compile import compile_term, validate_compilation
    from repro.f.syntax import App, FArrow, Lam
    from repro.surface.parser import parse_fexpr
    from repro.tiering.policy import resolve_tiers

    entry = _resolve_example(args.target)
    if entry is not None:
        node = entry[1]()
    else:
        node = parse_program(_load(args.target))
    if isinstance(node, Component):
        print("error: compile takes an F term, not a T component",
              file=sys.stderr)
        return 2
    result = compile_term(node, None, resolve_tiers(args.tier, "compile"))
    print(f"tier: {result.tier}")
    print(f"type: {result.ty}")
    print(f"blocks: {result.block_count()}")
    if args.ir:
        print()
        print("closure IR:")
        print(result.pretty_ir())
    print()
    print(pretty_component(result.component))
    store = digest = None
    if args.store is not None:
        from repro.link import ArtifactStore, ComponentInterface, \
            component_digest
        from repro.link.build import StoredComponent

        store = ArtifactStore(args.store or None)
        digest = component_digest(node, result.free)
        iface = ComponentInterface(name="<compile>", ty=result.ty,
                                   imports=result.free, digest=digest,
                                   tier=result.tier)
        store.put(digest, StoredComponent(iface, result.wrapped),
                  meta={"tier": result.tier, "type": str(result.ty)})
        print()
        print(f"stored: {digest[:16]} -> {store.root}")
    if args.validate:
        if store is not None:
            # Validation amortized by content hash: an `ok` receipt in
            # the store skips the (expensive) re-validation of an
            # artifact already validated by any earlier process.
            from repro.link import cached_validation

            payload, was_cached = cached_validation(
                store, digest, result, fuel=args.fuel, seed=args.seed)
            verdict = "cached receipt" if was_cached else (
                "validated" if payload["ok"]
                else f"FAILED: {payload['failure']}")
            print()
            print(f"translation validation: {verdict}")
            if not payload["ok"]:
                return 3
        else:
            report = validate_compilation(result, fuel=args.fuel,
                                          seed=args.seed)
            print()
            print(f"translation validation: {report}")
            if not report.ok:
                return 3
    if args.run:
        program: FExpr = result.wrapped
        if args.apply:
            arguments = tuple(parse_fexpr(a) for a in args.apply)
            program = App(program, arguments)
        elif isinstance(result.ty, FArrow) and isinstance(node, Lam):
            print()
            print("(not running: the compiled term is a function; pass "
                  "--apply ARG per argument)", file=sys.stderr)
            return 2
        # Compiled closures nest an F evaluator per boundary crossing,
        # so recursive runs need more host stack than the default (see
        # docs/performance.md).
        old_limit = _sys.getrecursionlimit()
        _sys.setrecursionlimit(max(old_limit, 100_000))
        try:
            budget = Budget.of(args.run_fuel, None, None)
            value, _machine = evaluate_ft(program, budget=budget)
        finally:
            _sys.setrecursionlimit(old_limit)
        print()
        print(f"value: {value}")
    return 0


def _open_store(path: Optional[str]) -> "object":
    from repro.link import ArtifactStore

    return ArtifactStore(path or None)


def cmd_build(args: argparse.Namespace) -> int:
    import json as _json

    from repro.link import build_manifest, parse_manifest

    manifest = parse_manifest(_load(args.manifest))
    store = _open_store(args.store)
    report = build_manifest(manifest, store, validate=args.validate,
                            validate_fuel=args.fuel, seed=args.seed)
    if args.json:
        print(_json.dumps(dict(report.to_json(), store=str(store.root)),
                          indent=2, sort_keys=True))
    else:
        print(f"built {len(report.records)} component(s) "
              f"(store: {store.root})")
        for rec in report.records:
            status = "cached  " if rec.cached else "compiled"
            print(f"  {status}  {rec.name:<10s} {rec.tier:<12s} "
                  f"{rec.digest[:12]}  : {rec.iface.ty}")
            if rec.validation is not None:
                verdict = ("cached receipt" if rec.validation_cached
                           else "validated" if rec.validation.get("ok")
                           else f"FAILED: {rec.validation.get('failure')}")
                print(f"{'':>12s}validation: {verdict}")
    failed = [rec.name for rec in report.records
              if rec.validation is not None
              and not rec.validation.get("ok")]
    if failed:
        print(f"validation failed: {', '.join(failed)}", file=sys.stderr)
        return 3
    return 0


def cmd_link(args: argparse.Namespace) -> int:
    import sys as _sys

    from repro.link import build_and_link, parse_manifest

    manifest = parse_manifest(_load(args.manifest))
    store = _open_store(args.store)
    report, linked = build_and_link(manifest, store,
                                    validate=args.validate,
                                    validate_fuel=args.fuel,
                                    seed=args.seed)
    failed = [rec.name for rec in report.records
              if rec.validation is not None
              and not rec.validation.get("ok")]
    if failed:
        print(f"validation failed: {', '.join(failed)}", file=sys.stderr)
        return 3
    # Linked programs inline one compiled closure per component, so
    # typechecking/running wants the same raised host stack as
    # ``compile --run`` (see docs/performance.md).
    old_limit = _sys.getrecursionlimit()
    _sys.setrecursionlimit(max(old_limit, 100_000))
    try:
        ty, _ = check_ft_expr(linked.program)
        print(f"linked {len(report.records)} component(s) in order: "
              f"{', '.join(linked.order)}")
        for rec in report.records:
            status = "cached" if rec.cached else "compiled"
            print(f"  {rec.name:<10s} {rec.tier:<12s} {status:<8s} "
                  f": {rec.iface.ty}")
        print(f"labels renamed: {linked.labels_renamed}")
        print(f"type: {ty}")
        if args.run:
            budget = Budget.of(args.run_fuel, None, None)
            value, _machine = evaluate_ft(linked.program, budget=budget)
            print(f"value: {value}")
    finally:
        _sys.setrecursionlimit(old_limit)
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.lint import lint_component
    from repro.ft.syntax import Boundary

    node = parse_program(_load(args.file))
    components = []
    if isinstance(node, Component):
        components.append(("<program>", node))
    else:
        from repro.f.syntax import iter_subexprs

        for sub in iter_subexprs(node):
            if isinstance(sub, Boundary):
                components.append((f"FT[{sub.ty}]", sub.comp))
    total = 0
    for where, comp in components:
        for warning in lint_component(comp):
            print(f"{where} {warning}")
            total += 1
    if total == 0:
        print("clean: no lint warnings")
    return 0 if total == 0 else 4


#: Back-compat alias: the registry now lives in repro.papers_examples.
EXAMPLES = _example_entries


def _run_one_example(name: str, blurb: str, build: Callable[[], FExpr],
                     trace: bool) -> None:
    program = build()
    print(f"-- {name}: {blurb}")
    print(program)
    ty, _ = check_ft_expr(program)
    print(f"type: {ty}")
    value, machine = evaluate_ft(program, trace=trace)
    print(f"value: {value}")
    if trace:
        print()
        print(format_table(control_flow_table(machine.trace),
                           title="control flow"))


def cmd_examples(args: argparse.Namespace) -> int:
    entries = _example_entries()
    if args.run:
        # Sequentially typecheck + evaluate every example -- the one-
        # process baseline that `funtal batch --examples` parallelizes.
        for name, (blurb, build) in entries.items():
            _run_one_example(name, blurb, build, args.trace)
        print(f"ran {len(entries)} examples")
        return 0
    if not args.name:
        print("built-in paper examples (funtal examples NAME to run):")
        for name, (blurb, _) in entries.items():
            print(f"  {name:14s} {blurb}")
        return 0
    entry = _resolve_example(args.name)
    if entry is None:
        print(f"unknown example {args.name!r}", file=sys.stderr)
        return 2
    _run_one_example(args.name, entry[0], entry[1], args.trace)
    return 0


def _run_example_instrumented(name: str, budget: Budget,
                              engine: Optional[str] = None,
                              tal_engine: Optional[str] = None):
    """Run a paper example under the observability layer; returns
    ``(value, machine, events, metrics_snapshot)`` or ``None`` (after
    printing the shared unknown-example message) if the name is unknown.
    This is the one instrumented-run path shared by ``funtal trace`` and
    ``funtal stats``."""
    from repro import obs

    entry = _resolve_example(name)
    if entry is None:
        print(f"unknown example {name!r} (see 'funtal examples')",
              file=sys.stderr)
        return None
    _, build = entry
    program = build()
    obs.reset()
    obs.enable(record=True)
    try:
        value, machine = evaluate_ft(program, trace=True, budget=budget,
                                     engine=engine, tal_engine=tal_engine)
        # Append the final counter totals to the stream (while the bus is
        # still recording) so exported traces are self-contained -- one
        # Counter event per metric, not one per increment.
        obs.OBS.metrics.flush_to(obs.OBS.bus)
    finally:
        obs.disable()
    events = obs.OBS.bus.drain()
    return value, machine, events, obs.OBS.metrics.snapshot()


def cmd_trace(args: argparse.Namespace) -> int:
    import json as _json

    from repro import obs
    from repro.obs.events import MachineEvent

    result = _run_example_instrumented(args.example, _budget_from_args(args),
                                       engine=args.engine,
                                       tal_engine=getattr(args, "tal_engine",
                                                          None))
    if result is None:
        return 2
    value, machine, events, snapshot = result

    try:
        out = open(args.out, "w", encoding="utf-8") if args.out \
            else sys.stdout
    except OSError as err:
        print(f"error: cannot write {args.out}: {err}", file=sys.stderr)
        return 1
    try:
        if args.format == "jsonl":
            obs.export_jsonl(events, out)
        elif args.format == "chrome":
            obs.export_chrome(events, out)
        else:
            machine_events = [e for e in events
                              if isinstance(e, MachineEvent)]
            rows = control_flow_table(machine_events)
            print(f"value: {value}", file=out)
            print(file=out)
            print(format_table(rows, title=f"{args.example} control flow"),
                  file=out)
            crossings = {
                k: v for k, v in snapshot["counters"].items()
                if k.startswith("ft.boundary.")}
            print(file=out)
            print("boundary crossings: "
                  + (_json.dumps(crossings) if crossings else "none"),
                  file=out)
    finally:
        if args.out:
            out.close()
    if args.out:
        print(f"wrote {len(events)} events to {args.out}", file=sys.stderr)
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    import json as _json

    from repro import obs

    if args.example:
        result = _run_example_instrumented(args.example,
                                           _budget_from_args(args))
        if result is None:
            return 2
        snapshot = result[3]
    else:
        snapshot = obs.OBS.metrics.snapshot()
        snapshot["jit_compile_cache"] = _jit_cache_stats()
    snapshot["jit_quarantine"] = _jit_quarantine_stats()
    tiering = _tiering_stats()
    if tiering is not None:
        snapshot["tiering"] = tiering
    if args.json:
        print(_json.dumps(snapshot, indent=2, sort_keys=True))
    else:
        print(obs.OBS.metrics.format_table() if args.example
              else _format_snapshot(snapshot))
    return 0


def _jit_cache_stats() -> Dict:
    """The JIT's compile cache (a shared :class:`repro.serve.cache.LRUCache`)
    as a stats dict, without forcing the jit import if it never ran."""
    import sys as _sys

    compiler = _sys.modules.get("repro.jit.compiler")
    if compiler is None:
        return {"size": 0, "maxsize": 0, "hits": 0, "misses": 0,
                "evictions": 0}
    return compiler.COMPILE_CACHE.stats()


def _tiering_stats() -> Optional[Dict]:
    """The adaptive-tiering controller as a stats dict, without forcing
    the tiering import if no policy was ever activated.  Prefers the
    live coordinator (per-digest states, receipts held); falls back to
    the active policy alone when a policy is set but no pool ran."""
    import sys as _sys

    coordinator = _sys.modules.get("repro.tiering.coordinator")
    if coordinator is not None:
        coord = coordinator.last_coordinator()
        if coord is not None:
            return coord.stats()
    policy_mod = _sys.modules.get("repro.tiering.policy")
    if policy_mod is not None:
        policy = policy_mod.active_policy()
        if policy.enabled:
            return {"mode": policy.mode,
                    "threshold": policy.effective_threshold(),
                    "states": {}, "receipts_held": 0}
    return None


def _jit_quarantine_stats() -> Dict:
    """The JIT safety net's circuit breaker as a stats dict, without
    forcing the safety-net import if no guarded run happened."""
    import sys as _sys

    safety_net = _sys.modules.get("repro.resilience.safety_net")
    if safety_net is None:
        return {"size": 0, "hits": 0, "entries": []}
    return safety_net.QUARANTINE.stats()


def _format_snapshot(snapshot: Dict) -> str:
    lines = []
    for section in ("counters", "gauges"):
        for name, value in snapshot[section].items():
            lines.append(f"{name}  {value}")
    for name, h in snapshot["histograms"].items():
        lines.append(
            f"{name}  count={h['count']} mean={h['mean']}"
            f" p50={h.get('p50')} p95={h.get('p95')} p99={h.get('p99')}")
    jit_cache = snapshot.get("jit_compile_cache", {})
    if jit_cache.get("hits") or jit_cache.get("misses"):
        lines.append(
            "jit compile cache  size={size}/{maxsize} hits={hits} "
            "misses={misses} evictions={evictions}".format(**jit_cache))
    quarantine = snapshot.get("jit_quarantine", {})
    if quarantine.get("size") or quarantine.get("hits"):
        lines.append("jit quarantine  size={size} hits={hits}".format(
            **{k: quarantine[k] for k in ("size", "hits")}))
        for lam, why in quarantine.get("entries", []):
            lines.append(f"  quarantined {lam}  ({why})")
    tiering = snapshot.get("tiering")
    if tiering:
        states = " ".join(f"{k}={v}" for k, v
                          in sorted(tiering.get("states", {}).items()))
        lines.append(
            f"tiering  mode={tiering.get('mode')} "
            f"threshold={tiering.get('threshold')} "
            f"receipts={tiering.get('receipts_held', 0)}"
            + (f" {states}" if states else ""))
    if not lines:
        return "(no metrics recorded in this process)"
    return "\n".join(lines)


def _run_example_profiled(name: str, budget: Budget,
                          engine: Optional[str] = None,
                          tal_engine: Optional[str] = None):
    """Run a paper example under the hot-code profiler; returns
    ``(value, ProfileSnapshot)`` or ``None`` (after printing the shared
    unknown-example message).  Shared by ``funtal top`` and ``funtal
    flame``."""
    from repro.obs.profile import PROFILER

    entry = _resolve_example(name)
    if entry is None:
        print(f"unknown example {name!r} (see 'funtal examples')",
              file=sys.stderr)
        return None
    program = entry[1]()
    PROFILER.reset()
    PROFILER.enable()
    try:
        value, _machine = evaluate_ft(program, budget=budget, engine=engine,
                                      tal_engine=tal_engine)
    finally:
        snap = PROFILER.snapshot()
        PROFILER.disable()
        PROFILER.reset()
    return value, snap


def cmd_top(args: argparse.Namespace) -> int:
    import json as _json

    result = _run_example_profiled(args.example, _budget_from_args(args),
                                   engine=args.engine,
                                   tal_engine=getattr(args, "tal_engine",
                                                      None))
    if result is None:
        return 2
    value, snap = result
    if args.out:
        snap.save(args.out)
        print(f"wrote profile snapshot to {args.out}", file=sys.stderr)
    if getattr(args, "promote_threshold", None) is not None:
        # The historical manual hand-off: digests of T blocks hot enough
        # to pre-seed the fast tier's template JIT.  Superseded by the
        # repro.tiering controller, which harvests and validates these
        # digests automatically (``--tiering auto``).
        print("note: --promote-threshold is deprecated; use "
              "'funtal serve/batch --tiering auto' (docs/tiering.md)",
              file=sys.stderr)
        for digest in snap.promote(args.promote_threshold):
            print(digest)
        return 0
    if args.json:
        print(_json.dumps(snap.to_dict(), indent=2, sort_keys=True))
    else:
        print(f"value: {value}")
        print()
        print(snap.format_table(limit=args.limit))
    return 0


def cmd_tiers(args: argparse.Namespace) -> int:
    """Inspect the adaptive-tiering state: validation receipts held in
    the artifact store, and (with ``--state``) the controller's
    per-digest state machine."""
    import json as _json

    from repro.link.store import ArtifactStore
    from repro.tiering.policy import active_policy
    from repro.tiering.receipts import ReceiptBook

    policy = active_policy()
    store = ArtifactStore(args.store or policy.store)
    book = ReceiptBook(store, key=policy.key)

    states: Dict[str, Dict] = {}
    if args.state:
        from repro.tiering.controller import TieringController

        try:
            controller = TieringController.load(args.state)
        except (OSError, ValueError, KeyError, TypeError) as err:
            print(f"error: cannot read {args.state}: {err}",
                  file=sys.stderr)
            return 2
        states = controller.snapshot()["digests"]

    rows = []
    for digest in book.digests():
        receipt = book.get(digest)        # verifies the signature
        rec = states.get(digest, {})
        rows.append({
            "digest": digest,
            "receipt": "ok" if receipt is not None else "BAD",
            "kind": (receipt or {}).get("kind"),
            "compile_tier": (receipt or {}).get("compile_tier"),
            "t_blocks": len((receipt or {}).get("t_blocks") or ()),
            "state": rec.get("state"),
            "steps": rec.get("steps"),
            "runs": rec.get("runs"),
        })
    # Controller entries without a receipt yet (profiling, demoted,
    # quarantined digests) still deserve a row.
    seen = {row["digest"] for row in rows}
    for digest, rec in sorted(states.items()):
        if digest in seen:
            continue
        rows.append({"digest": digest, "receipt": None, "kind": None,
                     "compile_tier": None, "t_blocks": 0,
                     "state": rec.get("state"), "steps": rec.get("steps"),
                     "runs": rec.get("runs")})

    if args.json:
        print(_json.dumps({
            "store": str(store.root),
            "policy": policy.to_dict(),
            "tiers": rows,
        }, indent=2, sort_keys=True))
        return 0

    print(f"store: {store.root}")
    print(f"policy: mode={policy.mode} "
          f"threshold={policy.effective_threshold()} "
          f"tal_jit_threshold={policy.tal_jit_threshold}")
    if not rows:
        print("(no tiering receipts or controller state found)")
        return 0
    print()
    header = (f"{'digest':<18} {'receipt':<8} {'kind':<11} "
              f"{'tier':<8} {'t_blocks':>8} {'state':<11} {'runs':>5}")
    print(header)
    print("-" * len(header))
    for row in rows:
        print(f"{row['digest']:<18} {row['receipt'] or '-':<8} "
              f"{row['kind'] or '-':<11} {row['compile_tier'] or '-':<8} "
              f"{row['t_blocks']:>8} {row['state'] or '-':<11} "
              f"{row['runs'] if row['runs'] is not None else '-':>5}")
    return 0


def cmd_flame(args: argparse.Namespace) -> int:
    result = _run_example_profiled(args.example, _budget_from_args(args),
                                   engine=args.engine)
    if result is None:
        return 2
    _value, snap = result
    folded = snap.format_folded()
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(folded + ("\n" if folded else ""))
        print(f"wrote {len(snap.folded)} folded stacks to {args.out}",
              file=sys.stderr)
    else:
        print(folded)
    return 0


def cmd_slo(args: argparse.Namespace) -> int:
    import json as _json

    from repro import obs
    from repro.serve.pool import WorkerPool
    from repro.serve.protocol import Job, JobOptions

    obs.reset()
    obs.enable(record=False)
    jobs = [
        Job("run", id=f"{name}#{rep}", example=name,
            options=JobOptions(fuel=args.fuel, no_cache=True,
                               timeout=args.timeout))
        for rep in range(args.repeat)
        for name in _example_entries()]
    try:
        with WorkerPool(args.workers, cache=None,
                        default_timeout=args.timeout or 30.0) as pool:
            results = pool.run_batch(jobs)
    finally:
        obs.disable()
    snapshot = obs.OBS.metrics.snapshot()
    hist = snapshot["histograms"].get("serve.job.ms")
    failed = sum(not r.ok for r in results)
    error_rate = failed / len(results) if results else 0.0
    if hist is None:
        print("error: no serve.job.ms samples recorded", file=sys.stderr)
        return 1

    checks = []  # (name, observed, threshold) with threshold None = report
    for q in ("p50", "p95", "p99"):
        checks.append((f"{q}_ms", hist[q], getattr(args, f"{q}_ms")))
    checks.append(("error_rate", round(error_rate, 4),
                   args.max_error_rate))
    breaches = [(name, observed, limit) for name, observed, limit in checks
                if limit is not None and observed > limit]

    report = {
        "jobs": len(results), "failed": failed,
        "workers": args.workers,
        "serve.job.ms": {k: hist[k]
                         for k in ("count", "mean", "p50", "p95", "p99",
                                   "min", "max")},
        "thresholds": {name: limit for name, _, limit in checks
                       if limit is not None},
        "breaches": [{"check": name, "observed": observed, "limit": limit}
                     for name, observed, limit in breaches],
        "ok": not breaches,
    }
    if args.json:
        print(_json.dumps(report, indent=2, sort_keys=True))
    else:
        print(f"slo: {len(results)} jobs on {args.workers} workers "
              f"({failed} failed)")
        for name, observed, limit in checks:
            verdict = "  " if limit is None else \
                ("OK" if observed <= limit else "BREACH")
            bound = f" <= {limit}" if limit is not None else ""
            print(f"  {verdict:6s} {name:12s} {observed}{bound}")
    if breaches:
        for name, observed, limit in breaches:
            print(f"slo breach: {name} = {observed} > {limit}",
                  file=sys.stderr)
        return EXIT_SLO_BREACH
    return 0


def _job_from_args(args: argparse.Namespace):
    """Build a protocol Job from submit-style CLI options."""
    from repro.serve.protocol import Job, JobOptions

    options = JobOptions(
        fuel=args.fuel, heap=getattr(args, "heap", None),
        depth=getattr(args, "depth", None),
        checkpoint=getattr(args, "checkpoint", False),
        jit=getattr(args, "jit", False),
        timeout=args.timeout,
        result_type=args.result_type, trace=getattr(args, "trace", False),
        optimize=getattr(args, "optimize", False),
        check=getattr(args, "check", False),
        seed=getattr(args, "seed", 0),
        type=getattr(args, "type", None),
        right=_load(args.right) if getattr(args, "right", None) else None,
        no_cache=getattr(args, "no_cache", False),
        engine=getattr(args, "engine", None),
        tal_engine=getattr(args, "tal_engine", None),
    )
    if args.example:
        return Job(args.kind, example=args.example, options=options)
    if not args.file:
        raise FunTALError("need a FILE or --example")
    return Job(args.kind, source=_load(args.file), options=options)


def _result_exit_code(result) -> int:
    if result.ok:
        return 0
    if result.status == "suspended":
        # A checkpointing run that handed back its snapshot did exactly
        # what was asked; resuming is the caller's next move.
        return 0
    if result.status in ("fuel_exhausted", "resource_exhausted"):
        return EXIT_FUEL_EXHAUSTED
    if result.status in ("timeout", "crashed", "rejected", "overloaded"):
        return EXIT_JOB_FAILED
    return 1


def _tiering_policy_from_args(args: argparse.Namespace):
    """Resolve the tiering policy for a pool-building command.

    Precedence is env < config < cli (``TieringPolicy.resolve``); the
    resolved policy is installed process-wide *before* the pool forks
    its workers, so they inherit it.  Returns the policy (possibly with
    ``mode="off"``) -- pass it to the pool either way so ``--tiering
    off`` genuinely disables an env-enabled default.
    """
    from repro.tiering.policy import TieringPolicy, set_active_policy

    policy = TieringPolicy.resolve(cli={
        "mode": getattr(args, "tiering", None),
        "promote_threshold": getattr(args, "tiering_threshold", None),
        "store": getattr(args, "tiering_store", None),
    })
    set_active_policy(policy)
    return policy


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro import obs
    from repro.serve.server import ServeServer

    obs.enable(record=False)        # serve.* counters on, no event buffer
    policy = _tiering_policy_from_args(args)
    server = ServeServer(
        args.host, args.port, workers=args.workers,
        cache_size=args.cache_size, queue_size=args.queue_size,
        default_timeout=args.timeout, max_retries=args.max_retries,
        tiering=policy)

    async def _serve() -> None:
        # Bind first, announce second: with --port 0 the kernel picks the
        # port, so the banner must read it back from the bound socket.
        await server.start()
        print(f"funtal serve: listening on {args.host}:{server.port} "
              f"({args.workers} workers, cache {args.cache_size}, "
              f"queue {args.queue_size}, tiering {policy.mode})",
              file=sys.stderr, flush=True)
        await server.serve_forever()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    finally:
        server.pool.close()
    return 0


def _write_trace(events, path: str, fmt: str) -> None:
    """Write drained obs events to ``path`` as jsonl or chrome JSON."""
    from repro import obs

    with open(path, "w", encoding="utf-8") as out:
        if fmt == "chrome":
            obs.export_chrome(events, out)
        else:
            obs.export_jsonl(events, out)
    print(f"wrote {len(events)} trace events to {path}", file=sys.stderr)


def cmd_submit(args: argparse.Namespace) -> int:
    import json as _json

    from repro.serve.client import ServeClient

    job = _job_from_args(args)
    if not args.trace_out:
        with ServeClient(args.host, args.port) as client:
            result = client.submit(job)
        print(_json.dumps(result.to_dict(), sort_keys=True))
        return _result_exit_code(result)

    # --trace-out: attach a client-side trace context so the remote
    # worker captures its spans/metrics into the result envelope, then
    # stitch them under a synthetic serve.submit root span locally.
    import time as _time

    from repro import obs
    from repro.obs import events as obs_events
    from repro.obs.distributed import new_trace_id, stitch_envelope

    obs.reset()
    obs.enable(record=True)
    try:
        span_id = next(obs_events._span_ids)
        job.trace_ctx = {"trace_id": new_trace_id(),
                         "parent_span_id": span_id, "record": True}
        start_ns = _time.perf_counter_ns()
        with ServeClient(args.host, args.port) as client:
            result = client.submit(job)
        end_ns = _time.perf_counter_ns()
        stitched = []
        if result.obs:
            stitched = list(stitch_envelope(result.obs, span_id))
            obs.OBS.metrics.merge_snapshot(result.obs.get("metrics", {}))
        obs.OBS.bus.publish(obs_events.Span(
            "serve.submit", "serve", start_ns, end_ns, span_id, None,
            (("kind", job.kind), ("status", result.status))))
        obs.OBS.metrics.flush_to(obs.OBS.bus)
    finally:
        obs.disable()
    _write_trace(stitched + obs.OBS.bus.drain(), args.trace_out,
                 args.format)
    # The envelope now lives in the trace file; keep stdout lean.
    wire = result.to_dict()
    wire.pop("obs", None)
    print(_json.dumps(wire, sort_keys=True))
    return _result_exit_code(result)


def _batch_rounds(args: argparse.Namespace):
    """The batch's work as a list of *rounds*.  Each round is one
    ``run_batch`` call, so with ``--repeat`` every round after the first
    is a genuine resubmission that can be served from the result cache
    (whereas one bulk submission would race its own first round)."""
    from repro.serve.protocol import Job, JobOptions, jobs_from_jsonl

    if args.examples:
        return [
            [Job("run", id=f"{name}#{rep}", example=name,
                 options=JobOptions(fuel=args.fuel, heap=args.heap,
                                    depth=args.depth, timeout=args.timeout,
                                    no_cache=args.no_cache,
                                    engine=args.engine,
                                    tal_engine=args.tal_engine))
             for name in _example_entries()]
            for rep in range(args.repeat)]
    if not args.file:
        raise FunTALError("need a FILE.jsonl or --examples")
    jobs = jobs_from_jsonl(_load(args.file))
    for job in jobs:
        if args.no_cache:
            job.options.no_cache = True
        if args.timeout and job.options.timeout is None:
            job.options.timeout = args.timeout
        for knob in ("fuel", "heap", "depth", "engine", "tal_engine"):
            if getattr(args, knob) and getattr(job.options, knob) is None:
                setattr(job.options, knob, getattr(args, knob))
    return [jobs]


def cmd_batch(args: argparse.Namespace) -> int:
    import json as _json
    import time as _time

    from repro import obs
    from repro.serve.cache import ResultCache
    from repro.serve.pool import WorkerPool

    # --trace-out turns on event recording: the pool then ships each
    # worker's spans back in the result envelopes and stitches them into
    # one cross-process tree on this side (see docs/observability.md).
    tracing = bool(args.trace_out)
    if tracing:
        obs.reset()
    obs.enable(record=tracing)
    policy = _tiering_policy_from_args(args)
    rounds = _batch_rounds(args)
    out = open(args.out, "w", encoding="utf-8") if args.out else sys.stdout
    try:
        start = _time.perf_counter()
        results = []
        with WorkerPool(args.workers,
                        cache=None if args.no_cache
                        else ResultCache(args.cache_size),
                        default_timeout=args.timeout or 30.0,
                        max_retries=args.max_retries,
                        tiering=policy) as pool:
            for round_jobs in rounds:
                results.extend(pool.run_batch(round_jobs))
            tiering_stats = pool.stats().get("tiering")
        wall = _time.perf_counter() - start
        for result in results:
            print(_json.dumps(result.to_dict(), sort_keys=True), file=out)
    finally:
        if args.out:
            out.close()
    if tracing:
        obs.OBS.metrics.flush_to(obs.OBS.bus)
        events = obs.OBS.bus.drain()
        obs.disable()
        _write_trace(events, args.trace_out, args.format)
    ok = sum(r.ok for r in results)
    cached = sum(r.cached for r in results)
    summary = {
        "jobs": len(results), "ok": ok, "failed": len(results) - ok,
        "cached": cached, "workers": args.workers,
        "wall_s": round(wall, 3),
        "jobs_per_s": round(len(results) / wall, 1) if wall else 0.0,
    }
    if tiering_stats is not None:
        summary["tiering"] = tiering_stats
    print(f"batch: {_json.dumps(summary, sort_keys=True)}", file=sys.stderr)
    return 0 if ok == len(results) else EXIT_JOB_FAILED


def _chaos_one(name: str, build, reference: str, seed: int, rate: float,
               seams, fuel: Optional[int]) -> Tuple[str, Dict]:
    """One chaos trial: run ``name`` under a seeded fault plane through
    the guarded JIT, then suspend/checkpoint/resume it at half fuel.

    Returns ``(verdict, detail)``.  A verdict is *acceptable* when it is
    ``"ok"`` (right answer despite injected faults -- the safety net
    absorbed them) or a structured degradation (``fault:*``,
    ``exhausted:*``, ``snapshot-error``); it is a *failure* when the
    answer is wrong or a non-FunTAL exception escapes.
    """
    from repro.errors import InjectedFault, SnapshotError
    from repro.ft.machine import FTMachine
    from repro.jit.compiler import clear_compile_cache
    from repro.resilience.chaos import FaultPlane
    from repro.resilience.safety_net import Quarantine, run_guarded

    detail: Dict = {}
    clear_compile_cache()
    quarantine = Quarantine()
    with FaultPlane(seed=seed, rate=rate, seams=seams) as plane:
        # Trial 1: full run through the guarded JIT.
        try:
            value, _machine, report = run_guarded(
                build(), fuel=fuel, quarantine=quarantine)
            verdict = "ok" if str(value) == reference \
                else f"WRONG-ANSWER:{value}"
            detail["fell_back"] = report.fell_back
            detail["quarantined"] = len(quarantine)
        except InjectedFault as err:
            verdict = f"fault:{err.seam}"
        except ResourceExhausted as err:
            verdict = f"exhausted:{err.resource}"
        except SnapshotError:
            verdict = "snapshot-error"
        except FunTALError as err:
            verdict = f"error:{type(err).__name__}"
        except Exception as err:   # noqa: BLE001 -- the whole point
            verdict = f"UNHANDLED:{type(err).__name__}:{err}"

        # Trial 2: suspend at a tiny fuel slice, checkpoint through the
        # (possibly faulting) pickle seam, restore, resume to the end.
        try:
            machine = FTMachine(budget=Budget(fuel=5))
            entry = _resolve_example(name)
            try:
                machine.evaluate(entry[1]())
                resume_verdict = "finished-early"
            except ResourceExhausted:
                if not machine.suspended:
                    resume_verdict = "exhausted:terminal"
                else:
                    snap = machine.snapshot()
                    revived = FTMachine.restore(snap)
                    outcome = revived.resume(fuel=fuel or 1_000_000)
                    resume_verdict = "ok" if str(outcome) == reference \
                        else f"WRONG-ANSWER:{outcome}"
        except InjectedFault as err:
            resume_verdict = f"fault:{err.seam}"
        except ResourceExhausted as err:
            resume_verdict = f"exhausted:{err.resource}"
        except SnapshotError:
            resume_verdict = "snapshot-error"
        except FunTALError as err:
            resume_verdict = f"error:{type(err).__name__}"
        except Exception as err:   # noqa: BLE001
            resume_verdict = f"UNHANDLED:{type(err).__name__}:{err}"
    detail["resume"] = resume_verdict
    detail["faults"] = plane.summary()["faults"]
    if "WRONG" in resume_verdict or "UNHANDLED" in resume_verdict:
        verdict = resume_verdict if verdict == "ok" else verdict
    return verdict, detail


def _cmd_chaos_serve_drill(args: argparse.Namespace) -> int:
    """``funtal chaos drill --serve``: storm a live worker pool.

    Exit 0 iff no job was lost AND at least one job finished via
    mid-run checkpoint recovery on a sibling worker -- the two
    supervision invariants the fleet is built around.
    """
    import json as _json

    from repro.serve.drill import run_serve_drill

    report = run_serve_drill(
        seed=args.seed, jobs=args.jobs, workers=args.workers,
        rate=args.fault_rate)
    if args.json:
        print(_json.dumps(report, sort_keys=True))
    else:
        statuses = ", ".join(f"{k}={v}"
                             for k, v in report["statuses"].items())
        mttr = report["mttr_ms"]
        print(f"serve drill: seed={report['seed']} "
              f"jobs={report['jobs']} workers={report['workers']} "
              f"rate={report['fault_rate']}")
        print(f"  statuses: {statuses}")
        print(f"  lost={report['lost']} recovered={report['recovered']} "
              f"degraded={report['degraded']} shed={report['shed']} "
              f"quarantined={report['quarantined']}")
        print(f"  mttr: count={mttr.get('count', 0)} "
              f"mean={mttr.get('mean', 0.0):.1f}ms "
              f"max={mttr.get('max', 0.0):.1f}ms "
              f"wall={report['duration_s']}s")
    ok = report["lost"] == 0 and report["recovered"] >= 1
    if not ok:
        print(f"serve drill FAILED: lost={report['lost']} "
              f"recovered={report['recovered']} "
              "(need lost == 0 and recovered >= 1)", file=sys.stderr)
    return 0 if ok else 1


def cmd_chaos(args: argparse.Namespace) -> int:
    import json as _json

    from repro.resilience.chaos import SEAMS

    if getattr(args, "mode", None) == "drill":
        if not args.serve:
            print("chaos drill requires --serve (the classic in-process "
                  "sweep is plain 'funtal chaos')", file=sys.stderr)
            return 2
        return _cmd_chaos_serve_drill(args)

    seeds = [int(s) for s in args.seeds.split(",") if s.strip()]
    seams = None
    if args.seams:
        seams = [s.strip() for s in args.seams.split(",") if s.strip()]
        unknown = set(seams) - set(SEAMS)
        if unknown:
            print(f"unknown seam(s): {', '.join(sorted(unknown))} "
                  f"(known: {', '.join(sorted(SEAMS))})", file=sys.stderr)
            return 2
    entries = _example_entries()
    if args.examples:
        picked = {}
        for name in args.examples.split(","):
            entry = _resolve_example(name.strip())
            if entry is None:
                print(f"unknown example {name.strip()!r}", file=sys.stderr)
                return 2
            picked[name.strip()] = entry
        entries = picked

    # Authoritative answers first, outside any fault plane.
    reference = {}
    for name, (_, build) in entries.items():
        value, _ = evaluate_ft(build(), fuel=args.fuel)
        reference[name] = str(value)

    rows = []
    failures = 0
    for seed in seeds:
        for name, (_, build) in entries.items():
            verdict, detail = _chaos_one(
                name, build, reference[name], seed, args.rate, seams,
                args.fuel)
            bad = "WRONG" in verdict or "UNHANDLED" in verdict \
                or "WRONG" in detail["resume"] \
                or "UNHANDLED" in detail["resume"]
            failures += bad
            rows.append({"seed": seed, "example": name,
                         "verdict": verdict, **detail})

    if args.json:
        print(_json.dumps({"rows": rows, "failures": failures,
                           "seeds": seeds, "rate": args.rate},
                          sort_keys=True))
    else:
        for row in rows:
            flag = "FAIL" if ("WRONG" in row["verdict"]
                              or "UNHANDLED" in row["verdict"]) else "ok"
            print(f"[{flag}] seed={row['seed']} {row['example']:14s} "
                  f"run={row['verdict']} resume={row['resume']} "
                  f"faults={row['faults']}")
        print(f"chaos: {len(rows)} trials, {failures} failures "
              f"(seeds {','.join(map(str, seeds))}, rate {args.rate})")
    return 0 if failures == 0 else 1


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="funtal",
        description="FunTAL multi-language tools (PLDI 2017 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_parse = sub.add_parser("parse", help="parse and pretty-print")
    p_parse.add_argument("file")
    p_parse.set_defaults(fn=cmd_parse)

    p_check = sub.add_parser("typecheck", help="typecheck a program")
    p_check.add_argument("file")
    p_check.add_argument("--result-type", default="int",
                         help="halt type for bare T components")
    p_check.set_defaults(fn=cmd_typecheck)

    p_run = sub.add_parser("run", help="evaluate a program")
    p_run.add_argument("file")
    _add_budget_args(p_run)
    _add_engine_arg(p_run)
    p_run.add_argument("--trace", action="store_true",
                       help="print the jump-level control-flow table")
    p_run.set_defaults(fn=cmd_run)

    p_eq = sub.add_parser(
        "equiv",
        help="differentially test two expressions for contextual "
             "equivalence at a type")
    p_eq.add_argument("left")
    p_eq.add_argument("right")
    p_eq.add_argument("--type", required=True,
                      help="the common F type, e.g. '(int) -> int'")
    p_eq.add_argument("--fuel", type=int, default=30_000)
    p_eq.add_argument("--seed", type=int, default=0)
    p_eq.set_defaults(fn=cmd_equiv)

    p_jit = sub.add_parser(
        "jit", help="compile an F lambda to typed assembly")
    p_jit.add_argument("file")
    p_jit.add_argument("--optimize", action="store_true",
                       help="run the peephole optimizer on the result")
    p_jit.add_argument("--check", action="store_true",
                       help="discharge the equivalence obligation")
    p_jit.add_argument("--fuel", type=int, default=25_000)
    p_jit.set_defaults(fn=cmd_jit)

    p_comp = sub.add_parser(
        "compile",
        help="compile a whole F term to typed assembly (tiered "
             "pipeline with translation validation)")
    p_comp.add_argument("target",
                        help="an F source file, '-' for stdin, or a "
                             "paper-example name (e.g. fact-f)")
    p_comp.add_argument("--tier", choices=["arith", "general"],
                        default=None,
                        help="force a tier (default: cheapest eligible)")
    p_comp.add_argument("--ir", action="store_true",
                        help="also print the closure-conversion IR")
    p_comp.add_argument("--validate", action="store_true",
                        help="run translation validation (typecheck + "
                             "differential execution + bounded "
                             "contextual equivalence)")
    p_comp.add_argument("--run", action="store_true",
                        help="evaluate the compiled term (functions "
                             "need --apply)")
    p_comp.add_argument("--apply", action="append", default=[],
                        metavar="ARG",
                        help="argument expression for --run "
                             "(repeatable, one per parameter)")
    p_comp.add_argument("--fuel", type=int, default=30_000,
                        help="fuel per validation observation")
    p_comp.add_argument("--run-fuel", type=int, default=None,
                        help="machine step budget for --run "
                             "(default 1,000,000)")
    p_comp.add_argument("--seed", type=int, default=0,
                        help="validation input-generator seed")
    p_comp.add_argument("--store", nargs="?", const="", default=None,
                        metavar="DIR",
                        help="persist the compilation in the artifact "
                             "store (default dir: $FUNTAL_STORE or "
                             "~/.cache/funtal); with --validate, reuses "
                             "stored validation receipts")
    p_comp.set_defaults(fn=cmd_compile)

    p_bld = sub.add_parser(
        "build",
        help="incrementally compile a multi-component manifest "
             "(store-first: only changed components recompile)")
    p_bld.add_argument("manifest",
                       help="manifest JSON file ('-' for stdin); see "
                            "docs/linking.md")
    p_bld.add_argument("--store", default=None, metavar="DIR",
                       help="artifact store directory (default: "
                            "$FUNTAL_STORE or ~/.cache/funtal)")
    p_bld.add_argument("--validate", action="store_true",
                       help="translation-validate compiled components "
                            "(receipts cached by content hash)")
    p_bld.add_argument("--fuel", type=int, default=30_000,
                       help="fuel per validation observation")
    p_bld.add_argument("--seed", type=int, default=0,
                       help="validation input-generator seed")
    p_bld.add_argument("--json", action="store_true",
                       help="machine-readable build report")
    p_bld.set_defaults(fn=cmd_build)

    p_lnk = sub.add_parser(
        "link",
        help="build a manifest, link the components with interface "
             "checking, and typecheck (optionally run) the result")
    p_lnk.add_argument("manifest",
                       help="manifest JSON file ('-' for stdin)")
    p_lnk.add_argument("--store", default=None, metavar="DIR",
                       help="artifact store directory (default: "
                            "$FUNTAL_STORE or ~/.cache/funtal)")
    p_lnk.add_argument("--validate", action="store_true",
                       help="translation-validate compiled components")
    p_lnk.add_argument("--run", action="store_true",
                       help="evaluate the linked program")
    p_lnk.add_argument("--fuel", type=int, default=30_000,
                       help="fuel per validation observation")
    p_lnk.add_argument("--run-fuel", type=int, default=None,
                       help="machine step budget for --run "
                            "(default 1,000,000)")
    p_lnk.add_argument("--seed", type=int, default=0,
                       help="validation input-generator seed")
    p_lnk.set_defaults(fn=cmd_link)

    p_lint = sub.add_parser(
        "lint", help="static lints over the program's components")
    p_lint.add_argument("file")
    p_lint.set_defaults(fn=cmd_lint)

    p_ex = sub.add_parser("examples", help="list or run paper examples")
    p_ex.add_argument("name", nargs="?")
    p_ex.add_argument("--trace", action="store_true")
    p_ex.add_argument("--run", action="store_true",
                      help="run every example sequentially (the one-"
                           "process baseline for 'funtal batch "
                           "--examples')")
    p_ex.set_defaults(fn=cmd_examples)

    p_tr = sub.add_parser(
        "trace",
        help="run a paper example under the observability layer and "
             "export the structured trace")
    p_tr.add_argument("example",
                      help="example name or figure alias (e.g. fig17)")
    p_tr.add_argument("--format", choices=("jsonl", "chrome", "table"),
                      default="table",
                      help="jsonl: one event per line; chrome: "
                           "chrome://tracing JSON; table: control-flow "
                           "table + crossing counters")
    p_tr.add_argument("--out", help="write to a file instead of stdout")
    _add_budget_args(p_tr)
    _add_engine_arg(p_tr)
    p_tr.set_defaults(fn=cmd_trace)

    p_st = sub.add_parser(
        "stats",
        help="print the metrics snapshot (counters / gauges / histograms)")
    p_st.add_argument("example", nargs="?",
                      help="optionally run this example under "
                           "instrumentation first")
    p_st.add_argument("--json", action="store_true")
    _add_budget_args(p_st)
    p_st.set_defaults(fn=cmd_stats)

    p_top = sub.add_parser(
        "top",
        help="run a paper example under the hot-code profiler and rank "
             "lambdas/blocks by self steps")
    p_top.add_argument("example",
                       help="example name or figure alias (e.g. fig17)")
    p_top.add_argument("--limit", type=int, default=20,
                       help="rows to print (default 20)")
    p_top.add_argument("--json", action="store_true",
                       help="print the full ProfileSnapshot as JSON")
    p_top.add_argument("--out",
                       help="also save the ProfileSnapshot artifact here")
    p_top.add_argument("--promote-threshold", type=int, default=None,
                       dest="promote_threshold", metavar="N",
                       help="instead of the table, print the digests of T "
                            "blocks with >= N attributed self steps (the "
                            "list repro.tal.fast.promote_digests and "
                            "FUNTAL_TAL_PROMOTE consume)")
    _add_budget_args(p_top)
    _add_engine_arg(p_top)
    p_top.set_defaults(fn=cmd_top)

    p_ti = sub.add_parser(
        "tiers",
        help="inspect adaptive-tiering state: validation receipts in "
             "the artifact store, per-digest controller states")
    p_ti.add_argument("--store", default=None, metavar="DIR",
                      help="artifact store directory (default "
                           "FUNTAL_STORE / the active policy's store)")
    p_ti.add_argument("--state", default=None, metavar="FILE",
                      help="a TieringController snapshot saved with "
                           "save() (adds the state-machine columns)")
    p_ti.add_argument("--json", action="store_true")
    p_ti.set_defaults(fn=cmd_tiers)

    p_fl = sub.add_parser(
        "flame",
        help="run a paper example under the profiler and emit folded "
             "stacks (flamegraph.pl / speedscope input)")
    p_fl.add_argument("example",
                      help="example name or figure alias (e.g. fig17)")
    p_fl.add_argument("--out", help="write to a file instead of stdout")
    _add_budget_args(p_fl)
    _add_engine_arg(p_fl)
    p_fl.set_defaults(fn=cmd_flame)

    p_slo = sub.add_parser(
        "slo",
        help="run the paper examples on a worker pool and check "
             "serve.job.ms quantiles against thresholds (exit 7 on "
             "breach)")
    p_slo.add_argument("--workers", type=int, default=4)
    p_slo.add_argument("--repeat", type=int, default=3,
                       help="submissions of the example set (default 3)")
    p_slo.add_argument("--fuel", type=int, default=None)
    p_slo.add_argument("--timeout", type=float, default=None)
    p_slo.add_argument("--p50-ms", type=float, default=None,
                       help="breach when p50 latency exceeds this")
    p_slo.add_argument("--p95-ms", type=float, default=None,
                       help="breach when p95 latency exceeds this")
    p_slo.add_argument("--p99-ms", type=float, default=None,
                       help="breach when p99 latency exceeds this")
    p_slo.add_argument("--max-error-rate", type=float, default=None,
                       help="breach when failed/total exceeds this")
    p_slo.add_argument("--json", action="store_true")
    p_slo.set_defaults(fn=cmd_slo)

    p_srv = sub.add_parser(
        "serve",
        help="run the JSON-lines TCP evaluation service over a "
             "crash-isolated worker pool")
    p_srv.add_argument("--host", default="127.0.0.1")
    p_srv.add_argument("--port", type=int, default=4017)
    p_srv.add_argument("--workers", type=int, default=2)
    p_srv.add_argument("--cache-size", type=int, default=1024,
                       help="result-cache entries (0 disables caching)")
    p_srv.add_argument("--queue-size", type=int, default=256,
                       help="bounded pending queue (backpressure limit)")
    p_srv.add_argument("--timeout", type=float, default=30.0,
                       help="default per-job wall-clock seconds")
    p_srv.add_argument("--max-retries", type=int, default=2)
    _add_tiering_args(p_srv)
    p_srv.set_defaults(fn=cmd_serve)

    p_sub = sub.add_parser(
        "submit", help="submit one job to a running funtal serve")
    p_sub.add_argument("file", nargs="?",
                       help="program file ('-' for stdin)")
    p_sub.add_argument("--kind", default="run",
                       choices=("parse", "typecheck", "run", "jit",
                                "equiv"))
    p_sub.add_argument("--example", help="built-in example instead of FILE")
    p_sub.add_argument("--host", default="127.0.0.1")
    p_sub.add_argument("--port", type=int, default=4017)
    _add_budget_args(p_sub)
    _add_engine_arg(p_sub)
    p_sub.add_argument("--checkpoint", action="store_true",
                       help="run: suspend with a resumable snapshot on "
                            "fuel exhaustion instead of failing")
    p_sub.add_argument("--jit", action="store_true",
                       help="run: execute under the guarded JIT "
                            "(faults fall back to the interpreter)")
    p_sub.add_argument("--timeout", type=float, default=None,
                       help="per-job wall-clock seconds")
    p_sub.add_argument("--result-type", default="int")
    p_sub.add_argument("--trace", action="store_true")
    p_sub.add_argument("--optimize", action="store_true")
    p_sub.add_argument("--check", action="store_true")
    p_sub.add_argument("--seed", type=int, default=0)
    p_sub.add_argument("--type", help="equiv: the common F type")
    p_sub.add_argument("--right", help="equiv: right-hand program file")
    p_sub.add_argument("--no-cache", action="store_true")
    p_sub.add_argument("--trace-out",
                       help="capture the worker's spans and write the "
                            "stitched cross-process trace here")
    p_sub.add_argument("--format", choices=("jsonl", "chrome"),
                       default="jsonl",
                       help="--trace-out format (default jsonl)")
    p_sub.set_defaults(fn=cmd_submit)

    p_bat = sub.add_parser(
        "batch",
        help="run a .jsonl job file (or all paper examples) on a local "
             "worker pool")
    p_bat.add_argument("file", nargs="?",
                       help="jobs, one JSON object per line ('-' stdin)")
    p_bat.add_argument("--examples", action="store_true",
                       help="run every built-in paper example instead "
                            "of a file")
    p_bat.add_argument("--repeat", type=int, default=1,
                       help="with --examples: submit the set N times")
    _add_budget_args(p_bat)
    _add_engine_arg(p_bat)
    p_bat.add_argument("--workers", type=int, default=4)
    p_bat.add_argument("--cache-size", type=int, default=1024)
    p_bat.add_argument("--no-cache", action="store_true")
    p_bat.add_argument("--timeout", type=float, default=None)
    p_bat.add_argument("--max-retries", type=int, default=2)
    p_bat.add_argument("--out", help="write results here instead of stdout")
    p_bat.add_argument("--trace-out",
                       help="record the batch under the obs layer and "
                            "write the stitched cross-process trace here")
    p_bat.add_argument("--format", choices=("jsonl", "chrome"),
                       default="jsonl",
                       help="--trace-out format (default jsonl)")
    _add_tiering_args(p_bat)
    p_bat.set_defaults(fn=cmd_batch)

    p_ch = sub.add_parser(
        "chaos",
        help="run the paper examples under deterministic fault injection "
             "and assert every degradation path (see docs/resilience.md)")
    p_ch.add_argument("mode", nargs="?", choices=("drill",),
                      help="'drill' with --serve storms a live worker "
                           "pool (kills, hangs, corrupt envelopes, "
                           "store faults) and asserts zero lost jobs")
    p_ch.add_argument("--serve", action="store_true",
                      help="with 'drill': attack the serve fleet instead "
                           "of the in-process seams")
    p_ch.add_argument("--seed", type=int, default=0,
                      help="serve drill corpus/fault seed")
    p_ch.add_argument("--jobs", type=int, default=200,
                      help="serve drill corpus size")
    p_ch.add_argument("--workers", type=int, default=4,
                      help="serve drill pool size")
    p_ch.add_argument("--fault-rate", type=float, default=0.1,
                      help="serve drill share of jobs carrying a fault")
    p_ch.add_argument("--seeds", default="0,1,2",
                      help="comma-separated fault-plane seeds")
    p_ch.add_argument("--rate", type=float, default=0.05,
                      help="per-probe fault probability")
    p_ch.add_argument("--seams",
                      help="comma-separated seam subset (default: all)")
    p_ch.add_argument("--examples",
                      help="comma-separated example subset (default: all)")
    p_ch.add_argument("--fuel", type=int, default=None)
    p_ch.add_argument("--json", action="store_true")
    p_ch.set_defaults(fn=cmd_chaos)
    return parser


def main(argv: Optional[list] = None) -> int:
    parser = build_arg_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except ResourceExhausted as err:
        # Deliberate single line + dedicated code: a tripped governor
        # (fuel, heap cells, stack depth) is the bounded machines'
        # verdict on divergence / runaway allocation, not an internal
        # error, so scripts must be able to tell them apart.
        print(f"{type(err).__name__}: {err}", file=sys.stderr)
        return EXIT_FUEL_EXHAUSTED
    except FunTALError as err:
        print(f"error: {err}", file=sys.stderr)
        return 1
    except RecursionError:
        # The machines convert their own RecursionErrors to
        # StackDepthExhausted (handled above); one escaping here comes
        # from the recursive-descent parser or the pretty-printer on a
        # pathologically nested program.
        print("error: program too deeply nested for the surface "
              "parser/printer", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())

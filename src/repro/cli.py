"""``funtal`` -- command-line typechecker, stepper, and example runner.

The reproduction's counterpart to the paper artifact's in-browser tools::

    funtal parse FILE            # parse and pretty-print back
    funtal typecheck FILE        # infer and print the type (and out-stack)
    funtal run FILE [--fuel N] [--trace]   # evaluate; --trace prints the
                                 # jump-level control-flow table
    funtal examples [NAME]       # list / run the built-in paper examples
    funtal trace NAME --format jsonl|chrome|table
                                 # run a paper example under the
                                 # observability layer and export the trace
    funtal stats [NAME] [--json] # metrics snapshot (optionally after
                                 # running an example under instrumentation)

FILE contains either an F(T) expression or a bare T component in the
surface syntax (see README).  ``-`` reads from stdin.  Figure names
(``fig11``, ``fig16``, ``fig17``) alias the corresponding examples; see
``docs/observability.md`` for the tracing workflow.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Optional, Tuple

from repro.analysis.trace import control_flow_table, format_table
from repro.errors import FunTALError
from repro.f.syntax import FExpr
from repro.ft.machine import evaluate_ft, run_ft_component
from repro.ft.typecheck import check_ft_component, check_ft_expr
from repro.surface.parser import parse_program
from repro.surface.pretty import pretty_component
from repro.tal.syntax import Component, NIL_STACK, QEnd, TalType

__all__ = ["main", "EXAMPLES"]


def _load(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def cmd_parse(args: argparse.Namespace) -> int:
    node = parse_program(_load(args.file))
    if isinstance(node, Component):
        print(pretty_component(node))
    else:
        print(node)
    return 0


def cmd_typecheck(args: argparse.Namespace) -> int:
    node = parse_program(_load(args.file))
    if isinstance(node, Component):
        # A bare component needs a halting marker; --result-type names the
        # T type it halts with (surface syntax), default int.
        from repro.surface.parser import parse_ttype

        result: TalType = parse_ttype(args.result_type)
        ty, sigma = check_ft_component(node, q=QEnd(result, NIL_STACK))
        print(f"component : {ty} ; {sigma}")
    else:
        ty, sigma = check_ft_expr(node)
        print(f"expression : {ty} ; {sigma}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    node = parse_program(_load(args.file))
    if isinstance(node, Component):
        halted, machine = run_ft_component(node, fuel=args.fuel,
                                           trace=args.trace)
        print(f"halted with {halted.word} : {halted.ty}")
    else:
        value, machine = evaluate_ft(node, fuel=args.fuel, trace=args.trace)
        print(f"value: {value}")
    if args.trace:
        rows = control_flow_table(machine.trace)
        print()
        print(format_table(rows, title="control flow"))
    return 0


def cmd_equiv(args: argparse.Namespace) -> int:
    from repro.equiv.checker import check_equivalence
    from repro.surface.parser import parse_fexpr, parse_ftype

    left = parse_fexpr(_load(args.left))
    right = parse_fexpr(_load(args.right))
    ty = parse_ftype(args.type)
    report = check_equivalence(left, right, ty, fuel=args.fuel,
                               seed=args.seed)
    print(report)
    if not report.equivalent:
        return 3
    for name, obs in report.agreements:
        print(f"  agreed on {name}: {obs}")
    return 0


def cmd_jit(args: argparse.Namespace) -> int:
    from repro.f.syntax import Lam
    from repro.jit.compiler import compile_function, is_compilable
    from repro.surface.parser import parse_fexpr
    from repro.tal.optimize import optimize_component

    source = parse_fexpr(_load(args.file))
    if not is_compilable(source):
        print("error: not a compilable lambda (first-order arithmetic "
              "fragment: int parameters; literals, parameters, + - *, "
              "if0)", file=sys.stderr)
        return 2
    compiled = compile_function(source)
    comp = compiled.body.fn.comp
    if args.optimize:
        comp = optimize_component(comp)
    from repro.surface.pretty import pretty_component

    print(pretty_component(comp))
    if args.check:
        from repro.equiv.checker import check_equivalence
        from repro.f.typecheck import typecheck as f_typecheck
        from repro.ft.syntax import Boundary
        from repro.f.syntax import App, Var

        rebuilt = Lam(compiled.params,
                      App(Boundary(compiled.body.fn.ty, comp),
                          tuple(Var(x) for x, _ in compiled.params)))
        report = check_equivalence(source, rebuilt, f_typecheck(source),
                                   fuel=args.fuel)
        print()
        print(f"equivalence obligation: {report}")
        if not report.equivalent:
            return 3
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.lint import lint_component
    from repro.ft.syntax import Boundary

    node = parse_program(_load(args.file))
    components = []
    if isinstance(node, Component):
        components.append(("<program>", node))
    else:
        from repro.f.syntax import iter_subexprs

        for sub in iter_subexprs(node):
            if isinstance(sub, Boundary):
                components.append((f"FT[{sub.ty}]", sub.comp))
    total = 0
    for where, comp in components:
        for warning in lint_component(comp):
            print(f"{where} {warning}")
            total += 1
    if total == 0:
        print("clean: no lint warnings")
    return 0 if total == 0 else 4


def _example_entries() -> Dict[str, Tuple[str, Callable[[], FExpr]]]:
    from repro.f.syntax import App, IntE, TupleE
    from repro.papers_examples import (
        fig11_jit, fig16_two_blocks, fig17_factorial,
    )

    return {
        "jit-source": ("Fig 11 source program (pure F)",
                       fig11_jit.build_source),
        "jit": ("Fig 11 JIT-compiled mixed program", fig11_jit.build_jit),
        "two-blocks-1": ("Fig 16 one-block add-two, applied to 5",
                         lambda: App(fig16_two_blocks.build_f1(),
                                     (IntE(5),))),
        "two-blocks-2": ("Fig 16 two-block add-two, applied to 5",
                         lambda: App(fig16_two_blocks.build_f2(),
                                     (IntE(5),))),
        "fact-f": ("Fig 17 functional factorial of 6",
                   lambda: App(fig17_factorial.build_fact_f(), (IntE(6),))),
        "fact-t": ("Fig 17 imperative factorial of 6",
                   lambda: App(fig17_factorial.build_fact_t(), (IntE(6),))),
        "fig17": ("Fig 17 both factorials of 6 (functional, then "
                  "imperative)",
                  lambda: TupleE((
                      App(fig17_factorial.build_fact_f(), (IntE(6),)),
                      App(fig17_factorial.build_fact_t(), (IntE(6),))))),
    }


#: Figure-number aliases accepted wherever an example name is.
EXAMPLE_ALIASES = {
    "fig11": "jit",
    "fig11-source": "jit-source",
    "fig16": "two-blocks-2",
}


def _resolve_example(name: str):
    """Look up an example by name or figure alias; None when unknown."""
    entries = _example_entries()
    return entries.get(EXAMPLE_ALIASES.get(name, name))


EXAMPLES = _example_entries


def cmd_examples(args: argparse.Namespace) -> int:
    entries = _example_entries()
    if not args.name:
        print("built-in paper examples (funtal examples NAME to run):")
        for name, (blurb, _) in entries.items():
            print(f"  {name:14s} {blurb}")
        return 0
    entry = _resolve_example(args.name)
    if entry is None:
        print(f"unknown example {args.name!r}", file=sys.stderr)
        return 2
    blurb, build = entry
    program = build()
    print(f"-- {blurb}")
    print(program)
    ty, _ = check_ft_expr(program)
    print(f"type: {ty}")
    value, machine = evaluate_ft(program, trace=args.trace)
    print(f"value: {value}")
    if args.trace:
        print()
        print(format_table(control_flow_table(machine.trace),
                           title="control flow"))
    return 0


def _run_example_instrumented(name: str, fuel: int):
    """Run a paper example under the observability layer; returns
    ``(value, machine, events, metrics_snapshot)`` or ``None`` if the name
    is unknown."""
    from repro import obs

    entry = _resolve_example(name)
    if entry is None:
        return None
    _, build = entry
    program = build()
    obs.reset()
    obs.enable(record=True)
    try:
        value, machine = evaluate_ft(program, fuel=fuel, trace=True)
        # Append the final counter totals to the stream (while the bus is
        # still recording) so exported traces are self-contained -- one
        # Counter event per metric, not one per increment.
        obs.OBS.metrics.flush_to(obs.OBS.bus)
    finally:
        obs.disable()
    events = obs.OBS.bus.drain()
    return value, machine, events, obs.OBS.metrics.snapshot()


def cmd_trace(args: argparse.Namespace) -> int:
    import json as _json

    from repro import obs
    from repro.obs.events import MachineEvent

    result = _run_example_instrumented(args.example, args.fuel)
    if result is None:
        print(f"unknown example {args.example!r} (see 'funtal examples')",
              file=sys.stderr)
        return 2
    value, machine, events, snapshot = result

    try:
        out = open(args.out, "w", encoding="utf-8") if args.out \
            else sys.stdout
    except OSError as err:
        print(f"error: cannot write {args.out}: {err}", file=sys.stderr)
        return 1
    try:
        if args.format == "jsonl":
            obs.export_jsonl(events, out)
        elif args.format == "chrome":
            obs.export_chrome(events, out)
        else:
            machine_events = [e for e in events
                              if isinstance(e, MachineEvent)]
            rows = control_flow_table(machine_events)
            print(f"value: {value}", file=out)
            print(file=out)
            print(format_table(rows, title=f"{args.example} control flow"),
                  file=out)
            crossings = {
                k: v for k, v in snapshot["counters"].items()
                if k.startswith("ft.boundary.")}
            print(file=out)
            print("boundary crossings: "
                  + (_json.dumps(crossings) if crossings else "none"),
                  file=out)
    finally:
        if args.out:
            out.close()
    if args.out:
        print(f"wrote {len(events)} events to {args.out}", file=sys.stderr)
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    import json as _json

    from repro import obs

    if args.example:
        result = _run_example_instrumented(args.example, args.fuel)
        if result is None:
            print(f"unknown example {args.example!r} "
                  "(see 'funtal examples')", file=sys.stderr)
            return 2
        snapshot = result[3]
    else:
        snapshot = obs.OBS.metrics.snapshot()
    if args.json:
        print(_json.dumps(snapshot, indent=2, sort_keys=True))
    else:
        print(obs.OBS.metrics.format_table() if args.example
              else _format_snapshot(snapshot))
    return 0


def _format_snapshot(snapshot: Dict) -> str:
    if not any(snapshot.values()):
        return "(no metrics recorded in this process)"
    lines = []
    for section in ("counters", "gauges"):
        for name, value in snapshot[section].items():
            lines.append(f"{name}  {value}")
    for name, h in snapshot["histograms"].items():
        lines.append(f"{name}  count={h['count']} mean={h['mean']}")
    return "\n".join(lines)


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="funtal",
        description="FunTAL multi-language tools (PLDI 2017 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_parse = sub.add_parser("parse", help="parse and pretty-print")
    p_parse.add_argument("file")
    p_parse.set_defaults(fn=cmd_parse)

    p_check = sub.add_parser("typecheck", help="typecheck a program")
    p_check.add_argument("file")
    p_check.add_argument("--result-type", default="int",
                         help="halt type for bare T components")
    p_check.set_defaults(fn=cmd_typecheck)

    p_run = sub.add_parser("run", help="evaluate a program")
    p_run.add_argument("file")
    p_run.add_argument("--fuel", type=int, default=1_000_000)
    p_run.add_argument("--trace", action="store_true",
                       help="print the jump-level control-flow table")
    p_run.set_defaults(fn=cmd_run)

    p_eq = sub.add_parser(
        "equiv",
        help="differentially test two expressions for contextual "
             "equivalence at a type")
    p_eq.add_argument("left")
    p_eq.add_argument("right")
    p_eq.add_argument("--type", required=True,
                      help="the common F type, e.g. '(int) -> int'")
    p_eq.add_argument("--fuel", type=int, default=30_000)
    p_eq.add_argument("--seed", type=int, default=0)
    p_eq.set_defaults(fn=cmd_equiv)

    p_jit = sub.add_parser(
        "jit", help="compile an F lambda to typed assembly")
    p_jit.add_argument("file")
    p_jit.add_argument("--optimize", action="store_true",
                       help="run the peephole optimizer on the result")
    p_jit.add_argument("--check", action="store_true",
                       help="discharge the equivalence obligation")
    p_jit.add_argument("--fuel", type=int, default=25_000)
    p_jit.set_defaults(fn=cmd_jit)

    p_lint = sub.add_parser(
        "lint", help="static lints over the program's components")
    p_lint.add_argument("file")
    p_lint.set_defaults(fn=cmd_lint)

    p_ex = sub.add_parser("examples", help="list or run paper examples")
    p_ex.add_argument("name", nargs="?")
    p_ex.add_argument("--trace", action="store_true")
    p_ex.set_defaults(fn=cmd_examples)

    p_tr = sub.add_parser(
        "trace",
        help="run a paper example under the observability layer and "
             "export the structured trace")
    p_tr.add_argument("example",
                      help="example name or figure alias (e.g. fig17)")
    p_tr.add_argument("--format", choices=("jsonl", "chrome", "table"),
                      default="table",
                      help="jsonl: one event per line; chrome: "
                           "chrome://tracing JSON; table: control-flow "
                           "table + crossing counters")
    p_tr.add_argument("--out", help="write to a file instead of stdout")
    p_tr.add_argument("--fuel", type=int, default=1_000_000)
    p_tr.set_defaults(fn=cmd_trace)

    p_st = sub.add_parser(
        "stats",
        help="print the metrics snapshot (counters / gauges / histograms)")
    p_st.add_argument("example", nargs="?",
                      help="optionally run this example under "
                           "instrumentation first")
    p_st.add_argument("--json", action="store_true")
    p_st.add_argument("--fuel", type=int, default=1_000_000)
    p_st.set_defaults(fn=cmd_stats)
    return parser


def main(argv: Optional[list] = None) -> int:
    parser = build_arg_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except FunTALError as err:
        print(f"error: {err}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())

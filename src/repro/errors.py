"""Shared error hierarchy for the FunTAL reproduction.

Every user-facing failure in the library is an instance of :class:`FunTALError`
so that callers (CLI, tests, the equivalence checker) can catch one root type.
The main judgment families each get their own subclass:

* :class:`FTTypeError` -- a typing judgment failed (F, T, or FT).
* :class:`MachineError` -- the abstract machine got stuck.  A *well-typed*
  program never raises this (type safety); the machine raises it eagerly on
  ill-formed states so that the property tests can detect safety violations.
* :class:`ParseError` -- the surface-syntax parser rejected its input.
* :class:`ResourceExhausted` -- a resource governor tripped.  This is the
  structured family the resilience layer (:mod:`repro.resilience`) raises
  when a :class:`~repro.resilience.budget.Budget` ceiling is hit: *fuel*
  (:class:`FuelExhausted`), *heap cells* (:class:`HeapExhausted`), or
  *evaluation depth* (:class:`StackDepthExhausted`).  None of these are
  errors in the paper's semantics -- they are how the bounded machines
  observe (potential) divergence and runaway allocation without dying.
* :class:`SnapshotError` -- a machine checkpoint could not be captured or
  restored (unpicklable state, hash mismatch, truncation).
* :class:`LinkError` -- separately compiled components could not be linked
  (duplicate exports, unresolved/cyclic imports, interface mismatches);
  see :mod:`repro.link`.
* :class:`InjectedFault` -- a deterministic chaos fault fired at a named
  seam (:mod:`repro.resilience.chaos`).  Tests use it to assert that every
  degradation path is handled; it must never escape as an unhandled
  non-FunTAL exception.
* :class:`OverloadError` -- the serving layer declined work it could not
  take on right now.  Its two subclasses carry distinct recovery advice:
  :class:`QueueFull` (the bounded pool queue is at capacity -- back off
  for ``retry_after_ms`` and resubmit) and :class:`PoolClosed` (the pool
  is shutting down -- resubmission to this pool is pointless).  The
  serve layer maps them to distinct wire statuses (``overloaded`` vs
  ``rejected``) so clients handle transient and terminal refusals
  differently.
"""

from __future__ import annotations

from typing import Optional


class FunTALError(Exception):
    """Root of the library's error hierarchy."""


class FTTypeError(FunTALError):
    """A typing judgment of F, T, or FT failed.

    ``judgment`` names the judgment that failed (e.g. ``"tal.instruction"``)
    and ``subject`` carries a pretty-printed copy of the offending term, both
    of which are folded into ``str(err)``.
    """

    def __init__(self, message: str, *, judgment: str = "", subject: str = ""):
        self.judgment = judgment
        self.subject = subject
        parts = [message]
        if judgment:
            parts.append(f"[judgment: {judgment}]")
        if subject:
            parts.append(f"[subject: {subject}]")
        super().__init__(" ".join(parts))


class CompileError(FTTypeError):
    """The expression falls outside the compilable fragment.

    Raised by both the arithmetic JIT tier (:mod:`repro.jit.compiler`) and
    the general F-to-T compiler (:mod:`repro.compile`); eligibility probes
    catch it to decide tier routing.
    """


class MachineError(FunTALError):
    """The abstract machine reached a stuck state.

    Type safety (progress + preservation) guarantees this is unreachable from
    well-typed programs; it exists so that the machine fails loudly instead of
    silently corrupting memory when driven with ill-typed inputs.
    """


class ResourceExhausted(FunTALError):
    """A bounded evaluation hit one of its resource ceilings.

    ``resource`` names the governed dimension (``"fuel"``, ``"heap"``,
    ``"depth"``), ``limit`` is the configured ceiling and ``spent`` how much
    had been consumed when the governor tripped.  Catching this one type
    covers every budget dimension; the subclasses exist so callers that care
    (the CLI's exit codes, the equivalence checker's divergence verdict) can
    be precise.
    """

    resource = "resource"

    def __init__(self, limit: int, spent: Optional[int] = None,
                 message: Optional[str] = None):
        self.limit = limit
        self.spent = limit if spent is None else spent
        super().__init__(
            message or f"{self.resource} budget exhausted: "
                       f"spent {self.spent} of {limit}")


class FuelExhausted(ResourceExhausted):
    """A bounded evaluation ran out of fuel before producing a value.

    This is *not* an error in the paper's semantics -- it is how the
    reproduction observes (potential) divergence, e.g. for the negative-input
    case of the factorial example (Fig 17).
    """

    resource = "fuel"

    def __init__(self, fuel: int, spent: Optional[int] = None):
        self.fuel = fuel
        super().__init__(
            fuel, spent,
            f"evaluation did not terminate within {fuel} steps")


class HeapExhausted(ResourceExhausted):
    """The machine's heap-cell budget is spent (runaway allocation)."""

    resource = "heap"


class StackDepthExhausted(ResourceExhausted):
    """Evaluation-context / machine-stack depth exceeded its ceiling.

    Also raised when Python's own recursion limit is hit inside the
    evaluator (deep substitutions, pathological value checks): the
    interpreter crash is caught at the machine boundary and surfaced as
    this structured verdict instead of a raw :class:`RecursionError`.
    """

    resource = "depth"


class SnapshotError(FunTALError):
    """A machine checkpoint could not be captured, encoded, or restored."""


class InjectedFault(FunTALError):
    """A chaos fault fired at a named seam (deterministic, seeded).

    ``seam`` names the injection point, e.g. ``"heap.alloc"`` or
    ``"jit.compile"`` -- see :data:`repro.resilience.chaos.SEAMS`.
    """

    def __init__(self, seam: str, detail: str = ""):
        self.seam = seam
        extra = f": {detail}" if detail else ""
        super().__init__(f"injected fault at seam {seam!r}{extra}")


class LinkError(FunTALError):
    """Separate compilation could not be combined into a program.

    Raised by :mod:`repro.link` for every structured linking failure:
    duplicate exports, unresolved or cyclic imports, and import/export
    interface mismatches.  ``stage`` names the link phase that failed
    (``"resolve"``, ``"interface"``, ``"exports"``, ``"cycle"``,
    ``"manifest"``) and ``subject`` the offending component or import
    name, so callers (CLI, serve) can report which edge of the component
    graph broke without parsing the message.
    """

    def __init__(self, message: str, *, stage: str = "",
                 subject: str = ""):
        self.stage = stage
        self.subject = subject
        parts = [message]
        if stage:
            parts.append(f"[stage: {stage}]")
        if subject:
            parts.append(f"[subject: {subject}]")
        super().__init__(" ".join(parts))


class OverloadError(FunTALError):
    """The serving layer refused work (admission control).

    Catch this one type to cover every refusal; the subclasses tell a
    caller whether backing off helps.
    """


class QueueFull(OverloadError):
    """The pool's bounded pending queue is at capacity (``block=False``).

    ``retry_after_ms`` is the pool's load-shedding advice: an estimate of
    how long the queue needs to drain one slot, suitable for a jittered
    client backoff.  Zero means the pool could not estimate.
    """

    def __init__(self, message: str, *, retry_after_ms: int = 0):
        self.retry_after_ms = retry_after_ms
        super().__init__(message)


class PoolClosed(OverloadError):
    """submit() after close(); resubmission to this pool cannot succeed."""


class ParseError(FunTALError):
    """The surface parser rejected its input."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        where = f" at {line}:{column}" if line else ""
        super().__init__(f"{message}{where}")

"""Shared error hierarchy for the FunTAL reproduction.

Every user-facing failure in the library is an instance of :class:`FunTALError`
so that callers (CLI, tests, the equivalence checker) can catch one root type.
The three main judgment families each get their own subclass:

* :class:`FTTypeError` -- a typing judgment failed (F, T, or FT).
* :class:`MachineError` -- the abstract machine got stuck.  A *well-typed*
  program never raises this (type safety); the machine raises it eagerly on
  ill-formed states so that the property tests can detect safety violations.
* :class:`ParseError` -- the surface-syntax parser rejected its input.
"""

from __future__ import annotations


class FunTALError(Exception):
    """Root of the library's error hierarchy."""


class FTTypeError(FunTALError):
    """A typing judgment of F, T, or FT failed.

    ``judgment`` names the judgment that failed (e.g. ``"tal.instruction"``)
    and ``subject`` carries a pretty-printed copy of the offending term, both
    of which are folded into ``str(err)``.
    """

    def __init__(self, message: str, *, judgment: str = "", subject: str = ""):
        self.judgment = judgment
        self.subject = subject
        parts = [message]
        if judgment:
            parts.append(f"[judgment: {judgment}]")
        if subject:
            parts.append(f"[subject: {subject}]")
        super().__init__(" ".join(parts))


class MachineError(FunTALError):
    """The abstract machine reached a stuck state.

    Type safety (progress + preservation) guarantees this is unreachable from
    well-typed programs; it exists so that the machine fails loudly instead of
    silently corrupting memory when driven with ill-typed inputs.
    """


class FuelExhausted(FunTALError):
    """A bounded evaluation ran out of fuel before producing a value.

    This is *not* an error in the paper's semantics -- it is how the
    reproduction observes (potential) divergence, e.g. for the negative-input
    case of the factorial example (Fig 17).
    """

    def __init__(self, fuel: int):
        self.fuel = fuel
        super().__init__(f"evaluation did not terminate within {fuel} steps")


class ParseError(FunTALError):
    """The surface parser rejected its input."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        where = f" at {line}:{column}" if line else ""
        super().__init__(f"{message}{where}")

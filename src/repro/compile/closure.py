"""Closure conversion: F terms to a first-class, environment-explicit IR.

This is the compiler's middle pass.  The source is any core-F term
(higher-order functions, multi-argument lambdas, tuples, iso-recursive
``fold``/``unfold``, ``unit``, ``if0``, the full primitive set); the
output is a :class:`ClosProgram` in which

* every lambda has been *hoisted* into a :class:`CodeDef` -- a
  top-level code definition with explicit parameters **and** an explicit
  environment tuple listing the variables it captures;
* every variable occurrence is resolved to how the current frame can
  reach it: its own parameter (:class:`CParam`), a slot of its
  environment tuple (:class:`CCaptureRef`), or a variable left free by
  the caller (:class:`CFree`, only for open compilations driven through
  an explicit ``gamma``);
* every node is annotated with its F type, so the code generator never
  re-runs inference.

The pass is a pure function (:func:`closure_convert`); the IR pretty-
prints via :meth:`ClosProgram.pretty` (surfaced by ``funtal compile
--ir``).  Capture lists are sorted by name, so conversion is
deterministic and compiled artifacts can be content-addressed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import CompileError
from repro.f.syntax import (
    App, BinOp, FArrow, FExpr, Fold, free_vars, FInt, FRec, FTupleT, FType,
    FUnit, If0, IntE, Lam, Proj, TupleE, Unfold, UnitE, Var,
)
from repro.compile.names import NameSupply

__all__ = [
    "CExpr", "CInt", "CUnit", "CParam", "CCaptureRef", "CFree", "CBin",
    "CIf0", "CTuple", "CProj", "CFold", "CUnfold", "CCall", "CClos",
    "CodeDef", "ClosProgram", "closure_convert",
]


def _fail(msg: str, subject) -> CompileError:
    return CompileError(msg, judgment="compile.closure", subject=str(subject))


# ---------------------------------------------------------------------------
# The IR
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CExpr:
    """Base class: every node carries its F type."""

    ty: FType


@dataclass(frozen=True)
class CInt(CExpr):
    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class CUnit(CExpr):
    def __str__(self) -> str:
        return "()"


@dataclass(frozen=True)
class CParam(CExpr):
    """A parameter of the current frame (index = declaration order)."""

    name: str
    index: int

    def __str__(self) -> str:
        return f"{self.name}#p{self.index}"


@dataclass(frozen=True)
class CCaptureRef(CExpr):
    """Slot ``index`` of the current frame's environment tuple."""

    name: str
    index: int

    def __str__(self) -> str:
        return f"{self.name}#env[{self.index}]"


@dataclass(frozen=True)
class CFree(CExpr):
    """A variable the *whole compilation* leaves free (open terms)."""

    name: str

    def __str__(self) -> str:
        return f"{self.name}#free"


@dataclass(frozen=True)
class CBin(CExpr):
    op: str
    left: CExpr
    right: CExpr

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class CIf0(CExpr):
    cond: CExpr
    then: CExpr
    els: CExpr

    def __str__(self) -> str:
        return f"if0 {self.cond} then {self.then} else {self.els}"


@dataclass(frozen=True)
class CTuple(CExpr):
    items: Tuple[CExpr, ...]

    def __str__(self) -> str:
        return "<" + ", ".join(str(i) for i in self.items) + ">"


@dataclass(frozen=True)
class CProj(CExpr):
    index: int
    body: CExpr

    def __str__(self) -> str:
        return f"pi{self.index}({self.body})"


@dataclass(frozen=True)
class CFold(CExpr):
    body: CExpr

    def __str__(self) -> str:
        return f"fold[{self.ty}] {self.body}"


@dataclass(frozen=True)
class CUnfold(CExpr):
    body: CExpr

    def __str__(self) -> str:
        return f"unfold {self.body}"


@dataclass(frozen=True)
class CCall(CExpr):
    fn: CExpr
    args: Tuple[CExpr, ...]

    def __str__(self) -> str:
        return f"{self.fn}({', '.join(str(a) for a in self.args)})"


@dataclass(frozen=True)
class CClos(CExpr):
    """Make a closure: ``code_id`` paired with its environment tuple.

    ``captures`` are the environment *initializers*, resolved in the
    frame where the closure is created -- each is a :class:`CParam`,
    :class:`CCaptureRef`, or :class:`CFree`, in the order of the
    definition's capture list.  A closed lambda has no captures and
    compiles to a bare code pointer.
    """

    code_id: str
    captures: Tuple[CExpr, ...]

    def __str__(self) -> str:
        if not self.captures:
            return f"clos {self.code_id}"
        env = ", ".join(str(c) for c in self.captures)
        return f"clos {self.code_id} <{env}>"


@dataclass(frozen=True)
class CodeDef:
    """A hoisted lambda: explicit parameters, captures, typed body."""

    code_id: str
    params: Tuple[Tuple[str, FType], ...]
    captures: Tuple[Tuple[str, FType], ...]
    body: CExpr
    arrow: FArrow

    def pretty(self) -> str:
        params = ", ".join(f"{x}: {t}" for x, t in self.params)
        env = ", ".join(f"{x}: {t}" for x, t in self.captures)
        head = f"code {self.code_id}({params})"
        if env:
            head += f" env <{env}>"
        return f"{head} : {self.arrow} =\n  {self.body}"


@dataclass(frozen=True)
class ClosProgram:
    """The pass output: hoisted definitions plus the main term.

    ``main_code`` names the entry definition when the source was itself
    a lambda (the common ``compile_function`` case); ``main`` is the
    converted body expression when the source was a non-lambda term.
    """

    defs: Tuple[CodeDef, ...]
    ty: FType
    main: Optional[CExpr] = None
    main_code: Optional[str] = None
    free: Tuple[Tuple[str, FType], ...] = ()

    def get(self, code_id: str) -> CodeDef:
        for d in self.defs:
            if d.code_id == code_id:
                return d
        raise KeyError(code_id)

    def pretty(self) -> str:
        parts = [d.pretty() for d in self.defs]
        if self.main_code is not None:
            parts.append(f"main = clos {self.main_code}")
        else:
            parts.append(f"main : {self.ty} =\n  {self.main}")
        return "\n\n".join(parts)


# ---------------------------------------------------------------------------
# The pass
# ---------------------------------------------------------------------------

@dataclass
class _Frame:
    """Name resolution for one lambda (or the main term)."""

    params: Dict[str, Tuple[int, FType]] = field(default_factory=dict)
    captures: Dict[str, Tuple[int, FType]] = field(default_factory=dict)


class _Converter:
    def __init__(self, supply: NameSupply,
                 free: Dict[str, FType]):
        self.supply = supply
        self.free = free
        self.defs: List[CodeDef] = []

    # -- variable lookup ------------------------------------------------

    def lookup(self, name: str, frame: _Frame, subject) -> CExpr:
        if name in frame.params:
            idx, ty = frame.params[name]
            return CParam(ty, name, idx)
        if name in frame.captures:
            idx, ty = frame.captures[name]
            return CCaptureRef(ty, name, idx)
        if name in self.free:
            return CFree(self.free[name], name)
        raise _fail(f"unbound variable {name!r}", subject)

    # -- lambdas --------------------------------------------------------

    def convert_lambda(self, e: Lam, frame: _Frame) -> CClos:
        if type(e) is not Lam:
            raise _fail("stack-modifying lambdas are outside the "
                        "compilable fragment", e)
        names = [x for x, _ in e.params]
        if len(set(names)) != len(names):
            raise _fail("duplicate parameter names", e)
        # Resolve each free variable in the *enclosing* frame; this both
        # builds the environment initializers and determines the capture
        # types.  Variables the whole compilation leaves free do not enter
        # the environment: they stay free at every depth and the caller
        # substitutes them (so a body reference compiles to a direct
        # import instead of an environment projection).
        resolved = [(x, self.lookup(x, frame, e))
                    for x in sorted(free_vars(e))]
        captured = [(x, r) for x, r in resolved if not isinstance(r, CFree)]
        inner = _Frame(
            params={x: (i, t) for i, (x, t) in enumerate(e.params)},
            captures={x: (i, r.ty) for i, (x, r) in enumerate(captured)})
        code_id = self.supply.fresh("f")
        body = self.convert(e.body, inner)
        arrow = FArrow(tuple(t for _, t in e.params), body.ty)
        definition = CodeDef(
            code_id,
            tuple(e.params),
            tuple((x, r.ty) for x, r in captured),
            body, arrow)
        self.defs.append(definition)
        return CClos(arrow, code_id, tuple(r for _, r in captured))

    # -- expressions ----------------------------------------------------

    def convert(self, e: FExpr, frame: _Frame) -> CExpr:
        if isinstance(e, Var):
            return self.lookup(e.name, frame, e)
        if isinstance(e, IntE):
            return CInt(FInt(), e.value)
        if isinstance(e, UnitE):
            return CUnit(FUnit())
        if isinstance(e, BinOp):
            return CBin(FInt(), e.op, self.convert(e.left, frame),
                        self.convert(e.right, frame))
        if isinstance(e, If0):
            cond = self.convert(e.cond, frame)
            then = self.convert(e.then, frame)
            els = self.convert(e.els, frame)
            return CIf0(then.ty, cond, then, els)
        if isinstance(e, Lam):
            return self.convert_lambda(e, frame)
        if isinstance(e, App):
            fn = self.convert(e.fn, frame)
            if not isinstance(fn.ty, FArrow) or type(fn.ty) is not FArrow:
                raise _fail(f"applied expression has type {fn.ty}", e)
            if len(fn.ty.params) != len(e.args):
                raise _fail("arity mismatch in application", e)
            args = tuple(self.convert(a, frame) for a in e.args)
            return CCall(fn.ty.result, fn, args)
        if isinstance(e, TupleE):
            items = tuple(self.convert(i, frame) for i in e.items)
            return CTuple(FTupleT(tuple(i.ty for i in items)), items)
        if isinstance(e, Proj):
            body = self.convert(e.body, frame)
            if not isinstance(body.ty, FTupleT):
                raise _fail(f"projection from type {body.ty}", e)
            return CProj(body.ty.items[e.index], e.index, body)
        if isinstance(e, Fold):
            if not isinstance(e.ann, FRec):
                raise _fail(f"fold annotation {e.ann} is not a mu type", e)
            return CFold(e.ann, self.convert(e.body, frame))
        if isinstance(e, Unfold):
            body = self.convert(e.body, frame)
            if not isinstance(body.ty, FRec):
                raise _fail(f"unfold of type {body.ty}", e)
            return CUnfold(body.ty.unroll(), body)
        raise _fail(
            f"{type(e).__name__} is outside the compilable fragment", e)


def closure_convert(e: FExpr,
                    gamma: Optional[Dict[str, FType]] = None,
                    supply: Optional[NameSupply] = None) -> ClosProgram:
    """Convert a typechecked core-F term into a :class:`ClosProgram`.

    ``gamma`` types any variables the term leaves free (used when the
    JIT compiles a lambda in place under an enclosing binder); the
    converted program then records them in :attr:`ClosProgram.free`.
    """
    conv = _Converter(supply or NameSupply(), dict(gamma or {}))
    frame = _Frame()
    used_free = tuple(sorted(
        (x for x in free_vars(e) if x in conv.free)))
    if isinstance(e, Lam) and type(e) is Lam:
        clos = conv.convert_lambda(e, frame)
        return ClosProgram(tuple(conv.defs), clos.ty,
                           main_code=clos.code_id,
                           free=tuple((x, conv.free[x]) for x in used_free))
    main = conv.convert(e, frame)
    return ClosProgram(tuple(conv.defs), main.ty, main=main,
                       free=tuple((x, conv.free[x]) for x in used_free))

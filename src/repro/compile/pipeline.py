"""The tiered compilation pipeline: eligibility, passes, cache, wrapping.

Two tiers share one entry point and one memoization cache:

* ``arith`` -- the historical JIT fragment (first-order, all-``int``
  lambdas), compiled by :mod:`repro.compile.arith` with byte-identical
  output shape to the old ``repro.jit.compiler``;
* ``general`` -- all of F (higher-order functions, multi-argument
  lambdas, tuples, ``fold``/``unfold``, ``unit``, ``if0``), compiled by
  closure conversion (:mod:`repro.compile.closure`) then stack-machine
  code generation (:mod:`repro.compile.codegen`) with
  :func:`tal.optimize.optimize_component` as a post-pass.

Every compilation is wrapped exactly like the paper's examples:
``lam(x...). (arrow FT component) x...`` for lambdas, ``tau FT
component`` for other closed terms -- so a compiled term substitutes
for its source anywhere in an F program.

Instrumentation: a ``compile.pipeline`` span wraps the run with child
spans per pass; ``compile.*`` counters count compilations, hoisted code
definitions, emitted blocks, and cache traffic (see
``docs/observability.md``).

Results are memoized in :data:`COMPILE_CACHE`, one
:class:`repro.caching.LRUCache` shared by both tiers and by the legacy
:mod:`repro.jit.compiler` facade, keyed on (tier, source term, free-
variable typing) -- sound because the per-compilation
:class:`~repro.compile.names.NameSupply` makes output deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.caching import LRUCache
from repro.errors import CompileError, FunTALError
from repro.obs.events import OBS
from repro.resilience.chaos import probe
from repro.f.syntax import App, FArrow, FExpr, FInt, FType, Lam, Var
from repro.f.typecheck import typecheck as f_typecheck
from repro.ft.syntax import Boundary, StackLam
from repro.tal.optimize import optimize_component
from repro.tal.syntax import Component
from repro.compile.arith import compile_arith, is_arith_compilable
from repro.compile.closure import ClosProgram, closure_convert
from repro.compile.codegen import generate_expr, generate_function
from repro.compile.names import NameSupply

__all__ = [
    "TIER_ARITH", "TIER_GENERAL", "ALL_TIERS", "CompilationResult",
    "COMPILE_CACHE", "clear_compile_cache", "eligible_tier",
    "is_general_compilable", "compile_term", "compile_function",
]

TIER_ARITH = "arith"
TIER_GENERAL = "general"
ALL_TIERS: Tuple[str, ...] = (TIER_ARITH, TIER_GENERAL)

# One memoization cache for both tiers (and the jit facade).  Structurally
# identical terms compile to interchangeable components -- the machine
# renames heap labels freshly at every load -- and the deterministic name
# supply makes the artifact itself reproducible, so entries are safe to
# content-address downstream (the serve layer does).
COMPILE_CACHE: LRUCache = LRUCache(512, metric_prefix="jit.cache")


def clear_compile_cache() -> None:
    """Drop all memoized compilations (used by tests and benchmarks)."""
    COMPILE_CACHE.clear()


@dataclass(frozen=True)
class CompilationResult:
    """Everything the pipeline produced for one term.

    ``wrapped`` is the drop-in FT replacement for the source term;
    ``component`` the generated T component inside it; ``clos`` the
    closure-conversion IR (``None`` for the arith tier, which has no
    middle pass).
    """

    source: FExpr
    tier: str
    ty: FType
    wrapped: FExpr
    component: Component
    clos: Optional[ClosProgram] = None
    free: Tuple[Tuple[str, FType], ...] = ()

    def pretty_ir(self) -> str:
        if self.clos is None:
            return "(arith tier: direct code generation, no closure IR)"
        return self.clos.pretty()

    def block_count(self) -> int:
        return len(self.component.heap)


def is_general_compilable(e: FExpr,
                          gamma: Optional[Dict[str, FType]] = None) -> bool:
    """Does ``e`` lie in the general tier's fragment?  Any core-F term
    that typechecks under ``gamma`` (no FT-only forms, no stack lambdas,
    no free variables beyond ``gamma``)."""
    if isinstance(e, StackLam):
        return False
    try:
        f_typecheck(e, dict(gamma) if gamma else None)
    except FunTALError:
        return False
    except RecursionError:  # pathologically deep terms: just decline
        return False
    return True


def eligible_tier(e: FExpr, gamma: Optional[Dict[str, FType]] = None,
                  tiers: Optional[Tuple[str, ...]] = None) -> Optional[str]:
    """Pick the cheapest enabled tier that covers ``e`` (or ``None``).

    ``tiers=None`` defers to the active tiering policy (all tiers)."""
    if tiers is None:
        tiers = ALL_TIERS
    if TIER_ARITH in tiers and is_arith_compilable(e):
        return TIER_ARITH
    if TIER_GENERAL in tiers and is_general_compilable(e, gamma):
        return TIER_GENERAL
    return None


def _wrap(e: FExpr, ty: FType, comp: Component) -> FExpr:
    """The paper-shaped wrapper making a component a drop-in replacement."""
    if isinstance(e, Lam):
        assert isinstance(ty, FArrow)
        return Lam(e.params,
                   App(Boundary(ty, comp),
                       tuple(Var(x) for x, _ in e.params)))
    return Boundary(ty, comp)


def _compile_uncached(e: FExpr, tier: str,
                      gamma: Optional[Dict[str, FType]],
                      optimize: bool) -> CompilationResult:
    supply = NameSupply()
    if tier == TIER_ARITH:
        comp = compile_arith(e, supply)  # type: ignore[arg-type]
        ty = FArrow(tuple(t for _, t in e.params), FInt())
        return CompilationResult(e, tier, ty, _wrap(e, ty, comp), comp)
    ty = f_typecheck(e, dict(gamma) if gamma else None)
    with OBS.span("compile.closure", "compile"):
        prog = closure_convert(e, gamma, supply)
    with OBS.span("compile.codegen", "compile"):
        if prog.main_code is not None:
            comp = generate_function(prog, supply)
        else:
            comp = generate_expr(prog, supply)
    if optimize:
        with OBS.span("compile.optimize", "compile"):
            comp = optimize_component(comp)
    if OBS.enabled:
        OBS.metrics.inc("compile.defs", len(prog.defs))
        OBS.metrics.inc("compile.blocks", len(comp.heap))
    return CompilationResult(e, tier, ty, _wrap(e, ty, comp), comp,
                             clos=prog, free=prog.free)


def compile_term(e: FExpr, gamma: Optional[Dict[str, FType]] = None,
                 tiers: Optional[Tuple[str, ...]] = None,
                 optimize: bool = True) -> CompilationResult:
    """Compile ``e`` through the best enabled tier (memoized).

    ``tiers=None`` defers tier selection to the active
    :class:`repro.tiering.policy.TieringPolicy` (every tier, for the
    ``compile`` context) -- call sites no longer thread tier tuples by
    hand.  Raises :class:`~repro.errors.CompileError` when no enabled
    tier covers ``e``.
    """
    if tiers is None:
        from repro.tiering.policy import resolve_tiers

        tiers = resolve_tiers(None, "compile")
    tier = eligible_tier(e, gamma, tiers)
    if tier is None:
        raise CompileError(
            f"no enabled tier ({', '.join(tiers)}) covers this term",
            judgment="compile.eligibility", subject=str(e))
    gamma_key = tuple(sorted((gamma or {}).items()))
    key = (tier, e, gamma_key, optimize)
    cached = COMPILE_CACHE.get(key)
    if cached is not None:
        return cached
    arity = len(e.params) if isinstance(e, Lam) else 0
    probe("jit.compile", f"tier {tier} arity {arity}")
    with OBS.span("compile.pipeline", "compile", tier=tier, arity=arity):
        result = _compile_uncached(e, tier, gamma, optimize)
    if OBS.enabled:
        # "jit.compile" is the historical name for "a lambda was actually
        # compiled (cache miss)"; dashboards and tests key on it, so both
        # tiers keep feeding it alongside the namespaced counters.
        OBS.metrics.inc("jit.compile")
        OBS.metrics.inc("compile.compile")
        OBS.metrics.inc(f"compile.tier.{tier}")
    COMPILE_CACHE.put(key, result)
    return result


def compile_function(lam: Lam,
                     gamma: Optional[Dict[str, FType]] = None,
                     tiers: Optional[Tuple[str, ...]] = None,
                     optimize: bool = True) -> CompilationResult:
    """Compile a lambda (the JIT's unit of work)."""
    if not isinstance(lam, Lam) or isinstance(lam, StackLam):
        raise CompileError("only plain lambdas can be compiled as "
                           "functions", judgment="compile.eligibility",
                           subject=str(lam))
    return compile_term(lam, gamma, tiers, optimize)

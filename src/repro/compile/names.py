"""Deterministic per-compilation fresh-name supplies.

The old JIT drew labels from a module-global ``itertools.count()``: two
runs of the same process compiled the same lambda to *differently
labelled* components, and two processes (the serve workers) disagreed
with each other.  That was harmless for execution (the machine renames
heap labels freshly at every load) but fatal for content-addressing:
the serve cache keys results by the bytes of the compiled artifact, so
nondeterministic labels defeat the cache.

A :class:`NameSupply` is created per compilation and threaded through
every pass, so a given source term always compiles to the identical
component -- across calls, runs, and processes.  Both the legacy
arithmetic JIT tier (:mod:`repro.jit.compiler`) and the general compiler
(:mod:`repro.compile`) draw from it.
"""

from __future__ import annotations

from typing import Dict

__all__ = ["NameSupply"]


class NameSupply:
    """Fresh names ``<stem><n>`` with one counter per stem.

    Per-stem counters keep generated artifacts readable (``f0``, ``f1``,
    ``f0_else0`` ...) and, more importantly, *stable*: adding a new kind
    of label to one pass cannot renumber the labels another pass emits.
    """

    __slots__ = ("_counters",)

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}

    def fresh(self, stem: str) -> str:
        n = self._counters.get(stem, 0)
        self._counters[stem] = n + 1
        return f"{stem}{n}"

"""``repro.compile`` -- a closure-converting whole-F -> T compiler.

The pipeline (see ``docs/compiler.md``):

1. **Typecheck** (:mod:`repro.f.typecheck`) -- reject anything outside
   core F and annotate the term's type.
2. **Closure conversion** (:mod:`repro.compile.closure`) -- hoist every
   lambda to a top-level code definition with an explicit environment;
   pretty-printable IR.
3. **Code generation** (:mod:`repro.compile.codegen`) -- stack-machine
   emission per the paper's Fig 9 calling convention; closed lambdas
   become static heap blocks, captured lambdas materialize environment
   tuples at run time through ``import``.
4. **Optimize** (:mod:`repro.tal.optimize`) -- jump threading and
   stack-traffic collapse as a post-pass (general tier only).

Translation validation lives in :mod:`repro.compile.validate`: every
compiled component is typechecked, differentially executed against the
CEK engine, and boundedly equivalence-checked; failures quarantine the
source lambda instead of shipping wrong code.
"""

from repro.errors import CompileError
from repro.compile.arith import compile_arith, is_arith_compilable
from repro.compile.closure import ClosProgram, closure_convert
from repro.compile.codegen import generate_expr, generate_function
from repro.compile.names import NameSupply
from repro.compile.pipeline import (
    ALL_TIERS, COMPILE_CACHE, CompilationResult, TIER_ARITH, TIER_GENERAL,
    clear_compile_cache, compile_function, compile_term, eligible_tier,
    is_general_compilable,
)

__all__ = [
    "CompileError", "NameSupply", "ClosProgram", "closure_convert",
    "compile_arith", "is_arith_compilable", "generate_expr",
    "generate_function", "ALL_TIERS", "TIER_ARITH", "TIER_GENERAL",
    "COMPILE_CACHE", "CompilationResult", "clear_compile_cache",
    "compile_function", "compile_term", "eligible_tier",
    "is_general_compilable", "validate_compilation",
]


def validate_compilation(*args, **kwargs):
    """Lazy facade for :func:`repro.compile.validate.validate_compilation`
    (imported on first use; validation pulls in the equivalence checker)."""
    from repro.compile.validate import validate_compilation as _vc
    return _vc(*args, **kwargs)

"""Translation validation: never trust the compiler, check each artifact.

Rather than proving the code generator correct once, every compiled
component is checked *per compilation* (Pnueli-style translation
validation) on three independent axes:

1. **Typechecking** -- the wrapped replacement term is run through the
   full FT/TAL typechecker (:func:`repro.ft.typecheck.check_ft_expr`)
   and must come back with exactly the source term's F type.  This is
   the paper's static guarantee: a well-typed T component embedded via
   boundaries cannot break F's type safety.
2. **Differential execution** -- for function compilations, the source
   lambda (run by the CEK engine) and the compiled component are applied
   to a deterministic corpus of generated argument vectors and must
   produce the same observation (same value, or the same
   divergence/stuckness verdict) under the same fuel.
3. **Bounded equivalence** -- both terms are plugged into the contexts
   of :func:`repro.equiv.contexts.contexts_for` (the paper's
   contextual-equivalence observer: F application contexts, T
   application contexts, eta-expansions), bounded by fuel.

Compiled code pays a constant-factor (and, for closures materialized
inside recursion, super-linear -- see ``docs/performance.md``) fuel
overhead over the CEK source, so a shared fuel bound would flag correct
but slower artifacts as divergent.  When exactly one side exhausts its
budget, the check retries that side with ``slack``-times the fuel
before calling the pair a counterexample: a budget artifact then halts
with the same value, a genuine divergence keeps diverging.

A failure on any axis quarantines the source lambda through the PR 3
safety net (:data:`repro.resilience.safety_net.QUARANTINE`), so the JIT
will refuse to install the bad artifact on later sightings, and raises
nothing: callers branch on :attr:`ValidationReport.ok`.

Host-stack note: running compiled code nests an F evaluator inside the
T machine per boundary crossing, so deeply recursive *compiled* runs
exhaust the host interpreter's recursion limit long before the CEK
source does.  Validation runs under a temporarily raised limit so both
sides get the same effective depth budget; without it, a recursive
function would spuriously "diverge" only on the compiled side.
"""

from __future__ import annotations

import random
import sys
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.errors import FunTALError
from repro.obs.events import OBS
from repro.equiv.checker import Counterexample, EquivalenceReport
from repro.equiv.contexts import contexts_for
from repro.equiv.generators import values_of
from repro.equiv.observation import DIVERGED, HALTED, Observation, observe
from repro.f.syntax import (
    App, FArrow, FExpr, FInt, FType, ftype_equal, IntE, Lam,
)
from repro.ft.typecheck import check_ft_expr
from repro.resilience.safety_net import QUARANTINE, Quarantine
from repro.compile.pipeline import CompilationResult, compile_term

__all__ = ["ValidationReport", "validate_compilation"]

#: Recursion limit used while executing compiled components (see module
#: docstring).  Python 3.11 heap-allocates pure-Python frames, so this
#: is safe headroom rather than C-stack risk.
_VALIDATION_RECURSION_LIMIT = 100_000


@contextmanager
def _deep_host_stack() -> Iterator[None]:
    old = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old, _VALIDATION_RECURSION_LIMIT))
    try:
        yield
    finally:
        sys.setrecursionlimit(old)


@dataclass
class ValidationReport:
    """What translation validation observed for one compilation."""

    tier: str
    ok: bool = True
    typechecked: bool = False
    trials: int = 0                      # differential argument vectors
    equiv: Optional[EquivalenceReport] = None
    failure: Optional[str] = None        # first failing axis, pretty form
    quarantined: bool = False
    disagreements: List[str] = field(default_factory=list)

    def to_json(self) -> Dict[str, object]:
        return {
            "tier": self.tier,
            "ok": self.ok,
            "typechecked": self.typechecked,
            "trials": self.trials,
            "equivalent": None if self.equiv is None else self.equiv.equivalent,
            "equiv_trials": 0 if self.equiv is None else self.equiv.trials,
            "failure": self.failure,
            "quarantined": self.quarantined,
        }

    def __str__(self) -> str:
        if self.ok:
            extra = ("" if self.equiv is None
                     else f", {self.equiv.trials} contexts")
            return (f"validated ({self.tier} tier: typechecked, "
                    f"{self.trials} differential trials{extra})")
        return f"VALIDATION FAILED ({self.tier} tier): {self.failure}"


#: Integer arguments for differential runs.  Deliberately small in
#: magnitude: a recursive source function applied to 46 is a handful of
#: CEK steps per level, but its compiled image re-crosses the F/T
#: boundary every level and no affordable fuel bound covers it.
_DIFF_INT_CORPUS = (0, 1, 2, 3, 5, 7, -1, -3)


def _diff_values(ty: FType, rng: random.Random) -> List[FExpr]:
    if isinstance(ty, FInt):
        return [IntE(n) for n in _DIFF_INT_CORPUS]
    return list(values_of(ty, rng, budget=2))


def _argument_vectors(ty: FArrow, rng: random.Random,
                      trials: int) -> List[Tuple[FExpr, ...]]:
    """Up to ``trials`` deterministic argument tuples for ``ty``."""
    pools = [_diff_values(t, rng) for t in ty.params]
    if any(not pool for pool in pools):
        return []
    count = min(trials, max(len(p) for p in pools))
    return [tuple(pool[i % len(pool)] for pool in pools)
            for i in range(count)]


def _agree(prog_src: FExpr, prog_cmp: FExpr, fuel: int,
           slack: int) -> Tuple[bool, Observation, Observation]:
    """Observe both programs, retrying a one-sided budget exhaustion
    with ``slack``-times the fuel (see module docstring)."""
    obs_src = observe(prog_src, fuel=fuel)
    obs_cmp = observe(prog_cmp, fuel=fuel)
    if obs_src.agrees_with(obs_cmp) or slack <= 1:
        return obs_src.agrees_with(obs_cmp), obs_src, obs_cmp
    if obs_src.kind == HALTED and obs_cmp.kind == DIVERGED:
        obs_cmp = observe(prog_cmp, fuel=fuel * slack)
    elif obs_cmp.kind == HALTED and obs_src.kind == DIVERGED:
        obs_src = observe(prog_src, fuel=fuel * slack)
    return obs_src.agrees_with(obs_cmp), obs_src, obs_cmp


def _fail(report: ValidationReport, source: FExpr, reason: str,
          quarantine: Quarantine) -> ValidationReport:
    report.ok = False
    report.failure = reason
    if isinstance(source, Lam):
        quarantine.add(source, f"translation validation: {reason}")
        report.quarantined = True
    if OBS.enabled:
        OBS.metrics.inc("compile.validate.fail")
    return report


def validate_compilation(
        target: Union[CompilationResult, FExpr],
        gamma: Optional[Dict[str, FType]] = None, *,
        trials: int = 12,
        fuel: int = 30_000,
        seed: int = 0,
        slack: int = 20,
        equiv_budget: int = 2,
        max_contexts: Optional[int] = 6,
        quarantine: Optional[Quarantine] = None) -> ValidationReport:
    """Validate one compilation (compiling ``target`` first if needed).

    Returns a :class:`ValidationReport`; never raises on a *validation*
    failure (compilation errors still propagate).  On failure the source
    lambda is quarantined in ``quarantine`` (default: the global
    :data:`~repro.resilience.safety_net.QUARANTINE`).
    """
    result = (target if isinstance(target, CompilationResult)
              else compile_term(target, gamma))
    q = quarantine if quarantine is not None else QUARANTINE
    report = ValidationReport(tier=result.tier)
    source, wrapped, ty = result.source, result.wrapped, result.ty

    with OBS.span("compile.validate", "compile", tier=result.tier):
        # Axis 1: the wrapped replacement typechecks at the source type.
        full_gamma = dict(gamma or {})
        full_gamma.update(dict(result.free))
        try:
            actual, _ = check_ft_expr(
                wrapped, gamma=full_gamma if full_gamma else None)
        except FunTALError as err:
            return _fail(report, source,
                         f"compiled term does not typecheck: {err}", q)
        if not ftype_equal(actual, ty):
            return _fail(report, source,
                         f"compiled term has type {actual}, "
                         f"source has {ty}", q)
        report.typechecked = True
        if OBS.enabled:
            OBS.metrics.inc("compile.validate")

        if result.free:
            # Open compilations cannot be executed; the static axis is
            # all we can check until the caller closes them.
            return report

        # Axis 2: differential execution against the CEK engine.
        rng = random.Random(seed)
        with _deep_host_stack():
            if isinstance(ty, FArrow) and isinstance(source, Lam):
                for args in _argument_vectors(ty, rng, trials):
                    ok, obs_src, obs_cmp = _agree(
                        App(source, args), App(wrapped, args), fuel, slack)
                    report.trials += 1
                    if not ok:
                        detail = (f"on arguments {args}: source {obs_src}, "
                                  f"compiled {obs_cmp}")
                        report.disagreements.append(detail)
                        return _fail(report, source,
                                     f"differential disagreement {detail}", q)
            else:
                ok, obs_src, obs_cmp = _agree(source, wrapped, fuel, slack)
                report.trials += 1
                if not ok:
                    detail = f"source {obs_src}, compiled {obs_cmp}"
                    report.disagreements.append(detail)
                    return _fail(report, source,
                                 f"differential disagreement {detail}", q)

            # Axis 3: bounded contextual equivalence (F and T observers),
            # with the same slack policy applied per context.
            contexts = contexts_for(ty, random.Random(seed), equiv_budget)
            if max_contexts is not None:
                contexts = contexts[:max_contexts]
            equiv = EquivalenceReport(True, 0, fuel)
            for name, plug in contexts:
                ok, obs_src, obs_cmp = _agree(
                    plug(source), plug(wrapped), fuel, slack)
                equiv.trials += 1
                if not ok:
                    equiv.equivalent = False
                    equiv.counterexample = Counterexample(
                        name, obs_src, obs_cmp)
                    break
                equiv.agreements.append((name, obs_src))
        report.equiv = equiv
        if not equiv.equivalent:
            return _fail(report, source,
                         f"contextual counterexample: "
                         f"{equiv.counterexample}", q)

    return report

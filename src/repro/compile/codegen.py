"""Stack-machine code generation: :class:`~repro.compile.closure.ClosProgram` to T.

Each :class:`~repro.compile.closure.CodeDef` becomes a multi-block T code
frame obeying the paper's Fig 9 calling convention: arguments arrive on
the stack (last argument on top), the return continuation arrives in
``ra``, and the frame's blocks abstract ``[zeta, eps]``.  Expression
compilation maintains a compile-time *stack model* -- the exact list of
T types currently pushed above the frame's entry stack -- and a *marker
state* mirroring the typechecker's ``q``:

* a function frame starts at ``q = ra``;
* before anything that clobbers registers (a ``call``, or an ``import``
  whose embedded F code may run arbitrary T), the continuation is saved
  to a fresh stack slot, relocating the marker to ``q = 0``; it is
  restored (``sld ra, 0``) as soon as control is back;
* a ``call`` relocates a stack marker by ``i + n - m`` exactly as the
  typing rule demands, and the return continuation passed in ``ra`` is a
  per-call-site continuation block whose precondition is the post-call
  stack model -- so every generated component typechecks by
  construction.

Closures are where F's and T's calling conventions genuinely clash: the
type translation maps an arrow to a *bare* code pointer, leaving no room
for an environment.  A **closed** lambda is therefore hoisted statically
into the component heap and referenced by label.  A lambda **with
captures** is materialized at runtime through an ``import`` whose F
payload builds a real environment tuple -- each captured variable is
read from the current frame (a one-instruction boundary ``sld`` for a
parameter, a projection from the frame's own environment for a capture)
-- and applies an environment-binding wrapper around the hoisted code;
the FT semantics' lambda wrapper then allocates a fresh code block, so
closure creation happens at run time while the closure *body* still
executes as compiled T code.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from repro.errors import CompileError
from repro.f.syntax import App, FTupleT, FType, Lam, Proj, TupleE, Var
from repro.ft.syntax import Boundary, Import, Protect
from repro.ft.translate import (
    EPS, ZETA, continuation_type, type_translation,
)
from repro.tal.syntax import (
    Aop, Balloc, Bnz, Call, Component, DeltaBind, Halt, HCode, InstrSeq,
    Jmp, KIND_EPS, KIND_ZETA, Ld, Loc, Mv, QEnd, QEps, QIdx, QReg,
    RegFileTy, RegOp, Ret, RetMarker, Salloc, Sfree, Sld, Sst, StackTy,
    TalType, TyApp, UnfoldI, WInt, WLoc, WUnit, seq,
)
from repro.tal.syntax import Fold as WFold
from repro.compile.closure import (
    CBin, CCall, CCaptureRef, CClos, CExpr, CFold, CFree, CIf0, CInt,
    CodeDef, CParam, CProj, CTuple, CUnfold, CUnit, ClosProgram,
)
from repro.compile.names import NameSupply

__all__ = ["generate_function", "generate_expr"]

_OPS = {"+": "add", "-": "sub", "*": "mul"}

ZSTACK = StackTy((), ZETA)
_FN_DELTA = (DeltaBind(KIND_ZETA, ZETA), DeltaBind(KIND_EPS, EPS))
_MAIN_DELTA = (DeltaBind(KIND_ZETA, ZETA),)


def _bug(msg: str) -> CompileError:  # pragma: no cover - internal invariant
    return CompileError(f"codegen invariant violated: {msg}",
                        judgment="compile.codegen")


class _Unit:
    """One component under construction (top level, or the subcomponent
    of a single materialized closure)."""

    def __init__(self, program: ClosProgram, supply: NameSupply):
        self.program = program
        self.supply = supply
        self.blocks: List[Tuple[Loc, HCode]] = []
        self._closed: Dict[str, Loc] = {}

    def ensure_closed(self, code_id: str) -> Loc:
        """Hoist a closed definition into this component (once)."""
        loc = self._closed.get(code_id)
        if loc is None:
            loc = Loc(code_id)
            self._closed[code_id] = loc
            _Frame(self, defn=self.program.get(code_id)).run()
        return loc


class _Frame:
    """Emits the blocks of one frame (a :class:`CodeDef`, or the main
    expression of a non-lambda compilation)."""

    def __init__(self, unit: _Unit, *, defn: Optional[CodeDef] = None,
                 main: Optional[CExpr] = None,
                 env_name: Optional[str] = None):
        self.unit = unit
        self.program = unit.program
        self.defn = defn
        self.env_name = env_name
        if defn is not None:
            self.kind = "fn"
            self.label = defn.code_id
            self.arity = len(defn.params)
            self.delta = _FN_DELTA
            self.result_t = type_translation(defn.arrow.result)
            self.cont = continuation_type(self.result_t, ZSTACK)
            # Entry stack: last argument on top (arrow_code_type).
            self.model: List[TalType] = [
                type_translation(t) for _, t in reversed(defn.params)]
            self.marker: RetMarker = QReg("ra")
        else:
            assert main is not None
            self.kind = "main"
            self.label = "main"
            self.arity = 0
            self.delta = _MAIN_DELTA
            self.result_t = type_translation(main.ty)
            self.cont = None
            self.model = []
            self.marker = QEnd(self.result_t, ZSTACK)
        self.main = main
        self.entry_body: Optional[InstrSeq] = None
        self._instrs: List = []
        self._open_label: Optional[Loc] = None
        self._open_chi = RegFileTy()
        self._open_sigma = ZSTACK
        self._open_q: RetMarker = self.marker

    # -- block plumbing --------------------------------------------------

    def emit(self, *instrs) -> None:
        self._instrs.extend(instrs)

    def sigma(self) -> StackTy:
        return StackTy(tuple(self.model), ZETA)

    def open(self, label: Optional[Loc], chi: RegFileTy) -> None:
        self._open_label = label
        self._open_chi = chi
        self._open_sigma = self.sigma()
        self._open_q = self.marker
        self._instrs = []

    def close(self, term) -> None:
        iseq = InstrSeq(tuple(self._instrs), term)
        if self._open_label is None:
            self.entry_body = iseq
        else:
            self.unit.blocks.append(
                (self._open_label,
                 HCode(self.delta, self._open_chi, self._open_sigma,
                       self._open_q, iseq)))
        self._instrs = []

    def fresh_label(self, stem: str) -> Loc:
        return Loc(self.unit.supply.fresh(f"{self.label}_{stem}"))

    def block_ref(self, label: Loc) -> TyApp:
        if self.kind == "fn":
            return TyApp(WLoc(label), (ZSTACK, QEps(EPS)))
        return TyApp(WLoc(label), (ZSTACK,))

    def branch_chi(self) -> RegFileTy:
        """chi promised to a branch/join block: values live on the stack,
        plus ``ra`` when the marker currently sits there."""
        if isinstance(self.marker, QReg):
            return RegFileTy.of(ra=self.cont)
        return RegFileTy()

    # -- stack-model / marker bookkeeping --------------------------------

    def model_push(self, ty: TalType) -> None:
        self.model.insert(0, ty)
        if isinstance(self.marker, QIdx):
            self.marker = QIdx(self.marker.index + 1)

    def model_pop(self, n: int) -> None:
        del self.model[:n]
        if isinstance(self.marker, QIdx):
            if self.marker.index < n:
                raise _bug("popped the saved return continuation")
            self.marker = QIdx(self.marker.index - n)

    def push_result(self, ty: TalType) -> None:
        """r1 holds the value; push it as a new temporary."""
        self.emit(Salloc(1), Sst(0, "r1"))
        self.model_push(ty)

    def save_marker(self) -> bool:
        """Spill ``ra`` to a fresh stack slot if the marker lives there."""
        if isinstance(self.marker, QReg):
            self.emit(Salloc(1), Sst(0, "ra"))
            self.model.insert(0, self.cont)
            self.marker = QIdx(0)
            return True
        return False

    def restore_marker(self, extra_free: int = 0) -> None:
        """Undo :meth:`save_marker`: reload ``ra`` from slot 0 and free the
        spill slot (plus ``extra_free`` slots directly below it)."""
        self.emit(Sld("ra", 0))
        self.marker = QReg("ra")
        self.emit(Sfree(1 + extra_free))
        del self.model[:1 + extra_free]

    # -- capture reads (F expressions evaluated by an import) ------------

    def read_expr(self, ref: CExpr):
        """An F expression that reads ``ref`` out of the *running* frame
        -- legal inside an ``import`` at the current stack model."""
        if isinstance(ref, CParam):
            slot = len(self.model) - 1 - ref.index
            return Boundary(ref.ty, Component(seq(
                Sld("r1", slot),
                Halt(type_translation(ref.ty), self.sigma(), "r1"))))
        if isinstance(ref, CCaptureRef):
            if self.env_name is None:
                raise _bug("capture reference outside a captured frame")
            return Proj(ref.index, Var(self.env_name))
        if isinstance(ref, CFree):
            return Var(ref.name)
        raise _bug(f"unreadable capture initializer {ref}")

    def emit_import(self, fty: FType, make_expr) -> None:
        """Run F code mid-frame: spill the marker if needed (``import``
        demands a stack or end marker), import, restore, push.

        ``make_expr`` is called *after* the potential spill: stack-read
        boundaries inside the payload index slots from the top, so the
        spill slot shifts every read by one."""
        saved = self.save_marker()
        self.emit(Import("r1", ZSTACK, fty, make_expr()))
        if saved:
            self.restore_marker()
        self.push_result(type_translation(fty))

    # -- closures --------------------------------------------------------

    def materialize(self, c: CClos, d: CodeDef) -> None:
        """Runtime closure creation for a lambda with captures.

        Emits an ``import`` whose F payload (a) reads each captured
        variable out of the current frame into an environment tuple and
        (b) applies an environment-binding wrapper around the hoisted
        code, compiled into its own subcomponent.  The FT semantics
        convert the resulting F lambda to a fresh T code block."""
        subunit = _Unit(self.program, self.unit.supply)
        env_name = self.unit.supply.fresh("__env")
        _Frame(subunit, defn=d, env_name=env_name).run()
        subcomp = Component(
            InstrSeq((Protect((), ZETA), Mv("r1", WLoc(Loc(d.code_id)))),
                     Halt(type_translation(d.arrow), ZSTACK, "r1")),
            tuple(subunit.blocks))
        inner = Lam(d.params,
                    App(Boundary(d.arrow, subcomp),
                        tuple(Var(x) for x, _ in d.params)))
        env_ty = FTupleT(tuple(t for _, t in d.captures))
        self.emit_import(d.arrow, lambda: App(
            Lam(((env_name, env_ty),), inner),
            (TupleE(tuple(self.read_expr(r) for r in c.captures)),)))

    # -- calls -----------------------------------------------------------

    def emit_call(self, c: CCall) -> None:
        m = len(c.args)
        res_t = type_translation(c.ty)

        direct: Optional[Loc] = None
        if isinstance(c.fn, CClos) and not c.fn.captures:
            direct = self.unit.ensure_closed(c.fn.code_id)
        else:
            self.compile(c.fn)           # closure pointer as a temporary
        saved = self.save_marker()
        for a in c.args:
            self.compile(a)

        if direct is None:
            ptr_slot = m + (1 if saved else 0)
            self.emit(Sld("r7", ptr_slot))
            target: Union[RegOp, WLoc] = RegOp("r7")
        else:
            target = WLoc(direct)

        # Marker relocation (the call rule's i + n - m; Fig 9 arrows have
        # n = 0 continuation slots) and the protected tail.
        if isinstance(self.marker, QEnd):
            q2: RetMarker = self.marker
        elif isinstance(self.marker, QIdx):
            q2 = QIdx(self.marker.index - m)
        else:  # pragma: no cover - save_marker precludes
            raise _bug("call under a register marker")
        below = tuple(self.model[m:])
        t_sigma = StackTy(below, ZETA)

        lcont = self.fresh_label("ret")
        self.emit(Mv("ra", self.block_ref(lcont)))
        self.close(Call(target, t_sigma, q2))

        # Continuation block: result in r1, arguments consumed.
        del self.model[:m]
        self.marker = q2
        self.open(lcont, RegFileTy.of(r1=res_t))
        if saved:
            self.restore_marker(extra_free=0 if direct is not None else 1)
        elif direct is None:
            self.emit(Sfree(1))
            self.model_pop(1)            # the closure-pointer temporary
        self.push_result(res_t)

    # -- expressions -----------------------------------------------------

    def compile(self, c: CExpr) -> None:
        """Emit code leaving ``c``'s value as one new temporary on top."""
        if isinstance(c, CInt):
            self.emit(Mv("r1", WInt(c.value)))
            self.push_result(type_translation(c.ty))
            return
        if isinstance(c, CUnit):
            self.emit(Mv("r1", WUnit()))
            self.push_result(type_translation(c.ty))
            return
        if isinstance(c, CParam):
            slot = len(self.model) - 1 - c.index
            self.emit(Sld("r1", slot))
            self.push_result(type_translation(c.ty))
            return
        if isinstance(c, (CCaptureRef, CFree)):
            self.emit_import(c.ty, lambda: self.read_expr(c))
            return
        if isinstance(c, CBin):
            self.compile(c.left)
            self.compile(c.right)
            self.emit(
                Sld("r2", 0),            # right operand
                Sld("r1", 1),            # left operand
                Sfree(2),
                Aop(_OPS[c.op], "r1", "r1", RegOp("r2")),
            )
            self.model_pop(2)
            self.push_result(type_translation(c.ty))
            return
        if isinstance(c, CIf0):
            self.compile(c.cond)
            self.emit(Sld("r1", 0), Sfree(1))
            self.model_pop(1)
            else_label = self.fresh_label("else")
            join_label = self.fresh_label("join")
            at_branch = (list(self.model), self.marker)
            self.emit(Bnz("r1", self.block_ref(else_label)))
            self.compile(c.then)
            self.close(Jmp(self.block_ref(join_label)))
            self.model, self.marker = list(at_branch[0]), at_branch[1]
            self.open(else_label, self.branch_chi())
            self.compile(c.els)
            self.close(Jmp(self.block_ref(join_label)))
            self.open(join_label, self.branch_chi())
            return
        if isinstance(c, CTuple):
            # Compiled right-to-left so that field 0 ends up on top --
            # balloc pops top-first into the tuple's fields.
            for item in reversed(c.items):
                self.compile(item)
            self.emit(Balloc("r1", len(c.items)))
            self.model_pop(len(c.items))
            self.push_result(type_translation(c.ty))
            return
        if isinstance(c, CProj):
            self.compile(c.body)
            self.emit(Sld("r1", 0), Ld("r1", "r1", c.index), Sst(0, "r1"))
            self.model[0] = type_translation(c.ty)
            return
        if isinstance(c, CFold):
            self.compile(c.body)
            self.emit(Sld("r1", 0),
                      Mv("r1", WFold(type_translation(c.ty), RegOp("r1"))),
                      Sst(0, "r1"))
            self.model[0] = type_translation(c.ty)
            return
        if isinstance(c, CUnfold):
            self.compile(c.body)
            self.emit(Sld("r1", 0), UnfoldI("r1", RegOp("r1")),
                      Sst(0, "r1"))
            self.model[0] = type_translation(c.ty)
            return
        if isinstance(c, CClos):
            d = self.program.get(c.code_id)
            if not c.captures:
                label = self.unit.ensure_closed(c.code_id)
                self.emit(Mv("r1", WLoc(label)))
                self.push_result(type_translation(c.ty))
            else:
                self.materialize(c, d)
            return
        if isinstance(c, CCall):
            self.emit_call(c)
            return
        raise _bug(f"unhandled IR node {type(c).__name__}")

    # -- frame entry points ----------------------------------------------

    def run(self) -> None:
        if self.kind == "fn":
            assert self.defn is not None
            self.open(Loc(self.defn.code_id), RegFileTy.of(ra=self.cont))
            self.compile(self.defn.body)
            if not isinstance(self.marker, QReg):
                raise _bug("marker not restored to ra at epilogue")
            if len(self.model) != 1 + self.arity:
                raise _bug("unbalanced stack model at epilogue")
            self.emit(Sld("r1", 0), Sfree(1 + self.arity))
            self.close(Ret("ra", "r1"))
        else:
            assert self.main is not None
            self.open(None, RegFileTy())
            self.compile(self.main)
            if len(self.model) != 1:
                raise _bug("unbalanced stack model at halt")
            self.emit(Sld("r1", 0), Sfree(1))
            self.close(Halt(self.result_t, ZSTACK, "r1"))
            if self.entry_body is None:
                raise _bug("main frame produced no entry sequence")


def generate_function(program: ClosProgram,
                      supply: Optional[NameSupply] = None) -> Component:
    """Generate the component for a lambda compilation: the entry sequence
    protects the whole ambient stack and returns the code pointer of the
    hoisted entry definition (the JIT's wrapper shape)."""
    assert program.main_code is not None
    defn = program.get(program.main_code)
    if defn.captures:  # pragma: no cover - top frame has no enclosing frame
        raise _bug("top-level definition cannot have captures")
    unit = _Unit(program, supply or NameSupply())
    entry = unit.ensure_closed(defn.code_id)
    return Component(
        InstrSeq((Protect((), ZETA), Mv("r1", WLoc(entry))),
                 Halt(type_translation(defn.arrow), ZSTACK, "r1")),
        tuple(unit.blocks))


def generate_expr(program: ClosProgram,
                  supply: Optional[NameSupply] = None) -> Component:
    """Generate the component for a non-lambda term: the computation runs
    in the component's entry sequence (splitting into blocks at joins and
    call returns) and halts with the translated result."""
    assert program.main is not None
    unit = _Unit(program, supply or NameSupply())
    frame = _Frame(unit, main=program.main)
    frame.run()
    assert frame.entry_body is not None
    return Component(
        InstrSeq((Protect((), ZETA),) + frame.entry_body.instrs,
                 frame.entry_body.term),
        tuple(unit.blocks))

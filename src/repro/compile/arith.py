"""The legacy arithmetic tier: first-order all-``int`` lambdas.

This is the original JIT compiler (PR 1) relocated under
:mod:`repro.compile` as the fast tier of the tiered pipeline.  It covers
exactly the fragment the old ``jit.is_compilable`` accepted -- lambdas
whose parameters are all ``int`` and whose bodies are literals,
parameters, arithmetic, and ``if0`` -- and emits exactly the same
multi-block shape as before (Fig 16-style ``if0`` splitting), which
``tests/test_compile_tiers.py`` locks in differentially.

Two deliberate differences from the general tier
(:mod:`repro.compile.codegen`):

* no closures, no calls, no imports -- the marker stays ``ra`` for the
  whole frame, so the emitter needs no marker state;
* no ``tal.optimize`` post-pass -- the historical output shape is part
  of the tier's contract.

Labels come from a per-compilation :class:`~repro.compile.names.NameSupply`
instead of the old module-global counter, so the same lambda now
compiles to the identical component in every run and process -- a
requirement for content-addressing compiled artifacts in the serve
cache.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import CompileError
from repro.f.syntax import (
    BinOp, FArrow, FExpr, FInt, If0, IntE, Lam, Var,
)
from repro.ft.syntax import Protect, StackLam
from repro.ft.translate import continuation_type, type_translation
from repro.tal.syntax import (
    Aop, Bnz, Component, DeltaBind, Halt, HCode, InstrSeq, Jmp, KIND_EPS,
    KIND_ZETA, Loc, Mv, QEps, QReg, RegFileTy, RegOp, Ret, Salloc, Sfree,
    Sld, Sst, StackTy, TInt, TyApp, WInt, WLoc,
)
from repro.compile.names import NameSupply

__all__ = ["is_arith_compilable", "compile_arith"]

_OPS = {"+": "add", "-": "sub", "*": "mul"}


def is_arith_compilable(e: FExpr) -> bool:
    """Is ``e`` a lambda in the arithmetic fragment?  All parameters
    ``int``, body built from literals, parameters, arithmetic, and
    ``if0``."""
    if not isinstance(e, Lam) or isinstance(e, StackLam):
        return False
    if not e.params or not all(isinstance(t, FInt) for _, t in e.params):
        return False
    names = {x for x, _ in e.params}
    return _body_compilable(e.body, names)


def _body_compilable(e: FExpr, scope) -> bool:
    if isinstance(e, IntE):
        return True
    if isinstance(e, Var):
        return e.name in scope
    if isinstance(e, BinOp):
        return (_body_compilable(e.left, scope)
                and _body_compilable(e.right, scope))
    if isinstance(e, If0):
        return (_body_compilable(e.cond, scope)
                and _body_compilable(e.then, scope)
                and _body_compilable(e.els, scope))
    return False


class _Emitter:
    """Accumulates basic blocks; one block is open at a time."""

    def __init__(self, fn_label: str, arity: int, supply: NameSupply):
        self.fn = fn_label
        self.arity = arity
        self.supply = supply
        self.blocks: List[Tuple[Loc, int, InstrSeq]] = []
        self._open_label: Loc = Loc(fn_label)
        self._open_depth = 0          # temporaries above the arguments
        self._instrs: List = []

    # -- block plumbing -------------------------------------------------

    def emit(self, *instrs) -> None:
        self._instrs.extend(instrs)

    def close(self, terminator) -> None:
        self.blocks.append(
            (self._open_label, self._open_depth,
             InstrSeq(tuple(self._instrs), terminator)))
        self._instrs = []

    def open(self, label: Loc, depth: int) -> None:
        self._open_label = label
        self._open_depth = depth

    def fresh(self, stem: str) -> Loc:
        return Loc(self.supply.fresh(f"{self.fn}_{stem}"))

    def block_ref(self, label: Loc):
        return TyApp(WLoc(label), (StackTy((), "z"), QEps("e")))

    # -- expression compilation ------------------------------------------

    def push_result(self) -> None:
        """r1 holds the value; push it as a new temporary."""
        self.emit(Salloc(1), Sst(0, "r1"))

    def compile(self, e: FExpr, env: Dict[str, int], depth: int) -> int:
        """Emit code leaving ``e``'s value as a new temporary on top;
        returns the new temporary count (always ``depth + 1``)."""
        if isinstance(e, IntE):
            self.emit(Mv("r1", WInt(e.value)))
            self.push_result()
            return depth + 1
        if isinstance(e, Var):
            # argument i (0-based, first parameter) lives at slot
            # depth + (arity - 1 - i): the last argument is on top.
            slot = depth + (self.arity - 1 - env[e.name])
            self.emit(Sld("r1", slot))
            self.push_result()
            return depth + 1
        if isinstance(e, BinOp):
            depth = self.compile(e.left, env, depth)
            depth = self.compile(e.right, env, depth)
            self.emit(
                Sld("r2", 0),        # right operand
                Sld("r1", 1),        # left operand
                Sfree(2),
                Aop(_OPS[e.op], "r1", "r1", RegOp("r2")),
            )
            self.push_result()
            return depth - 1
        if isinstance(e, If0):
            depth = self.compile(e.cond, env, depth)
            self.emit(Sld("r1", 0), Sfree(1))
            depth -= 1
            else_label = self.fresh("else")
            join_label = self.fresh("join")
            self.emit(Bnz("r1", self.block_ref(else_label)))
            self.compile(e.then, env, depth)
            self.close(Jmp(self.block_ref(join_label)))
            self.open(else_label, depth)
            self.compile(e.els, env, depth)
            self.close(Jmp(self.block_ref(join_label)))
            self.open(join_label, depth + 1)
            return depth + 1
        raise CompileError(f"not in the compilable fragment: {e}",
                           judgment="jit.compile", subject=str(e))


def compile_arith(lam: Lam,
                  supply: Optional[NameSupply] = None) -> Component:
    """Compile an arithmetic-fragment lambda to its T component (the
    historical JIT output shape, uncached and unoptimized)."""
    if not is_arith_compilable(lam):
        raise CompileError(f"lambda is not compilable: {lam}",
                           judgment="jit.compile", subject=str(lam))
    supply = supply or NameSupply()
    arity = len(lam.params)
    env = {name: i for i, (name, _) in enumerate(lam.params)}
    fn_label = supply.fresh("jitfn")

    emitter = _Emitter(fn_label, arity, supply)
    emitter.compile(lam.body, env, 0)
    # epilogue: result temp on top, arguments below
    emitter.emit(Sld("r1", 0), Sfree(1 + arity))
    emitter.close(Ret("ra", "r1"))

    zstack = StackTy((), "z")
    cont = continuation_type(TInt(), zstack)
    heap = []
    for label, depth, instrs in emitter.blocks:
        sigma = StackTy((TInt(),) * (depth + arity), "z")
        heap.append((label, HCode(
            (DeltaBind(KIND_ZETA, "z"), DeltaBind(KIND_EPS, "e")),
            RegFileTy.of(ra=cont), sigma, QReg("ra"), instrs)))

    arrow = FArrow(tuple(t for _, t in lam.params), FInt())
    return Component(
        InstrSeq((Protect((), "z"), Mv("r1", WLoc(Loc(fn_label)))),
                 Halt(type_translation(arrow), zstack, "r1")),
        tuple(heap))

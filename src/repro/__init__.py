"""FunTAL reproduction: F, T, and the FT multi-language (PLDI 2017).

See README.md for the architecture overview and DESIGN.md for the paper
inventory.  Subpackages:

* :mod:`repro.f`   -- the functional language F
* :mod:`repro.tal` -- the typed assembly language T
* :mod:`repro.ft`  -- the multi-language FT (boundaries + translations)
* :mod:`repro.surface` -- concrete syntax: lexer, parser, pretty-printer
* :mod:`repro.equiv` -- the bounded contextual-equivalence checker
* :mod:`repro.papers_examples` -- every example program in the paper
* :mod:`repro.analysis` -- control-flow graphs and machine-trace tooling
* :mod:`repro.stdlib` -- the mutable-reference library and prelude
"""

__version__ = "1.0.0"

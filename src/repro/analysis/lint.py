"""Static lints over T/FT components.

Checks that are not type errors but almost always mistakes, computed from
the static CFG:

* **unreachable blocks** -- heap blocks nothing in the component
  references, neither as a jump target nor address-taken (labels moved
  into registers or tuples can be jumped to later, so those count as
  references);
* **no exit** -- the entry cannot reach ``halt``/``ret`` (the component
  can only diverge);
* **duplicate blocks** -- two heap blocks with equal signatures and
  identical bodies (mergeable; the flip side of Fig 16's point that block
  structure is semantically irrelevant).

Returns :class:`LintWarning` records; the CLI surfaces them and the tests
pin each detector.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import networkx as nx

from repro.analysis.cfg import component_cfg, DYNAMIC, ENTRY, EXIT
from repro.tal.equality import psis_equal
from repro.tal.syntax import Component, HCode, InstrSeq

__all__ = ["LintWarning", "lint_component"]


@dataclass(frozen=True)
class LintWarning:
    kind: str        # unreachable-block | no-exit | duplicate-blocks
    subject: str
    message: str

    def __str__(self) -> str:
        return f"[{self.kind}] {self.subject}: {self.message}"


def lint_component(comp: Component) -> List[LintWarning]:
    """Run all lints; returns an empty list for clean components."""
    warnings: List[LintWarning] = []
    graph = component_cfg(comp)

    reachable = set(nx.descendants(graph, ENTRY)) | {ENTRY}
    dynamic_possible = DYNAMIC in reachable
    # A block is referenced if any label occurrence anywhere in the
    # component names it -- jump targets *or* address-taken uses (a label
    # moved into a register or stored in a tuple can be jumped to later,
    # e.g. Fig 3's continuations).
    referenced = _referenced_labels(comp)
    for loc, h in comp.heap:
        if not isinstance(h, HCode):
            continue
        if loc.name not in referenced:
            warnings.append(LintWarning(
                "unreachable-block", loc.name,
                "nothing in the component references this block"))

    if EXIT not in reachable and not dynamic_possible:
        warnings.append(LintWarning(
            "no-exit", "<entry>",
            "the component entry cannot reach ret/halt; it can only "
            "diverge"))

    warnings.extend(_duplicate_block_lints(comp))
    return warnings


def _referenced_labels(comp: Component) -> set:
    """Every label that occurs as a value anywhere in the component."""
    from repro.tal.machine import rename_locs
    from repro.tal.syntax import Loc

    seen: set = set()

    class _Spy(dict):
        def get(self, key, default=None):
            seen.add(key.name)
            return default

    spy = _Spy()
    rename_locs(comp.instrs, spy)
    for _, h in comp.heap:
        rename_locs(h, spy)
    return seen


def _duplicate_block_lints(comp: Component) -> List[LintWarning]:
    warnings: List[LintWarning] = []
    blocks = [(loc, h) for loc, h in comp.heap if isinstance(h, HCode)]
    for i, (loc_a, a) in enumerate(blocks):
        for loc_b, b in blocks[i + 1:]:
            if (psis_equal(a.code_type, b.code_type)
                    and str(a.instrs) == str(b.instrs)):
                warnings.append(LintWarning(
                    "duplicate-blocks", f"{loc_a.name}/{loc_b.name}",
                    "blocks have equal signatures and identical bodies; "
                    "they could be merged"))
    return warnings

"""Static control-flow graphs of T/FT components.

:func:`component_cfg` builds a :class:`networkx.DiGraph` whose nodes are
the component's basic blocks (plus a synthetic ``<entry>`` node for the
component's instruction sequence and an ``<exit>`` node for ``halt``/
``ret`` edges).  Edges are labelled by the jump kind (``jmp``, ``call``,
``bnz``, ``ret``, ``halt``, ``import``) where the target is statically a
label; jumps through registers (e.g. higher-order calls) go to the
synthetic ``<dynamic>`` node, matching how the paper's diagrams draw
callbacks into unknown code.
"""

from __future__ import annotations

from typing import Iterator, Tuple

import networkx as nx

from repro.tal.syntax import (
    Bnz, Call, Component, Fold, HCode, InstrSeq, Jmp, Loc, Operand, Pack,
    RegOp, Ret, Halt, TyApp, WLoc,
)

__all__ = ["component_cfg", "ENTRY", "EXIT", "DYNAMIC"]

ENTRY = "<entry>"
EXIT = "<exit>"
DYNAMIC = "<dynamic>"


def _static_target(u: Operand):
    """The label ``u`` statically denotes, or None for register jumps."""
    if isinstance(u, WLoc):
        return u.loc.name
    if isinstance(u, (Pack, Fold)):
        return _static_target(u.body)
    if isinstance(u, TyApp):
        return _static_target(u.body)
    if isinstance(u, RegOp):
        return None
    return None


def _seq_edges(node: str, iseq: InstrSeq) -> Iterator[Tuple[str, str, str]]:
    from repro.ft.syntax import Import

    for instr in iseq.instrs:
        if isinstance(instr, Bnz):
            target = _static_target(instr.u)
            yield (node, target if target else DYNAMIC, "bnz")
        elif isinstance(instr, Import):
            yield (node, DYNAMIC, "import")
    term = iseq.term
    if isinstance(term, Jmp):
        target = _static_target(term.u)
        yield (node, target if target else DYNAMIC, "jmp")
    elif isinstance(term, Call):
        target = _static_target(term.u)
        yield (node, target if target else DYNAMIC, "call")
    elif isinstance(term, Ret):
        yield (node, EXIT, "ret")
    elif isinstance(term, Halt):
        yield (node, EXIT, "halt")


def component_cfg(comp: Component) -> "nx.DiGraph":
    """The static CFG of a component."""
    graph = nx.DiGraph()
    graph.add_node(ENTRY)
    for loc, h in comp.heap:
        if isinstance(h, HCode):
            graph.add_node(loc.name)
    for src, dst, kind in _seq_edges(ENTRY, comp.instrs):
        graph.add_edge(src, dst, kind=kind)
    for loc, h in comp.heap:
        if isinstance(h, HCode):
            for src, dst, kind in _seq_edges(loc.name, h.instrs):
                graph.add_edge(src, dst, kind=kind)
    return graph

"""Analysis tooling over T/FT programs and machine traces.

* :mod:`repro.analysis.cfg` -- static control-flow graphs of components
  (networkx digraphs over basic blocks);
* :mod:`repro.analysis.trace` -- jump-level trace tables reconstructed from
  machine trace events, regenerating the paper's control-flow diagrams
  (Figs 4 and 12).
"""

from repro.analysis.cfg import component_cfg  # noqa: F401
from repro.analysis.trace import control_flow_table, format_table  # noqa: F401

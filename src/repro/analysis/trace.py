"""Jump-level control-flow tables from machine traces.

The paper's Figs 4 and 12 draw, for each inter-block transfer, the
instruction causing the jump and the relevant register/stack state at jump
time.  :func:`control_flow_table` distills a control-transfer event stream
into exactly those rows; :func:`format_table` renders them for the
benchmark harness, which compares the rows against the figures.

The table sits on the unified observability event model: it accepts both
a machine's in-process :class:`~repro.tal.machine.TraceEvent` list and the
serializable :class:`~repro.obs.events.MachineEvent` stream published on
the :mod:`repro.obs` bus (including events re-loaded from a JSONL trace by
:func:`repro.obs.trace_export.load_jsonl`) -- the two share their field
layout, and both produce identical rows for the same run.
"""

from __future__ import annotations

import re

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from repro.obs.events import MachineEvent
from repro.tal.machine import TraceEvent

__all__ = ["FlowRow", "control_flow_table", "format_table"]

ControlEvent = Union[TraceEvent, MachineEvent]

#: Event kinds that correspond to arrows in the paper's diagrams.
CONTROL_KINDS = ("call", "jmp", "ret", "bnz", "halt", "boundary")


@dataclass(frozen=True)
class FlowRow:
    """One arrow of a control-flow diagram."""

    kind: str                      # call / jmp / ret / bnz / halt / boundary
    target: str                    # pretty block label ('' for halt)
    regs: Tuple[Tuple[str, str], ...]   # register -> pretty value
    stack: Tuple[str, ...]         # pretty stack, top first
    detail: str = ""

    def __str__(self) -> str:
        regs = ", ".join(f"{r} -> {w}" for r, w in self.regs)
        stack = " :: ".join(self.stack) if self.stack else "nil"
        arrow = f" -> {self.target}" if self.target else ""
        info = f" [{self.detail}]" if self.detail else ""
        return f"{self.kind}{arrow}{info}  |  {regs}  |  {stack}"


#: The loader's freshness suffix: ``%`` immediately followed by digits.
#: A ``%`` *not* followed by digits is part of the label and is kept.
_FRESHNESS = re.compile(r"%\d+")


def _pretty_word(w) -> str:
    # Strip the freshness suffixes the loader appends to labels so rows
    # read like the paper's figures (l2ret%4 -> l2ret).
    return _FRESHNESS.sub("", str(w))


def control_flow_table(events: Iterable[ControlEvent],
                       registers: Optional[Sequence[str]] = None,
                       kinds: Sequence[str] = CONTROL_KINDS) -> List[FlowRow]:
    """Project a trace onto diagram rows.

    ``registers`` restricts which registers are shown (the figures show
    only the relevant ones); ``None`` shows all set registers.
    """
    rows: List[FlowRow] = []
    for ev in events:
        if ev.kind not in kinds:
            continue
        regs = tuple(
            (r, _pretty_word(w)) for r, w in ev.regs
            if registers is None or r in registers)
        stack = tuple(_pretty_word(w) for w in ev.stack)
        rows.append(FlowRow(ev.kind, ev.pretty_label(), regs, stack,
                            ev.detail))
    return rows


def format_table(rows: Iterable[FlowRow], title: str = "") -> str:
    """Render rows as an aligned text table."""
    rows = list(rows)
    lines = []
    if title:
        lines.append(title)
        lines.append("-" * len(title))
    head = ("transfer", "registers", "stack (top first)")
    body = []
    for row in rows:
        arrow = f"{row.kind} -> {row.target}" if row.target else row.kind
        if row.detail:
            arrow += f" ({row.detail})"
        regs = ", ".join(f"{r}={w}" for r, w in row.regs) or "-"
        stack = " :: ".join(row.stack) if row.stack else "nil"
        body.append((arrow, regs, stack))
    widths = [max(len(head[i]), *(len(b[i]) for b in body)) if body
              else len(head[i]) for i in range(3)]
    fmt = "  ".join(f"{{:<{w}}}" for w in widths)
    lines.append(fmt.format(*head))
    for b in body:
        lines.append(fmt.format(*b))
    return "\n".join(lines)

"""Hot-code profiler: attribute machine steps to content-hashed code.

ROADMAP item 4 (profile-guided adaptive tiering) needs to know *which*
lambdas and TAL blocks are hot, not just how many steps ran.  This
module adds that attribution layer: the F engines push an extent onto a
shadow stack at every beta reduction, the T machine tracks the current
code block, and every machine step charges one unit to whatever extent
is on top.  Code is identified by **content hash** -- the SHA-1 of its
pretty-printed form -- so the same lambda observed in different runs,
workers, or compile tiers aggregates under one key, exactly the
identity the compile cache and artifact store already use.

The shadow stack mirrors the machines' own control structure:

* ``beta(lam, depth)`` -- an F call extent, tagged with the frame depth
  at which the body evaluates.  Extents whose depth is gone are popped
  lazily on the next step (and eagerly on a same-depth beta, so proper
  tail calls replace rather than grow the stack).
* ``enter_t(name, block)`` -- T control transfers are flat (jumps), so
  a new block *replaces* the current T extent.
* ``enter_engine()`` / ``exit_engine(base)`` -- a barrier pushed at
  engine-loop entry and popped (by index, exception-safely) on exit, so
  F extents never leak across a language boundary: an ``import`` that
  evaluates F inside T profiles under its own barrier.

Per-step cost when enabled: one depth comparison, one dict add, and one
folded-path tuple add (cached per stack shape).  When disabled the
machines pay a single attribute read (``PROFILER.enabled``), the same
guard discipline as :data:`repro.obs.events.OBS`.

Snapshots (:class:`ProfileSnapshot`) are JSON artifacts carrying the
ranked self-step table (``funtal top``) and the folded stacks
(``funtal flame``, Brendan Gregg's ``a;b;c 42`` flamegraph format);
they merge associatively, so fleet-wide profiles can be folded from
per-worker ones.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["Profiler", "PROFILER", "ProfileSnapshot", "content_hash"]

_TOPLEVEL = "<toplevel>"

# Shadow-stack entry kinds.
_F, _T, _MARK = 0, 1, 2


def content_hash(node: Any, kind: str = "f") -> str:
    """The stable identity of a code object: SHA-1 of its pretty-printed
    form, truncated to 16 hex chars.  ``str()`` on the frozen syntax
    nodes is deterministic concrete syntax, so structurally equal code
    hashes identically across processes and runs."""
    blob = f"{kind}:{node}".encode("utf-8", "replace")
    return hashlib.sha1(blob).hexdigest()[:16]


class Profiler:
    """The process-wide shadow-stack profiler (singleton: PROFILER)."""

    __slots__ = ("enabled", "_stack", "_self", "_folded", "_labels",
                 "_kinds", "_hash_cache", "_pins", "_path", "_path_dirty",
                 "_published_steps")

    def __init__(self) -> None:
        self.enabled = False
        self._stack: List[Tuple[int, str, int]] = []
        self._self: Dict[str, int] = {}
        self._folded: Dict[Tuple[str, ...], int] = {}
        self._labels: Dict[str, str] = {}
        self._kinds: Dict[str, str] = {}
        # id() -> hash memo; _pins keeps the hashed objects alive so a
        # recycled id can never alias a different node.
        self._hash_cache: Dict[int, str] = {}
        self._pins: List[Any] = []
        self._path: Tuple[str, ...] = ()
        self._path_dirty = True
        self._published_steps = 0

    # -- switch ---------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        self._stack.clear()
        self._self.clear()
        self._folded.clear()
        self._labels.clear()
        self._kinds.clear()
        self._hash_cache.clear()
        self._pins.clear()
        self._path = ()
        self._path_dirty = True
        self._published_steps = 0

    # -- code identity --------------------------------------------------

    def _key(self, node: Any, kind: str, label: str) -> str:
        memo = self._hash_cache
        key = memo.get(id(node))
        if key is None:
            key = content_hash(node, kind)
            memo[id(node)] = key
            self._pins.append(node)
            self._labels.setdefault(key, label)
            self._kinds.setdefault(key, kind)
        return key

    # -- engine barriers ------------------------------------------------

    def enter_engine(self) -> int:
        """Push a barrier; returns the index to restore on exit."""
        base = len(self._stack)
        self._stack.append((_MARK, "", 0))
        self._path_dirty = True
        return base

    def exit_engine(self, base: int) -> None:
        del self._stack[base:]
        self._path_dirty = True

    # -- F attribution --------------------------------------------------

    def beta(self, lam: Any, depth: int) -> None:
        """A beta reduction entering ``lam``, whose body evaluates at
        frame ``depth``.  Counts the contraction step itself and opens
        the callee's extent (replacing finished/tail-call extents)."""
        stack = self._stack
        while stack and stack[-1][0] == _F and stack[-1][2] >= depth:
            stack.pop()
        key = self._hash_cache.get(id(lam))
        if key is None:
            params = getattr(lam, "params", ()) or ()
            names = ",".join(str(p[0]) for p in params)
            key = self._key(lam, "f", f"lam({names})")
        stack.append((_F, key, depth))
        self._path_dirty = True
        self._count(key)

    def step(self, depth: int) -> None:
        """A non-beta F contraction at frame ``depth``: lazily unwind
        extents whose frames are gone, then charge the top extent."""
        stack = self._stack
        while stack and stack[-1][0] == _F and stack[-1][2] > depth:
            stack.pop()
            self._path_dirty = True
        top = stack[-1] if stack else None
        self._count(top[1] if top and top[0] != _MARK else _TOPLEVEL)

    # -- T attribution --------------------------------------------------

    def enter_t(self, name: str, block: Any) -> None:
        """A jump into TAL block ``block`` (labelled ``name``): replaces
        the current T extent -- T control flow is flat."""
        stack = self._stack
        if stack and stack[-1][0] == _T:
            stack.pop()
        key = self._key(block, "t", f"block {name.split('%')[0]}")
        stack.append((_T, key, 0))
        self._path_dirty = True

    def step_t(self) -> None:
        """One T machine step: charge the current block."""
        stack = self._stack
        top = stack[-1] if stack else None
        self._count(top[1] if top and top[0] == _T else _TOPLEVEL)

    # -- accounting -----------------------------------------------------

    def _count(self, key: str) -> None:
        self._self[key] = self._self.get(key, 0) + 1
        if self._path_dirty:
            self._path = tuple(e[1] for e in self._stack if e[0] != _MARK)
            self._path_dirty = False
        path = self._path if key != _TOPLEVEL and self._path \
            else (self._path + (_TOPLEVEL,) if key == _TOPLEVEL
                  else (key,))
        self._folded[path] = self._folded.get(path, 0) + 1

    # -- reading --------------------------------------------------------

    def snapshot(self) -> "ProfileSnapshot":
        total = sum(self._self.values())
        from repro.obs.events import OBS
        if OBS.enabled:
            # Delta-publish so repeated snapshots of a live profiler
            # keep ``profile.steps`` equal to the attributed total.
            if total > self._published_steps:
                OBS.metrics.inc("profile.steps",
                                total - self._published_steps)
                self._published_steps = total
            OBS.metrics.set_gauge("profile.sites", float(len(self._self)))
        entries = [
            {"key": key, "kind": self._kinds.get(key, "f"),
             "label": self._labels.get(key, key), "self_steps": steps}
            for key, steps in self._self.items()
        ]
        entries.sort(key=lambda e: (-e["self_steps"], e["key"]))
        folded = [
            {"stack": [self._labels.get(k, k) for k in path],
             "keys": list(path), "steps": steps}
            for path, steps in sorted(self._folded.items(),
                                      key=lambda kv: (-kv[1], kv[0]))
        ]
        return ProfileSnapshot(entries=entries, folded=folded,
                               total_steps=total)


PROFILER = Profiler()


@dataclass
class ProfileSnapshot:
    """A persisted profile: ranked hot-code table + folded stacks.

    This is the artifact the adaptive-tiering policy (ROADMAP item 4)
    consumes: ``entries`` ranks content hashes by attributed self
    steps, so "promote everything above N steps" is a one-line query.
    """

    entries: List[Dict[str, Any]] = field(default_factory=list)
    folded: List[Dict[str, Any]] = field(default_factory=list)
    total_steps: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {"version": 1, "total_steps": self.total_steps,
                "entries": self.entries, "folded": self.folded}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ProfileSnapshot":
        return cls(entries=list(data.get("entries", ())),
                   folded=list(data.get("folded", ())),
                   total_steps=int(data.get("total_steps", 0)))

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    @classmethod
    def load(cls, path: str) -> "ProfileSnapshot":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))

    def merge(self, other: "ProfileSnapshot") -> "ProfileSnapshot":
        """Associative fold of two profiles (per-key/per-stack adds)."""
        steps: Dict[str, int] = {}
        meta: Dict[str, Dict[str, str]] = {}
        for entry in self.entries + other.entries:
            steps[entry["key"]] = steps.get(entry["key"], 0) \
                + entry["self_steps"]
            meta.setdefault(entry["key"], {"kind": entry["kind"],
                                           "label": entry["label"]})
        entries = [{"key": k, "kind": meta[k]["kind"],
                    "label": meta[k]["label"], "self_steps": n}
                   for k, n in steps.items()]
        entries.sort(key=lambda e: (-e["self_steps"], e["key"]))
        stacks: Dict[Tuple[str, ...], int] = {}
        labels: Dict[Tuple[str, ...], List[str]] = {}
        for item in self.folded + other.folded:
            path = tuple(item.get("keys") or item["stack"])
            stacks[path] = stacks.get(path, 0) + item["steps"]
            labels.setdefault(path, list(item["stack"]))
        folded = [{"stack": labels[p], "keys": list(p), "steps": n}
                  for p, n in sorted(stacks.items(),
                                     key=lambda kv: (-kv[1], kv[0]))]
        return ProfileSnapshot(entries=entries, folded=folded,
                               total_steps=self.total_steps
                               + other.total_steps)

    def promote(self, threshold: int,
                kinds: Tuple[str, ...] = ("t",)) -> List[str]:
        """Digests of code at or above ``threshold`` attributed self
        steps -- the list ``funtal top --promote-threshold`` emits and
        :func:`repro.tal.fast.promote_digests` consumes to pre-seed the
        template JIT (skipping the per-run hot counter)."""
        return [entry["key"] for entry in self.entries
                if entry["kind"] in kinds
                and entry["self_steps"] >= threshold]

    def format_table(self, limit: int = 20) -> str:
        """The ``funtal top`` view: rank / self steps / % / kind / hash
        / label."""
        if not self.entries:
            return "(no profile data)"
        lines = [f"{'rank':>4}  {'self':>10}  {'%':>6}  kind  "
                 f"{'code hash':<16}  label",
                 "-" * 72]
        total = self.total_steps or 1
        for rank, entry in enumerate(self.entries[:limit], start=1):
            pct = 100.0 * entry["self_steps"] / total
            label = entry["label"]
            if len(label) > 40:
                label = label[:37] + "..."
            lines.append(
                f"{rank:>4}  {entry['self_steps']:>10}  {pct:>5.1f}%  "
                f"{entry['kind']:<4}  {entry['key']:<16}  {label}")
        lines.append(f"total attributed steps: {self.total_steps}")
        return "\n".join(lines)

    def format_folded(self) -> str:
        """Folded-stack flamegraph lines (``a;b;c 42``), hash-labelled
        frames so the graph aggregates by code identity."""
        lines = []
        for item in self.folded:
            frames = ";".join(
                f"{label} [{key[:8]}]" if key != label else label
                for label, key in zip(item["stack"],
                                      item.get("keys") or item["stack"]))
            lines.append(f"{frames} {item['steps']}")
        return "\n".join(lines) + ("\n" if lines else "")

"""Structured trace export: JSONL and Chrome-trace, with a round-trip loader.

Three machine-readable views of an event stream:

* :func:`export_jsonl` / :func:`load_jsonl` -- one JSON object per line,
  tagged by ``"type"``; ``load_jsonl(export_jsonl(events))`` reconstructs
  the original typed events exactly (dataclass equality), so traces can be
  archived and re-analyzed offline.
* :func:`export_chrome` -- the Chrome trace-event JSON format: open the
  output in ``chrome://tracing`` (or https://ui.perfetto.dev) to see spans
  as nested slices, counters as tracks, and machine control transfers as
  instant events.
* :func:`build_span_tree` -- reconstructs the nesting forest from the
  ``parent_id`` chain, used by the tests to assert well-bracketed
  cross-language spans.
"""

from __future__ import annotations

import io
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, TextIO, \
    Tuple, Union

from repro.obs.events import Counter, Gauge, MachineEvent, ObsEvent, Span

__all__ = [
    "event_to_dict", "event_from_dict", "export_jsonl", "load_jsonl",
    "export_chrome", "build_span_tree", "SpanNode",
]


# ---------------------------------------------------------------------------
# JSONL
# ---------------------------------------------------------------------------

def event_to_dict(event: ObsEvent) -> Dict[str, Any]:
    """A JSON-ready dict with a ``"type"`` tag."""
    if isinstance(event, Span):
        return {
            "type": "span", "name": event.name, "cat": event.cat,
            "start": event.start, "end": event.end,
            "span_id": event.span_id, "parent_id": event.parent_id,
            "args": {k: v for k, v in event.args}, "pid": event.pid,
        }
    if isinstance(event, Counter):
        return {"type": "counter", "name": event.name, "value": event.value,
                "ts": event.ts, "cat": event.cat, "pid": event.pid}
    if isinstance(event, Gauge):
        return {"type": "gauge", "name": event.name, "value": event.value,
                "ts": event.ts, "cat": event.cat, "pid": event.pid}
    if isinstance(event, MachineEvent):
        return {
            "type": "machine", "step": event.step, "kind": event.kind,
            "target": event.target,
            "regs": [[r, w] for r, w in event.regs],
            "stack": list(event.stack), "detail": event.detail,
            "ts": event.ts, "pid": event.pid,
        }
    raise TypeError(f"not an observability event: {event!r}")


def event_from_dict(data: Dict[str, Any]) -> ObsEvent:
    """Inverse of :func:`event_to_dict`."""
    tag = data.get("type")
    if tag == "span":
        return Span(
            data["name"], data["cat"], data["start"], data["end"],
            data["span_id"], data.get("parent_id"),
            tuple((k, v) for k, v in data.get("args", {}).items()),
            data.get("pid", 0))
    if tag == "counter":
        return Counter(data["name"], data["value"], data["ts"],
                       data.get("cat", "metric"), data.get("pid", 0))
    if tag == "gauge":
        return Gauge(data["name"], data["value"], data["ts"],
                     data.get("cat", "metric"), data.get("pid", 0))
    if tag == "machine":
        return MachineEvent(
            data["step"], data["kind"], data.get("target"),
            tuple((r, w) for r, w in data.get("regs", [])),
            tuple(data.get("stack", [])), data.get("detail", ""),
            data.get("ts", 0), data.get("pid", 0))
    raise ValueError(f"unknown event type tag {tag!r}")


def _open_sink(sink: Union[str, TextIO, None]):
    """Return ``(file, should_close)`` for a path / file / None (StringIO)."""
    if sink is None:
        return io.StringIO(), False
    if isinstance(sink, str):
        return open(sink, "w", encoding="utf-8"), True
    return sink, False


def export_jsonl(events: Iterable[ObsEvent],
                 sink: Union[str, TextIO, None] = None) -> str:
    """Write one JSON object per line; returns the full text."""
    out, close = _open_sink(sink)
    lines = []
    try:
        for event in events:
            line = json.dumps(event_to_dict(event), sort_keys=True)
            out.write(line + "\n")
            lines.append(line)
    finally:
        if close:
            out.close()
    return "\n".join(lines) + ("\n" if lines else "")


def load_jsonl(source: Union[str, TextIO]) -> List[ObsEvent]:
    """Load events from JSONL text, a path, or an open file."""
    if isinstance(source, str):
        if "\n" in source or source.lstrip().startswith("{"):
            text = source
        else:
            with open(source, "r", encoding="utf-8") as handle:
                text = handle.read()
    else:
        text = source.read()
    events: List[ObsEvent] = []
    for line in text.splitlines():
        line = line.strip()
        if line:
            events.append(event_from_dict(json.loads(line)))
    return events


# ---------------------------------------------------------------------------
# Chrome trace-event format
# ---------------------------------------------------------------------------

def _ns_to_us(ns: int) -> float:
    return ns / 1000.0


def export_chrome(events: Iterable[ObsEvent],
                  sink: Union[str, TextIO, None] = None) -> str:
    """Write a ``chrome://tracing``-loadable JSON document."""
    trace_events: List[Dict[str, Any]] = []
    for event in events:
        if isinstance(event, Span):
            trace_events.append({
                "name": event.name, "cat": event.cat or "span", "ph": "X",
                "ts": _ns_to_us(event.start),
                "dur": _ns_to_us(event.duration_ns),
                "pid": event.pid or 1, "tid": 1,
                "args": {k: v for k, v in event.args},
            })
        elif isinstance(event, (Counter, Gauge)):
            trace_events.append({
                "name": event.name, "cat": event.cat, "ph": "C",
                "ts": _ns_to_us(event.ts), "pid": event.pid or 1,
                "args": {event.name: event.value},
            })
        elif isinstance(event, MachineEvent):
            name = event.kind if not event.target else \
                f"{event.kind} -> {event.pretty_label()}"
            trace_events.append({
                "name": name, "cat": "machine", "ph": "i",
                "ts": _ns_to_us(event.ts), "pid": event.pid or 1,
                "tid": 1, "s": "t",
                "args": {
                    "step": event.step, "detail": event.detail,
                    "regs": {r: w for r, w in event.regs},
                    "stack": list(event.stack),
                },
            })
    document = json.dumps(
        {"traceEvents": trace_events, "displayTimeUnit": "ms"},
        sort_keys=True)
    out, close = _open_sink(sink)
    try:
        out.write(document + "\n")
    finally:
        if close:
            out.close()
    return document


# ---------------------------------------------------------------------------
# Span trees
# ---------------------------------------------------------------------------

@dataclass
class SpanNode:
    """A span plus its (start-ordered) children."""

    span: Span
    children: List["SpanNode"] = field(default_factory=list)

    def walk(self):
        yield self
        for child in self.children:
            yield from child.walk()

    def pretty(self, indent: int = 0) -> str:
        lines = [" " * indent + f"{self.span.name} [{self.span.cat}]"]
        for child in self.children:
            lines.append(child.pretty(indent + 2))
        return "\n".join(lines)


def build_span_tree(events: Iterable[ObsEvent]) -> List[SpanNode]:
    """Reconstruct the nesting forest from ``parent_id`` links.

    Spans arrive in *completion* order (children first); the result's
    roots and every ``children`` list are sorted by start time.
    """
    spans = [e for e in events if isinstance(e, Span)]
    nodes = {s.span_id: SpanNode(s) for s in spans}
    roots: List[SpanNode] = []
    for span in spans:
        node = nodes[span.span_id]
        parent = nodes.get(span.parent_id) if span.parent_id else None
        if parent is not None:
            parent.children.append(node)
        else:
            roots.append(node)
    for node in nodes.values():
        node.children.sort(key=lambda n: n.span.start)
    roots.sort(key=lambda n: n.span.start)
    return roots

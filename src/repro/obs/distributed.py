"""Cross-process trace propagation for the serve fleet.

PR 1's observability layer stops at the process boundary: spans and
counters recorded inside :mod:`repro.serve.pool` worker processes die
with the worker's private :data:`~repro.obs.events.OBS` singleton.  This
module carries them home:

* :class:`TraceContext` -- the serializable propagation record (trace
  id, parent span id, record flag) that rides on
  :attr:`repro.serve.protocol.Job.trace_ctx` through the JSON-lines
  wire format and the pool's chunked dispatch.
* :class:`WorkerCapture` -- the worker-side context manager wrapped
  around job execution.  It swaps in a fresh
  :class:`~repro.obs.metrics.MetricsRegistry`, enables instrumentation
  for the duration of the job, and on exit packs everything observed
  into a JSON-ready *envelope* (``{"pid", "metrics", "events"}``)
  shipped back on :attr:`repro.serve.protocol.JobResult.obs`.
* :func:`stitch_envelope` -- the parent-side inverse: worker span ids
  (allocated from the worker's own process-local counter, so they
  collide across pids) are remapped to fresh parent-process ids, the
  worker's root spans are re-parented under the pool's ``serve.job``
  span, and every event is tagged with the worker pid so Chrome/Perfetto
  render one lane per worker.

Timestamps are ``perf_counter_ns`` ticks; on Linux that clock is
CLOCK_MONOTONIC, shared across the forked workers, so stitched spans
land on the parent's timeline without skew correction.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional

from repro.obs import events as obs_events
from repro.obs.events import OBS, ObsEvent, Span
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace_export import event_from_dict, event_to_dict

__all__ = ["TraceContext", "WorkerCapture", "stitch_envelope",
           "new_trace_id"]


def new_trace_id() -> str:
    """A fresh 64-bit hex trace id."""
    return os.urandom(8).hex()


@dataclass(frozen=True)
class TraceContext:
    """The propagation record a job carries across the process boundary.

    ``record=False`` asks the worker for metrics only (the cheap,
    always-on path that fixes the fleet's telemetry black hole);
    ``record=True`` additionally captures the worker's span/machine
    events for stitching into the parent's trace.
    """

    trace_id: str
    parent_span_id: int = 0
    record: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return {"trace_id": self.trace_id,
                "parent_span_id": self.parent_span_id,
                "record": self.record}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TraceContext":
        return cls(trace_id=str(data.get("trace_id", "")),
                   parent_span_id=int(data.get("parent_span_id", 0)),
                   record=bool(data.get("record", False)))


class WorkerCapture:
    """Capture one job's worth of worker-side observability.

    Swaps a fresh registry into ``OBS`` for the duration (so the
    envelope contains exactly this job's metrics, not the worker's
    lifetime totals), enables instrumentation, and restores the prior
    switch state on exit.  The captured metrics are also folded back
    into the worker's own registry so local totals keep accumulating.
    """

    def __init__(self, ctx: TraceContext):
        self.ctx = ctx
        self.envelope: Dict[str, Any] = {}
        self._prior_metrics: Optional[MetricsRegistry] = None
        self._prior_enabled = False
        self._prior_recording = False

    def __enter__(self) -> "WorkerCapture":
        self._prior_enabled = OBS.enabled
        self._prior_recording = OBS.bus.recording
        self._prior_metrics = OBS.metrics
        OBS.metrics = MetricsRegistry()
        if self.ctx.record:
            OBS.bus.clear()             # orphaned pre-job events, if any
        OBS.bus.recording = self.ctx.record
        OBS.enabled = True
        return self

    def __exit__(self, *exc) -> None:
        OBS.enabled = self._prior_enabled
        OBS.bus.recording = self._prior_recording
        captured, OBS.metrics = OBS.metrics, self._prior_metrics
        events: List[ObsEvent] = OBS.bus.drain() if self.ctx.record else []
        snap = captured.snapshot()
        self._prior_metrics.merge_snapshot(snap)
        self.envelope = {
            "pid": os.getpid(),
            "trace_id": self.ctx.trace_id,
            "metrics": snap,
            "events": [event_to_dict(e) for e in events],
        }


def stitch_envelope(envelope: Dict[str, Any],
                    parent_span_id: Optional[int] = None) -> List[ObsEvent]:
    """Rehydrate a worker envelope's events into the parent process.

    Worker span ids come from the worker's process-local counter, so two
    workers routinely produce colliding ids; every span is remapped to a
    fresh id from *this* process's counter.  Roots (``parent_id is
    None``, or a parent that did not travel in the envelope) are
    re-parented under ``parent_span_id``, and all events are tagged with
    the worker pid.
    """
    pid = int(envelope.get("pid", 0))
    events = [event_from_dict(d) for d in envelope.get("events", ())]
    id_map = {e.span_id: next(obs_events._span_ids)
              for e in events if isinstance(e, Span)}
    stitched: List[ObsEvent] = []
    for event in events:
        if isinstance(event, Span):
            parent = id_map.get(event.parent_id) if event.parent_id \
                else None
            if parent is None:
                parent = parent_span_id
            stitched.append(replace(event, span_id=id_map[event.span_id],
                                    parent_id=parent, pid=pid))
        else:
            stitched.append(replace(event, pid=pid))
    return stitched

"""Unified observability: spans, counters, and structured trace export.

The paper's own "evaluation" is its control-flow diagrams (Figs 4, 12, 16,
17) -- exactly the artifacts a tracing layer produces.  This package makes
that first-class across every layer of the reproduction:

* :mod:`repro.obs.events` -- a process-wide, zero-dependency event bus
  with typed events (:class:`Span`, :class:`Counter`, :class:`Gauge`,
  :class:`MachineEvent`) and a thread-local context stack so spans nest
  correctly across ``FTMachine.evaluate`` -> ``_cross_boundary`` ->
  ``TalMachine.run_seq``;
* :mod:`repro.obs.metrics` -- counters/histograms for machine steps,
  boundary crossings (F->T and T->F separately), typecheck invocations per
  judgment, substitutions, and JIT compiles/cache hits;
* :mod:`repro.obs.trace_export` -- JSONL and Chrome-trace exporters plus a
  loader so traces round-trip.

Instrumentation is off by default; the hooks wired through the machines,
typecheckers, boundary translations, and the JIT all guard on a single
attribute check (``OBS.enabled``), so the uninstrumented hot path pays one
attribute read.  Typical use::

    from repro import obs

    obs.enable()                       # record events + count metrics
    value, machine = evaluate_ft(program, trace=True)
    obs.disable()

    events = obs.OBS.bus.events()      # typed Span/MachineEvent stream
    print(obs.OBS.metrics.format_table())
    obs.export_jsonl(events, "trace.jsonl")

or from the CLI: ``funtal trace fig17 --format table`` and
``funtal stats fig17 --json``.  See ``docs/observability.md``.
"""

from repro.obs.distributed import (
    TraceContext, WorkerCapture, new_trace_id, stitch_envelope,
)
from repro.obs.events import (
    Counter, EventBus, Gauge, MachineEvent, OBS, ObsEvent, ObsState, Span,
    disable, enable, enabled, reset,
)
from repro.obs.metrics import HistogramSummary, MetricsRegistry
from repro.obs.profile import PROFILER, Profiler, ProfileSnapshot, \
    content_hash
from repro.obs.trace_export import (
    SpanNode, build_span_tree, event_from_dict, event_to_dict,
    export_chrome, export_jsonl, load_jsonl,
)

__all__ = [
    "Counter", "EventBus", "Gauge", "MachineEvent", "OBS", "ObsEvent",
    "ObsState", "Span", "disable", "enable", "enabled", "reset",
    "HistogramSummary", "MetricsRegistry",
    "PROFILER", "Profiler", "ProfileSnapshot", "content_hash",
    "TraceContext", "WorkerCapture", "new_trace_id", "stitch_envelope",
    "SpanNode", "build_span_tree", "event_from_dict", "event_to_dict",
    "export_chrome", "export_jsonl", "load_jsonl",
]

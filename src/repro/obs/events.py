"""Process-wide observability event bus (zero dependencies).

The bus carries four typed events:

* :class:`Span` -- a named, nested interval (``start``/``end`` in
  ``perf_counter_ns`` ticks) with a ``parent_id`` chain.  Spans are opened
  with :meth:`ObsState.span` (a context manager) and nest via a
  *thread-local* context stack, so an FT evaluation that enters a T
  component which ``import``s F code yields a well-bracketed span tree
  ``ft.evaluate > ft.boundary > ft.import`` regardless of how deeply the
  machines recurse into each other.
* :class:`Counter` / :class:`Gauge` -- point-in-time metric samples.  The
  hot-path counters live in :mod:`repro.obs.metrics` as plain dict
  increments; :meth:`repro.obs.metrics.MetricsRegistry.flush_to` converts a
  snapshot into bus events when a trace is being exported.
* :class:`MachineEvent` -- one control transfer of the T/FT machines (the
  bus-level mirror of :class:`repro.tal.machine.TraceEvent`, with register
  and stack words already prettified to strings so the event is
  serializable).

Everything hangs off the singleton :data:`OBS`.  Instrumentation sites
guard with a single attribute check::

    from repro.obs.events import OBS
    ...
    if OBS.enabled:
        OBS.metrics.inc("t.machine.steps")

so the uninstrumented hot path pays one global load and one attribute
read.  :func:`enable` / :func:`disable` flip the switch; the bus retains
events only while ``OBS.bus.recording`` is set (``enable(record=True)``),
so long runs with metrics-only instrumentation cannot exhaust memory.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

__all__ = [
    "Span", "Counter", "Gauge", "MachineEvent", "ObsEvent", "EventBus",
    "ObsState", "OBS", "enable", "disable", "enabled", "reset",
]


# ---------------------------------------------------------------------------
# Typed events
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Span:
    """A completed interval; ``parent_id`` links the nesting tree."""

    name: str
    cat: str                   # layer: f | t | ft | jit | typecheck | cli
    start: int                 # perf_counter_ns at entry
    end: int                   # perf_counter_ns at exit
    span_id: int
    parent_id: Optional[int] = None
    args: Tuple[Tuple[str, str], ...] = ()
    pid: int = 0               # originating worker pid (0 = this process)

    @property
    def duration_ns(self) -> int:
        return self.end - self.start

    def __str__(self) -> str:
        us = self.duration_ns / 1000.0
        extra = "".join(f" {k}={v}" for k, v in self.args)
        return f"span {self.name} [{self.cat}] {us:.1f}us{extra}"


@dataclass(frozen=True)
class Counter:
    """A monotonic count sampled at ``ts`` (usually a final total)."""

    name: str
    value: int
    ts: int
    cat: str = "metric"
    pid: int = 0               # originating worker pid (0 = this process)

    def __str__(self) -> str:
        return f"counter {self.name} = {self.value}"


@dataclass(frozen=True)
class Gauge:
    """A point-in-time measurement (can go up or down)."""

    name: str
    value: float
    ts: int
    cat: str = "metric"
    pid: int = 0               # originating worker pid (0 = this process)

    def __str__(self) -> str:
        return f"gauge {self.name} = {self.value}"


@dataclass(frozen=True)
class MachineEvent:
    """One control transfer, with registers and stack prettified.

    Mirrors :class:`repro.tal.machine.TraceEvent` field-for-field (so
    :func:`repro.analysis.trace.control_flow_table` consumes either), but
    holds plain strings and is therefore JSON-serializable.
    """

    step: int
    kind: str                  # enter | jmp | call | ret | bnz | halt |
                               # boundary | truncated
    target: Optional[str]
    regs: Tuple[Tuple[str, str], ...]
    stack: Tuple[str, ...]
    detail: str = ""
    ts: int = 0
    pid: int = 0               # originating worker pid (0 = this process)

    def pretty_label(self) -> str:
        return self.target.split("%")[0] if self.target else ""

    def __str__(self) -> str:
        regs = ", ".join(f"{r} -> {w}" for r, w in self.regs)
        stack = " :: ".join(self.stack) or "nil"
        where = f" -> {self.pretty_label()}" if self.target else ""
        info = f" ({self.detail})" if self.detail else ""
        return f"[{self.step}] {self.kind}{where}{info} | {regs} | {stack}"


ObsEvent = Union[Span, Counter, Gauge, MachineEvent]


# ---------------------------------------------------------------------------
# The bus
# ---------------------------------------------------------------------------

class EventBus:
    """Publish/subscribe fan-out with an optional in-memory recording."""

    def __init__(self) -> None:
        self._subscribers: List[Callable[[ObsEvent], None]] = []
        self._events: List[ObsEvent] = []
        self._lock = threading.Lock()
        self.recording = False

    @property
    def active(self) -> bool:
        """Is anyone listening?  Publishers may skip event construction
        entirely when not."""
        return self.recording or bool(self._subscribers)

    def publish(self, event: ObsEvent) -> None:
        if self.recording:
            with self._lock:
                self._events.append(event)
        for fn in self._subscribers:
            fn(event)

    def subscribe(self, fn: Callable[[ObsEvent], None]) -> Callable[[], None]:
        """Register a listener; returns an unsubscribe thunk."""
        self._subscribers.append(fn)

        def unsubscribe() -> None:
            try:
                self._subscribers.remove(fn)
            except ValueError:
                pass

        return unsubscribe

    def events(self) -> Tuple[ObsEvent, ...]:
        with self._lock:
            return tuple(self._events)

    def drain(self) -> List[ObsEvent]:
        """Return and clear the recording."""
        with self._lock:
            out, self._events = self._events, []
        return out

    def clear(self) -> None:
        with self._lock:
            self._events.clear()


# ---------------------------------------------------------------------------
# Spans: the thread-local context stack
# ---------------------------------------------------------------------------

_span_ids = itertools.count(1)


class _NoopSpan:
    """Shared, reentrant do-nothing context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NOOP_SPAN = _NoopSpan()


class _SpanHandle:
    __slots__ = ("state", "name", "cat", "args", "start", "span_id",
                 "parent_id")

    def __init__(self, state: "ObsState", name: str, cat: str,
                 args: Dict[str, Any]):
        self.state = state
        self.name = name
        self.cat = cat
        self.args = tuple((k, str(v)) for k, v in args.items())

    def __enter__(self) -> "_SpanHandle":
        stack = self.state._span_stack()
        self.parent_id = stack[-1] if stack else None
        self.span_id = next(_span_ids)
        stack.append(self.span_id)
        self.start = time.perf_counter_ns()
        return self

    def __exit__(self, *exc) -> None:
        end = time.perf_counter_ns()
        stack = self.state._span_stack()
        if stack and stack[-1] == self.span_id:
            stack.pop()
        else:                           # unbalanced exit: repair the stack
            while stack and stack[-1] != self.span_id:
                stack.pop()
            if stack:
                stack.pop()
        span = Span(self.name, self.cat, self.start, end, self.span_id,
                    self.parent_id, self.args)
        self.state.metrics.observe(f"span.{self.name}.us",
                                   span.duration_ns / 1000.0)
        if self.state.bus.active:
            self.state.bus.publish(span)


# ---------------------------------------------------------------------------
# The process-wide singleton
# ---------------------------------------------------------------------------

class ObsState:
    """Master switch + bus + metrics registry + span context."""

    __slots__ = ("enabled", "bus", "metrics", "_local")

    def __init__(self) -> None:
        from repro.obs.metrics import MetricsRegistry

        self.enabled = False
        self.bus = EventBus()
        self.metrics = MetricsRegistry()
        self._local = threading.local()

    def _span_stack(self) -> List[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, cat: str = "", **args):
        """Open a nested span; a no-op singleton when disabled."""
        if not self.enabled:
            return _NOOP_SPAN
        return _SpanHandle(self, name, cat, args)

    def current_span_id(self) -> Optional[int]:
        stack = self._span_stack()
        return stack[-1] if stack else None

    def gauge(self, name: str, value: float, cat: str = "metric") -> None:
        """Record a gauge in the registry and on the bus (if listening)."""
        self.metrics.set_gauge(name, value)
        if self.bus.active:
            self.bus.publish(Gauge(name, value, time.perf_counter_ns(), cat))


OBS = ObsState()


def enable(record: bool = True) -> None:
    """Turn instrumentation on; ``record`` retains bus events in memory."""
    OBS.bus.recording = record
    OBS.enabled = True


def disable() -> None:
    """Turn instrumentation off (recorded events are kept until reset)."""
    OBS.enabled = False
    OBS.bus.recording = False


def enabled() -> bool:
    return OBS.enabled


def reset() -> None:
    """Clear recorded events and all metrics (the switch is untouched)."""
    OBS.bus.clear()
    OBS.metrics.reset()

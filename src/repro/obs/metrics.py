"""Counters, gauges, and histograms for the observability layer.

A :class:`MetricsRegistry` is a plain-dict aggregator: ``inc`` is one
dictionary update, so per-machine-step counting stays cheap even when
instrumentation is on.  The registry is deliberately decoupled from the
event bus -- per-increment events would flood a trace with millions of
lines -- and instead :meth:`MetricsRegistry.flush_to` publishes one
:class:`~repro.obs.events.Counter`/:class:`~repro.obs.events.Gauge` event
per metric (the final totals) when an exporter wants them in-band.

Canonical counter names used by the instrumentation hooks:

===============================  ============================================
``f.machine.steps``              pure-F reduction steps (both machines)
``t.machine.steps``              T instruction/terminator steps
``t.machine.components_loaded``  component heap merges
``t.subst.instantiate``          code-block instantiations at jump time
``t.subst.unpack``               type substitutions from ``unpack``
``ft.boundary.f_to_t``           F-to-T crossings (``tauFT e`` components run)
``ft.boundary.t_to_f``           T-to-F crossings (``import`` evaluations)
``ft.translate.f_to_t``          value translations ``TFtau(v, M)``
``ft.translate.t_to_f``          value translations ``tauFT(w, M)``
``typecheck.t.instr.<op>``       T instruction typing rules, per opcode
``typecheck.t.term.<op>``        T terminator typing rules, per opcode
``typecheck.t.component``        component checks
``typecheck.ft.expr.<form>``     FT expression judgments, per syntax form
``typecheck.ft.import`` / ``.protect`` / ``.boundary``  the Fig 7 rules
``jit.compile``                  actual compilations performed
``jit.cache.hit`` / ``.miss`` / ``.eviction``  compile-cache outcomes
``trace.truncated``              bounded traces that hit their event cap
===============================  ============================================

The serving layer (:mod:`repro.serve`) adds its own family:

===============================  ============================================
``serve.jobs.submitted``         jobs accepted into the pool queue
``serve.jobs.completed``         jobs resolved ``ok``
``serve.jobs.failed``            jobs resolved error/fuel/timeout/crashed
``serve.jobs.retried``           re-dispatches after a crash or hang
``serve.jobs.rejected``          backpressure/protocol rejections (server)
``serve.cache.hit`` / ``.miss`` / ``.eviction``  result-cache outcomes
``serve.worker.spawn``           worker processes started (incl. respawns)
``serve.worker.crash``           workers lost to a crashed job
``serve.worker.timeout``         workers killed for overrunning a deadline
``serve.worker.respawn``         replacements brought up after a loss
``serve.connections``            TCP connections accepted (counter)
``serve.queue.depth``            pending + backoff-delayed jobs (gauge)
``serve.job.ms``                 submit-to-resolve latency (histogram)
===============================  ============================================

The resilience layer (:mod:`repro.resilience`) adds its own family
(see ``docs/resilience.md``):

===================================  ========================================
``resilience.soft_limit.<r>``        budget soft-warnings (80% of ceiling),
                                     per resource ``fuel``/``heap``/``depth``
``resilience.exhausted.<r>``         governors tripped, per resource
``resilience.budget.<r>_used``       spend at the last soft-warning (gauge)
``resilience.snapshot.captured``     machine snapshots taken
``resilience.snapshot.restored``     snapshots verified + restored
``resilience.snapshot.bytes``        snapshot payload sizes (histogram)
``resilience.chaos.injected``        chaos faults fired (also per-seam:
                                     ``resilience.chaos.injected.<seam>``)
``resilience.jit_fallback.compile``  lambdas quarantined at compile time
``resilience.jit_fallback.run``      guarded runs that fell back to the
                                     interpreter after a run-time fault
``jit.quarantine.added``             lambdas added to the circuit breaker
``jit.quarantine.hits``              rewrites that skipped a quarantined
                                     lambda
``jit.quarantine.size``              current circuit-breaker size (gauge)
===================================  ========================================

The environment-machine fast path (:mod:`repro.f.cek` and the memo
caches in :mod:`repro.tal.subst` / :mod:`repro.tal.equality`) adds its
own family (see ``docs/performance.md``):

===================================  ========================================
``tal.subst.cache.ty.<o>``           type-substitution memo outcomes, per
                                     outcome ``hit``/``miss``/``eviction``
``tal.subst.cache.ctype.<o>``        ``instantiate_code_type`` memo outcomes
``tal.subst.cache.block.<o>``        ``instantiate_code_block`` memo outcomes
``tal.equality.cache.<o>``           ``types_equal`` top-level memo outcomes
===================================  ========================================

(The CEK engine itself introduces no new counters: it reports the same
``f.machine.steps`` as the substitution stepper, 1:1, so traces and
budget accounting are engine-independent.)
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional

__all__ = ["HistogramSummary", "MetricsRegistry"]


class HistogramSummary:
    """Streaming count/total/min/max summary of observed values."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "total": round(self.total, 3),
            "mean": round(self.mean, 3),
            "min": round(self.min, 3) if self.min is not None else 0.0,
            "max": round(self.max, 3) if self.max is not None else 0.0,
        }


class MetricsRegistry:
    """Process-wide named counters, gauges, and histograms."""

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, HistogramSummary] = {}
        self._lock = threading.Lock()

    # -- the hot path ---------------------------------------------------

    def inc(self, name: str, n: int = 1) -> None:
        # One dict update; racing threads may drop an increment, which is
        # an accepted trade for not locking the machine's step loop.
        self._counters[name] = self._counters.get(name, 0) + n

    def observe(self, name: str, value: float) -> None:
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms.setdefault(name, HistogramSummary())
        hist.observe(value)

    def set_gauge(self, name: str, value: float) -> None:
        self._gauges[name] = value

    # -- reading --------------------------------------------------------

    def counter(self, name: str) -> int:
        return self._counters.get(name, 0)

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-ready copy: ``{"counters": ..., "gauges": ...,
        "histograms": ...}`` with deterministic key order."""
        with self._lock:
            return {
                "counters": dict(sorted(self._counters.items())),
                "gauges": dict(sorted(self._gauges.items())),
                "histograms": {
                    k: v.as_dict()
                    for k, v in sorted(self._histograms.items())
                },
            }

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    # -- bridging to the bus --------------------------------------------

    def flush_to(self, bus, ts: Optional[int] = None) -> int:
        """Publish one Counter/Gauge event per metric (final totals);
        returns the number of events published."""
        from repro.obs.events import Counter, Gauge

        if ts is None:
            ts = time.perf_counter_ns()
        published = 0
        for name, value in sorted(self._counters.items()):
            bus.publish(Counter(name, value, ts))
            published += 1
        for name, value in sorted(self._gauges.items()):
            bus.publish(Gauge(name, value, ts))
            published += 1
        return published

    def format_table(self) -> str:
        """Human-readable snapshot for ``funtal stats``."""
        snap = self.snapshot()
        lines: List[str] = []
        if snap["counters"]:
            width = max(len(k) for k in snap["counters"])
            lines.append("counters")
            lines.append("--------")
            for name, value in snap["counters"].items():
                lines.append(f"{name:<{width}}  {value}")
        if snap["gauges"]:
            width = max(len(k) for k in snap["gauges"])
            lines.append("")
            lines.append("gauges")
            lines.append("------")
            for name, value in snap["gauges"].items():
                lines.append(f"{name:<{width}}  {value}")
        if snap["histograms"]:
            width = max(len(k) for k in snap["histograms"])
            lines.append("")
            lines.append("histograms (count / mean / min / max)")
            lines.append("-------------------------------------")
            for name, h in snap["histograms"].items():
                lines.append(
                    f"{name:<{width}}  {h['count']} / {h['mean']} / "
                    f"{h['min']} / {h['max']}")
        return "\n".join(lines) if lines else "(no metrics recorded)"

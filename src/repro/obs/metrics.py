"""Counters, gauges, and histograms for the observability layer.

A :class:`MetricsRegistry` is a plain-dict aggregator: ``inc`` is one
dictionary update, so per-machine-step counting stays cheap even when
instrumentation is on.  The registry is deliberately decoupled from the
event bus -- per-increment events would flood a trace with millions of
lines -- and instead :meth:`MetricsRegistry.flush_to` publishes one
:class:`~repro.obs.events.Counter`/:class:`~repro.obs.events.Gauge` event
per metric (the final totals) when an exporter wants them in-band.

Canonical counter names used by the instrumentation hooks:

===============================  ============================================
``f.machine.steps``              pure-F reduction steps (both machines)
``t.machine.steps``              T instruction/terminator steps
``t.machine.components_loaded``  component heap merges
``t.subst.instantiate``          code-block instantiations at jump time
``t.subst.unpack``               type substitutions from ``unpack``
``ft.boundary.f_to_t``           F-to-T crossings (``tauFT e`` components run)
``ft.boundary.t_to_f``           T-to-F crossings (``import`` evaluations)
``ft.translate.f_to_t``          value translations ``TFtau(v, M)``
``ft.translate.t_to_f``          value translations ``tauFT(w, M)``
``typecheck.t.instr.<op>``       T instruction typing rules, per opcode
``typecheck.t.term.<op>``        T terminator typing rules, per opcode
``typecheck.t.component``        component checks
``typecheck.ft.expr.<form>``     FT expression judgments, per syntax form
``typecheck.ft.import`` / ``.protect`` / ``.boundary``  the Fig 7 rules
``jit.compile``                  actual compilations performed
``jit.cache.hit`` / ``.miss`` / ``.eviction``  compile-cache outcomes
``trace.truncated``              bounded traces that hit their event cap
===============================  ============================================

The serving layer (:mod:`repro.serve`) adds its own family:

===============================  ============================================
``serve.jobs.submitted``         jobs accepted into the pool queue
``serve.jobs.completed``         jobs resolved ``ok``
``serve.jobs.failed``            jobs resolved error/fuel/timeout/crashed
``serve.jobs.retried``           re-dispatches after a crash or hang
``serve.jobs.rejected``          backpressure/protocol rejections (server)
``serve.cache.hit`` / ``.miss`` / ``.eviction``  result-cache outcomes
``serve.worker.spawn``           worker processes started (incl. respawns)
``serve.worker.crash``           workers lost to a crashed job
``serve.worker.timeout``         workers killed for overrunning a deadline
``serve.worker.respawn``         replacements brought up after a loss
``serve.connections``            TCP connections accepted (counter)
``serve.queue.depth``            pending + backoff-delayed jobs (gauge)
``serve.job.ms``                 submit-to-resolve latency (histogram)
===============================  ============================================

The resilience layer (:mod:`repro.resilience`) adds its own family
(see ``docs/resilience.md``):

===================================  ========================================
``resilience.soft_limit.<r>``        budget soft-warnings (80% of ceiling),
                                     per resource ``fuel``/``heap``/``depth``
``resilience.exhausted.<r>``         governors tripped, per resource
``resilience.budget.<r>_used``       spend at the last soft-warning (gauge)
``resilience.snapshot.captured``     machine snapshots taken
``resilience.snapshot.restored``     snapshots verified + restored
``resilience.snapshot.bytes``        snapshot payload sizes (histogram)
``resilience.chaos.injected``        chaos faults fired (also per-seam:
                                     ``resilience.chaos.injected.<seam>``)
``resilience.jit_fallback.compile``  lambdas quarantined at compile time
``resilience.jit_fallback.run``      guarded runs that fell back to the
                                     interpreter after a run-time fault
``jit.quarantine.added``             lambdas added to the circuit breaker
``jit.quarantine.hits``              rewrites that skipped a quarantined
                                     lambda
``jit.quarantine.size``              current circuit-breaker size (gauge)
===================================  ========================================

The environment-machine fast path (:mod:`repro.f.cek` and the memo
caches in :mod:`repro.tal.subst` / :mod:`repro.tal.equality`) adds its
own family (see ``docs/performance.md``):

===================================  ========================================
``tal.subst.cache.ty.<o>``           type-substitution memo outcomes, per
                                     outcome ``hit``/``miss``/``eviction``
``tal.subst.cache.ctype.<o>``        ``instantiate_code_type`` memo outcomes
``tal.subst.cache.block.<o>``        ``instantiate_code_block`` memo outcomes
``tal.equality.cache.<o>``           ``types_equal`` top-level memo outcomes
===================================  ========================================

(The CEK engine itself introduces no new counters: it reports the same
``f.machine.steps`` as the substitution stepper, 1:1, so traces and
budget accounting are engine-independent.)

The hot-code profiler (:mod:`repro.obs.profile`) and the distributed
tracing layer (:mod:`repro.obs.distributed`) add:

===================================  ========================================
``profile.steps``                    machine steps attributed while the
                                     profiler was enabled
``profile.sites``                    distinct content-hashed code sites seen
                                     (gauge, set at snapshot time)
``serve.obs.envelopes``              worker obs envelopes folded into the
                                     parent registry
``serve.obs.spans_stitched``         worker-side spans re-parented into the
                                     parent span tree
===================================  ========================================

Histograms now carry quantiles: every ``as_dict`` reports ``p50``/
``p95``/``p99`` from a log-bucket sketch (~1% relative error) alongside
the exact count/mean/min/max, and snapshots embed the sketch's integer
buckets so cross-process merges (:meth:`MetricsRegistry.merge_snapshot`)
stay exact and associative.
"""

from __future__ import annotations

import math
import threading
import time
from typing import Any, Dict, List, Optional

__all__ = ["HistogramSummary", "MetricsRegistry"]

#: Relative accuracy of the log-bucket quantile sketch: bucket i covers
#: ``(gamma^(i-1), gamma^i]``, so any reported quantile is within ~1% of
#: the true value.  Integer bucket counts make merges exactly associative.
_GAMMA = 1.02
_LOG_GAMMA = math.log(_GAMMA)


class HistogramSummary:
    """Streaming summary with quantiles: a DDSketch-style log-bucket
    histogram on top of the count/total/min/max running summary.

    Positive observations land in geometric buckets keyed by
    ``ceil(log(v) / log(gamma))``; non-positive ones are counted in a
    dedicated zero bucket.  Because the state is plain integer counts,
    :meth:`merge` is exact and associative -- the property the serve
    fleet relies on when worker-side snapshots are folded into the
    parent registry in any order.
    """

    __slots__ = ("count", "total", "min", "max", "_buckets", "_zeros")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._buckets: Dict[int, int] = {}
        self._zeros = 0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if value > 0.0:
            key = int(math.ceil(math.log(value) / _LOG_GAMMA))
            self._buckets[key] = self._buckets.get(key, 0) + 1
        else:
            self._zeros += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """The q-quantile (0 <= q <= 1), within ~1% relative error,
        clamped to the exact observed [min, max] envelope."""
        if not self.count:
            return 0.0
        rank = q * (self.count - 1)
        seen = self._zeros
        if rank < seen:
            return min(self.min, 0.0) if self.min is not None else 0.0
        value = self.max if self.max is not None else 0.0
        for key in sorted(self._buckets):
            seen += self._buckets[key]
            if rank < seen:
                # midpoint of (gamma^(key-1), gamma^key]
                value = 2.0 * (_GAMMA ** key) / (_GAMMA + 1.0)
                break
        lo = self.min if self.min is not None else value
        hi = self.max if self.max is not None else value
        return min(max(value, lo), hi)

    def merge(self, other: "HistogramSummary") -> None:
        """Fold another summary in (exact: integer bucket adds)."""
        self.count += other.count
        self.total += other.total
        if other.min is not None and (self.min is None
                                      or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None
                                      or other.max > self.max):
            self.max = other.max
        for key, n in other._buckets.items():
            self._buckets[key] = self._buckets.get(key, 0) + n
        self._zeros += other._zeros

    @classmethod
    def from_wire(cls, data: Dict[str, Any]) -> "HistogramSummary":
        """Rebuild a summary from its :meth:`as_dict` form (the
        ``sketch`` sub-dict carries the mergeable bucket state)."""
        hist = cls()
        hist.count = int(data.get("count", 0))
        hist.total = float(data.get("total", 0.0))
        if hist.count:
            hist.min = float(data.get("min", 0.0))
            hist.max = float(data.get("max", 0.0))
        sketch = data.get("sketch") or {}
        hist._zeros = int(sketch.get("zeros", 0))
        hist._buckets = {int(k): int(n)
                         for k, n in (sketch.get("buckets") or {}).items()}
        return hist

    def as_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "total": round(self.total, 3),
            "mean": round(self.mean, 3),
            "min": round(self.min, 3) if self.min is not None else 0.0,
            "max": round(self.max, 3) if self.max is not None else 0.0,
            "p50": round(self.quantile(0.50), 3),
            "p95": round(self.quantile(0.95), 3),
            "p99": round(self.quantile(0.99), 3),
            "sketch": {
                "zeros": self._zeros,
                "buckets": {str(k): n
                            for k, n in sorted(self._buckets.items())},
            },
        }


class MetricsRegistry:
    """Process-wide named counters, gauges, and histograms."""

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, HistogramSummary] = {}
        self._lock = threading.Lock()

    # -- the hot path ---------------------------------------------------

    def inc(self, name: str, n: int = 1) -> None:
        # One dict update; racing threads may drop an increment, which is
        # an accepted trade for not locking the machine's step loop.
        self._counters[name] = self._counters.get(name, 0) + n

    def observe(self, name: str, value: float) -> None:
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms.setdefault(name, HistogramSummary())
        hist.observe(value)

    def set_gauge(self, name: str, value: float) -> None:
        self._gauges[name] = value

    # -- reading --------------------------------------------------------

    def counter(self, name: str) -> int:
        return self._counters.get(name, 0)

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-ready copy: ``{"counters": ..., "gauges": ...,
        "histograms": ...}`` with deterministic key order."""
        with self._lock:
            return {
                "counters": dict(sorted(self._counters.items())),
                "gauges": dict(sorted(self._gauges.items())),
                "histograms": {
                    k: v.as_dict()
                    for k, v in sorted(self._histograms.items())
                },
            }

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    # -- cross-process folding ------------------------------------------

    def merge_snapshot(self, snap: Dict[str, Any]) -> None:
        """Fold a :meth:`snapshot` dict (typically shipped back from a
        worker process) into this registry: counters add, gauges are
        last-write-wins, histograms merge bucket-wise.  The histogram
        merge is exact and associative -- folding worker snapshots in
        any arrival order yields identical quantiles.
        """
        with self._lock:
            for name, value in (snap.get("counters") or {}).items():
                self._counters[name] = self._counters.get(name, 0) + value
            for name, value in (snap.get("gauges") or {}).items():
                self._gauges[name] = value
            for name, data in (snap.get("histograms") or {}).items():
                incoming = HistogramSummary.from_wire(data)
                hist = self._histograms.get(name)
                if hist is None:
                    self._histograms[name] = incoming
                else:
                    hist.merge(incoming)

    # -- bridging to the bus --------------------------------------------

    def flush_to(self, bus, ts: Optional[int] = None) -> int:
        """Publish one Counter/Gauge event per metric (final totals);
        returns the number of events published."""
        from repro.obs.events import Counter, Gauge

        if ts is None:
            ts = time.perf_counter_ns()
        published = 0
        for name, value in sorted(self._counters.items()):
            bus.publish(Counter(name, value, ts))
            published += 1
        for name, value in sorted(self._gauges.items()):
            bus.publish(Gauge(name, value, ts))
            published += 1
        return published

    def format_table(self) -> str:
        """Human-readable snapshot for ``funtal stats``."""
        snap = self.snapshot()
        lines: List[str] = []
        if snap["counters"]:
            width = max(len(k) for k in snap["counters"])
            lines.append("counters")
            lines.append("--------")
            for name, value in snap["counters"].items():
                lines.append(f"{name:<{width}}  {value}")
        if snap["gauges"]:
            width = max(len(k) for k in snap["gauges"])
            lines.append("")
            lines.append("gauges")
            lines.append("------")
            for name, value in snap["gauges"].items():
                lines.append(f"{name:<{width}}  {value}")
        if snap["histograms"]:
            width = max(len(k) for k in snap["histograms"])
            lines.append("")
            lines.append(
                "histograms (count / mean / p50 / p95 / p99 / max)")
            lines.append(
                "-------------------------------------------------")
            for name, h in snap["histograms"].items():
                lines.append(
                    f"{name:<{width}}  {h['count']} / {h['mean']} / "
                    f"{h['p50']} / {h['p95']} / {h['p99']} / {h['max']}")
        return "\n".join(lines) if lines else "(no metrics recorded)"

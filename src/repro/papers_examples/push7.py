"""Paper section 4.2: the stack-modifying lambda that pushes 7.

::

    lam[.; int :: .](x: int).
      unitFT (protect ., z;
              mv r1, 7; salloc 1; sst 0, r1; mv r1, ();
              halt unit, int :: z {r1}, .)

The boundary's component captures the whole current stack as ``z``, pushes
7, and halts with unit -- leaving one extra ``int`` on the stack, which is
exactly what the stack-modifying arrow type ``(int) [.; int::.] -> unit``
advertises.  Without stack-modifying lambdas this would fail to typecheck
(the paper's point); our tests also verify that an ordinary lambda with the
same body is rejected.
"""

from __future__ import annotations

from repro.f.syntax import FInt, FUnit
from repro.ft.syntax import Boundary, Protect, StackDelta, StackLam
from repro.tal.syntax import (
    Component, Halt, Mv, Salloc, Sst, StackTy, TInt, TUnit, WInt, WUnit,
    seq,
)

__all__ = ["build", "build_ill_typed"]


def _body() -> Boundary:
    comp = Component(seq(
        Protect((), "z"),
        Mv("r1", WInt(7)),
        Salloc(1),
        Sst(0, "r1"),
        Mv("r1", WUnit()),
        Halt(TUnit(), StackTy((TInt(),), "z"), "r1"),
    ))
    return Boundary(FUnit(), comp, StackDelta(pops=0, pushes=(TInt(),)))


def build() -> StackLam:
    """The well-typed stack-modifying version."""
    return StackLam((("x", FInt()),), _body(),
                    phi_in=(), phi_out=(TInt(),))


def build_ill_typed():
    """The same body under an *ordinary* lambda -- must be rejected,
    because the body changes the stack it was given."""
    from repro.f.syntax import Lam

    return Lam((("x", FInt()),), _body())

"""The inline typing examples of paper section 3.

Three snippets accompany the T typing rules:

* the *sequence* example, showing each instruction's postcondition feeding
  the next precondition::

      . ; . ; . ; nil ; q |- mv r1, 42  =>  r1: int ; nil
                            salloc 1    =>  r1: int ; unit :: nil
                            sst 0, r1   =>  r1: int ; int :: nil

  (the paper writes the marker as ``ra`` without giving ``ra`` a type; we
  use a concrete ``end{int; int::nil}`` marker so the snippet is a complete
  checkable program);

* the *jmp* example: a jump to ``l : box forall[].{r2: unit; int::nil}
  end{unit; nil}`` from a state with an extra register and matching stack;

* the *call* example: a call to
  ``l : box forall[z, e].{ra: forall[].{r1: int; z} e; unit :: z} ra``
  protecting the tail ``int :: nil``.  (The paper displays the caller's
  marker as ``end{unit; nil}`` while passing ``end{int; nil}`` to the
  callee; the first call rule requires these to coincide -- and the
  continuation in ``ra`` is typed at ``end{int; nil}`` -- so we use
  ``end{int; nil}`` throughout and note the figure's slip here.)

Each builder returns a complete, runnable component so the machine-level
tests can execute what the typing-level tests check.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.tal.syntax import (
    Call, CodeType, Component, DeltaBind, Halt, HCode, InstrSeq, Jmp,
    KIND_EPS, KIND_ZETA, Loc, Mv, NIL_STACK, QEnd, QEps, QReg, RegFileTy,
    Ret, Salloc, Sfree, Sld, Sst, StackTy, TBox, TInt, TUnit, WInt, WLoc,
    WUnit, seq,
)
from repro.tal.typecheck import InstrState, TalTypechecker

__all__ = [
    "sequence_example_states", "build_sequence_program", "build_jmp_program",
    "build_call_program",
]

_INT_STACK = StackTy((TInt(),), None)


def sequence_example_states() -> List[Tuple[str, InstrState]]:
    """Replay the section-3 sequence example, returning the state after
    each instruction (to compare against the paper's table)."""
    checker = TalTypechecker()
    marker = QEnd(TInt(), _INT_STACK)
    st = InstrState((), RegFileTy(), NIL_STACK, marker)
    out: List[Tuple[str, InstrState]] = [("(start)", st)]
    for instr in (Mv("r1", WInt(42)), Salloc(1), Sst(0, "r1")):
        st = checker.step_instruction(st, instr)
        out.append((str(instr), st))
    return out


def build_sequence_program() -> Component:
    """The sequence example completed into a runnable program: it halts
    with 42 in r1 and one int on the stack."""
    return Component(seq(
        Mv("r1", WInt(42)),
        Salloc(1),
        Sst(0, "r1"),
        Halt(TInt(), _INT_STACK, "r1"),
    ))


def build_jmp_program() -> Component:
    """The jmp example: the target pops the int and halts with unit."""
    target = Loc("ljmp")
    block = HCode(
        (), RegFileTy.of(r2=TUnit()), _INT_STACK, QEnd(TUnit(), NIL_STACK),
        seq(
            Sfree(1),
            Mv("r1", WUnit()),
            Halt(TUnit(), NIL_STACK, "r1"),
        ))
    return Component(seq(
        Mv("r1", WInt(5)),
        Mv("r2", WUnit()),
        Salloc(1),
        Sst(0, "r1"),
        Jmp(WLoc(target)),
    ), ((target, block),))


def build_call_program() -> Component:
    """The call example: a callee abstracting ``[z, e]`` over a stack with
    a protected ``int :: nil`` tail; the continuation pops that int and
    halts with the called function's result."""
    callee = Loc("lcallee")
    kont = Loc("lkont")
    cont_ty = TBox(CodeType(
        (), RegFileTy.of(r1=TInt()), StackTy((), "z"), QEps("e")))
    callee_block = HCode(
        (DeltaBind(KIND_ZETA, "z"), DeltaBind(KIND_EPS, "e")),
        RegFileTy.of(ra=cont_ty),
        StackTy((TUnit(),), "z"), QReg("ra"),
        seq(
            Sfree(1),          # drop the unit argument
            Mv("r1", WInt(10)),
            Ret("ra", "r1"),
        ))
    kont_block = HCode(
        (), RegFileTy.of(r1=TInt()), _INT_STACK, QEnd(TInt(), NIL_STACK),
        seq(
            Sfree(1),          # pop the protected int
            Halt(TInt(), NIL_STACK, "r1"),
        ))
    end_marker = QEnd(TInt(), NIL_STACK)
    return Component(seq(
        Mv("r1", WInt(3)),
        Salloc(2),
        Sst(1, "r1"),          # the protected int
        Mv("r2", WUnit()),
        Sst(0, "r2"),          # the unit argument
        Mv("ra", WLoc(kont)),
        Call(WLoc(callee), _INT_STACK, end_marker),
    ), ((callee, callee_block), (kont, kont_block)))

"""Paper section 4.2: the ``import`` example computing ``1 + 1``.

::

    . ; . ; . ; nil ; end{int; nil} |- import r1, nil TF int (1 + 1)
      => . ; r1: int ; nil ; end{int; nil}

We package it as a complete runnable component (adding the terminating
``halt``), plus the judgment-level pieces so tests can check the exact
postcondition the paper displays.
"""

from __future__ import annotations

from repro.f.syntax import BinOp, FInt, IntE
from repro.ft.syntax import Import
from repro.tal.syntax import (
    Component, Halt, NIL_STACK, QEnd, TInt, seq,
)

__all__ = ["build", "build_import_instruction", "MARKER", "EXPECTED_RESULT"]

MARKER = QEnd(TInt(), NIL_STACK)
EXPECTED_RESULT = 2


def build_import_instruction() -> Import:
    """Just the instruction, for judgment-level tests."""
    return Import("r1", NIL_STACK, FInt(), BinOp("+", IntE(1), IntE(1)))


def build() -> Component:
    """The complete component: import 1+1 into r1, then halt with it."""
    return Component(seq(
        build_import_instruction(),
        Halt(TInt(), NIL_STACK, "r1"),
    ))

"""Paper Fig 11: the JIT-compilation example; its control flow is Fig 12.

The F source program::

    g = lam(h: (int)->int). h 1
    h = lam(x: int). x * 2
    f = lam(g: ((int)->int)->int). g h
    e = f g

A JIT decides to compile ``f`` and ``h`` to assembly, yielding the mixed
program in which ``f`` and ``h`` are replaced by the code blocks ``l`` and
``lh``; ``g`` stays interpreted.  Running the mixed program exercises both
callback directions:

* assembly calls back *into* F (``l`` calls the interpreted ``g``), and
* compiled code is passed *to* F as a value (``lh`` flows into ``g`` as its
  higher-order argument and is then called with ``1``).

Both programs evaluate to ``2``; proving them *equivalent* (not merely
coincident on one run) is the JIT-correctness obligation sketched in the
paper's section 6, which our :mod:`repro.equiv` checker tests on bounded
observations.
"""

from __future__ import annotations

from repro.f.syntax import App, BinOp, FArrow, FInt, IntE, Lam, Var
from repro.ft.syntax import Boundary
from repro.ft.translate import continuation_type, type_translation
from repro.tal.syntax import (
    Aop, Call, Component, DeltaBind, Halt, HCode, KIND_EPS, KIND_ZETA, Loc,
    Mv, NIL_STACK, QEps, QIdx, QReg, RegFileTy, RegOp, Ret, Salloc, Sfree,
    Sld, Sst, StackTy, TInt, TyApp, WInt, WLoc, seq,
)

__all__ = [
    "build_source", "build_jit", "build_g", "INT_TO_INT", "TAU",
    "EXPECTED_RESULT", "L", "LH", "LGRET",
]

INT_TO_INT = FArrow((FInt(),), FInt())
#: tau = ((int) -> int) -> int, the type of g.
TAU = FArrow((INT_TO_INT,), FInt())

EXPECTED_RESULT = 2

L = Loc("l")
LH = Loc("lh")
LGRET = Loc("lgret")


def build_g() -> Lam:
    """The interpreted function ``g = lam(h: (int)->int). h 1``."""
    return Lam((("h", INT_TO_INT),), App(Var("h"), (IntE(1),)))


def build_source() -> App:
    """The all-F source program ``f g``."""
    g = build_g()
    h = Lam((("x", FInt()),), BinOp("*", Var("x"), IntE(2)))
    f = Lam((("g", TAU),), App(Var("g"), (h,)))
    return App(f, (g,))


def build_jit() -> App:
    """The JIT-transformed mixed program of Fig 11.

    ``e = ((tau)->int FT (mv r1, l; halt (tau)->intT, nil {r1}, H)) g``
    """
    zeps = (DeltaBind(KIND_ZETA, "z"), DeltaBind(KIND_EPS, "e"))
    zstack = StackTy((), "z")
    cont = continuation_type(TInt(), zstack)
    tau_t = type_translation(TAU)
    i2i_t = type_translation(INT_TO_INT)
    outer_arrow = FArrow((TAU,), FInt())
    outer_arrow_t = type_translation(outer_arrow)

    # l : compiled f.  Takes g on the stack; calls it back with lh.
    l_block = HCode(
        zeps, RegFileTy.of(ra=cont), StackTy((tau_t,), "z"), QReg("ra"),
        seq(
            Sld("r1", 0),
            Salloc(1),
            Mv("r2", WLoc(LH)),
            Sst(0, "r2"),
            Sst(1, "ra"),
            Mv("ra", TyApp(WLoc(LGRET), (zstack, QEps("e")))),
            Call(RegOp("r1"), StackTy((cont,), "z"), QIdx(0)),
        ))
    # lh : compiled h.  Doubles its stack argument.
    lh_block = HCode(
        zeps, RegFileTy.of(ra=cont), StackTy((TInt(),), "z"), QReg("ra"),
        seq(
            Sld("r1", 0),
            Sfree(1),
            Aop("mul", "r1", "r1", WInt(2)),
            Ret("ra", "r1"),
        ))
    # lgret : the shim continuation that recovers l's own continuation.
    lgret_block = HCode(
        zeps, RegFileTy.of(r1=TInt()), StackTy((cont,), "z"), QIdx(0),
        seq(
            Sld("ra", 0),
            Sfree(1),
            Ret("ra", "r1"),
        ))
    comp = Component(
        seq(Mv("r1", WLoc(L)),
            Halt(outer_arrow_t, NIL_STACK, "r1")),
        ((L, l_block), (LH, lh_block), (LGRET, lgret_block)))
    return App(Boundary(outer_arrow, comp), (build_g(),))


"""Every example program from the FunTAL paper, built programmatically.

Modules (one per figure / inline example):

* :mod:`repro.papers_examples.sec3_sequences` -- the inline section-3
  typing examples (``mv/salloc/sst``, the ``jmp`` example, the ``call``
  example);
* :mod:`repro.papers_examples.fig3_call_to_call` -- Fig 3's call-to-call
  program, whose control flow is Fig 4;
* :mod:`repro.papers_examples.push7` / ``import_example`` -- section 4.2's
  stack-modifying lambda and ``import`` examples;
* :mod:`repro.papers_examples.fig11_jit` -- the JIT compilation example,
  whose control flow is Fig 12;
* :mod:`repro.papers_examples.fig16_two_blocks` -- the one-block /
  two-block equivalent components;
* :mod:`repro.papers_examples.fig17_factorial` -- factorial, functional
  (``factF``) and imperative (``factT``).

The package also hosts the *runnable example registry* shared by the CLI
(``funtal examples``) and the evaluation service (``example`` jobs in
:mod:`repro.serve`): :func:`example_entries` maps stable names to
``(blurb, build)`` pairs and :func:`resolve_example` additionally accepts
the paper's figure numbers as aliases.
"""

from typing import Callable, Dict, Optional, Tuple

__all__ = ["EXAMPLE_ALIASES", "example_entries", "resolve_example"]


def example_entries() -> Dict[str, Tuple[str, Callable[[], object]]]:
    """Name -> (blurb, zero-arg builder) for every runnable example."""
    from repro.f.syntax import App, IntE, TupleE
    from repro.papers_examples import (
        fig11_jit, fig16_two_blocks, fig17_factorial,
    )

    return {
        "jit-source": ("Fig 11 source program (pure F)",
                       fig11_jit.build_source),
        "jit": ("Fig 11 JIT-compiled mixed program", fig11_jit.build_jit),
        "two-blocks-1": ("Fig 16 one-block add-two, applied to 5",
                         lambda: App(fig16_two_blocks.build_f1(),
                                     (IntE(5),))),
        "two-blocks-2": ("Fig 16 two-block add-two, applied to 5",
                         lambda: App(fig16_two_blocks.build_f2(),
                                     (IntE(5),))),
        "fact-f": ("Fig 17 functional factorial of 6",
                   lambda: App(fig17_factorial.build_fact_f(), (IntE(6),))),
        "fact-t": ("Fig 17 imperative factorial of 6",
                   lambda: App(fig17_factorial.build_fact_t(), (IntE(6),))),
        "fig17": ("Fig 17 both factorials of 6 (functional, then "
                  "imperative)",
                  lambda: TupleE((
                      App(fig17_factorial.build_fact_f(), (IntE(6),)),
                      App(fig17_factorial.build_fact_t(), (IntE(6),))))),
    }


#: Figure-number aliases accepted wherever an example name is.
EXAMPLE_ALIASES = {
    "fig11": "jit",
    "fig11-source": "jit-source",
    "fig16": "two-blocks-2",
}


def resolve_example(name: str) -> Optional[Tuple[str, Callable[[], object]]]:
    """Look up an example by name or figure alias; None when unknown."""
    entries = example_entries()
    return entries.get(EXAMPLE_ALIASES.get(name, name))

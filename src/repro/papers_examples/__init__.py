"""Every example program from the FunTAL paper, built programmatically.

Modules (one per figure / inline example):

* :mod:`repro.papers_examples.sec3_sequences` -- the inline section-3
  typing examples (``mv/salloc/sst``, the ``jmp`` example, the ``call``
  example);
* :mod:`repro.papers_examples.fig3_call_to_call` -- Fig 3's call-to-call
  program, whose control flow is Fig 4;
* :mod:`repro.papers_examples.push7` / ``import_example`` -- section 4.2's
  stack-modifying lambda and ``import`` examples;
* :mod:`repro.papers_examples.fig11_jit` -- the JIT compilation example,
  whose control flow is Fig 12;
* :mod:`repro.papers_examples.fig16_two_blocks` -- the one-block /
  two-block equivalent components;
* :mod:`repro.papers_examples.fig17_factorial` -- factorial, functional
  (``factF``) and imperative (``factT``).
"""

"""Paper Fig 17: factorial two different ways.

* ``factF`` is the standard functional factorial using iso-recursive
  self-application (no primitive recursion in F): a template ``F`` is
  applied to a folded copy of itself.
* ``factT`` is the imperative factorial: embedded assembly with an
  accumulator register (``r7``), a counter (``r3``), and a loop block
  entered and re-entered with ``bnz``.

Both compute ``n!`` for ``n >= 0`` and *diverge* for ``n < 0`` (``factF``
by infinite recursion, ``factT`` because the counter decrements past zero
forever).  The equivalence checker observes equal results on non-negative
inputs and co-divergence (fuel exhaustion on both sides) on negative
inputs -- the paper's two proof cases.

One paper deviation: Fig 17 returns with ``ret ra {r7}`` while the return
continuation expects its value in ``r1`` (its type is
``forall[].{r1: intT; zeta} eps``); the ``ret`` typing rule requires the
result register to be the one the continuation declares, so we move the
accumulator to ``r1`` first.
"""

from __future__ import annotations

from math import factorial

from repro.f.syntax import (
    App, BinOp, FArrow, FInt, Fold, FRec, FTVar, If0, IntE, Lam, Unfold,
    Var,
)
from repro.ft.syntax import Boundary, Protect
from repro.ft.translate import continuation_type, type_translation
from repro.tal.syntax import (
    Aop, Bnz, Component, DeltaBind, Halt, HCode, KIND_EPS, KIND_ZETA, Loc,
    Mv, QEps, QReg, RegFileTy, RegOp, Ret, Sfree, Sld, StackTy, TInt,
    TyApp, WInt, WLoc, seq,
)

__all__ = ["build_fact_f", "build_fact_t", "build_count_t",
           "ARROW", "expected"]

ARROW = FArrow((FInt(),), FInt())


def expected(n: int) -> int:
    """The reference result for ``n >= 0``."""
    return factorial(n)


def build_fact_f() -> Lam:
    """``factF = lam(x:int). (F (fold F)) x`` with
    ``F = lam(f: mu a.(a)->(int)->int). lam(x:int).
    if0 x 1 (((unfold f) f) (x-1)) * x``."""
    mu = FRec("a", FArrow((FTVar("a"),), ARROW))
    template = Lam(
        (("f", mu),),
        Lam(
            (("x", FInt()),),
            If0(Var("x"),
                IntE(1),
                BinOp(
                    "*",
                    App(App(Unfold(Var("f")), (Var("f"),)),
                        (BinOp("-", Var("x"), IntE(1)),)),
                    Var("x")))))
    return Lam(
        (("x", FInt()),),
        App(App(template, (Fold(mu, template),)), (Var("x"),)))


def build_fact_t() -> Lam:
    """``factT``: the imperative factorial of Fig 17."""
    zeps = (DeltaBind(KIND_ZETA, "z"), DeltaBind(KIND_EPS, "e"))
    zstack = StackTy((), "z")
    cont = continuation_type(TInt(), zstack)
    entry_sigma = StackTy((TInt(),), "z")
    lfact = Loc("lfact")
    lloop = Loc("lloop")

    fact_block = HCode(
        zeps, RegFileTy.of(ra=cont), entry_sigma, QReg("ra"),
        seq(
            Sld("r3", 0),
            Mv("r7", WInt(1)),
            Bnz("r3", TyApp(WLoc(lloop), (zstack, QEps("e")))),
            Sfree(1),
            Mv("r1", WInt(1)),
            Ret("ra", "r1"),
        ))
    loop_block = HCode(
        zeps,
        RegFileTy.of(r3=TInt(), r7=TInt(), ra=cont),
        entry_sigma, QReg("ra"),
        seq(
            Aop("mul", "r7", "r7", RegOp("r3")),
            Aop("sub", "r3", "r3", WInt(1)),
            Bnz("r3", TyApp(WLoc(lloop), (zstack, QEps("e")))),
            Sfree(1),
            Mv("r1", RegOp("r7")),
            Ret("ra", "r1"),
        ))
    arrow_t = type_translation(ARROW)
    comp = Component(
        seq(Protect((), "z"),
            Mv("r1", WLoc(lfact)),
            Halt(arrow_t, zstack, "r1")),
        ((lfact, fact_block), (lloop, loop_block)))
    return Lam((("x", FInt()),),
               App(Boundary(ARROW, comp), (Var("x"),)))


def build_count_t(start: int = 0) -> Lam:
    """``factT``'s loop shape with ``add`` in place of ``mul``: counts
    down the argument while counting ``r7`` up, so ``countT n == n``.

    Unlike ``build_fact_t`` the answer never overflows, which makes this
    the T-dominated hot workload the fast-tier benchmarks and the
    template-JIT tests spin for tens of thousands of iterations."""
    zeps = (DeltaBind(KIND_ZETA, "z"), DeltaBind(KIND_EPS, "e"))
    zstack = StackTy((), "z")
    cont = continuation_type(TInt(), zstack)
    entry_sigma = StackTy((TInt(),), "z")
    lent = Loc("lcount")
    lloop = Loc("lcloop")

    entry_block = HCode(
        zeps, RegFileTy.of(ra=cont), entry_sigma, QReg("ra"),
        seq(
            Sld("r3", 0),
            Mv("r7", WInt(start)),
            Bnz("r3", TyApp(WLoc(lloop), (zstack, QEps("e")))),
            Sfree(1),
            Mv("r1", WInt(start)),
            Ret("ra", "r1"),
        ))
    loop_block = HCode(
        zeps,
        RegFileTy.of(r3=TInt(), r7=TInt(), ra=cont),
        entry_sigma, QReg("ra"),
        seq(
            Aop("add", "r7", "r7", WInt(1)),
            Aop("sub", "r3", "r3", WInt(1)),
            Bnz("r3", TyApp(WLoc(lloop), (zstack, QEps("e")))),
            Sfree(1),
            Mv("r1", RegOp("r7")),
            Ret("ra", "r1"),
        ))

    arrow_t = type_translation(ARROW)
    comp = Component(
        seq(Protect((), "z"),
            Mv("r1", WLoc(lent)),
            Halt(arrow_t, zstack, "r1")),
        ((lent, entry_block), (lloop, loop_block)))
    return Lam((("x", FInt()),),
               App(Boundary(ARROW, comp), (Var("x"),)))

"""Paper Fig 3: the call-to-call T program; its control flow is Fig 4.

The component ``f`` calls ``l1``; ``l1`` protects its own return
continuation on the stack and calls ``l2``; ``l2`` computes ``1 * 2`` across
two basic blocks (an intra-component ``jmp`` to ``l2aux``) and returns;
``l2ret`` pops the saved continuation and returns to ``l1ret``, which halts
with the result ``2`` and an empty stack.

This exercises every jump form of T -- ``call`` under an ``end`` marker,
``call`` under a stack-index marker, intra-component ``jmp``, ``ret``
through a register, and ``halt``.
"""

from __future__ import annotations

from repro.tal.syntax import (
    Call, CodeType, DeltaBind, Halt, HCode, InstrSeq, Jmp, KIND_EPS,
    KIND_ZETA, Loc, Component, Mv, Aop, NIL_STACK, QEnd, QEps, QIdx, QReg,
    RegFileTy, RegOp, Ret, Salloc, Sfree, Sld, Sst, StackTy, TBox, TInt,
    TyApp, WInt, WLoc, seq,
)

__all__ = [
    "build", "L1", "L1RET", "L2", "L2AUX", "L2RET", "cont_type",
    "EXPECTED_RESULT",
]

L1 = Loc("l1")
L1RET = Loc("l1ret")
L2 = Loc("l2")
L2AUX = Loc("l2aux")
L2RET = Loc("l2ret")

#: The program halts with the integer 2 (see Fig 4's final state).
EXPECTED_RESULT = 2


def cont_type(zeta: str = "z", eps: str = "e") -> TBox:
    """``box forall[].{r1: int; zeta} eps`` -- the calling convention's
    return-continuation type with abstract stack tail and marker."""
    return TBox(CodeType(
        (), RegFileTy.of(r1=TInt()), StackTy((), zeta), QEps(eps)))


def build() -> Component:
    """Construct the Fig 3 component ``f``."""
    zeps = (DeltaBind(KIND_ZETA, "z"), DeltaBind(KIND_EPS, "e"))
    zvar = StackTy((), "z")
    cont = cont_type("z", "e")
    end_int_nil = QEnd(TInt(), NIL_STACK)

    l1 = HCode(
        zeps, RegFileTy.of(ra=cont), zvar, QReg("ra"),
        seq(
            Salloc(1),
            Sst(0, "ra"),
            Mv("ra", TyApp(WLoc(L2RET), (zvar, QEps("e")))),
            Call(WLoc(L2), StackTy((cont,), "z"), QIdx(0)),
        ))

    l1ret = HCode(
        (), RegFileTy.of(r1=TInt()), NIL_STACK, end_int_nil,
        seq(Halt(TInt(), NIL_STACK, "r1")))

    l2 = HCode(
        zeps, RegFileTy.of(ra=cont), zvar, QReg("ra"),
        seq(
            Mv("r1", WInt(1)),
            Jmp(TyApp(WLoc(L2AUX), (zvar, QEps("e")))),
        ))

    l2aux = HCode(
        zeps, RegFileTy.of(r1=TInt(), ra=cont), zvar, QReg("ra"),
        seq(
            Aop("mul", "r1", "r1", WInt(2)),
            Ret("ra", "r1"),
        ))

    l2ret = HCode(
        zeps, RegFileTy.of(r1=TInt()), StackTy((cont,), "z"), QIdx(0),
        seq(
            Sld("ra", 0),
            Sfree(1),
            Ret("ra", "r1"),
        ))

    entry = seq(
        Mv("ra", WLoc(L1RET)),
        Call(WLoc(L1), NIL_STACK, end_int_nil),
    )

    return Component(entry, (
        (L1, l1), (L1RET, l1ret), (L2, l2), (L2AUX, l2aux), (L2RET, l2ret),
    ))

"""Paper Fig 16: two equivalent components with different block structure.

Both ``f1`` and ``f2`` are F lambdas of type ``(int) -> int`` whose bodies
apply an embedded assembly component to the argument:

* ``f1``'s component computes ``x + 1 + 1`` in a *single* basic block;
* ``f2``'s component computes ``x + 1``, stores the intermediate back on
  the stack, and jumps to a *second* block that adds the final ``1``.

The paper proves them contextually equivalent via the logical relation;
our :mod:`repro.equiv` checker confirms the equivalence on bounded
observations (and refutes mutated variants), reproduced by
``benchmarks/bench_fig16_block_equivalence.py``.

(The paper's figure annotates ``f2``'s ``halt`` with ``intT``; the
component's value is the code pointer, so the annotation must be
``(int) -> intT`` as in ``f1`` -- an evident typo we correct.)
"""

from __future__ import annotations

from repro.f.syntax import App, FArrow, FInt, IntE, Lam, Var
from repro.ft.syntax import Boundary, Protect
from repro.ft.translate import continuation_type, type_translation
from repro.tal.syntax import (
    Aop, Component, DeltaBind, Halt, HCode, Jmp, KIND_EPS, KIND_ZETA, Loc,
    Mv, QEps, QReg, RegFileTy, Ret, Sfree, Sld, Sst, StackTy, TInt, TyApp,
    WInt, WLoc, seq,
)

__all__ = ["build_f1", "build_f2", "ARROW", "EXPECTED"]

ARROW = FArrow((FInt(),), FInt())

#: f(n) = n + 2 for every n.
EXPECTED = staticmethod(lambda n: n + 2)

_ZEPS = (DeltaBind(KIND_ZETA, "z"), DeltaBind(KIND_EPS, "e"))
_ZSTACK = StackTy((), "z")
_CONT = continuation_type(TInt(), _ZSTACK)
_ENTRY_SIGMA = StackTy((TInt(),), "z")


def _wrap(heap) -> Lam:
    """``lam(x:int). ((int)->int FT (protect ., z; mv r1, l; halt ...)) x``"""
    entry_label = heap[0][0]
    arrow_t = type_translation(ARROW)
    comp = Component(
        seq(Protect((), "z"),
            Mv("r1", WLoc(entry_label)),
            Halt(arrow_t, _ZSTACK, "r1")),
        heap)
    return Lam((("x", FInt()),),
               App(Boundary(ARROW, comp), (Var("x"),)))


def build_f1() -> Lam:
    """One basic block: load, add 1, add 1, clean up, return."""
    label = Loc("ladd")
    block = HCode(
        _ZEPS, RegFileTy.of(ra=_CONT), _ENTRY_SIGMA, QReg("ra"),
        seq(
            Sld("r1", 0),
            Aop("add", "r1", "r1", WInt(1)),
            Aop("add", "r1", "r1", WInt(1)),
            Sfree(1),
            Ret("ra", "r1"),
        ))
    return _wrap(((label, block),))


def build_f2() -> Lam:
    """Two basic blocks: add 1, stash, jump, add 1, return."""
    first = Loc("ladd")
    second = Loc("laddaux")
    block1 = HCode(
        _ZEPS, RegFileTy.of(ra=_CONT), _ENTRY_SIGMA, QReg("ra"),
        seq(
            Sld("r1", 0),
            Aop("add", "r1", "r1", WInt(1)),
            Sst(0, "r1"),
            Jmp(TyApp(WLoc(second), (_ZSTACK, QEps("e")))),
        ))
    block2 = HCode(
        _ZEPS, RegFileTy.of(ra=_CONT), _ENTRY_SIGMA, QReg("ra"),
        seq(
            Sld("r1", 0),
            Aop("add", "r1", "r1", WInt(1)),
            Sfree(1),
            Ret("ra", "r1"),
        ))
    return _wrap(((first, block1), (second, block2)))

"""Handwritten adversarial T components (ROADMAP item 5, seeded).

Each entry is a small TAL component that *looks* plausible but violates
the FT typing discipline in a way the paper's metatheory is supposed to
rule out: smuggling a forged return address, re-entering freed stack
space, misusing ``protect``, or lying about what ``halt`` hands back.

Every component satisfies two checkable properties, asserted by
``tests/test_adversarial.py`` and exercised continuously by the serve
chaos drill (``funtal chaos drill --serve``):

* the FT typechecker **rejects** it with a structured
  :class:`~repro.errors.FTTypeError` (never an unstructured crash), and
* running it anyway on the untyped machine either **traps safely**
  (structured :class:`~repro.errors.MachineError`) or halts -- it never
  corrupts the interpreter or escapes as a raw Python exception.

The registry doubles as a serve-job corpus: :func:`adversarial_jobs`
yields ``typecheck`` jobs whose expected terminal status is ``error``,
which the drill mixes into its workload so supervision is tested against
hostile *inputs*, not just injected *faults*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

__all__ = ["Adversary", "ADVERSARIES", "adversarial_jobs"]


@dataclass(frozen=True)
class Adversary:
    """One adversarial component and what we expect of it."""

    name: str
    title: str
    source: str
    #: substring expected in the typechecker's rejection message
    rejects_with: str
    #: "trap" if the untyped machine raises MachineError, "halt" if it
    #: runs to a (bogus) halt -- either is safe; a raw crash is not.
    machine_behavior: str
    description: str


ADVERSARIES: Tuple[Adversary, ...] = (
    Adversary(
        name="smuggled-ra",
        title="Smuggled return address",
        source=(
            "(mv r1, 42; mv ra, evil; ret ra {r1}, "
            "{evil -> code[]{r1: int; int :: nil} end{int; nil}. "
            "halt int, int :: nil {r1}})"
        ),
        rejects_with="marker",
        machine_behavior="halt",
        description=(
            "Forges a return address into ``ra`` and returns through it. "
            "The fake continuation's halt announces a stack (``int :: "
            "nil``) that contradicts its own ``end{int; nil}`` marker, so "
            "the caller's protected frame would be misreported."
        ),
    ),
    Adversary(
        name="stack-reentry",
        title="Re-entry into freed stack space",
        source=(
            "(mv r1, 7; salloc 1; sst 0, r1; jmp loop, "
            "{loop -> code[]{r1: int; unit :: nil} end{int; nil}. "
            "sfree 1; jmp loop})"
        ),
        rejects_with="stack",
        machine_behavior="trap",
        description=(
            "A loop that frees its stack slot and then jumps back to "
            "itself, which still expects the slot to be live.  The "
            "second entry would read memory below the stack pointer; "
            "the typechecker rejects the re-entering jmp because the "
            "current stack ``nil`` no longer matches the code type's "
            "``unit :: nil``, and the untyped machine traps with a "
            "stack underflow."
        ),
    ),
    Adversary(
        name="protect-misuse",
        title="protect over slots that are not there",
        source="(protect <int>, z; halt int, int :: z {r1}, .)",
        rejects_with="protect",
        machine_behavior="trap",
        description=(
            "Claims to protect one stack slot while the stack is empty, "
            "then halts through the phantom tail variable.  Accepting "
            "this would let untrusted code abstract over (and thereby "
            "capture) callee stack space it never owned."
        ),
    ),
    Adversary(
        name="halt-confusion",
        title="halt lies about the answer's type",
        source=(
            "(mv r1, blk; halt int, nil {r1}, "
            "{blk -> code[]{.; nil} end{int; nil}. "
            "mv r1, 0; halt int, nil {r1}})"
        ),
        rejects_with="halt",
        machine_behavior="halt",
        description=(
            "Halts announcing an ``int`` result while ``r1`` actually "
            "holds a code pointer.  If accepted, the F side of the "
            "boundary would treat a raw code location as an integer -- "
            "exactly the value-confusion FT's boundary typing exists to "
            "prevent."
        ),
    ),
)


def adversarial_jobs(ids_prefix: str = "adv") -> List["Job"]:
    """Serve jobs for the registry: each typecheck must come back
    ``error`` (structured rejection), never ``ok`` and never ``crashed``.

    Imported lazily so ``repro.adversarial`` stays importable without
    the serve package (e.g. from documentation tooling).
    """
    from repro.serve.protocol import Job

    return [
        Job("typecheck", id=f"{ids_prefix}-{adv.name}", source=adv.source)
        for adv in ADVERSARIES
    ]


def iter_sources() -> Iterator[Tuple[str, str]]:
    """(name, source) pairs, for quick corpus iteration."""
    for adv in ADVERSARIES:
        yield adv.name, adv.source

"""Abstract syntax of F, the functional language of FunTAL (paper Fig 5).

F is a simply-typed call-by-value functional language with iso-recursive
types, conditional branching on zero, n-ary functions, tuples, and base
values ``unit`` and ``int``::

    Type  tau ::= alpha | unit | int | (tau, ...) -> tau' | mu alpha. tau | <tau, ...>
    Expr  e   ::= x | () | n | e p e | if0 e e e | lam (x:tau, ...). e | e e...
                | fold[mu alpha.tau] e | unfold e | <e, ...> | pi_i(e)
    where p ::= + | - | *

All nodes are immutable (frozen dataclasses) with structural equality, and
every node pretty-prints via ``str()`` in the concrete syntax accepted by
:mod:`repro.surface.parser`.

The multi-language FT (paper Fig 6) extends these categories with boundary
terms and stack-modifying lambdas; those constructors live in
:mod:`repro.ft.syntax` and subclass :class:`FExpr` / :class:`FType` so that
pure-F code never needs to know about them.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

from repro.caching import InternTable, PicklableSlots, intern_singleton

__all__ = [
    "FType", "FTVar", "FUnit", "FInt", "FArrow", "FRec", "FTupleT",
    "FExpr", "Var", "UnitE", "IntE", "BinOp", "If0", "Lam", "App",
    "Fold", "Unfold", "TupleE", "Proj",
    "ftype_equal", "subst_ftype", "free_tvars", "fresh_tvar",
    "fresh_tvar_mark", "advance_fresh_tvar",
    "fresh_var_mark", "advance_fresh_var",
    "register_ftype_hooks", "intern_ftype",
    "subst_expr", "free_vars", "is_value", "BINOPS",
]

BINOPS = ("+", "-", "*")

_fresh_counter = itertools.count()


def fresh_tvar(base: str = "a") -> str:
    """Return a globally fresh type-variable name derived from ``base``."""
    stem = base.rstrip("0123456789'") or "a"
    return f"{stem}%{next(_fresh_counter)}"


def fresh_tvar_mark() -> int:
    """Current position of the fresh type-variable counter (checkpoints)."""
    global _fresh_counter
    mark = next(_fresh_counter)
    _fresh_counter = itertools.count(mark)
    return mark


def advance_fresh_tvar(mark: int) -> None:
    """Ensure future fresh type variables are numbered >= ``mark``."""
    global _fresh_counter
    if mark > fresh_tvar_mark():
        _fresh_counter = itertools.count(mark)


# ---------------------------------------------------------------------------
# Types
# ---------------------------------------------------------------------------

class FType(PicklableSlots):
    """Base class of F types (paper Fig 5, blue ``tau``).

    Subclasses are frozen ``slots=True`` dataclasses: hashable,
    compact, and (via :class:`~repro.caching.PicklableSlots`) picklable
    on every supported Python.  :func:`intern_ftype` hash-conses them.
    """

    __slots__ = ()

    def __str__(self) -> str:  # pragma: no cover - overridden
        raise NotImplementedError


@dataclass(frozen=True, slots=True)
class FTVar(FType):
    """A type variable ``alpha`` (bound by ``mu``)."""

    name: str

    def __str__(self) -> str:
        return self.name


@intern_singleton
@dataclass(frozen=True, slots=True)
class FUnit(FType):
    """The ``unit`` type, inhabited only by ``()``."""

    def __str__(self) -> str:
        return "unit"


@intern_singleton
@dataclass(frozen=True, slots=True)
class FInt(FType):
    """The ``int`` type of machine integers."""

    def __str__(self) -> str:
        return "int"


@dataclass(frozen=True, slots=True)
class FArrow(FType):
    """An n-ary function type ``(tau_1, ..., tau_n) -> tau'``."""

    params: Tuple[FType, ...]
    result: FType

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", tuple(self.params))

    def __str__(self) -> str:
        args = ", ".join(str(p) for p in self.params)
        return f"({args}) -> {self.result}"


@dataclass(frozen=True, slots=True)
class FRec(FType):
    """An iso-recursive type ``mu alpha. tau``."""

    var: str
    body: FType

    def __str__(self) -> str:
        return f"mu {self.var}. {self.body}"

    def unroll(self) -> FType:
        """One unrolling: ``tau[mu alpha.tau / alpha]``."""
        return subst_ftype(self.body, self.var, self)


@dataclass(frozen=True, slots=True)
class FTupleT(FType):
    """A tuple type ``<tau_1, ..., tau_n>``."""

    items: Tuple[FType, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "items", tuple(self.items))

    def __str__(self) -> str:
        return "<" + ", ".join(str(t) for t in self.items) + ">"


#: Hash-cons table for F types: :func:`intern_ftype` collapses
#: structurally equal types to one canonical instance so that
#: alpha-equivalence checks can take their ``a is b`` fast path.
_FTYPE_INTERN = InternTable()


def intern_ftype(ty: FType) -> FType:
    """The canonical instance of ``ty`` (first structurally-equal type
    ever interned wins).  Purely an optimization -- interning never
    changes ``==``; it only makes ``is`` more often true."""
    return _FTYPE_INTERN.canon(ty)


# ---------------------------------------------------------------------------
# Type operations
# ---------------------------------------------------------------------------

# Extension hooks let the FT package add type forms (the stack-modifying
# arrow) without the core F module depending on it.  Each hook returns None
# when it does not apply.
_FTYPE_EQUAL_HOOKS = []
_FTYPE_SUBST_HOOKS = []
_FTYPE_FTV_HOOKS = []


def register_ftype_hooks(equal=None, subst=None, ftv=None) -> None:
    """Register traversal hooks for extended F type forms."""
    if equal is not None:
        _FTYPE_EQUAL_HOOKS.append(equal)
    if subst is not None:
        _FTYPE_SUBST_HOOKS.append(subst)
    if ftv is not None:
        _FTYPE_FTV_HOOKS.append(ftv)


def free_tvars(ty: FType) -> frozenset:
    """The free type variables of ``ty``."""
    for hook in _FTYPE_FTV_HOOKS:
        result = hook(ty)
        if result is not None:
            return result
    if isinstance(ty, FTVar):
        return frozenset({ty.name})
    if isinstance(ty, (FUnit, FInt)):
        return frozenset()
    if isinstance(ty, FArrow):
        acc = free_tvars(ty.result)
        for p in ty.params:
            acc |= free_tvars(p)
        return acc
    if isinstance(ty, FRec):
        return free_tvars(ty.body) - {ty.var}
    if isinstance(ty, FTupleT):
        acc = frozenset()
        for t in ty.items:
            acc |= free_tvars(t)
        return acc
    raise TypeError(f"not a core F type: {ty!r}")


def subst_ftype(ty: FType, var: str, replacement: FType) -> FType:
    """Capture-avoiding substitution ``ty[replacement / var]``."""
    for hook in _FTYPE_SUBST_HOOKS:
        result = hook(ty, var, replacement)
        if result is not None:
            return result
    if isinstance(ty, FTVar):
        return replacement if ty.name == var else ty
    if isinstance(ty, (FUnit, FInt)):
        return ty
    if isinstance(ty, FArrow):
        return FArrow(
            tuple(subst_ftype(p, var, replacement) for p in ty.params),
            subst_ftype(ty.result, var, replacement),
        )
    if isinstance(ty, FRec):
        if ty.var == var:
            return ty
        if ty.var in free_tvars(replacement):
            fresh = fresh_tvar(ty.var)
            renamed = subst_ftype(ty.body, ty.var, FTVar(fresh))
            return FRec(fresh, subst_ftype(renamed, var, replacement))
        return FRec(ty.var, subst_ftype(ty.body, var, replacement))
    if isinstance(ty, FTupleT):
        return FTupleT(tuple(subst_ftype(t, var, replacement) for t in ty.items))
    raise TypeError(f"not a core F type: {ty!r}")


def ftype_equal(a: FType, b: FType,
                env: Optional[Dict[str, str]] = None) -> bool:
    """Alpha-equivalence of F types.

    ``env`` maps bound variables of ``a`` to the corresponding bound
    variables of ``b``; free variables must match literally.
    """
    env = env or {}
    for hook in _FTYPE_EQUAL_HOOKS:
        result = hook(a, b, env)
        if result is not None:
            return result
    if isinstance(a, FTVar) and isinstance(b, FTVar):
        return env.get(a.name, a.name) == b.name
    if isinstance(a, FUnit) and isinstance(b, FUnit):
        return True
    if isinstance(a, FInt) and isinstance(b, FInt):
        return True
    if isinstance(a, FArrow) and isinstance(b, FArrow):
        if len(a.params) != len(b.params):
            return False
        return (all(ftype_equal(pa, pb, env)
                    for pa, pb in zip(a.params, b.params))
                and ftype_equal(a.result, b.result, env))
    if isinstance(a, FRec) and isinstance(b, FRec):
        inner = dict(env)
        inner[a.var] = b.var
        return ftype_equal(a.body, b.body, inner)
    if isinstance(a, FTupleT) and isinstance(b, FTupleT):
        if len(a.items) != len(b.items):
            return False
        return all(ftype_equal(ia, ib, env) for ia, ib in zip(a.items, b.items))
    return False


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

class FExpr(PicklableSlots):
    """Base class of F expressions (paper Fig 5, blue ``e``)."""

    __slots__ = ()

    def __str__(self) -> str:  # pragma: no cover - overridden
        raise NotImplementedError


@dataclass(frozen=True, slots=True)
class Var(FExpr):
    """A term variable ``x``."""

    name: str

    def __str__(self) -> str:
        return self.name


@intern_singleton
@dataclass(frozen=True, slots=True)
class UnitE(FExpr):
    """The unit value ``()``."""

    def __str__(self) -> str:
        return "()"


@dataclass(frozen=True, slots=True)
class IntE(FExpr):
    """An integer literal ``n``."""

    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True, slots=True)
class BinOp(FExpr):
    """A primitive arithmetic operation ``e p e`` with ``p in {+, -, *}``."""

    op: str
    left: FExpr
    right: FExpr

    def __post_init__(self) -> None:
        if self.op not in BINOPS:
            raise ValueError(f"unknown primitive operation {self.op!r}")

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True, slots=True)
class If0(FExpr):
    """Conditional ``if0 e e_then e_else`` branching on whether ``e`` is 0."""

    cond: FExpr
    then: FExpr
    els: FExpr

    def __str__(self) -> str:
        return f"if0 {self.cond} {{{self.then}}} {{{self.els}}}"


@dataclass(frozen=True, slots=True)
class Lam(FExpr):
    """An n-ary lambda ``lam (x1:tau1, ..., xn:taun). e``.

    The paper writes unary ``lam (x:tau).e`` but types n-ary application
    ``t t1 ... tn`` against ``(tau_1 ... tau_n) -> tau'``; we represent the
    n-ary binder directly.
    """

    params: Tuple[Tuple[str, FType], ...]
    body: FExpr

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", tuple(tuple(p) for p in self.params))

    def __str__(self) -> str:
        binder = ", ".join(f"{x}: {t}" for x, t in self.params)
        return f"lam ({binder}). {self.body}"


@dataclass(frozen=True, slots=True)
class App(FExpr):
    """An application ``t t1 ... tn`` of a function to all its arguments."""

    fn: FExpr
    args: Tuple[FExpr, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "args", tuple(self.args))

    def __str__(self) -> str:
        args = " ".join(f"({a})" for a in self.args)
        return f"({self.fn}) {args}" if args else f"({self.fn}) ()"


@dataclass(frozen=True, slots=True)
class Fold(FExpr):
    """``fold[mu alpha.tau] e`` -- introduce an iso-recursive type."""

    ann: FType
    body: FExpr

    def __str__(self) -> str:
        return f"fold[{self.ann}] ({self.body})"


@dataclass(frozen=True, slots=True)
class Unfold(FExpr):
    """``unfold e`` -- eliminate an iso-recursive type."""

    body: FExpr

    def __str__(self) -> str:
        return f"unfold ({self.body})"


@dataclass(frozen=True, slots=True)
class TupleE(FExpr):
    """A tuple ``<e_1, ..., e_n>``."""

    items: Tuple[FExpr, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "items", tuple(self.items))

    def __str__(self) -> str:
        return "<" + ", ".join(str(e) for e in self.items) + ">"


@dataclass(frozen=True, slots=True)
class Proj(FExpr):
    """Projection ``pi_i(e)`` of the i-th tuple field (0-indexed)."""

    index: int
    body: FExpr

    def __str__(self) -> str:
        return f"pi{self.index}({self.body})"


# ---------------------------------------------------------------------------
# Expression operations
# ---------------------------------------------------------------------------

# Extension value classes (e.g. the FT lump values) register here.
_EXTRA_VALUE_CLASSES: list = []


def register_value_class(cls: type) -> None:
    """Register an extension expression class whose instances are values."""
    _EXTRA_VALUE_CLASSES.append(cls)


def is_value(e: FExpr) -> bool:
    """Is ``e`` an F value (paper Fig 5, ``v``)?

    FT boundary values are handled by :mod:`repro.ft.machine`; from pure F's
    point of view stack-modifying lambdas are also values (they subclass
    :class:`Lam`), as are registered extension values (lumps).
    """
    if isinstance(e, (UnitE, IntE, Lam)):
        return True
    if isinstance(e, Fold):
        return is_value(e.body)
    if isinstance(e, TupleE):
        return all(is_value(x) for x in e.items)
    return any(isinstance(e, cls) for cls in _EXTRA_VALUE_CLASSES)


def free_vars(e: FExpr) -> frozenset:
    """The free term variables of ``e`` (F forms only)."""
    if isinstance(e, Var):
        return frozenset({e.name})
    if isinstance(e, (UnitE, IntE)):
        return frozenset()
    if isinstance(e, BinOp):
        return free_vars(e.left) | free_vars(e.right)
    if isinstance(e, If0):
        return free_vars(e.cond) | free_vars(e.then) | free_vars(e.els)
    if isinstance(e, Lam):
        bound = {x for x, _ in e.params}
        return free_vars(e.body) - bound
    if isinstance(e, App):
        acc = free_vars(e.fn)
        for a in e.args:
            acc |= free_vars(a)
        return acc
    if isinstance(e, (Fold, Unfold, Proj)):
        return free_vars(e.body)
    if isinstance(e, TupleE):
        acc = frozenset()
        for x in e.items:
            acc |= free_vars(x)
        return acc
    raise TypeError(f"not a core F expression: {e!r}")


_fresh_var_counter = itertools.count()


def _fresh_var(base: str) -> str:
    stem = base.split("%")[0] or "x"
    return f"{stem}%{next(_fresh_var_counter)}"


def fresh_var_mark() -> int:
    """Current position of the fresh term-variable counter (checkpoints)."""
    global _fresh_var_counter
    mark = next(_fresh_var_counter)
    _fresh_var_counter = itertools.count(mark)
    return mark


def advance_fresh_var(mark: int) -> None:
    """Ensure future fresh term variables are numbered >= ``mark``."""
    global _fresh_var_counter
    if mark > fresh_var_mark():
        _fresh_var_counter = itertools.count(mark)


def subst_expr(e: FExpr, var: str, replacement: FExpr) -> FExpr:
    """Capture-avoiding term substitution ``e[replacement / var]``.

    Handles all core F forms; FT subclasses override their traversal via
    :func:`repro.ft.syntax.subst_ft_expr`, which falls back to this function
    for the shared forms.
    """
    # Local import to let FT forms participate without a circular import at
    # module load time.
    from repro.ft import syntax as ft_syntax

    if isinstance(e, ft_syntax.Boundary):
        return ft_syntax.subst_boundary(e, var, replacement, subst_expr)
    if any(isinstance(e, cls) for cls in _EXTRA_VALUE_CLASSES):
        return e  # extension values (lumps) are closed
    if isinstance(e, Var):
        return replacement if e.name == var else e
    if isinstance(e, (UnitE, IntE)):
        return e
    if isinstance(e, BinOp):
        return BinOp(e.op, subst_expr(e.left, var, replacement),
                     subst_expr(e.right, var, replacement))
    if isinstance(e, If0):
        return If0(subst_expr(e.cond, var, replacement),
                   subst_expr(e.then, var, replacement),
                   subst_expr(e.els, var, replacement))
    if isinstance(e, Lam):
        return _subst_under_binder(e, var, replacement)
    if isinstance(e, App):
        return App(subst_expr(e.fn, var, replacement),
                   tuple(subst_expr(a, var, replacement) for a in e.args))
    if isinstance(e, Fold):
        return Fold(e.ann, subst_expr(e.body, var, replacement))
    if isinstance(e, Unfold):
        return Unfold(subst_expr(e.body, var, replacement))
    if isinstance(e, TupleE):
        return TupleE(tuple(subst_expr(x, var, replacement) for x in e.items))
    if isinstance(e, Proj):
        return Proj(e.index, subst_expr(e.body, var, replacement))
    raise TypeError(f"not an F expression: {e!r}")


def _subst_under_binder(e: Lam, var: str, replacement: FExpr) -> Lam:
    """Substitute into a lambda body, renaming parameters to avoid capture.

    Reconstructs via ``_rebuild_lam`` so FT stack-modifying lambdas keep their
    stack annotations.
    """
    names = [x for x, _ in e.params]
    if var in names:
        return e
    body = e.body
    # Use the FT-aware free-variable computation: the replacement may
    # contain boundaries (with free variables inside imports) anywhere.
    fvs = _safe_fvs(replacement)
    new_params = []
    for x, t in e.params:
        if x in fvs:
            fresh = _fresh_var(x)
            body = subst_expr(body, x, Var(fresh))
            new_params.append((fresh, t))
        else:
            new_params.append((x, t))
    return _rebuild_lam(e, tuple(new_params), subst_expr(body, var, replacement))


def _rebuild_lam(e: Lam, params, body) -> Lam:
    from repro.ft import syntax as ft_syntax

    if isinstance(e, ft_syntax.StackLam):
        return ft_syntax.StackLam(params, body, e.phi_in, e.phi_out)
    return Lam(params, body)


def _safe_fvs(e: FExpr) -> frozenset:
    from repro.ft.syntax import ft_free_vars

    return ft_free_vars(e)


def iter_subexprs(e: FExpr) -> Iterator[FExpr]:
    """Yield ``e`` and all its F sub-expressions (pre-order)."""
    yield e
    if isinstance(e, BinOp):
        yield from iter_subexprs(e.left)
        yield from iter_subexprs(e.right)
    elif isinstance(e, If0):
        yield from iter_subexprs(e.cond)
        yield from iter_subexprs(e.then)
        yield from iter_subexprs(e.els)
    elif isinstance(e, Lam):
        yield from iter_subexprs(e.body)
    elif isinstance(e, App):
        yield from iter_subexprs(e.fn)
        for a in e.args:
            yield from iter_subexprs(a)
    elif isinstance(e, (Fold, Unfold, Proj)):
        yield from iter_subexprs(e.body)
    elif isinstance(e, TupleE):
        for x in e.items:
            yield from iter_subexprs(x)

"""F: the simply-typed functional language of FunTAL (paper section 4.1).

Public surface:

* :mod:`repro.f.syntax` -- types and expressions (paper Fig 5);
* :mod:`repro.f.typecheck` -- the standalone ``Gamma |- e : tau`` checker;
* :mod:`repro.f.eval` -- the small-step call-by-value machine;
* :mod:`repro.f.cek` -- the environment-machine (CEK) fast path.
"""

from repro.f.syntax import (  # noqa: F401
    App, BinOp, FArrow, FExpr, FInt, Fold, FRec, FTupleT, FType, FTVar,
    FUnit, If0, IntE, Lam, Proj, TupleE, Unfold, UnitE, Var, free_vars,
    ftype_equal, is_value, subst_expr, subst_ftype,
)
from repro.f.typecheck import typecheck  # noqa: F401
from repro.f.eval import evaluate, FEvaluator, step  # noqa: F401

_CEK_EXPORTS = (
    "CEKEvaluator", "DEFAULT_ENGINE", "ENGINES", "cek_evaluate",
    "resolve_engine",
)


def __getattr__(name):
    # Lazy: repro.f.cek needs repro.ft.syntax (for Boundary/Hole), whose
    # own imports re-enter this package -- an eager import here would
    # cycle whenever repro.ft loads first.
    if name in _CEK_EXPORTS:
        from repro.f import cek

        return getattr(cek, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

"""Typechecker for pure F programs (paper section 4.1).

The judgment implemented here is the standard simply-typed one,
``Gamma |- e : tau``.  It rejects the FT-only forms (boundaries and
stack-modifying lambdas); mixed programs are typed by the full judgment in
:mod:`repro.ft.typecheck`, which threads register-file, stack, and heap
typings through F code.

The paper elides the (standard) F rules; we follow the usual presentation:

* ``if0`` requires an ``int`` scrutinee and branches of equal type;
* application ``t t1 ... tn`` consumes *all* arguments at once against an
  n-ary arrow ``(tau_1, ..., tau_n) -> tau'``;
* ``fold[mu a.tau] e`` checks ``e`` at the unrolling ``tau[mu a.tau / a]``;
* ``unfold e`` requires ``e`` to have a ``mu`` type and yields the unrolling.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import FTTypeError
from repro.f.syntax import (
    App, BinOp, FArrow, FExpr, FInt, Fold, FRec, FTupleT, FType, FUnit,
    ftype_equal, If0, IntE, Lam, Proj, TupleE, Unfold, UnitE, Var,
)

__all__ = ["typecheck", "TypeEnv"]

TypeEnv = Dict[str, FType]


def typecheck(e: FExpr, env: Optional[TypeEnv] = None) -> FType:
    """Infer the type of a pure F expression ``e`` under ``env``.

    Raises :class:`FTTypeError` if ``e`` is ill-typed or uses FT-only forms.
    """
    env = env or {}
    return _check(e, env)


def _fail(msg: str, e: FExpr) -> FTTypeError:
    return FTTypeError(msg, judgment="f.expression", subject=str(e))


def _check(e: FExpr, env: TypeEnv) -> FType:
    if isinstance(e, Var):
        if e.name not in env:
            raise _fail(f"unbound variable {e.name!r}", e)
        return env[e.name]
    if isinstance(e, UnitE):
        return FUnit()
    if isinstance(e, IntE):
        return FInt()
    if isinstance(e, BinOp):
        for side, operand in (("left", e.left), ("right", e.right)):
            ty = _check(operand, env)
            if not isinstance(ty, FInt):
                raise _fail(
                    f"{side} operand of {e.op!r} has type {ty}, expected int", e)
        return FInt()
    if isinstance(e, If0):
        cond_ty = _check(e.cond, env)
        if not isinstance(cond_ty, FInt):
            raise _fail(f"if0 scrutinee has type {cond_ty}, expected int", e)
        then_ty = _check(e.then, env)
        else_ty = _check(e.els, env)
        if not ftype_equal(then_ty, else_ty):
            raise _fail(
                f"if0 branches disagree: {then_ty} vs {else_ty}", e)
        return then_ty
    if isinstance(e, Lam):
        # Reject the FT stack-modifying lambda here; isinstance would accept
        # it because StackLam subclasses Lam.
        if type(e) is not Lam:
            raise _fail(
                "stack-modifying lambdas are FT forms; "
                "use repro.ft.typecheck for mixed programs", e)
        names = [x for x, _ in e.params]
        if len(set(names)) != len(names):
            raise _fail("duplicate parameter names in lambda", e)
        inner = dict(env)
        inner.update({x: t for x, t in e.params})
        body_ty = _check(e.body, inner)
        return FArrow(tuple(t for _, t in e.params), body_ty)
    if isinstance(e, App):
        fn_ty = _check(e.fn, env)
        if not isinstance(fn_ty, FArrow) or type(fn_ty) is not FArrow:
            raise _fail(f"applied expression has non-arrow type {fn_ty}", e)
        if len(fn_ty.params) != len(e.args):
            raise _fail(
                f"arity mismatch: function takes {len(fn_ty.params)} "
                f"arguments, got {len(e.args)}", e)
        for i, (arg, expected) in enumerate(zip(e.args, fn_ty.params)):
            actual = _check(arg, env)
            if not ftype_equal(actual, expected):
                raise _fail(
                    f"argument {i} has type {actual}, expected {expected}", e)
        return fn_ty.result
    if isinstance(e, Fold):
        if not isinstance(e.ann, FRec):
            raise _fail(f"fold annotation {e.ann} is not a mu type", e)
        body_ty = _check(e.body, env)
        unrolled = e.ann.unroll()
        if not ftype_equal(body_ty, unrolled):
            raise _fail(
                f"fold body has type {body_ty}, expected unrolling {unrolled}",
                e)
        return e.ann
    if isinstance(e, Unfold):
        body_ty = _check(e.body, env)
        if not isinstance(body_ty, FRec):
            raise _fail(f"unfold of non-mu type {body_ty}", e)
        return body_ty.unroll()
    if isinstance(e, TupleE):
        return FTupleT(tuple(_check(x, env) for x in e.items))
    if isinstance(e, Proj):
        body_ty = _check(e.body, env)
        if not isinstance(body_ty, FTupleT):
            raise _fail(f"projection from non-tuple type {body_ty}", e)
        if not 0 <= e.index < len(body_ty.items):
            raise _fail(
                f"projection index {e.index} out of range for {body_ty}", e)
        return body_ty.items[e.index]
    raise _fail(
        "expression form is not pure F (boundaries need repro.ft.typecheck)",
        e)

"""Small-step call-by-value evaluator for pure F (paper section 4.1).

Evaluation order follows the paper's evaluation contexts (Fig 5)::

    E ::= [.] | E p e | v p E | if0 E e e | E e... | v v... E e...
        | fold E | unfold E | <v..., E, e...> | pi_i(E)

i.e. left-to-right call-by-value.  :func:`step` performs one reduction,
:func:`evaluate` iterates it under a fuel bound (raising
:class:`~repro.errors.FuelExhausted` on potential divergence, as needed by
the factorial example of Fig 17).

Pure F is deterministic and memory-free; the mixed-language stepper in
:mod:`repro.ft.machine` reuses these reduction rules but threads the T memory
through, since embedded assembly may mutate the stack and heap.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import MachineError
from repro.obs.events import OBS
from repro.obs.profile import PROFILER
from repro.resilience.budget import Budget
from repro.resilience.checkpoint import MachineSnapshot
from repro.f.syntax import (
    App, BinOp, FExpr, Fold, If0, IntE, is_value, Lam, Proj, subst_expr,
    TupleE, Unfold, UnitE,
)

__all__ = ["step", "evaluate", "FEvaluator", "reduce_redex", "apply_binop"]


def apply_binop(op: str, left: int, right: int) -> int:
    """Evaluate a primitive ``p`` on integers."""
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    raise MachineError(f"unknown primitive operation {op!r}")


def reduce_redex(e: FExpr) -> Optional[FExpr]:
    """Contract ``e`` if it is itself a redex (all subterms values)."""
    if isinstance(e, BinOp) and is_value(e.left) and is_value(e.right):
        if not isinstance(e.left, IntE) or not isinstance(e.right, IntE):
            raise MachineError(f"primitive {e.op!r} applied to non-integers")
        return IntE(apply_binop(e.op, e.left.value, e.right.value))
    if isinstance(e, If0) and is_value(e.cond):
        if not isinstance(e.cond, IntE):
            raise MachineError("if0 scrutinee is not an integer")
        return e.then if e.cond.value == 0 else e.els
    if isinstance(e, App) and is_value(e.fn) and all(is_value(a) for a in e.args):
        if not isinstance(e.fn, Lam):
            raise MachineError("application of a non-lambda value")
        if len(e.fn.params) != len(e.args):
            raise MachineError("application arity mismatch at runtime")
        body = e.fn.body
        for (x, _), arg in zip(e.fn.params, e.args):
            body = subst_expr(body, x, arg)
        return body
    if isinstance(e, Unfold) and is_value(e.body):
        if not isinstance(e.body, Fold):
            raise MachineError("unfold of a non-fold value")
        return e.body.body
    if isinstance(e, Proj) and is_value(e.body):
        if not isinstance(e.body, TupleE):
            raise MachineError("projection from a non-tuple value")
        if not 0 <= e.index < len(e.body.items):
            raise MachineError(
                f"projection index {e.index} out of range at runtime")
        return e.body.items[e.index]
    return None


def split_context(e: FExpr):
    """Decompose one evaluation-context layer: return ``(frame, subterm)``
    where ``subterm`` is the leftmost non-value child of ``e`` and
    ``frame(subterm') = e[subterm']``.

    Returns ``None`` when ``e`` has no non-value child to descend into
    (i.e. ``e`` should itself be a redex -- or is stuck).
    """
    if isinstance(e, BinOp):
        if not is_value(e.left):
            return (lambda x: BinOp(e.op, x, e.right)), e.left
        if not is_value(e.right):
            return (lambda x: BinOp(e.op, e.left, x)), e.right
        return None
    if isinstance(e, If0):
        if not is_value(e.cond):
            return (lambda x: If0(x, e.then, e.els)), e.cond
        return None
    if isinstance(e, App):
        if not is_value(e.fn):
            return (lambda x: App(x, e.args)), e.fn
        for i, a in enumerate(e.args):
            if not is_value(a):
                def frame(x, i=i):
                    args = list(e.args)
                    args[i] = x
                    return App(e.fn, tuple(args))
                return frame, a
        return None
    if isinstance(e, Fold):
        if not is_value(e.body):
            return (lambda x: Fold(e.ann, x)), e.body
        return None
    if isinstance(e, Unfold):
        if not is_value(e.body):
            return (lambda x: Unfold(x)), e.body
        return None
    if isinstance(e, TupleE):
        for i, a in enumerate(e.items):
            if not is_value(a):
                def frame(x, i=i):
                    items = list(e.items)
                    items[i] = x
                    return TupleE(tuple(items))
                return frame, a
        return None
    if isinstance(e, Proj):
        if not is_value(e.body):
            return (lambda x: Proj(e.index, x)), e.body
        return None
    return None


#: One-slot decomposition cache for :func:`step`: ``(result_term,
#: frames, focus)`` from the previous call.  Iterating ``step`` used to
#: re-decompose the whole term every call -- O(context depth) per step,
#: quadratic overall; the cache resumes the previous call's leftmost-redex
#: path when handed back exactly the term it returned (checked by
#: identity; the strong reference keeps the id stable).  Single-slot and
#: module-global: interleaving steps of two different terms just misses.
_STEP_CACHE: Optional[tuple] = None


def step(e: FExpr) -> Optional[FExpr]:
    """One small step of pure F; ``None`` when ``e`` is a value.

    Decomposition into an evaluation context is *iterative* (an explicit
    frame stack), so divergent programs that grow deep left-nested contexts
    (e.g. factorial's multiplication chain) never exhaust Python's
    recursion limit before their fuel.  Feeding each result straight back
    in resumes the cached context path from the previous call, so an
    iterated-``step`` driver pays O(depth) once per contraction locality
    shift rather than per step.

    Raises :class:`MachineError` on stuck non-value states (unreachable from
    well-typed programs) and on FT-only forms, which require the mixed
    machine.
    """
    global _STEP_CACHE
    if is_value(e):
        return None
    cached = _STEP_CACHE
    if cached is not None and cached[0] is e:
        _, frames, cur = cached
    else:
        frames = []
        cur = e
    while True:
        contracted = reduce_redex(cur)
        if contracted is not None:
            break
        split = split_context(cur)
        if split is not None:
            frame, cur = split
            frames.append(frame)
            continue
        if is_value(cur) and frames:
            # Only reachable on a resumed path: the previous contraction
            # left a value at the focus, so plug it and climb.
            cur = frames.pop()(cur)
            continue
        _STEP_CACHE = None
        raise MachineError(
            f"cannot step {type(cur).__name__}: not a pure F redex "
            "(use repro.ft.machine for mixed programs)")
    result = contracted
    for frame in reversed(frames):
        result = frame(result)
    _STEP_CACHE = (result, frames, contracted)
    return result


class FEvaluator:
    """A resumable pure-F machine: linear CEK loop under a :class:`Budget`.

    Unlike iterated :func:`step` -- which re-decomposes the whole term
    every step and is therefore quadratic in context depth -- the
    evaluator keeps its evaluation-context frames *between* steps, so a
    depth-``d`` context costs ``O(d)`` once, not ``O(d)`` per step.

    The machine is checkpointable: when a budget governor trips (fuel,
    heap via embedded boundaries, depth), the evaluator retains its
    focus and frame stack; :meth:`snapshot` folds them back into a plain
    picklable F term, and :meth:`restore` + :meth:`run` continues
    exactly where the interrupted run stopped.  Python-level
    :class:`RecursionError` from deep substitutions or value checks is
    caught and surfaced as the structured depth verdict.
    """

    kind = "f"

    def __init__(self, expr: FExpr, fuel: Optional[int] = None,
                 heap: Optional[int] = None, depth: Optional[int] = None,
                 budget: Optional[Budget] = None):
        self.budget = Budget.of(fuel, heap, depth, budget)
        self._cur: FExpr = expr
        self._frames: List = []   # innermost frame last; closures, not pickled
        self._value: Optional[FExpr] = None

    @property
    def done(self) -> bool:
        return self._value is not None

    def run(self, fuel: Optional[int] = None) -> FExpr:
        """Drive the machine to a value (or a governor trip).

        ``fuel`` -- if given -- refills the budget's fuel for this slice,
        which is how a restored evaluator is granted its remaining steps.
        """
        if fuel is not None:
            self.budget.refill(fuel)
        if self._value is not None:
            return self._value
        budget = self.budget
        cur, frames = self._cur, self._frames
        obs_on = OBS.enabled
        prof = PROFILER if PROFILER.enabled else None
        prof_base = prof.enter_engine() if prof is not None else 0
        with OBS.span("f.evaluate", "f"):
            try:
                while True:
                    contracted = reduce_redex(cur)
                    if contracted is not None:
                        budget.consume_fuel()
                        if obs_on:
                            OBS.metrics.inc("f.machine.steps")
                        if prof is not None:
                            if cur.__class__ is App and \
                                    isinstance(cur.fn, Lam):
                                prof.beta(cur.fn, len(frames))
                            else:
                                prof.step(len(frames))
                        cur = contracted
                        continue
                    split = split_context(cur)
                    if split is not None:
                        frame, cur = split
                        frames.append(frame)
                        budget.check_depth(len(frames))
                        continue
                    if is_value(cur):
                        if not frames:
                            self._cur = cur
                            self._value = cur
                            return cur
                        cur = frames.pop()(cur)
                        continue
                    raise MachineError(
                        f"cannot step {type(cur).__name__}: not a pure F "
                        "redex (use repro.ft.machine for mixed programs)")
            except RecursionError:
                raise budget.depth_error(len(frames)) from None
            finally:
                # Keep the suspended state live for snapshot/resume even
                # when a governor just tripped.
                if prof is not None:
                    prof.exit_engine(prof_base)
                self._cur, self._frames = cur, frames

    # -- checkpointing ---------------------------------------------------

    def pending_expr(self) -> FExpr:
        """The whole term under evaluation, frames folded back in.

        This is the picklable form of the machine: re-decomposing it on
        resume costs one ``O(depth)`` descent and no fuel.
        """
        e = self._cur
        for frame in reversed(self._frames):
            e = frame(e)
        return e

    def snapshot(self) -> MachineSnapshot:
        return MachineSnapshot.capture(self.kind, {
            "expr": self.pending_expr(),
            "budget": self.budget,
            "value": self._value,
        })

    @classmethod
    def restore(cls, snapshot: MachineSnapshot) -> "FEvaluator":
        state = snapshot.state()
        ev = cls(state["expr"], budget=state["budget"])
        ev._value = state.get("value")
        return ev


def evaluate(e: FExpr, fuel: Optional[int] = None, *,
             heap: Optional[int] = None, depth: Optional[int] = None,
             budget: Optional[Budget] = None,
             engine: Optional[str] = None) -> FExpr:
    """Run ``e`` to a value under a resource budget.

    ``fuel`` defaults to :data:`repro.resilience.budget.DEFAULT_FUEL` --
    the same ceiling as the T and FT machines -- and a spent budget
    raises the structured :class:`~repro.errors.ResourceExhausted`
    family rather than ever crashing the host interpreter.

    ``engine`` selects the stepper: ``"cek"`` (the default) runs the
    environment machine of :mod:`repro.f.cek`, ``"subst"`` this module's
    literal substitution loop.  The two are observably step-equivalent;
    values, step counts, and budget verdicts are identical.
    """
    # Imported lazily: repro.f.cek itself imports apply_binop from here.
    from repro.f.cek import CEKEvaluator, resolve_engine

    if resolve_engine(engine) == "cek":
        return CEKEvaluator(e, fuel=fuel, heap=heap, depth=depth,
                            budget=budget).run()
    return FEvaluator(e, fuel=fuel, heap=heap, depth=depth,
                      budget=budget).run()

"""Environment-machine (CEK) fast path for F (paper Fig 5, abstract-machine form).

:class:`CEKEvaluator` is an environment/closure-based CEK machine that is
*observably step-equivalent* to the substitution stepper in
:mod:`repro.f.eval`: same values, same step counts, same budget verdicts.
Where the substitution engine contracts a beta redex by calling
``subst_expr`` (copying the whole lambda body) and re-materialises every
intermediate term, the CEK machine keeps

* **C**\\ ontrol -- the focused expression (or a machine value being
  returned),
* **E**\\ nvironment -- a variable -> value mapping replacing substitution,
* **K**\\ ontinuation -- an explicit stack of evaluation-context frames,
  one per context layer of Fig 5.

Step-equivalence invariants (these are load-bearing; the differential
harness in ``tests/test_engine_differential.py`` locksteps them):

* Fuel is charged exactly where the substitution engine charges it: one
  unit per *contraction* (binop, if0, beta, unfold-of-fold, projection)
  and one per boundary entry -- never on context descent, environment
  lookup, or frame pops.  ``f.machine.steps`` increments at the identical
  points, so counter trajectories match 1:1.
* A frame is pushed exactly when ``split_context`` would push one: only
  when a compound has a non-immediate child.  :func:`_try_value` mirrors
  ``is_value``'s short-circuits (variables resolve through the
  environment, lambdas close over it), so ``len(frames)`` -- and with it
  the depth verdict of :meth:`Budget.check_depth` -- agrees with the
  substitution engine at every step.
* Machine values reify to *structurally identical* plain F terms: every
  environment entry is a closed value, so :func:`subst_expr` performs no
  capture renaming and closure reification commutes with the beta-time
  substitutions the other engine performed eagerly.

The machine runs in two modes: standalone (drop-in for
:class:`repro.f.eval.FEvaluator`, including cross-engine-compatible
checkpoints -- both snapshot a plain ``{"expr", "budget", "value"}``
payload under kind ``"f"``) and as the F-side fast path of
:class:`repro.ft.machine.FTMachine` (``ft=machine``), where boundaries,
``import`` suspensions, the shared budget, and the resumption ``Hole``
protocol behave exactly as the substitution loop's.
"""

from __future__ import annotations

import sys
from typing import Dict, List, Optional

from repro.errors import FuelExhausted, FunTALError, MachineError
from repro.obs.events import OBS
from repro.obs.profile import PROFILER
from repro.resilience.budget import Budget
from repro.resilience.checkpoint import MachineSnapshot
from repro.f.eval import apply_binop
from repro.f.syntax import (
    App, BinOp, FExpr, Fold, If0, IntE, is_value, Lam, Proj,
    register_value_class, subst_expr, TupleE, Unfold, UnitE, Var,
)
from repro.ft.syntax import Boundary, ft_free_vars, Hole

__all__ = [
    "CEKEvaluator", "Closure", "cek_evaluate",
    "ENGINES", "DEFAULT_ENGINE", "resolve_engine",
]

#: The selectable F engines: the literal substitution stepper of
#: :mod:`repro.f.eval` and this environment machine.
ENGINES = ("subst", "cek")

#: What ``--engine`` (and every ``engine=None`` default) resolves to.
DEFAULT_ENGINE = "cek"

#: Reification folds a machine value back into a plain term by recursion;
#: values built iteratively by the machine can be deeper than the host's
#: default recursion limit, so reify retries once under this ceiling
#: (same pattern as checkpoint pickling).
REIFY_RECURSION_LIMIT = 50_000


def resolve_engine(name: Optional[str]) -> str:
    """Normalize an engine selection: ``None`` means the default."""
    if name is None:
        return DEFAULT_ENGINE
    if name not in ENGINES:
        raise FunTALError(
            f"unknown engine {name!r} (choose from {', '.join(ENGINES)})")
    return name


class Closure(FExpr):
    """A lambda paired with the environment it closed over.

    Registered as an extension value class so stray machine values behave
    as closed values everywhere (``is_value`` true, ``subst_expr``
    identity); the machine itself always reifies closures back to plain
    lambdas before they can reach a boundary, a snapshot, or a caller.
    """

    __slots__ = ("lam", "env")

    def __init__(self, lam: Lam, env: Dict[str, FExpr]):
        self.lam = lam
        self.env = env

    def __repr__(self) -> str:
        return f"Closure({self.lam!r}, {{{', '.join(sorted(self.env))}}})"

    def __reduce__(self):
        # Not a dataclass, so the PicklableSlots reduce inherited from
        # FExpr does not apply.  Snapshots always reify closures first;
        # this is only for stray direct pickles.
        return (Closure, (self.lam, self.env))


register_value_class(Closure)

_EMPTY_ENV: Dict[str, FExpr] = {}

# Continuation-frame tags, one per evaluation-context layer of Fig 5.
# Frames are mutable lists so advancing within a layer (next argument,
# left operand done) rewrites in place instead of popping and re-pushing;
# the depth the budget sees is identical either way.
_K_BINOP_L = 0   # [tag, op, right_expr, env]        evaluating the left
_K_BINOP_R = 1   # [tag, op, left_value]             evaluating the right
_K_IF0 = 2       # [tag, then_expr, else_expr, env]  evaluating the scrutinee
_K_APP_F = 3     # [tag, args, env]                  evaluating the function
_K_APP_A = 4     # [tag, fn_value, done, args, idx, env]   evaluating arg idx
_K_FOLD = 5      # [tag, ann]                        evaluating the body
_K_UNFOLD = 6    # [tag]                             evaluating the body
_K_TUPLE = 7     # [tag, done, items, idx, env]      evaluating item idx
_K_PROJ = 8      # [tag, index]                      evaluating the body

_EVAL, _APPLY = 0, 1


def _try_value(e: FExpr, env: Dict[str, FExpr]) -> Optional[FExpr]:
    """The machine value of ``e`` if it is *immediately* a value under
    ``env`` -- mirroring ``is_value``'s short-circuits exactly, so a frame
    is pushed (and depth charged) only where ``split_context`` would
    descend.  Returns ``None`` for anything that needs evaluation."""
    cls = e.__class__
    if cls is IntE or cls is UnitE:
        return e
    if cls is Var:
        return env.get(e.name)
    if isinstance(e, Lam):
        return Closure(e, env)
    if cls is Fold:
        body = _try_value(e.body, env)
        if body is None:
            return None
        return e if body is e.body else Fold(e.ann, body)
    if cls is TupleE:
        items = e.items
        out: Optional[list] = None
        for i, item in enumerate(items):
            v = _try_value(item, env)
            if v is None:
                return None
            if out is None:
                if v is not item:
                    out = list(items[:i])
                    out.append(v)
            else:
                out.append(v)
        return e if out is None else TupleE(tuple(out))
    if cls is App or cls is BinOp or cls is If0 or cls is Unfold \
            or cls is Proj:
        return None          # known compounds: never immediate
    if is_value(e):          # extension values (lumps) are closed
        return e
    return None


def _reify(v: FExpr) -> FExpr:
    """Fold a machine value back into a plain (closed) F term.

    Closure reification substitutes the environment's (recursively
    reified) values for the lambda's free variables; since every entry is
    closed, ``subst_expr`` never renames and the result is structurally
    identical to the term the substitution engine would hold.
    """
    cls = v.__class__
    if cls is Closure:
        lam = v.lam
        env = v.env
        if not env:
            return lam
        out: FExpr = lam
        for x in sorted(ft_free_vars(lam)):
            val = env.get(x)
            if val is not None:
                out = subst_expr(out, x, _reify(val))
        return out
    if cls is Fold:
        body = _reify(v.body)
        return v if body is v.body else Fold(v.ann, body)
    if cls is TupleE:
        items = tuple(_reify(item) for item in v.items)
        if all(a is b for a, b in zip(items, v.items)):
            return v
        return TupleE(items)
    return v


def _reify_limited(v: FExpr) -> FExpr:
    """Reify with one retry under a raised recursion ceiling, so values
    the machine built iteratively (deeper than the host's default stack)
    still fold back; a value too deep even for the ceiling propagates
    :class:`RecursionError` to the caller's depth verdict."""
    try:
        return _reify(v)
    except RecursionError:
        limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(limit, REIFY_RECURSION_LIMIT))
        try:
            return _reify(v)
        finally:
            sys.setrecursionlimit(limit)


def _reify_open(e: FExpr, env: Dict[str, FExpr]) -> FExpr:
    """Substitute the environment's values into an arbitrary (possibly
    non-value) expression: the delayed substitutions the other engine
    performed at beta time.  Closed replacements commute, so the order is
    immaterial; sorted for determinism."""
    if not env:
        return e
    for x in sorted(ft_free_vars(e)):
        val = env.get(x)
        if val is not None:
            e = subst_expr(e, x, _reify(val))
    return e


def _plug(inner: FExpr, frames: List[list]) -> FExpr:
    """Fold the frame stack back over ``inner``: the picklable whole-term
    form of the machine state (matches the substitution engine's
    ``pending_expr`` / ``_rebuild`` output structurally)."""
    for f in reversed(frames):
        tag = f[0]
        if tag == _K_BINOP_L:
            inner = BinOp(f[1], inner, _reify_open(f[2], f[3]))
        elif tag == _K_BINOP_R:
            inner = BinOp(f[1], _reify_limited(f[2]), inner)
        elif tag == _K_IF0:
            inner = If0(inner, _reify_open(f[1], f[3]),
                        _reify_open(f[2], f[3]))
        elif tag == _K_APP_F:
            inner = App(inner, tuple(_reify_open(a, f[2]) for a in f[1]))
        elif tag == _K_APP_A:
            fv, done, args, idx, env = f[1], f[2], f[3], f[4], f[5]
            rest = tuple(_reify_open(args[j], env)
                         for j in range(idx + 1, len(args)))
            inner = App(_reify_limited(fv),
                        tuple(_reify_limited(v) for v in done)
                        + (inner,) + rest)
        elif tag == _K_FOLD:
            inner = Fold(f[1], inner)
        elif tag == _K_UNFOLD:
            inner = Unfold(inner)
        elif tag == _K_TUPLE:
            done, items, idx, env = f[1], f[2], f[3], f[4]
            rest = tuple(_reify_open(items[j], env)
                         for j in range(idx + 1, len(items)))
            inner = TupleE(tuple(_reify_limited(v) for v in done)
                           + (inner,) + rest)
        elif tag == _K_PROJ:
            inner = Proj(f[1], inner)
    return inner


class CEKEvaluator:
    """A resumable CEK machine for F, API-compatible with
    :class:`repro.f.eval.FEvaluator` (same constructor, ``run``/``done``/
    ``pending_expr``/``snapshot``/``restore``, same ``kind`` so snapshots
    restore across engines).

    With ``ft=machine`` it runs as the F side of an
    :class:`~repro.ft.machine.FTMachine`: boundaries cross through the
    machine (sharing its memory and budget), fuel exhaustion appends the
    same ``("f", pending)`` suspension records, and resumption holes are
    filled from the machine's pending value.
    """

    kind = "f"

    def __init__(self, expr: FExpr, fuel: Optional[int] = None,
                 heap: Optional[int] = None, depth: Optional[int] = None,
                 budget: Optional[Budget] = None, ft=None):
        self._ft = ft
        self.budget = ft.budget if ft is not None \
            else Budget.of(fuel, heap, depth, budget)
        self._mode = _EVAL
        self._focus: FExpr = expr
        self._env: Dict[str, FExpr] = _EMPTY_ENV
        self._frames: List[list] = []
        self._value: Optional[FExpr] = None

    @property
    def done(self) -> bool:
        return self._value is not None

    def run(self, fuel: Optional[int] = None) -> FExpr:
        """Drive the machine to a (reified, plain-term) value or a
        governor trip; ``fuel`` refills the budget for this slice."""
        if fuel is not None:
            self.budget.refill(fuel)
        if self._value is not None:
            return self._value
        if self._ft is None:
            with OBS.span("f.evaluate", "f"):
                return self._drive()
        return self._drive()

    # -- the machine loop ------------------------------------------------

    def _drive(self) -> FExpr:
        budget = self.budget
        ft = self._ft
        consume = budget.consume_fuel
        check_depth = budget.check_depth
        obs_on = OBS.enabled
        metrics_inc = OBS.metrics.inc
        prof = PROFILER if PROFILER.enabled else None
        prof_base = prof.enter_engine() if prof is not None else 0
        mode, cur, env, frames = (self._mode, self._focus, self._env,
                                  self._frames)
        try:
            while True:
                if mode == _APPLY:
                    # ``cur`` is a machine value for the innermost frame.
                    if not frames:
                        value = _reify_limited(cur)
                        self._value = value
                        cur = value
                        return value
                    f = frames[-1]
                    tag = f[0]
                    if tag == _K_APP_A:
                        fv, done, args, idx, fenv = (f[1], f[2], f[3],
                                                     f[4], f[5])
                        scanned = [cur]
                        j = idx + 1
                        n = len(args)
                        while j < n:
                            av = _try_value(args[j], fenv)
                            if av is None:
                                break
                            scanned.append(av)
                            j += 1
                        if j < n:
                            done.extend(scanned)
                            f[4] = j
                            mode, cur, env = _EVAL, args[j], fenv
                            continue
                        # Beta: all arguments are values.
                        argvals = done + scanned
                        if fv.__class__ is not Closure:
                            if isinstance(fv, Lam):
                                fv = Closure(fv, _EMPTY_ENV)
                            else:
                                raise MachineError(
                                    "application of a non-lambda value")
                        lam = fv.lam
                        params = lam.params
                        if len(params) != len(argvals):
                            raise MachineError(
                                "application arity mismatch at runtime")
                        consume()
                        if ft is not None:
                            ft.steps += 1
                        if obs_on:
                            metrics_inc("f.machine.steps")
                        frames.pop()
                        if prof is not None:
                            prof.beta(lam, len(frames))
                        env = dict(fv.env)
                        # Bind in reverse so duplicate parameter names
                        # resolve like sequential substitution (first
                        # parameter wins).
                        for (x, _), a in zip(reversed(params),
                                             reversed(argvals)):
                            env[x] = a
                        mode, cur = _EVAL, lam.body
                        continue
                    if tag == _K_BINOP_R:
                        lv = f[2]
                        if lv.__class__ is not IntE or \
                                cur.__class__ is not IntE:
                            raise MachineError(
                                f"primitive {f[1]!r} applied to "
                                "non-integers")
                        consume()
                        if ft is not None:
                            ft.steps += 1
                        if obs_on:
                            metrics_inc("f.machine.steps")
                        frames.pop()
                        if prof is not None:
                            prof.step(len(frames))
                        cur = IntE(apply_binop(f[1], lv.value, cur.value))
                        continue
                    if tag == _K_BINOP_L:
                        rv = _try_value(f[2], f[3])
                        if rv is None:
                            op = f[1]
                            right, fenv = f[2], f[3]
                            f[:] = [_K_BINOP_R, op, cur]
                            mode, cur, env = _EVAL, right, fenv
                            continue
                        if cur.__class__ is not IntE or \
                                rv.__class__ is not IntE:
                            raise MachineError(
                                f"primitive {f[1]!r} applied to "
                                "non-integers")
                        consume()
                        if ft is not None:
                            ft.steps += 1
                        if obs_on:
                            metrics_inc("f.machine.steps")
                        frames.pop()
                        if prof is not None:
                            prof.step(len(frames))
                        cur = IntE(apply_binop(f[1], cur.value, rv.value))
                        continue
                    if tag == _K_IF0:
                        if cur.__class__ is not IntE:
                            raise MachineError(
                                "if0 scrutinee is not an integer")
                        consume()
                        if ft is not None:
                            ft.steps += 1
                        if obs_on:
                            metrics_inc("f.machine.steps")
                        branch = f[1] if cur.value == 0 else f[2]
                        fenv = f[3]
                        frames.pop()
                        if prof is not None:
                            prof.step(len(frames))
                        mode, cur, env = _EVAL, branch, fenv
                        continue
                    if tag == _K_APP_F:
                        args, fenv = f[1], f[2]
                        fv = cur
                        scanned: list = []
                        j = 0
                        n = len(args)
                        while j < n:
                            av = _try_value(args[j], fenv)
                            if av is None:
                                break
                            scanned.append(av)
                            j += 1
                        if j < n:
                            f[:] = [_K_APP_A, fv, scanned, args, j, fenv]
                            mode, cur, env = _EVAL, args[j], fenv
                            continue
                        if fv.__class__ is not Closure:
                            if isinstance(fv, Lam):
                                fv = Closure(fv, _EMPTY_ENV)
                            else:
                                raise MachineError(
                                    "application of a non-lambda value")
                        lam = fv.lam
                        params = lam.params
                        if len(params) != len(scanned):
                            raise MachineError(
                                "application arity mismatch at runtime")
                        consume()
                        if ft is not None:
                            ft.steps += 1
                        if obs_on:
                            metrics_inc("f.machine.steps")
                        frames.pop()
                        if prof is not None:
                            prof.beta(lam, len(frames))
                        env = dict(fv.env)
                        for (x, _), a in zip(reversed(params),
                                             reversed(scanned)):
                            env[x] = a
                        mode, cur = _EVAL, lam.body
                        continue
                    if tag == _K_FOLD:
                        ann = f[1]
                        frames.pop()
                        cur = Fold(ann, cur)
                        continue
                    if tag == _K_UNFOLD:
                        if cur.__class__ is not Fold:
                            raise MachineError("unfold of a non-fold value")
                        consume()
                        if ft is not None:
                            ft.steps += 1
                        if obs_on:
                            metrics_inc("f.machine.steps")
                        frames.pop()
                        if prof is not None:
                            prof.step(len(frames))
                        cur = cur.body
                        continue
                    if tag == _K_TUPLE:
                        done, items, idx, fenv = f[1], f[2], f[3], f[4]
                        scanned = [cur]
                        j = idx + 1
                        n = len(items)
                        while j < n:
                            iv = _try_value(items[j], fenv)
                            if iv is None:
                                break
                            scanned.append(iv)
                            j += 1
                        if j < n:
                            done.extend(scanned)
                            f[3] = j
                            mode, cur, env = _EVAL, items[j], fenv
                            continue
                        frames.pop()
                        cur = TupleE(tuple(done + scanned))
                        continue
                    if tag == _K_PROJ:
                        if cur.__class__ is not TupleE:
                            raise MachineError(
                                "projection from a non-tuple value")
                        index = f[1]
                        if not 0 <= index < len(cur.items):
                            raise MachineError(
                                f"projection index {index} out of range "
                                "at runtime")
                        consume()
                        if ft is not None:
                            ft.steps += 1
                        if obs_on:
                            metrics_inc("f.machine.steps")
                        frames.pop()
                        if prof is not None:
                            prof.step(len(frames))
                        cur = cur.items[index]
                        continue
                    raise MachineError(f"corrupt CEK frame tag {tag!r}")

                # -- _EVAL: ``cur`` is an expression under ``env`` -------
                v = _try_value(cur, env)
                if v is not None:
                    mode, cur = _APPLY, v
                    continue
                cls = cur.__class__
                if cls is App:
                    fn, args = cur.fn, cur.args
                    fv = _try_value(fn, env)
                    if fv is None:
                        frames.append([_K_APP_F, args, env])
                        check_depth(len(frames))
                        cur = fn
                        continue
                    scanned = []
                    j = 0
                    n = len(args)
                    while j < n:
                        av = _try_value(args[j], env)
                        if av is None:
                            break
                        scanned.append(av)
                        j += 1
                    if j < n:
                        frames.append([_K_APP_A, fv, scanned, args, j, env])
                        check_depth(len(frames))
                        cur = args[j]
                        continue
                    if fv.__class__ is not Closure:
                        if isinstance(fv, Lam):
                            fv = Closure(fv, _EMPTY_ENV)
                        else:
                            raise MachineError(
                                "application of a non-lambda value")
                    lam = fv.lam
                    params = lam.params
                    if len(params) != len(scanned):
                        raise MachineError(
                            "application arity mismatch at runtime")
                    consume()
                    if ft is not None:
                        ft.steps += 1
                    if obs_on:
                        metrics_inc("f.machine.steps")
                    if prof is not None:
                        prof.beta(lam, len(frames))
                    env = dict(fv.env)
                    for (x, _), a in zip(reversed(params),
                                         reversed(scanned)):
                        env[x] = a
                    cur = lam.body
                    continue
                if cls is BinOp:
                    lv = _try_value(cur.left, env)
                    if lv is None:
                        frames.append([_K_BINOP_L, cur.op, cur.right, env])
                        check_depth(len(frames))
                        cur = cur.left
                        continue
                    rv = _try_value(cur.right, env)
                    if rv is None:
                        frames.append([_K_BINOP_R, cur.op, lv])
                        check_depth(len(frames))
                        cur = cur.right
                        continue
                    if lv.__class__ is not IntE or rv.__class__ is not IntE:
                        raise MachineError(
                            f"primitive {cur.op!r} applied to non-integers")
                    consume()
                    if ft is not None:
                        ft.steps += 1
                    if obs_on:
                        metrics_inc("f.machine.steps")
                    if prof is not None:
                        prof.step(len(frames))
                    cur = IntE(apply_binop(cur.op, lv.value, rv.value))
                    mode = _APPLY
                    continue
                if cls is If0:
                    cv = _try_value(cur.cond, env)
                    if cv is None:
                        frames.append([_K_IF0, cur.then, cur.els, env])
                        check_depth(len(frames))
                        cur = cur.cond
                        continue
                    if cv.__class__ is not IntE:
                        raise MachineError("if0 scrutinee is not an integer")
                    consume()
                    if ft is not None:
                        ft.steps += 1
                    if obs_on:
                        metrics_inc("f.machine.steps")
                    if prof is not None:
                        prof.step(len(frames))
                    cur = cur.then if cv.value == 0 else cur.els
                    continue
                if cls is Unfold:
                    bv = _try_value(cur.body, env)
                    if bv is None:
                        frames.append([_K_UNFOLD])
                        check_depth(len(frames))
                        cur = cur.body
                        continue
                    if bv.__class__ is not Fold:
                        raise MachineError("unfold of a non-fold value")
                    consume()
                    if ft is not None:
                        ft.steps += 1
                    if obs_on:
                        metrics_inc("f.machine.steps")
                    if prof is not None:
                        prof.step(len(frames))
                    mode, cur = _APPLY, bv.body
                    continue
                if cls is Proj:
                    bv = _try_value(cur.body, env)
                    if bv is None:
                        frames.append([_K_PROJ, cur.index])
                        check_depth(len(frames))
                        cur = cur.body
                        continue
                    if bv.__class__ is not TupleE:
                        raise MachineError("projection from a non-tuple value")
                    if not 0 <= cur.index < len(bv.items):
                        raise MachineError(
                            f"projection index {cur.index} out of range "
                            "at runtime")
                    consume()
                    if ft is not None:
                        ft.steps += 1
                    if obs_on:
                        metrics_inc("f.machine.steps")
                    if prof is not None:
                        prof.step(len(frames))
                    mode, cur = _APPLY, bv.items[cur.index]
                    continue
                if cls is Fold:
                    # Body is not immediate (else _try_value caught it).
                    frames.append([_K_FOLD, cur.ann])
                    check_depth(len(frames))
                    cur = cur.body
                    continue
                if cls is TupleE:
                    items = cur.items
                    done: list = []
                    j = 0
                    n = len(items)
                    while j < n:
                        iv = _try_value(items[j], env)
                        if iv is None:
                            break
                        done.append(iv)
                        j += 1
                    # j < n always: an all-immediate tuple is a value.
                    frames.append([_K_TUPLE, done, items, j, env])
                    check_depth(len(frames))
                    cur = items[j]
                    continue
                if ft is not None:
                    if cls is Boundary:
                        # Charged like the substitution loop: one unit on
                        # entry, then the whole T component runs under the
                        # shared budget inside the machine's crossing.
                        reified = _reify_open(cur, env)
                        ft.consume()
                        value = ft._cross_boundary(reified)
                        mv = _try_value(value, _EMPTY_ENV)
                        if mv is None:
                            raise MachineError(
                                "boundary produced a non-value "
                                f"{type(value).__name__}")
                        mode, cur = _APPLY, mv
                        continue
                    if cls is Hole:
                        pending = ft._hole_value
                        if pending is None:
                            raise MachineError(
                                "resumption hole reached with no pending "
                                "value")
                        ft._hole_value = None
                        mv = _try_value(pending, _EMPTY_ENV)
                        if mv is None:
                            raise MachineError(
                                "resumption hole fed a non-value "
                                f"{type(pending).__name__}")
                        mode, cur = _APPLY, mv
                        continue
                    raise MachineError(
                        f"cannot step {type(cur).__name__}: not a value and "
                        "not a reducible FT form (free variable?)")
                raise MachineError(
                    f"cannot step {type(cur).__name__}: not a pure F redex "
                    "(use repro.ft.machine for mixed programs)")
        except FuelExhausted:
            if ft is not None:
                if ft._suspension:
                    # A nested crossing recorded its own continuation; our
                    # expression resumes with a hole where its value lands.
                    pending = _plug(Hole(), frames)
                elif mode == _APPLY:
                    pending = _plug(_reify_limited(cur), frames)
                else:
                    pending = _plug(_reify_open(cur, env), frames)
                ft._suspension.append(("f", pending))
            raise
        except RecursionError:
            raise budget.depth_error(len(frames)) from None
        finally:
            # Keep the suspended state live for snapshot/re-entry even
            # when a governor just tripped: contraction sites mutate the
            # frame stack only *after* a successful fuel charge, so the
            # persisted state always re-enters at the pre-charge point.
            if prof is not None:
                prof.exit_engine(prof_base)
            self._mode, self._focus, self._env, self._frames = (
                mode, cur, env, frames)

    # -- checkpointing ---------------------------------------------------

    def pending_expr(self) -> FExpr:
        """The whole term under evaluation as a plain (closure-free) F
        term: focus reified, environment substituted, frames folded back.
        Structurally identical to the substitution engine's pending term
        at the same step."""
        if self._mode == _EVAL:
            inner = _reify_open(self._focus, self._env)
        else:
            inner = _reify_limited(self._focus)
        return _plug(inner, self._frames)

    def snapshot(self) -> MachineSnapshot:
        return MachineSnapshot.capture(self.kind, {
            "expr": self.pending_expr(),
            "budget": self.budget,
            "value": self._value,
        })

    @classmethod
    def restore(cls, snapshot: MachineSnapshot) -> "CEKEvaluator":
        state = snapshot.state()
        ev = cls(state["expr"], budget=state["budget"])
        ev._value = state.get("value")
        return ev


def cek_evaluate(e: FExpr, fuel: Optional[int] = None, *,
                 heap: Optional[int] = None, depth: Optional[int] = None,
                 budget: Optional[Budget] = None) -> FExpr:
    """Run ``e`` to a value on the CEK engine (standalone form)."""
    return CEKEvaluator(e, fuel=fuel, heap=heap, depth=depth,
                        budget=budget).run()

"""A JIT-style compiler from an F subset to T (paper section 6).

The paper sketches JIT formalization as moving between multi-language
configurations: replacing high-level components with assembly that is
contextually equivalent in FT.  This package implements the executable
version for the first-order arithmetic fragment:

* :mod:`repro.jit.compiler` -- compile eligible F lambdas to multi-block
  T components following the Fig 9 calling convention, and
  :func:`~repro.jit.compiler.jit_rewrite` whole programs by replacing
  every eligible lambda;
* correctness is the paper's equivalence obligation
  ``E[e_S] ~ E[FT e_T]``, checked by :mod:`repro.equiv` in the tests and
  in ``benchmarks/bench_jit_correctness.py``.
"""

from repro.jit.compiler import (  # noqa: F401
    compile_function, is_compilable, jit_rewrite,
)

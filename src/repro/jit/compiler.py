"""The JIT's compiler entry points, now a facade over :mod:`repro.compile`.

Historically this module *was* the compiler: a stack-machine emitter for
first-order arithmetic lambdas.  That emitter lives on verbatim as the
``arith`` tier of the tiered pipeline (:mod:`repro.compile.arith`), next
to the ``general`` tier that covers all of F via closure conversion.
This module keeps the JIT-facing surface stable:

* :func:`is_compilable` / :func:`compile_function` speak the historical
  contract -- the arithmetic fragment, the same multi-block output shape
  (Fig 16-style ``if0`` splitting), the same ``CompileError`` on
  anything outside it -- and tests lock that shape in differentially
  against :func:`repro.compile.arith.compile_arith`;
* :func:`jit_rewrite` walks a whole program replacing every eligible
  lambda, defaulting to the arithmetic tier (the historical JIT
  behaviour).  Passing ``tiers=ALL_TIERS`` lets the sweep also compile
  closed higher-order lambdas through the general tier; open lambdas
  under enclosing binders simply fail eligibility and are left
  interpreted, so the walk needs no environment threading.
* the memoization cache (:data:`COMPILE_CACHE`) is the pipeline's: one
  LRU shared by every tier and every entry point, with the historical
  ``jit.cache.*`` metric names.

The correctness obligation ``E[e_S] ~ E[FT e_T]`` is discharged per
artifact by translation validation (:mod:`repro.compile.validate`) and
boundedly by :mod:`repro.equiv` in the tests and benchmarks.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.errors import CompileError
from repro.f.syntax import (
    App, BinOp, FExpr, Fold, If0, IntE, Lam, Proj, TupleE, Unfold, UnitE,
    Var,
)
from repro.ft.syntax import StackLam
from repro.compile.arith import is_arith_compilable
from repro.compile.pipeline import (
    ALL_TIERS, COMPILE_CACHE, TIER_ARITH, TIER_GENERAL, clear_compile_cache,
    compile_term, eligible_tier,
)
from repro.compile.pipeline import compile_function as _pipeline_compile

__all__ = ["is_compilable", "compile_function", "jit_rewrite",
           "CompileError", "clear_compile_cache", "COMPILE_CACHE",
           "ALL_TIERS", "TIER_ARITH", "TIER_GENERAL"]

#: The historical default: the JIT only rewrites the arithmetic fragment
#: unless a caller opts into the general tier.
JIT_TIERS: Tuple[str, ...] = (TIER_ARITH,)


def is_compilable(e: FExpr) -> bool:
    """Is ``e`` a lambda in the (historical) compilable fragment?  All
    parameters ``int``, body built from literals, parameters,
    arithmetic, and ``if0``."""
    return is_arith_compilable(e)


def compile_function(lam: Lam,
                     tiers: Optional[Tuple[str, ...]] = None) -> Lam:
    """Compile an eligible lambda to its FT replacement (memoized).

    Returns ``lam(x...). ((..)->.. FT component) x...``, a drop-in
    replacement for the source lambda.  ``tiers=None`` defers to the
    active :class:`repro.tiering.policy.TieringPolicy` (``jit``
    context): the historical arithmetic-only JIT unless the policy
    mode is ``aggressive``.  :class:`CompileError` for anything the
    enabled tiers do not cover."""
    if tiers is None:
        from repro.tiering.policy import resolve_tiers

        tiers = resolve_tiers(None, "jit")
    return _pipeline_compile(lam, None, tiers).wrapped


def jit_rewrite(e: FExpr,
                tiers: Optional[Tuple[str, ...]] = None) -> FExpr:
    """Replace every eligible lambda in ``e`` by its compiled version --
    the paper's picture of a JIT moving a program between multi-language
    configurations.  Tier eligibility comes from the active tiering
    policy (``tiers=None``): the historical arithmetic fragment unless
    the policy mode is ``aggressive``, which also compiles closed
    higher-order lambdas whole."""
    if tiers is None:
        from repro.tiering.policy import resolve_tiers

        tiers = resolve_tiers(None, "jit")
    if isinstance(e, Lam) and not isinstance(e, StackLam) \
            and eligible_tier(e, None, tiers) is not None:
        return compile_term(e, None, tiers).wrapped
    if isinstance(e, (Var, IntE, UnitE)):
        return e
    if isinstance(e, BinOp):
        return BinOp(e.op, jit_rewrite(e.left, tiers),
                     jit_rewrite(e.right, tiers))
    if isinstance(e, If0):
        return If0(jit_rewrite(e.cond, tiers), jit_rewrite(e.then, tiers),
                   jit_rewrite(e.els, tiers))
    if isinstance(e, StackLam):
        return StackLam(e.params, jit_rewrite(e.body, tiers),
                        e.phi_in, e.phi_out)
    if isinstance(e, Lam):
        return Lam(e.params, jit_rewrite(e.body, tiers))
    if isinstance(e, App):
        return App(jit_rewrite(e.fn, tiers),
                   tuple(jit_rewrite(a, tiers) for a in e.args))
    if isinstance(e, Fold):
        return Fold(e.ann, jit_rewrite(e.body, tiers))
    if isinstance(e, Unfold):
        return Unfold(jit_rewrite(e.body, tiers))
    if isinstance(e, TupleE):
        return TupleE(tuple(jit_rewrite(x, tiers) for x in e.items))
    if isinstance(e, Proj):
        return Proj(e.index, jit_rewrite(e.body, tiers))
    return e  # boundaries and other leaves are left untouched

"""Compile first-order arithmetic F functions to T components.

The compilation scheme is a classic stack machine over the paper's
calling convention:

* arguments arrive on the stack (last argument on top, per Fig 9) and the
  return continuation in ``ra``; the marker stays ``ra`` throughout, so
  branch blocks share it and ``bnz``/``jmp`` typecheck as intra-component
  jumps;
* expression compilation maintains a compile-time count of temporaries:
  every sub-expression evaluates to one pushed ``int``; variables are
  ``sld`` from their argument slot (offset by the live temporaries);
* ``if0`` splits the current basic block: fall-through is the zero branch,
  ``bnz`` targets the else block, both jump to a join block -- so compiled
  functions are genuinely *multi-block* components, the very objects the
  paper's logical relation had to learn to relate (Fig 16);
* the epilogue pops the result, frees the argument slots, and ``ret``s.

:func:`compile_function` wraps the generated component exactly like the
paper's examples: ``lam(x...). (arrow FT (protect; mv; halt)) x...``.
:func:`jit_rewrite` walks a whole program replacing every eligible lambda,
which is the paper's picture of a JIT moving between configurations; the
correctness obligation ``E[e_S] ~ E[FT e_T]`` is discharged (boundedly) by
:mod:`repro.equiv` in the tests and benchmarks.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Tuple

from repro.errors import FTTypeError
from repro.obs.events import OBS
from repro.resilience.chaos import probe
from repro.caching import LRUCache
from repro.f.syntax import (
    App, BinOp, FArrow, FExpr, FInt, Fold, If0, IntE, Lam, Proj, TupleE,
    Unfold, UnitE, Var,
)
from repro.ft.syntax import Boundary, Protect, StackLam
from repro.ft.translate import continuation_type, type_translation
from repro.tal.syntax import (
    Aop, Bnz, Component, DeltaBind, Halt, HCode, InstrSeq, Jmp, KIND_EPS,
    KIND_ZETA, Loc, Mv, QEps, QReg, RegFileTy, RegOp, Ret, Salloc, Sfree,
    Sld, Sst, StackTy, TInt, TyApp, WInt, WLoc,
)

__all__ = ["is_compilable", "compile_function", "jit_rewrite",
           "CompileError", "clear_compile_cache", "COMPILE_CACHE"]

_label_counter = itertools.count()

_OPS = {"+": "add", "-": "sub", "*": "mul"}

# Structurally identical lambdas compile to interchangeable components (the
# machine renames heap labels freshly at every load), so compilation is
# memoized on the (frozen, hashable) source lambda.  The bound comes from
# the shared serving-layer LRU (this used to be an ad-hoc FIFO dict), so a
# long-running JIT rewriting many distinct lambdas cannot grow unboundedly
# and its hit/miss/eviction accounting shows up in ``funtal stats``
# alongside every other cache.
COMPILE_CACHE: LRUCache = LRUCache(512, metric_prefix="jit.cache")


def clear_compile_cache() -> None:
    """Drop all memoized compilations (used by tests and benchmarks)."""
    COMPILE_CACHE.clear()


class CompileError(FTTypeError):
    """The expression falls outside the compilable fragment."""


def is_compilable(e: FExpr) -> bool:
    """Is ``e`` a lambda in the compilable fragment?  All parameters
    ``int``, body built from literals, parameters, arithmetic, and
    ``if0``."""
    if not isinstance(e, Lam) or isinstance(e, StackLam):
        return False
    if not e.params or not all(isinstance(t, FInt) for _, t in e.params):
        return False
    names = {x for x, _ in e.params}
    return _body_compilable(e.body, names)


def _body_compilable(e: FExpr, scope) -> bool:
    if isinstance(e, IntE):
        return True
    if isinstance(e, Var):
        return e.name in scope
    if isinstance(e, BinOp):
        return (_body_compilable(e.left, scope)
                and _body_compilable(e.right, scope))
    if isinstance(e, If0):
        return (_body_compilable(e.cond, scope)
                and _body_compilable(e.then, scope)
                and _body_compilable(e.els, scope))
    return False


class _Emitter:
    """Accumulates basic blocks; one block is open at a time."""

    def __init__(self, fn_label: str, arity: int):
        self.fn = fn_label
        self.arity = arity
        self.blocks: List[Tuple[Loc, int, InstrSeq]] = []
        self._open_label: Loc = Loc(fn_label)
        self._open_depth = 0          # temporaries above the arguments
        self._instrs: List = []

    # -- block plumbing -------------------------------------------------

    def emit(self, *instrs) -> None:
        self._instrs.extend(instrs)

    def close(self, terminator) -> None:
        self.blocks.append(
            (self._open_label, self._open_depth,
             InstrSeq(tuple(self._instrs), terminator)))
        self._instrs = []

    def open(self, label: Loc, depth: int) -> None:
        self._open_label = label
        self._open_depth = depth

    def fresh(self, stem: str) -> Loc:
        return Loc(f"{self.fn}_{stem}{next(_label_counter)}")

    def block_ref(self, label: Loc):
        return TyApp(WLoc(label), (StackTy((), "z"), QEps("e")))

    # -- expression compilation ------------------------------------------

    def push_result(self) -> None:
        """r1 holds the value; push it as a new temporary."""
        self.emit(Salloc(1), Sst(0, "r1"))

    def compile(self, e: FExpr, env: Dict[str, int], depth: int) -> int:
        """Emit code leaving ``e``'s value as a new temporary on top;
        returns the new temporary count (always ``depth + 1``)."""
        if isinstance(e, IntE):
            self.emit(Mv("r1", WInt(e.value)))
            self.push_result()
            return depth + 1
        if isinstance(e, Var):
            # argument i (0-based, first parameter) lives at slot
            # depth + (arity - 1 - i): the last argument is on top.
            slot = depth + (self.arity - 1 - env[e.name])
            self.emit(Sld("r1", slot))
            self.push_result()
            return depth + 1
        if isinstance(e, BinOp):
            depth = self.compile(e.left, env, depth)
            depth = self.compile(e.right, env, depth)
            self.emit(
                Sld("r2", 0),        # right operand
                Sld("r1", 1),        # left operand
                Sfree(2),
                Aop(_OPS[e.op], "r1", "r1", RegOp("r2")),
            )
            self.push_result()
            return depth - 1
        if isinstance(e, If0):
            depth = self.compile(e.cond, env, depth)
            self.emit(Sld("r1", 0), Sfree(1))
            depth -= 1
            else_label = self.fresh("else")
            join_label = self.fresh("join")
            self.emit(Bnz("r1", self.block_ref(else_label)))
            self.compile(e.then, env, depth)
            self.close(Jmp(self.block_ref(join_label)))
            self.open(else_label, depth)
            self.compile(e.els, env, depth)
            self.close(Jmp(self.block_ref(join_label)))
            self.open(join_label, depth + 1)
            return depth + 1
        raise CompileError(f"not in the compilable fragment: {e}",
                           judgment="jit.compile", subject=str(e))


def compile_function(lam: Lam) -> Lam:
    """Compile an eligible lambda to its FT replacement.

    Returns ``lam(x...). ((int..)->int FT (protect .,z; mv r1, l_f;
    halt ...)) x...`` where ``l_f`` heads the compiled multi-block
    component."""
    if not is_compilable(lam):
        raise CompileError(f"lambda is not compilable: {lam}",
                           judgment="jit.compile", subject=str(lam))
    cached = COMPILE_CACHE.get(lam)
    if cached is not None:
        return cached
    probe("jit.compile", f"arity {len(lam.params)}")
    with OBS.span("jit.compile", "jit", arity=len(lam.params)):
        compiled = _compile_uncached(lam)
    COMPILE_CACHE.put(lam, compiled)
    return compiled


def _compile_uncached(lam: Lam) -> Lam:
    arity = len(lam.params)
    env = {name: i for i, (name, _) in enumerate(lam.params)}
    fn_label = f"jitfn{next(_label_counter)}"

    emitter = _Emitter(fn_label, arity)
    emitter.compile(lam.body, env, 0)
    # epilogue: result temp on top, arguments below
    emitter.emit(Sld("r1", 0), Sfree(1 + arity))
    emitter.close(Ret("ra", "r1"))

    zstack = StackTy((), "z")
    cont = continuation_type(TInt(), zstack)
    heap = []
    for label, depth, instrs in emitter.blocks:
        sigma = StackTy((TInt(),) * (depth + arity), "z")
        heap.append((label, HCode(
            (DeltaBind(KIND_ZETA, "z"), DeltaBind(KIND_EPS, "e")),
            RegFileTy.of(ra=cont), sigma, QReg("ra"), instrs)))

    arrow = FArrow(tuple(t for _, t in lam.params), FInt())
    comp = Component(
        InstrSeq((Protect((), "z"), Mv("r1", WLoc(Loc(fn_label)))),
                 Halt(type_translation(arrow), zstack, "r1")),
        tuple(heap))
    if OBS.enabled:
        OBS.metrics.inc("jit.compile")
    return Lam(lam.params,
               App(Boundary(arrow, comp),
                   tuple(Var(x) for x, _ in lam.params)))


def jit_rewrite(e: FExpr) -> FExpr:
    """Replace every eligible lambda in ``e`` by its compiled version --
    the paper's picture of a JIT moving a program between multi-language
    configurations."""
    if is_compilable(e):
        return compile_function(e)  # type: ignore[arg-type]
    if isinstance(e, (Var, IntE, UnitE)):
        return e
    if isinstance(e, BinOp):
        return BinOp(e.op, jit_rewrite(e.left), jit_rewrite(e.right))
    if isinstance(e, If0):
        return If0(jit_rewrite(e.cond), jit_rewrite(e.then),
                   jit_rewrite(e.els))
    if isinstance(e, StackLam):
        return StackLam(e.params, jit_rewrite(e.body), e.phi_in, e.phi_out)
    if isinstance(e, Lam):
        return Lam(e.params, jit_rewrite(e.body))
    if isinstance(e, App):
        return App(jit_rewrite(e.fn),
                   tuple(jit_rewrite(a) for a in e.args))
    if isinstance(e, Fold):
        return Fold(e.ann, jit_rewrite(e.body))
    if isinstance(e, Unfold):
        return Unfold(jit_rewrite(e.body))
    if isinstance(e, TupleE):
        return TupleE(tuple(jit_rewrite(x) for x in e.items))
    if isinstance(e, Proj):
        return Proj(e.index, jit_rewrite(e.body))
    return e  # boundaries and other leaves are left untouched

"""T: FunTAL's compositional stack-based typed assembly language (sec 3).

Public surface:

* :mod:`repro.tal.syntax` -- all syntactic categories (paper Fig 1);
* :mod:`repro.tal.typecheck` -- the type system (paper Fig 2);
* :mod:`repro.tal.machine` -- the small-step machine and trace events;
* :mod:`repro.tal.subst`, :mod:`repro.tal.equality`,
  :mod:`repro.tal.subtyping`, :mod:`repro.tal.wellformed`,
  :mod:`repro.tal.retmarker` -- the auxiliary judgments.
"""

from repro.tal.syntax import (  # noqa: F401
    Aop, Balloc, Bnz, BOX, Call, CodeType, Component, DeltaBind, Fold, Halt,
    HCode, HeapTy, HTuple, InstrSeq, Jmp, Ld, Loc, Mv, NIL_STACK, Pack,
    QEnd, QEps, QIdx, QOut, QReg, RA, Ralloc, REF, RegFileTy, RegOp, Ret,
    Salloc, Sfree, Sld, Sst, St, StackTy, TBox, TExists, TInt, TRec, TRef,
    TupleTy, TUnit, TVar, TyApp, UnfoldI, Unpack, WInt, WLoc, WUnit, seq,
)
from repro.tal.typecheck import (  # noqa: F401
    check_component, check_program, InstrState, TalTypechecker,
)
from repro.tal.machine import (  # noqa: F401
    HaltedState, run_component, TalMachine, TraceEvent,
)
from repro.tal.heap import Memory  # noqa: F401

"""Capture-avoiding type substitution over all T syntactic categories.

Instantiation of a code block ``forall[Delta].{chi; sigma} q`` replaces each
binder of ``Delta`` with an ``omega`` (a value type for ``alpha``, a stack
type for ``zeta``, or a return marker for ``eps``).  The typechecker performs
these substitutions symbolically (e.g. ``chi[sigma_0/zeta][end{...}/eps]`` in
the ``call`` rules of paper Fig 2) and the machine performs them at jump time.

A :class:`Subst` maps ``(kind, name)`` keys to omegas.  Substitution descends
through types, stack types, return markers, register-file typings, operands,
instructions, heap values, and whole components, renaming binders
(``exists``/``mu`` types, code-block ``Delta``s, ``unpack``) when they would
capture a free variable of the substitution's range.

FT-only instructions (``import``, ``protect``) participate via the handler
registries :func:`register_simple_instr` and :func:`register_binding_instr`,
populated by :mod:`repro.ft.syntax` -- pure-T code never sees them.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Optional, Set, Tuple, Union

from repro.caching import LRUCache
from repro.tal.syntax import (
    Aop, Balloc, Bnz, Call, CodeType, Component, Delta, DeltaBind, Fold, Halt,
    HCode, HeapValType, HeapValue, HTuple, InstrSeq, Instruction, Jmp,
    KIND_ALPHA, KIND_EPS, KIND_ZETA, Ld, Loc, Mv, Operand, Pack, QEnd, QEps,
    QIdx, QOut, QReg, Ralloc, RegFileTy, RegOp, Ret, RetMarker, Salloc,
    Sfree, Sld, Sst, St, StackTy, TalType, TBox, Terminator, TExists, TInt,
    TRec, TRef, TupleTy, TUnit, TVar, TyApp, UnfoldI, Unpack, WInt, WLoc,
    WUnit, intern_ty,
)

__all__ = [
    "Omega", "Subst", "subst_ty", "subst_psi", "subst_stack", "subst_chi",
    "subst_q", "subst_operand", "subst_instr", "subst_instr_seq",
    "subst_heap_value", "subst_component", "free_type_vars",
    "register_simple_instr", "register_binding_instr", "fresh_name",
    "instantiate_code_type", "instantiate_code_block", "clear_subst_caches",
    "subst_cache_stats",
]

Omega = Union[TalType, StackTy, RetMarker]
VarKey = Tuple[str, str]  # (kind, name)

_fresh = itertools.count()


def fresh_name(base: str) -> str:
    """A globally fresh type-variable name (any kind)."""
    stem = base.split("%")[0] or "v"
    return f"{stem}%{next(_fresh)}"


class Subst:
    """An immutable finite map from ``(kind, name)`` to omegas."""

    __slots__ = ("mapping", "_key")

    def __init__(self, mapping: Optional[Dict[VarKey, Omega]] = None):
        self.mapping: Dict[VarKey, Omega] = dict(mapping or {})
        self._key: Optional[tuple] = None
        for (kind, _), omega in self.mapping.items():
            expected = {KIND_ALPHA: TalType, KIND_ZETA: StackTy,
                        KIND_EPS: RetMarker}.get(kind)
            if expected is not None and not isinstance(omega, expected):
                raise TypeError(
                    f"substitution for kind {kind!r} must be "
                    f"{expected.__name__}, got {omega!r}")

    def key(self) -> tuple:
        """A hashable structural identity for cache keys (computed once;
        all omegas are frozen hashable nodes)."""
        if self._key is None:
            self._key = tuple(sorted(self.mapping.items(),
                                     key=lambda kv: kv[0]))
        return self._key

    @classmethod
    def single(cls, kind: str, name: str, omega: Omega) -> "Subst":
        return cls({(kind, name): omega})

    def get(self, kind: str, name: str) -> Optional[Omega]:
        return self.mapping.get((kind, name))

    def without(self, keys) -> "Subst":
        trimmed = {k: v for k, v in self.mapping.items() if k not in set(keys)}
        return Subst(trimmed)

    def is_empty(self) -> bool:
        return not self.mapping

    def range_free_vars(self) -> Set[VarKey]:
        acc: Set[VarKey] = set()
        for omega in self.mapping.values():
            acc |= free_type_vars(omega)
        return acc

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}: {v}" for k, v in self.mapping.items())
        return f"Subst({{{inner}}})"


# ---------------------------------------------------------------------------
# Free type variables
# ---------------------------------------------------------------------------

_FTV_INSTR_HOOKS: Dict[type, Callable] = {}


def free_type_vars(x) -> Set[VarKey]:
    """Free ``(kind, name)`` type variables of any T syntactic object."""
    if isinstance(x, TVar):
        return {(KIND_ALPHA, x.name)}
    if isinstance(x, (TUnit, TInt)):
        return set()
    if isinstance(x, (TExists, TRec)):
        return free_type_vars(x.body) - {(KIND_ALPHA, x.var)}
    if isinstance(x, TRef):
        return _union(free_type_vars(t) for t in x.items)
    if isinstance(x, TBox):
        return free_type_vars(x.psi)
    if isinstance(x, TupleTy):
        return _union(free_type_vars(t) for t in x.items)
    if isinstance(x, CodeType):
        bound = {(b.kind, b.name) for b in x.delta}
        inner = (free_type_vars(x.chi) | free_type_vars(x.sigma)
                 | free_type_vars(x.q))
        return inner - bound
    if isinstance(x, StackTy):
        acc = _union(free_type_vars(t) for t in x.prefix)
        if x.tail is not None:
            acc |= {(KIND_ZETA, x.tail)}
        return acc
    if isinstance(x, RegFileTy):
        return _union(free_type_vars(t) for _, t in x.items())
    if isinstance(x, QEps):
        return {(KIND_EPS, x.name)}
    if isinstance(x, (QReg, QIdx, QOut)):
        return set()
    if isinstance(x, QEnd):
        return free_type_vars(x.ty) | free_type_vars(x.sigma)
    if isinstance(x, (WUnit, WInt, WLoc, RegOp)):
        return set()
    if isinstance(x, Pack):
        return (free_type_vars(x.hidden) | free_type_vars(x.body)
                | free_type_vars(x.as_ty))
    if isinstance(x, Fold):
        return free_type_vars(x.as_ty) | free_type_vars(x.body)
    if isinstance(x, TyApp):
        return free_type_vars(x.body) | _union(
            free_type_vars(o) for o in x.insts)
    if isinstance(x, InstrSeq):
        return _ftv_instr_seq(x)
    if isinstance(x, Instruction):
        return _ftv_instruction(x)
    if isinstance(x, Terminator):
        return _ftv_terminator(x)
    if isinstance(x, HTuple):
        return _union(free_type_vars(w) for w in x.words)
    if isinstance(x, HCode):
        bound = {(b.kind, b.name) for b in x.delta}
        inner = (free_type_vars(x.chi) | free_type_vars(x.sigma)
                 | free_type_vars(x.q) | free_type_vars(x.instrs))
        return inner - bound
    if isinstance(x, Component):
        acc = free_type_vars(x.instrs)
        for _, h in x.heap:
            acc |= free_type_vars(h)
        return acc
    raise TypeError(f"free_type_vars: unsupported {type(x).__name__}")


def _union(parts) -> Set[VarKey]:
    acc: Set[VarKey] = set()
    for p in parts:
        acc |= p
    return acc


def _ftv_instruction(i: Instruction) -> Set[VarKey]:
    hook = _FTV_INSTR_HOOKS.get(type(i))
    if hook is not None:
        return hook(i)
    if isinstance(i, Aop):
        return free_type_vars(i.u)
    if isinstance(i, (Bnz,)):
        return free_type_vars(i.u)
    if isinstance(i, (Ld, St, Ralloc, Balloc, Salloc, Sfree, Sld, Sst)):
        return set()
    if isinstance(i, Mv):
        return free_type_vars(i.u)
    if isinstance(i, Unpack):
        # alpha scopes over the *rest of the sequence*, not over i.u.
        return free_type_vars(i.u)
    if isinstance(i, UnfoldI):
        return free_type_vars(i.u)
    raise TypeError(f"free_type_vars: unknown instruction {type(i).__name__}")


def _ftv_terminator(t: Terminator) -> Set[VarKey]:
    if isinstance(t, Jmp):
        return free_type_vars(t.u)
    if isinstance(t, Call):
        return (free_type_vars(t.u) | free_type_vars(t.sigma)
                | free_type_vars(t.q))
    if isinstance(t, Ret):
        return set()
    if isinstance(t, Halt):
        return free_type_vars(t.ty) | free_type_vars(t.sigma)
    raise TypeError(f"free_type_vars: unknown terminator {type(t).__name__}")


def _ftv_instr_seq(iseq: InstrSeq) -> Set[VarKey]:
    if not iseq.instrs:
        return _ftv_terminator(iseq.term)
    head, rest = iseq.instrs[0], iseq.rest
    acc = _ftv_instruction(head)
    rest_fvs = _ftv_instr_seq(rest)
    binder = binding_of(head)
    if binder is not None:
        rest_fvs = rest_fvs - {binder}
    return acc | rest_fvs


_BINDING_OF_HOOKS: Dict[type, Callable] = {}


def binding_of(i: Instruction) -> Optional[VarKey]:
    """The type variable (if any) that ``i`` binds in the rest of its sequence."""
    hook = _BINDING_OF_HOOKS.get(type(i))
    if hook is not None:
        return hook(i)
    if isinstance(i, Unpack):
        return (KIND_ALPHA, i.alpha)
    return None


# ---------------------------------------------------------------------------
# Substitution proper
# ---------------------------------------------------------------------------

#: Missing-entry sentinel for the LRU lookups (None is a valid value).
_MISS = object()

#: Memo for :func:`subst_ty`, keyed ``(type, substitution identity)``.
#: Results are interned, so a cache hit also hands back the *identical*
#: object every time -- the ``a is b`` fast path of
#: :func:`repro.tal.equality.types_equal` then short-circuits.  Bounded:
#: a cold miss just recomputes, so eviction can never change semantics.
_TY_CACHE = LRUCache(4096, metric_prefix="tal.subst.cache.ty")


def subst_ty(ty: TalType, s: Subst) -> TalType:
    if s.is_empty():
        return ty
    key = (ty, s.key())
    hit = _TY_CACHE.get(key, _MISS)
    if hit is not _MISS:
        return hit
    result = intern_ty(_subst_ty_uncached(ty, s))
    _TY_CACHE.put(key, result)
    return result


def _subst_ty_uncached(ty: TalType, s: Subst) -> TalType:
    # Recursive positions call the cached subst_ty, so shared subterms
    # are memoized independently of their parents.
    if isinstance(ty, TVar):
        hit = s.get(KIND_ALPHA, ty.name)
        return hit if hit is not None else ty  # type: ignore[return-value]
    if isinstance(ty, (TUnit, TInt)):
        return ty
    if isinstance(ty, TExists):
        var, body, s2 = _under_alpha_binder(ty.var, ty.body, s)
        return TExists(var, subst_ty(body, s2))
    if isinstance(ty, TRec):
        var, body, s2 = _under_alpha_binder(ty.var, ty.body, s)
        return TRec(var, subst_ty(body, s2))
    if isinstance(ty, TRef):
        return TRef(tuple(subst_ty(t, s) for t in ty.items))
    if isinstance(ty, TBox):
        return TBox(subst_psi(ty.psi, s))
    raise TypeError(f"subst_ty: unsupported {type(ty).__name__}")


def _under_alpha_binder(var: str, body: TalType, s: Subst):
    key = (KIND_ALPHA, var)
    s2 = s.without([key])
    if key in s2.range_free_vars():
        fresh = fresh_name(var)
        body = subst_ty(body, Subst.single(KIND_ALPHA, var, TVar(fresh)))
        return fresh, body, s2
    return var, body, s2


def subst_psi(psi: HeapValType, s: Subst) -> HeapValType:
    if s.is_empty():
        return psi
    if isinstance(psi, TupleTy):
        return TupleTy(tuple(subst_ty(t, s) for t in psi.items))
    if isinstance(psi, CodeType):
        delta, s2 = _freshen_delta(psi.delta, s)
        ren = _delta_renaming(psi.delta, delta)
        chi = subst_chi(subst_chi(psi.chi, ren), s2)
        sigma = subst_stack(subst_stack(psi.sigma, ren), s2)
        q = subst_q(subst_q(psi.q, ren), s2)
        return CodeType(delta, chi, sigma, q)
    raise TypeError(f"subst_psi: unsupported {type(psi).__name__}")


def _freshen_delta(delta: Delta, s: Subst) -> Tuple[Delta, Subst]:
    """Drop bound keys from ``s``; rename binders that would capture."""
    bound = [(b.kind, b.name) for b in delta]
    s2 = s.without(bound)
    danger = s2.range_free_vars()
    new_delta = []
    for b in delta:
        if (b.kind, b.name) in danger:
            new_delta.append(DeltaBind(b.kind, fresh_name(b.name)))
        else:
            new_delta.append(b)
    return tuple(new_delta), s2


def _delta_renaming(old: Delta, new: Delta) -> Subst:
    mapping: Dict[VarKey, Omega] = {}
    for ob, nb in zip(old, new):
        if ob.name == nb.name:
            continue
        if ob.kind == KIND_ALPHA:
            mapping[(KIND_ALPHA, ob.name)] = TVar(nb.name)
        elif ob.kind == KIND_ZETA:
            mapping[(KIND_ZETA, ob.name)] = StackTy((), nb.name)
        elif ob.kind == KIND_EPS:
            mapping[(KIND_EPS, ob.name)] = QEps(nb.name)
    return Subst(mapping)


def subst_stack(sigma: StackTy, s: Subst) -> StackTy:
    if s.is_empty():
        return sigma
    prefix = tuple(subst_ty(t, s) for t in sigma.prefix)
    if sigma.tail is not None:
        hit = s.get(KIND_ZETA, sigma.tail)
        if hit is not None:
            assert isinstance(hit, StackTy)
            return StackTy(prefix, sigma.tail).with_tail(hit)
    return StackTy(prefix, sigma.tail)


def subst_chi(chi: RegFileTy, s: Subst) -> RegFileTy:
    if s.is_empty():
        return chi
    return RegFileTy(tuple((r, subst_ty(t, s)) for r, t in chi.items()))


def subst_q(q: RetMarker, s: Subst) -> RetMarker:
    if s.is_empty():
        return q
    if isinstance(q, QEps):
        hit = s.get(KIND_EPS, q.name)
        return hit if hit is not None else q  # type: ignore[return-value]
    if isinstance(q, (QReg, QIdx, QOut)):
        return q
    if isinstance(q, QEnd):
        return QEnd(subst_ty(q.ty, s), subst_stack(q.sigma, s))
    raise TypeError(f"subst_q: unsupported {type(q).__name__}")


def subst_omega(omega: Omega, s: Subst) -> Omega:
    if isinstance(omega, TalType):
        return subst_ty(omega, s)
    if isinstance(omega, StackTy):
        return subst_stack(omega, s)
    if isinstance(omega, RetMarker):
        return subst_q(omega, s)
    raise TypeError(f"subst_omega: unsupported {type(omega).__name__}")


def subst_operand(u: Operand, s: Subst) -> Operand:
    if s.is_empty():
        return u
    if isinstance(u, (WUnit, WInt, WLoc, RegOp)):
        return u
    if isinstance(u, Pack):
        return Pack(subst_ty(u.hidden, s), subst_operand(u.body, s),
                    subst_ty(u.as_ty, s))
    if isinstance(u, Fold):
        return Fold(subst_ty(u.as_ty, s), subst_operand(u.body, s))
    if isinstance(u, TyApp):
        return TyApp(subst_operand(u.body, s),
                     tuple(subst_omega(o, s) for o in u.insts))
    raise TypeError(f"subst_operand: unsupported {type(u).__name__}")


# FT instruction hooks: simple (no binding) and binding (scopes over rest).
_SIMPLE_INSTR_HOOKS: Dict[type, Callable] = {}
_BINDING_INSTR_HOOKS: Dict[type, Callable] = {}


def register_simple_instr(cls: type, subst_fn: Callable, ftv_fn: Callable) -> None:
    """Register substitution/ftv for a non-binding FT instruction class."""
    _SIMPLE_INSTR_HOOKS[cls] = subst_fn
    _FTV_INSTR_HOOKS[cls] = ftv_fn


def register_binding_instr(cls: type, subst_fn: Callable, ftv_fn: Callable,
                           binding_fn: Callable) -> None:
    """Register an FT instruction that binds a type variable in the rest of
    its sequence (``protect``).  ``subst_fn(instr, rest, s)`` must return a
    ``(new_instr, new_rest)`` pair and is responsible for recursing into
    ``rest`` via :func:`subst_instr_seq`."""
    _BINDING_INSTR_HOOKS[cls] = subst_fn
    _FTV_INSTR_HOOKS[cls] = ftv_fn
    _BINDING_OF_HOOKS[cls] = binding_fn


def subst_instr(i: Instruction, s: Subst) -> Instruction:
    """Substitute in a single non-binding instruction."""
    hook = _SIMPLE_INSTR_HOOKS.get(type(i))
    if hook is not None:
        return hook(i, s)
    if isinstance(i, Aop):
        return Aop(i.op, i.rd, i.rs, subst_operand(i.u, s))
    if isinstance(i, Bnz):
        return Bnz(i.r, subst_operand(i.u, s))
    if isinstance(i, (Ld, St, Ralloc, Balloc, Salloc, Sfree, Sld, Sst)):
        return i
    if isinstance(i, Mv):
        return Mv(i.rd, subst_operand(i.u, s))
    if isinstance(i, Unpack):
        return Unpack(i.alpha, i.rd, subst_operand(i.u, s))
    if isinstance(i, UnfoldI):
        return UnfoldI(i.rd, subst_operand(i.u, s))
    raise TypeError(f"subst_instr: unknown instruction {type(i).__name__}")


def subst_terminator(t: Terminator, s: Subst) -> Terminator:
    if isinstance(t, Jmp):
        return Jmp(subst_operand(t.u, s))
    if isinstance(t, Call):
        return Call(subst_operand(t.u, s), subst_stack(t.sigma, s),
                    subst_q(t.q, s))
    if isinstance(t, Ret):
        return t
    if isinstance(t, Halt):
        return Halt(subst_ty(t.ty, s), subst_stack(t.sigma, s), t.r)
    raise TypeError(f"subst_terminator: unknown {type(t).__name__}")


def subst_instr_seq(iseq: InstrSeq, s: Subst) -> InstrSeq:
    if s.is_empty():
        return iseq
    if not iseq.instrs:
        return InstrSeq((), subst_terminator(iseq.term, s))
    head, rest = iseq.instrs[0], iseq.rest
    binding_hook = _BINDING_INSTR_HOOKS.get(type(head))
    if binding_hook is not None:
        new_head, new_rest = binding_hook(head, rest, s)
        return new_rest.cons(new_head)
    if isinstance(head, Unpack):
        new_u = subst_operand(head.u, s)
        alpha, new_rest, s_rest = _avoid_capture_in_rest(
            KIND_ALPHA, head.alpha, rest, s)
        return subst_instr_seq(new_rest, s_rest).cons(
            Unpack(alpha, head.rd, new_u))
    return subst_instr_seq(rest, s).cons(subst_instr(head, s))


def _avoid_capture_in_rest(kind: str, name: str, rest: InstrSeq, s: Subst):
    """Handle a sequence-scoped binder: the binder shadows its own name in
    ``s`` and is renamed when ``s``'s range would capture it.

    Returns ``(binder_name, rest, substitution_to_apply_to_rest)``.
    """
    key = (kind, name)
    s2 = s.without([key])
    if key in s2.range_free_vars():
        fresh = fresh_name(name)
        omega: Omega
        if kind == KIND_ALPHA:
            omega = TVar(fresh)
        elif kind == KIND_ZETA:
            omega = StackTy((), fresh)
        else:
            omega = QEps(fresh)
        rest = subst_instr_seq(rest, Subst.single(kind, name, omega))
        return fresh, rest, s2
    return name, rest, s2


def subst_heap_value(h: HeapValue, s: Subst) -> HeapValue:
    if s.is_empty():
        return h
    if isinstance(h, HTuple):
        return HTuple(tuple(subst_operand(w, s) for w in h.words))  # type: ignore[arg-type]
    if isinstance(h, HCode):
        delta, s2 = _freshen_delta(h.delta, s)
        ren = _delta_renaming(h.delta, delta)
        chi = subst_chi(subst_chi(h.chi, ren), s2)
        sigma = subst_stack(subst_stack(h.sigma, ren), s2)
        q = subst_q(subst_q(h.q, ren), s2)
        instrs = subst_instr_seq(subst_instr_seq(h.instrs, ren), s2)
        return HCode(delta, chi, sigma, q, instrs)
    raise TypeError(f"subst_heap_value: unsupported {type(h).__name__}")


def subst_component(e: Component, s: Subst) -> Component:
    if s.is_empty():
        return e
    return Component(
        subst_instr_seq(e.instrs, s),
        tuple((loc, subst_heap_value(h, s)) for loc, h in e.heap))


# ---------------------------------------------------------------------------
# Code-block instantiation (shared by typechecker and machine)
# ---------------------------------------------------------------------------

def delta_subst(delta: Delta, omegas: Tuple[Omega, ...]) -> Subst:
    """Match a prefix of ``delta`` against ``omegas``, kind-checking each."""
    if len(omegas) > len(delta):
        raise ValueError(
            f"too many instantiations: {len(omegas)} for Delta of "
            f"length {len(delta)}")
    mapping: Dict[VarKey, Omega] = {}
    for b, omega in zip(delta, omegas):
        expected = {KIND_ALPHA: TalType, KIND_ZETA: StackTy,
                    KIND_EPS: RetMarker}[b.kind]
        if not isinstance(omega, expected):
            raise TypeError(
                f"instantiating {b.kind} {b.name} requires a "
                f"{expected.__name__}, got {omega}")
        mapping[(b.kind, b.name)] = omega
    return Subst(mapping)


#: Memos for code-type/block instantiation, keyed ``(id(node), omegas)``
#: and storing ``(node, result)``.  Keying on identity skips the O(size)
#: structural hash of a whole code block per jump; storing the node
#: itself both pins its id against reuse after garbage collection and
#: lets the lookup validate the hit with an ``is`` check.
_CTYPE_CACHE = LRUCache(2048, metric_prefix="tal.subst.cache.ctype")
_BLOCK_CACHE = LRUCache(2048, metric_prefix="tal.subst.cache.block")


def instantiate_code_type(ct: CodeType,
                          omegas: Tuple[Omega, ...]) -> CodeType:
    """Apply a (possibly partial, left-to-right) instantiation to ``ct``."""
    key = (id(ct), omegas)
    hit = _CTYPE_CACHE.get(key)
    if hit is not None and hit[0] is ct:
        return hit[1]
    s = delta_subst(ct.delta, omegas)
    remaining = ct.delta[len(omegas):]
    result = CodeType(remaining, subst_chi(ct.chi, s),
                      subst_stack(ct.sigma, s), subst_q(ct.q, s))
    _CTYPE_CACHE.put(key, (ct, result))
    return result


def instantiate_code_block(h: HCode, omegas: Tuple[Omega, ...]) -> HCode:
    """Apply an instantiation to a code block (used at jump time).

    Memoized: a loop jumping to the same block with the same omegas (the
    Fig 17 factorial pattern) pays the substitution once.  The cached
    block is alpha-equivalent on every later hit -- any binders freshened
    during the first substitution keep their (bound, hence clash-free)
    names instead of being re-freshened per jump.
    """
    key = (id(h), omegas)
    hit = _BLOCK_CACHE.get(key)
    if hit is not None and hit[0] is h:
        return hit[1]
    s = delta_subst(h.delta, omegas)
    remaining = h.delta[len(omegas):]
    result = HCode(remaining, subst_chi(h.chi, s), subst_stack(h.sigma, s),
                   subst_q(h.q, s), subst_instr_seq(h.instrs, s))
    _BLOCK_CACHE.put(key, (h, result))
    return result


def clear_subst_caches() -> None:
    """Drop every substitution/instantiation memo (tests, benchmarks)."""
    _TY_CACHE.clear()
    _CTYPE_CACHE.clear()
    _BLOCK_CACHE.clear()


def subst_cache_stats() -> Dict[str, Dict[str, int]]:
    """Hit/miss/eviction stats of the three memos, by counter family."""
    return {
        "tal.subst.cache.ty": _TY_CACHE.stats(),
        "tal.subst.cache.ctype": _CTYPE_CACHE.stats(),
        "tal.subst.cache.block": _BLOCK_CACHE.stats(),
    }

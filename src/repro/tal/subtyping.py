"""Register-file subtyping ``Delta |- chi <= chi'`` (paper section 3).

The jump rules allow the *current* register file to be richer than the
target block's precondition: "we can have more registers with values in
them, but the types of registers that occur in chi' must match".  Register
types themselves are invariant (compared up to alpha-equivalence) -- T has
width subtyping on register files only, exactly as in STAL.
"""

from __future__ import annotations

from repro.errors import FTTypeError
from repro.tal.equality import types_equal
from repro.tal.syntax import Delta, RegFileTy

__all__ = ["check_regfile_subtype", "is_regfile_subtype"]


def is_regfile_subtype(chi: RegFileTy, chi_expected: RegFileTy) -> bool:
    """``chi <= chi_expected``: every register demanded by the target is
    present with an alpha-equal type."""
    for reg, expected_ty in chi_expected.items():
        actual_ty = chi.get(reg)
        if actual_ty is None or not types_equal(actual_ty, expected_ty):
            return False
    return True


def check_regfile_subtype(delta: Delta, chi: RegFileTy,
                          chi_expected: RegFileTy) -> None:
    """Raise :class:`FTTypeError` unless ``Delta |- chi <= chi_expected``."""
    for reg, expected_ty in chi_expected.items():
        actual_ty = chi.get(reg)
        if actual_ty is None:
            raise FTTypeError(
                f"register {reg} required at type {expected_ty} but absent "
                f"from chi = {chi}", judgment="tal.chi-subtype",
                subject=str(chi_expected))
        if not types_equal(actual_ty, expected_ty):
            raise FTTypeError(
                f"register {reg} has type {actual_ty} but the target "
                f"expects {expected_ty}", judgment="tal.chi-subtype",
                subject=str(chi_expected))

"""Abstract syntax of T, FunTAL's compositional typed assembly (paper Fig 1).

T is a stack-based typed assembly language in the style of STAL
(Morrisett et al. 2002) extended with the paper's central novelty: *return
markers* ``q`` on code-pointer types, which record where the current return
continuation lives, and a notion of multi-block *component* ``(I, H)``.

Syntactic categories reproduced here::

    value type       tau ::= alpha | unit | int | exists a.tau | mu a.tau
                           | ref <tau...> | box psi
    word value       w   ::= () | n | loc | pack<tau,w> as t | fold[t] w | w[omega]
    register         r   ::= r1..r7 | ra
    small value      u   ::= w | r | pack<tau,u> as t | fold[t] u | u[omega]
    instantiation    omega ::= tau | sigma | q
    heap value type  psi ::= forall[Delta].{chi; sigma} q | <tau...>
    heap value       h   ::= code[Delta]{chi; sigma} q. I | <w...>
    register typing  chi ::= . | chi, r: tau
    stack typing     sigma ::= zeta | nil | tau :: sigma
    return marker    q ::= r | i | eps | end{tau; sigma}     (FT adds: out)
    type env         Delta ::= . | Delta, a | Delta, zeta | Delta, eps
    heap typing      Psi ::= . | Psi, loc : nu psi      nu ::= ref | box
    instr seq        I ::= iota; I | jmp u | call u {sigma, q}
                         | ret r {r'} | halt tau, sigma {r}
    component        e ::= (I, H)

All nodes are immutable dataclasses with structural equality; *semantic*
type equality is alpha-equivalence, implemented in
:mod:`repro.tal.equality`.  Capture-avoiding substitution of ``omega`` for
type variables is in :mod:`repro.tal.subst`.

The two FT-only instructions (``import`` and ``protect``, paper Fig 6)
subclass :class:`Instruction` in :mod:`repro.ft.syntax` so that pure-T
tooling remains unaware of them.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Tuple, Union

from repro.caching import InternTable, PicklableSlots, intern_singleton

__all__ = [
    # registers & locations
    "REGISTERS", "GP_REGISTERS", "RA", "check_register", "Loc", "fresh_loc",
    "fresh_mark", "advance_fresh",
    # types
    "TalType", "TVar", "TUnit", "TInt", "TExists", "TRec", "TRef", "TBox",
    "intern_ty",
    "HeapValType", "CodeType", "TupleTy",
    # stack types, register typings, return markers, type envs, heap typings
    "StackTy", "NIL_STACK", "RegFileTy", "RetMarker", "QReg", "QIdx", "QEps",
    "QEnd", "QOut", "DeltaBind", "Delta", "delta_contains", "delta_names",
    "HeapTy",
    # word/small values
    "WordValue", "Operand", "WUnit", "WInt", "WLoc", "Pack",
    "Fold", "TyApp", "RegOp", "is_word_value",
    # instructions
    "Instruction", "Aop", "Bnz", "Ld", "St", "Ralloc", "Balloc", "Mv",
    "Salloc", "Sfree", "Sld", "Sst", "Unpack", "UnfoldI",
    "Terminator", "Jmp", "Call", "Ret", "Halt",
    "InstrSeq", "HeapValue", "HCode", "HTuple", "Component", "seq",
    "AOP_NAMES",
]

# ---------------------------------------------------------------------------
# Registers and locations
# ---------------------------------------------------------------------------

GP_REGISTERS: Tuple[str, ...] = tuple(f"r{i}" for i in range(1, 8))
RA = "ra"
REGISTERS: Tuple[str, ...] = GP_REGISTERS + (RA,)

AOP_NAMES = ("add", "sub", "mul")


def check_register(r: str) -> str:
    """Validate a register name, returning it."""
    if r not in REGISTERS:
        raise ValueError(f"unknown register {r!r}; registers are {REGISTERS}")
    return r


_loc_counter = itertools.count()


@dataclass(frozen=True, slots=True)
class Loc(PicklableSlots):
    """A heap location / code label ``loc`` (written ``ℓ`` in the paper)."""

    name: str

    def __str__(self) -> str:
        return self.name


def fresh_loc(base: str = "l") -> Loc:
    """A globally fresh heap location, used when merging component heaps."""
    stem = base.split("%")[0] or "l"
    return Loc(f"{stem}%{next(_loc_counter)}")


def fresh_mark() -> int:
    """The fresh-location counter's current position, without minting.

    Machine checkpoints record this so that a snapshot revived in a
    different process can advance its local counter past every location
    already named inside the revived state.
    """
    global _loc_counter
    mark = next(_loc_counter)
    _loc_counter = itertools.count(mark)
    return mark


def advance_fresh(mark: int) -> None:
    """Ensure future :func:`fresh_loc` names are numbered >= ``mark``."""
    global _loc_counter
    if mark > fresh_mark():
        _loc_counter = itertools.count(mark)


# ---------------------------------------------------------------------------
# Value types tau and heap-value types psi
# ---------------------------------------------------------------------------

class TalType(PicklableSlots):
    """Base class of T value types ``tau``."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class TVar(TalType):
    """A value-type variable ``alpha``."""

    name: str

    def __str__(self) -> str:
        return self.name


@intern_singleton
@dataclass(frozen=True, slots=True)
class TUnit(TalType):
    def __str__(self) -> str:
        return "unit"


@intern_singleton
@dataclass(frozen=True, slots=True)
class TInt(TalType):
    def __str__(self) -> str:
        return "int"


@dataclass(frozen=True, slots=True)
class TExists(TalType):
    """An existential type ``exists alpha. tau``."""

    var: str
    body: TalType

    def __str__(self) -> str:
        return f"exists {self.var}. {self.body}"


@dataclass(frozen=True, slots=True)
class TRec(TalType):
    """An iso-recursive type ``mu alpha. tau``."""

    var: str
    body: TalType

    def __str__(self) -> str:
        return f"mu {self.var}. {self.body}"


@dataclass(frozen=True, slots=True)
class TRef(TalType):
    """A *mutable* tuple reference ``ref <tau_0, ..., tau_n>``."""

    items: Tuple[TalType, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "items", tuple(self.items))

    def __str__(self) -> str:
        return "ref <" + ", ".join(str(t) for t in self.items) + ">"


@dataclass(frozen=True, slots=True)
class TBox(TalType):
    """An *immutable* pointer ``box psi`` (code is always boxed)."""

    psi: "HeapValType"

    def __str__(self) -> str:
        return f"box {self.psi}"


class HeapValType(PicklableSlots):
    """Base class of heap-value types ``psi``."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class TupleTy(HeapValType):
    """A heap tuple type ``<tau_0, ..., tau_n>``."""

    items: Tuple[TalType, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "items", tuple(self.items))

    def __str__(self) -> str:
        return "<" + ", ".join(str(t) for t in self.items) + ">"


#: Hash-cons table for T types; see :func:`intern_ty`.
_TY_INTERN = InternTable()


def intern_ty(ty: TalType) -> TalType:
    """The canonical instance of a structurally-equal T type.  Purely an
    optimization: the substitution caches intern their results so that
    repeated instantiations return *identical* objects and
    :func:`repro.tal.equality.types_equal` hits its ``a is b`` fast
    path."""
    return _TY_INTERN.canon(ty)


# ---------------------------------------------------------------------------
# Type environments Delta
# ---------------------------------------------------------------------------

#: Binding kinds in a type environment.
KIND_ALPHA = "alpha"   # T value-type variable
KIND_ZETA = "zeta"     # stack-type variable
KIND_EPS = "eps"       # return-marker variable
KIND_FALPHA = "falpha"  # F type variable (multi-language Delta, Fig 6)

_KINDS = (KIND_ALPHA, KIND_ZETA, KIND_EPS, KIND_FALPHA)
_KIND_SIGIL = {KIND_ALPHA: "", KIND_ZETA: "zeta ", KIND_EPS: "eps ",
               KIND_FALPHA: "F "}


@dataclass(frozen=True, slots=True)
class DeltaBind(PicklableSlots):
    """One binding in a type environment: a variable name plus its kind."""

    kind: str
    name: str

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown binding kind {self.kind!r}")

    def __str__(self) -> str:
        return f"{_KIND_SIGIL[self.kind]}{self.name}"


Delta = Tuple[DeltaBind, ...]


def delta_contains(delta: Delta, kind: str, name: str) -> bool:
    """Does ``delta`` bind ``name`` at ``kind``?"""
    return any(b.kind == kind and b.name == name for b in delta)


def delta_names(delta: Delta) -> frozenset:
    return frozenset(b.name for b in delta)


def _format_delta(delta: Delta) -> str:
    return ", ".join(str(b) for b in delta)


# ---------------------------------------------------------------------------
# Stack typings sigma
# ---------------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class StackTy(PicklableSlots):
    """A stack typing ``tau_0 :: ... :: tau_{n-1} :: tail``.

    ``prefix`` lists the exposed slot types, *top of stack first*; ``tail``
    is either a stack-variable name ``zeta`` or ``None`` for the empty stack
    ``nil`` (the paper's bullet).
    """

    prefix: Tuple[TalType, ...] = ()
    tail: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "prefix", tuple(self.prefix))

    def __str__(self) -> str:
        parts = [str(t) for t in self.prefix]
        parts.append(self.tail if self.tail is not None else "nil")
        return " :: ".join(parts)

    # -- structural helpers -------------------------------------------------

    def cons(self, *types: TalType) -> "StackTy":
        """Push ``types`` (leftmost ends up on top)."""
        return StackTy(tuple(types) + self.prefix, self.tail)

    def slot(self, i: int) -> TalType:
        """The type of exposed slot ``i`` (0 = top)."""
        if not 0 <= i < len(self.prefix):
            raise IndexError(
                f"stack slot {i} is not exposed in {self}")
        return self.prefix[i]

    def has_slot(self, i: int) -> bool:
        return 0 <= i < len(self.prefix)

    def drop(self, n: int) -> "StackTy":
        """Remove the top ``n`` exposed slots."""
        if n > len(self.prefix):
            raise IndexError(f"cannot drop {n} slots from {self}")
        return StackTy(self.prefix[n:], self.tail)

    def set_slot(self, i: int, ty: TalType) -> "StackTy":
        """Replace the type of exposed slot ``i``."""
        if not 0 <= i < len(self.prefix):
            raise IndexError(f"stack slot {i} is not exposed in {self}")
        new = list(self.prefix)
        new[i] = ty
        return StackTy(tuple(new), self.tail)

    @property
    def depth(self) -> int:
        """Number of exposed slots (the abstract tail is unbounded)."""
        return len(self.prefix)

    def with_tail(self, tail_sigma: "StackTy") -> "StackTy":
        """Replace an abstract tail by ``tail_sigma`` (i.e. sigma[tail'/zeta])."""
        if self.tail is None:
            raise ValueError(f"stack type {self} has no abstract tail")
        return StackTy(self.prefix + tail_sigma.prefix, tail_sigma.tail)


NIL_STACK = StackTy((), None)


# ---------------------------------------------------------------------------
# Register-file typings chi
# ---------------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class RegFileTy(PicklableSlots):
    """A register-file typing ``chi`` mapping registers to value types.

    Stored as a canonically-sorted tuple of pairs so that instances hash and
    compare structurally; use :meth:`get` / :meth:`set` / :meth:`without` for
    functional updates.
    """

    entries: Tuple[Tuple[str, TalType], ...] = ()

    def __post_init__(self) -> None:
        canon = tuple(sorted(self.entries, key=lambda kv: kv[0]))
        names = [r for r, _ in canon]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate register in chi: {names}")
        for r, _ in canon:
            check_register(r)
        object.__setattr__(self, "entries", canon)

    @classmethod
    def of(cls, mapping: Optional[Mapping[str, TalType]] = None,
           **kwargs: TalType) -> "RegFileTy":
        items = dict(mapping or {})
        items.update(kwargs)
        return cls(tuple(items.items()))

    def get(self, r: str) -> Optional[TalType]:
        for name, ty in self.entries:
            if name == r:
                return ty
        return None

    def set(self, r: str, ty: TalType) -> "RegFileTy":
        """``chi[r : tau]`` -- update or extend."""
        check_register(r)
        rest = tuple(kv for kv in self.entries if kv[0] != r)
        return RegFileTy(rest + ((r, ty),))

    def without(self, r: str) -> "RegFileTy":
        return RegFileTy(tuple(kv for kv in self.entries if kv[0] != r))

    def registers(self) -> Tuple[str, ...]:
        return tuple(r for r, _ in self.entries)

    def items(self) -> Tuple[Tuple[str, TalType], ...]:
        return self.entries

    def __contains__(self, r: str) -> bool:
        return any(name == r for name, _ in self.entries)

    def __str__(self) -> str:
        if not self.entries:
            return "."
        return ", ".join(f"{r}: {t}" for r, t in self.entries)


# ---------------------------------------------------------------------------
# Return markers q
# ---------------------------------------------------------------------------

class RetMarker(PicklableSlots):
    """Base class of return markers ``q`` -- where the return continuation is."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class QReg(RetMarker):
    """The return continuation is in register ``r``."""

    reg: str

    def __post_init__(self) -> None:
        check_register(self.reg)

    def __str__(self) -> str:
        return self.reg


@dataclass(frozen=True, slots=True)
class QIdx(RetMarker):
    """The return continuation is in exposed stack slot ``i``."""

    index: int

    def __str__(self) -> str:
        return str(self.index)


@dataclass(frozen=True, slots=True)
class QEps(RetMarker):
    """A return-marker variable ``eps`` (abstracted in a Delta)."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class QEnd(RetMarker):
    """``end{tau; sigma}``: this component ends by halting with a ``tau``.

    Inside an FT boundary, halting at this marker transfers the value back
    to the wrapping F context instead of ending the whole program.
    """

    ty: TalType
    sigma: StackTy

    def __str__(self) -> str:
        return f"end{{{self.ty}; {self.sigma}}}"


@intern_singleton
@dataclass(frozen=True, slots=True)
class QOut(RetMarker):
    """The FT marker ``out`` for F code, which returns by being a value.

    Defined alongside the T markers because the FT judgments treat it
    uniformly with them (paper Fig 6).
    """

    def __str__(self) -> str:
        return "out"


# ---------------------------------------------------------------------------
# Code types (need RetMarker, hence defined after it)
# ---------------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class CodeType(HeapValType):
    """A code-block type ``forall[Delta].{chi; sigma} q`` (paper section 2).

    ``chi`` and ``sigma`` are preconditions on the register file and stack
    for jumping to the block; ``q`` -- the paper's critical addition over
    STAL -- says where the block's return continuation lives.
    """

    delta: Delta
    chi: RegFileTy
    sigma: StackTy
    q: RetMarker

    def __post_init__(self) -> None:
        object.__setattr__(self, "delta", tuple(self.delta))

    def __str__(self) -> str:
        return (f"forall[{_format_delta(self.delta)}]."
                f"{{{self.chi}; {self.sigma}}} {self.q}")


# ---------------------------------------------------------------------------
# Heap typings Psi
# ---------------------------------------------------------------------------

REF = "ref"
BOX = "box"


@dataclass(frozen=True, slots=True)
class HeapTy(PicklableSlots):
    """A heap typing ``Psi`` mapping locations to ``nu psi`` entries."""

    entries: Tuple[Tuple[Loc, str, HeapValType], ...] = ()

    def __post_init__(self) -> None:
        canon = tuple(sorted(self.entries, key=lambda e: e[0].name))
        names = [loc.name for loc, _, _ in canon]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate location in Psi: {names}")
        for _, nu, _ in canon:
            if nu not in (REF, BOX):
                raise ValueError(f"unknown mutability {nu!r}")
        object.__setattr__(self, "entries", canon)

    @classmethod
    def of(cls, mapping: Mapping[Loc, Tuple[str, HeapValType]]) -> "HeapTy":
        return cls(tuple((loc, nu, psi) for loc, (nu, psi) in mapping.items()))

    def get(self, loc: Loc) -> Optional[Tuple[str, HeapValType]]:
        for name, nu, psi in self.entries:
            if name == loc:
                return (nu, psi)
        return None

    def extend(self, other: "HeapTy") -> "HeapTy":
        return HeapTy(self.entries + other.entries)

    def set(self, loc: Loc, nu: str, psi: HeapValType) -> "HeapTy":
        rest = tuple(e for e in self.entries if e[0] != loc)
        return HeapTy(rest + ((loc, nu, psi),))

    def locations(self) -> Tuple[Loc, ...]:
        return tuple(loc for loc, _, _ in self.entries)

    def __contains__(self, loc: Loc) -> bool:
        return any(name == loc for name, _, _ in self.entries)

    def __str__(self) -> str:
        if not self.entries:
            return "."
        return ", ".join(f"{loc}: {nu} {psi}" for loc, nu, psi in self.entries)


# ---------------------------------------------------------------------------
# Word values and small values
# ---------------------------------------------------------------------------

class Operand(PicklableSlots):
    """Base class of small values ``u`` (instruction operands)."""

    __slots__ = ()


class WordValue(Operand):
    """Base class of word values ``w`` (register-sized runtime values)."""

    __slots__ = ()


@intern_singleton
@dataclass(frozen=True, slots=True)
class WUnit(WordValue):
    def __str__(self) -> str:
        return "()"


@dataclass(frozen=True, slots=True)
class WInt(WordValue):
    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True, slots=True)
class WLoc(WordValue):
    loc: Loc

    def __str__(self) -> str:
        return str(self.loc)


@dataclass(frozen=True, slots=True)
class RegOp(Operand):
    """A register used as an operand (a small value that is not a word)."""

    reg: str

    def __post_init__(self) -> None:
        check_register(self.reg)

    def __str__(self) -> str:
        return self.reg


@dataclass(frozen=True, slots=True)
class Pack(Operand):
    """``pack <tau, u> as exists a. tau'`` -- also a word value when ``u`` is."""

    hidden: TalType
    body: Operand
    as_ty: TalType

    def __str__(self) -> str:
        return f"pack <{self.hidden}, {self.body}> as {self.as_ty}"


@dataclass(frozen=True, slots=True)
class Fold(Operand):
    """``fold[mu a. tau] u`` -- also a word value when ``u`` is."""

    as_ty: TalType
    body: Operand

    def __str__(self) -> str:
        return f"fold[{self.as_ty}] {self.body}"


@dataclass(frozen=True, slots=True)
class TyApp(Operand):
    """A type instantiation ``u[omega, ...]``.

    Each element of ``insts`` is a :class:`TalType`, :class:`StackTy`, or
    :class:`RetMarker` (the paper's ``omega``).
    """

    body: Operand
    insts: Tuple[object, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "insts", tuple(self.insts))
        for omega in self.insts:
            if not isinstance(omega, (TalType, StackTy, RetMarker)):
                raise TypeError(
                    f"instantiation must be a type, stack type, or return "
                    f"marker, got {omega!r}")

    def __str__(self) -> str:
        inner = ", ".join(str(i) for i in self.insts)
        return f"{self.body}[{inner}]"


def is_word_value(u: Operand) -> bool:
    """Is the small value ``u`` a word value (contains no register)?"""
    if isinstance(u, (WUnit, WInt, WLoc)):
        return True
    if isinstance(u, RegOp):
        return False
    if isinstance(u, Pack):
        return is_word_value(u.body)
    if isinstance(u, Fold):
        return is_word_value(u.body)
    if isinstance(u, TyApp):
        return is_word_value(u.body)
    raise TypeError(f"not a small value: {u!r}")


# ---------------------------------------------------------------------------
# Instructions
# ---------------------------------------------------------------------------

class Instruction(PicklableSlots):
    """Base class of single instructions ``iota``."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class Aop(Instruction):
    """``add|sub|mul rd, rs, u`` -- arithmetic into ``rd``."""

    op: str
    rd: str
    rs: str
    u: Operand

    def __post_init__(self) -> None:
        if self.op not in AOP_NAMES:
            raise ValueError(f"unknown arithmetic op {self.op!r}")
        check_register(self.rd)
        check_register(self.rs)

    def __str__(self) -> str:
        return f"{self.op} {self.rd}, {self.rs}, {self.u}"


@dataclass(frozen=True, slots=True)
class Bnz(Instruction):
    """``bnz r, u`` -- jump to ``u`` if ``r`` is non-zero."""

    r: str
    u: Operand

    def __post_init__(self) -> None:
        check_register(self.r)

    def __str__(self) -> str:
        return f"bnz {self.r}, {self.u}"


@dataclass(frozen=True, slots=True)
class Ld(Instruction):
    """``ld rd, rs[i]`` -- load field ``i`` of the tuple pointed to by ``rs``."""

    rd: str
    rs: str
    index: int

    def __post_init__(self) -> None:
        check_register(self.rd)
        check_register(self.rs)

    def __str__(self) -> str:
        return f"ld {self.rd}, {self.rs}[{self.index}]"


@dataclass(frozen=True, slots=True)
class St(Instruction):
    """``st rd[i], rs`` -- store ``rs`` into field ``i`` of the *mutable* tuple at ``rd``."""

    rd: str
    index: int
    rs: str

    def __post_init__(self) -> None:
        check_register(self.rd)
        check_register(self.rs)

    def __str__(self) -> str:
        return f"st {self.rd}[{self.index}], {self.rs}"


@dataclass(frozen=True, slots=True)
class Ralloc(Instruction):
    """``ralloc rd, n`` -- move the top ``n`` stack cells into a fresh *mutable* tuple."""

    rd: str
    n: int

    def __post_init__(self) -> None:
        check_register(self.rd)

    def __str__(self) -> str:
        return f"ralloc {self.rd}, {self.n}"


@dataclass(frozen=True, slots=True)
class Balloc(Instruction):
    """``balloc rd, n`` -- like ``ralloc`` but the tuple is *immutable* (boxed)."""

    rd: str
    n: int

    def __post_init__(self) -> None:
        check_register(self.rd)

    def __str__(self) -> str:
        return f"balloc {self.rd}, {self.n}"


@dataclass(frozen=True, slots=True)
class Mv(Instruction):
    """``mv rd, u`` -- move a small value into ``rd``."""

    rd: str
    u: Operand

    def __post_init__(self) -> None:
        check_register(self.rd)

    def __str__(self) -> str:
        return f"mv {self.rd}, {self.u}"


@dataclass(frozen=True, slots=True)
class Salloc(Instruction):
    """``salloc n`` -- push ``n`` unit-initialized stack cells."""

    n: int

    def __str__(self) -> str:
        return f"salloc {self.n}"


@dataclass(frozen=True, slots=True)
class Sfree(Instruction):
    """``sfree n`` -- pop ``n`` stack cells."""

    n: int

    def __str__(self) -> str:
        return f"sfree {self.n}"


@dataclass(frozen=True, slots=True)
class Sld(Instruction):
    """``sld rd, i`` -- load stack slot ``i`` (0 = top) into ``rd``."""

    rd: str
    index: int

    def __post_init__(self) -> None:
        check_register(self.rd)

    def __str__(self) -> str:
        return f"sld {self.rd}, {self.index}"


@dataclass(frozen=True, slots=True)
class Sst(Instruction):
    """``sst i, rs`` -- store ``rs`` into stack slot ``i`` (0 = top)."""

    index: int
    rs: str

    def __post_init__(self) -> None:
        check_register(self.rs)

    def __str__(self) -> str:
        return f"sst {self.index}, {self.rs}"


@dataclass(frozen=True, slots=True)
class Unpack(Instruction):
    """``unpack <alpha, rd> u`` -- open an existential package into ``rd``,
    binding ``alpha`` for the rest of the sequence."""

    alpha: str
    rd: str
    u: Operand

    def __post_init__(self) -> None:
        check_register(self.rd)

    def __str__(self) -> str:
        return f"unpack <{self.alpha}, {self.rd}> {self.u}"


@dataclass(frozen=True, slots=True)
class UnfoldI(Instruction):
    """``unfold rd, u`` -- unroll a recursive value into ``rd``."""

    rd: str
    u: Operand

    def __post_init__(self) -> None:
        check_register(self.rd)

    def __str__(self) -> str:
        return f"unfold {self.rd}, {self.u}"


# ---------------------------------------------------------------------------
# Terminators, instruction sequences, heap values, components
# ---------------------------------------------------------------------------

class Terminator(PicklableSlots):
    """Base class of the four instruction-sequence enders."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class Jmp(Terminator):
    """``jmp u`` -- *intra*-component jump (same return marker)."""

    u: Operand

    def __str__(self) -> str:
        return f"jmp {self.u}"


@dataclass(frozen=True, slots=True)
class Call(Terminator):
    """``call u {sigma, q}`` -- *inter*-component jump that will return.

    ``sigma`` is the stack tail to protect (instantiates the callee's zeta);
    ``q`` is the return marker handed to the callee's continuation
    (instantiates the callee's eps).
    """

    u: Operand
    sigma: StackTy
    q: RetMarker

    def __str__(self) -> str:
        return f"call {self.u} {{{self.sigma}, {self.q}}}"


@dataclass(frozen=True, slots=True)
class Ret(Terminator):
    """``ret r {r'}`` -- return to the continuation in ``r`` with the result in ``r'``."""

    r: str
    rr: str

    def __post_init__(self) -> None:
        check_register(self.r)
        check_register(self.rr)

    def __str__(self) -> str:
        return f"ret {self.r} {{{self.rr}}}"


@dataclass(frozen=True, slots=True)
class Halt(Terminator):
    """``halt tau, sigma {r}`` -- stop with a ``tau`` in ``r`` and stack ``sigma``.

    The only T instruction sequence that is a *value*; inside an FT boundary
    it transfers control back to the wrapping F context (paper Fig 8).
    """

    ty: TalType
    sigma: StackTy
    r: str

    def __post_init__(self) -> None:
        check_register(self.r)

    def __str__(self) -> str:
        return f"halt {self.ty}, {self.sigma} {{{self.r}}}"


@dataclass(frozen=True, slots=True)
class InstrSeq(PicklableSlots):
    """An instruction sequence ``I``: straight-line instructions then a terminator."""

    instrs: Tuple[Instruction, ...]
    term: Terminator

    def __post_init__(self) -> None:
        object.__setattr__(self, "instrs", tuple(self.instrs))

    def __str__(self) -> str:
        parts = [str(i) for i in self.instrs] + [str(self.term)]
        return "; ".join(parts)

    def cons(self, *instrs: Instruction) -> "InstrSeq":
        return InstrSeq(tuple(instrs) + self.instrs, self.term)

    @property
    def head(self) -> Optional[Instruction]:
        return self.instrs[0] if self.instrs else None

    @property
    def rest(self) -> "InstrSeq":
        if not self.instrs:
            raise IndexError("instruction sequence has no head")
        return InstrSeq(self.instrs[1:], self.term)


def seq(*parts) -> InstrSeq:
    """Build an :class:`InstrSeq` from instructions followed by a terminator."""
    if not parts or not isinstance(parts[-1], Terminator):
        raise ValueError("an instruction sequence must end in a terminator")
    instrs = parts[:-1]
    for i in instrs:
        if not isinstance(i, Instruction):
            raise TypeError(f"not an instruction: {i!r}")
    return InstrSeq(tuple(instrs), parts[-1])


class HeapValue(PicklableSlots):
    """Base class of heap values ``h``."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class HTuple(HeapValue):
    """A heap tuple ``<w_0, ..., w_n>``."""

    words: Tuple[WordValue, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "words", tuple(self.words))

    def __str__(self) -> str:
        return "<" + ", ".join(str(w) for w in self.words) + ">"


@dataclass(frozen=True, slots=True)
class HCode(HeapValue):
    """A code block ``code[Delta]{chi; sigma} q. I``."""

    delta: Delta
    chi: RegFileTy
    sigma: StackTy
    q: RetMarker
    instrs: InstrSeq

    def __post_init__(self) -> None:
        object.__setattr__(self, "delta", tuple(self.delta))

    def __str__(self) -> str:
        return (f"code[{_format_delta(self.delta)}]"
                f"{{{self.chi}; {self.sigma}}} {self.q}. {self.instrs}")

    @property
    def code_type(self) -> CodeType:
        """The :class:`CodeType` this block inhabits."""
        return CodeType(self.delta, self.chi, self.sigma, self.q)


@dataclass(frozen=True, slots=True)
class Component(PicklableSlots):
    """A T component ``(I, H)``: an entry sequence plus a local heap fragment.

    ``heap`` maps labels to the component's local blocks (and, rarely,
    boxed data); at runtime the machine merges it into the global heap with
    fresh renaming, so structurally distinct components never clash.
    """

    instrs: InstrSeq
    heap: Tuple[Tuple[Loc, HeapValue], ...] = ()

    def __post_init__(self) -> None:
        entries = tuple(self.heap.items()) if isinstance(self.heap, dict) \
            else tuple(self.heap)
        names = [loc.name for loc, _ in entries]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate labels in component heap: {names}")
        object.__setattr__(self, "heap", entries)

    def heap_dict(self) -> Dict[Loc, HeapValue]:
        return dict(self.heap)

    def __str__(self) -> str:
        if not self.heap:
            return f"({self.instrs}, .)"
        blocks = "; ".join(f"{loc} -> {h}" for loc, h in self.heap)
        return f"({self.instrs}, {{{blocks}}})"

"""The fast T execution tier: direct-threaded, type-erased block execution.

The reference :class:`~repro.tal.machine.TalMachine` re-substitutes a
block's instruction sequence at every jump (``instantiate_code_block``)
and dispatches every step through an ``isinstance`` chain against a dict
register file.  Erasure-compatibility (:mod:`repro.tal.erasure`) licenses
something much cheaper: a validated artifact's types can never change an
answer, so the fast tier *preinstantiates* each block once into a flat
executable form and stops consulting types at run time:

* every instruction is lowered to a **direct-threaded Python closure**
  bound to its operands (no per-step dispatch);
* registers live in a **flat list** indexed by slot, not a dict;
* type instantiation is **environment-lazy**: entering a block binds its
  ``Delta`` to the omegas as an immutable env tuple, and only the rare
  operands whose free type variables demand it are substituted (memoized
  per site x env) -- straight-line arithmetic never touches a type;
* the per-component lowering is keyed by the PR 7 **content digest** and
  cached through the :mod:`repro.link` ArtifactStore, so a compiled
  artifact is lowered once fleet-wide (``tal.fast.preinst.*``);
* blocks flagged hot (entry counter, or a digest list produced by
  ``funtal top --promote-threshold``) are **template-JITted**: the block
  body is rendered into one fused Python function per basic block
  (branch-out via block transfer requests) and compiled with ``exec``.

Semantics are bit-identical to the reference engine -- same values, same
``steps``/``fuel_used`` accounting, same trap messages, same suspension
records (checkpoints are engine-portable) -- enforced by the differential
lockstep suite in ``tests/test_tal_fast_differential.py``.  Anything the
lowering does not recognise (``import``, exotic instructions, invalid
registers) falls back per-block to the reference rules via
:func:`_walk_ref`, so the fast tier is *total*.  Instrumented runs
(tracing, a live event bus, or the profiler) are executed by the
reference interpreter: the fast tier is the batch tier.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.caching import LRUCache
from repro.errors import FuelExhausted, MachineError
from repro.obs.events import OBS
from repro.obs.profile import PROFILER, content_hash
from repro.tal.machine import HaltedState, rename_locs
from repro.tal.subst import (
    Subst, free_type_vars, instantiate_code_block, subst_instr,
    subst_instr_seq, subst_operand, subst_q, subst_stack, subst_ty,
)
from repro.tal.syntax import (
    Aop, Balloc, Bnz, BOX, Call, Component, Fold, Halt, HCode, HTuple,
    InstrSeq, Jmp, KIND_ALPHA, KIND_EPS, KIND_ZETA, Ld, Loc, Mv, Pack,
    Ralloc, REF, REGISTERS, RegOp, Ret, RetMarker, Salloc, Sfree, Sld, Sst,
    St, StackTy, TalType, TyApp, UnfoldI, Unpack, WInt, WLoc, WUnit,
    check_register,
)

__all__ = [
    "FastBlock", "fast_drive", "fast_run_t", "instrumented",
    "install_component", "promote_digests", "set_jit_threshold",
    "clear_fast_caches", "fast_cache_stats", "PREINST_VERSION",
]

#: Bump when the lowered descriptor format changes: the digest of the
#: on-disk preinstantiation artifacts includes it, so stale store entries
#: simply miss instead of deserialising into the wrong shape.
PREINST_VERSION = 1

_UNSET = object()          # register-slot sentinel (None is not a word)
_SLOT = {r: i for i, r in enumerate(REGISTERS)}
_NREGS = len(REGISTERS)
_AOPS = {"add": "+", "sub": "-", "mul": "*"}
_AOP_FNS = {"add": lambda a, b: a + b, "sub": lambda a, b: a - b,
            "mul": lambda a, b: a * b}
_KIND_EXPECT = {KIND_ALPHA: TalType, KIND_ZETA: StackTy,
                KIND_EPS: RetMarker}
_MISS = object()

# ---------------------------------------------------------------------------
# Caches (the PR 4 tal.subst.cache.* machinery, grown into the fast tier)
# ---------------------------------------------------------------------------

#: env tuple -> combined Subst (bindings folded left to right; a ``None``
#: omega is a Protect shadow and deletes its key).
_ENVSUB_CACHE = LRUCache(1024)
#: (id(site), env[, tag]) -> (site, substituted result); identity-checked.
_SITE_CACHE = LRUCache(4096, metric_prefix="tal.fast.site")
#: (id(block), omegas) -> (block, env tuple): the fast tier's block
#: instantiation memo (the Fig 17 loop pays the kind checks once).
_ENV_CACHE = LRUCache(4096, metric_prefix="tal.fast.block")
#: id(Component) -> (comp, FlatProgram): per-process lowering memo.
_COMP_MEMO = LRUCache(256)
#: Component (structural hash/eq) -> FlatProgram: catches re-loads of
#: structurally identical components rebuilt fresh by substitution.
_STRUCT_MEMO = LRUCache(256)
#: digest -> FlatProgram, in front of the on-disk ArtifactStore.
_PREINST_LRU = LRUCache(128, metric_prefix="tal.fast.preinst")
#: id(HCode) -> (hcode, FlatCode): direct-mode lowering memo (restored
#: snapshots, blocks reached outside a component load).
_HCODE_MEMO = LRUCache(512)
#: JIT source string -> compiled function (process-wide).
_JIT_FNS: Dict[str, object] = {}

_EMPTY_SUBST = Subst()


def clear_fast_caches() -> None:
    """Drop every fast-tier memo (tests, benchmarks)."""
    _ENVSUB_CACHE.clear()
    _SITE_CACHE.clear()
    _ENV_CACHE.clear()
    _COMP_MEMO.clear()
    _STRUCT_MEMO.clear()
    _PREINST_LRU.clear()
    _HCODE_MEMO.clear()
    _JIT_FNS.clear()


def fast_cache_stats() -> Dict[str, Dict[str, int]]:
    return {
        "tal.fast.site": _SITE_CACHE.stats(),
        "tal.fast.block": _ENV_CACHE.stats(),
        "tal.fast.preinst": _PREINST_LRU.stats(),
    }


# ---------------------------------------------------------------------------
# JIT promotion policy
# ---------------------------------------------------------------------------

_PROMOTED: Optional[set] = None
_JIT_THRESHOLD: Optional[int] = None


def _promoted() -> set:
    global _PROMOTED
    if _PROMOTED is None:
        # Both knobs resolve through the tiering policy, which honours
        # the historical FUNTAL_TAL_PROMOTE spelling as a deprecated
        # alias of FUNTAL_TIERING_PROMOTE.
        from repro.tiering.policy import active_policy

        _PROMOTED = set(active_policy().tal_promote)
    return _PROMOTED


def promote_digests(digests) -> None:
    """Seed the JIT with profiler block digests (the list emitted by
    ``funtal top --promote-threshold``): matching blocks are promoted on
    first entry instead of waiting out the hot counter."""
    _promoted().update(digests)


def _jit_threshold() -> int:
    global _JIT_THRESHOLD
    if _JIT_THRESHOLD is None:
        from repro.tiering.policy import active_policy

        _JIT_THRESHOLD = int(active_policy().tal_jit_threshold)
    return _JIT_THRESHOLD


def set_jit_threshold(n: Optional[int]) -> None:
    """Override (or with ``None`` re-read from the tiering policy /
    environment) the entry count after which an eligible block is
    template-JITted."""
    global _JIT_THRESHOLD
    _JIT_THRESHOLD = n


def instrumented(machine) -> bool:
    """Instrumented runs (tracing, live event bus, profiler) stay on the
    reference interpreter, which emits per-step events."""
    return (machine.trace_enabled or PROFILER.enabled
            or (OBS.enabled and OBS.bus.active))


# ---------------------------------------------------------------------------
# Environment-lazy substitution
# ---------------------------------------------------------------------------

def _env_subst(env: tuple) -> Subst:
    """The combined substitution an env tuple denotes.

    At run time every omega is closed, so folding the entries in order
    (later bindings override, Protect shadows delete) is exactly the
    reference engine's sequential substitution discipline."""
    if not env:
        return _EMPTY_SUBST
    hit = _ENVSUB_CACHE.get(id(env))
    if hit is not None and hit[0] is env:
        return hit[1]
    mapping: dict = {}
    for kind, name, omega in env:
        if omega is None:
            mapping.pop((kind, name), None)
        else:
            mapping[(kind, name)] = omega
    s = Subst(mapping)
    _ENVSUB_CACHE.put(id(env), (env, s))
    return s


# Site caches key on object identity, not structure: hashing type-laden
# env tuples costs more than the substitution they memoize (the frozen
# syntax dataclasses recompute deep hashes every time).  Identity keys
# stay canonical because enter() reuses one env tuple per (block, omega)
# pair, and pinning the keyed objects in the value prevents id reuse.

def _site_operand(u, env: tuple):
    """Substitute a typed operand site under ``env`` (memoized)."""
    if not env:
        return u
    key = (id(u), id(env))
    hit = _SITE_CACHE.get(key)
    if hit is not None and hit[0] is u and hit[1] is env:
        return hit[2]
    res = subst_operand(u, _env_subst(env))
    _SITE_CACHE.put(key, (u, env, res))
    return res


def _site_halt(t: Halt, env: tuple):
    if not env:
        return t.ty, t.sigma
    key = (id(t), id(env), "halt")
    hit = _SITE_CACHE.get(key)
    if hit is not None and hit[0] is t and hit[1] is env:
        return hit[2]
    s = _env_subst(env)
    res = (subst_ty(t.ty, s), subst_stack(t.sigma, s))
    _SITE_CACHE.put(key, (t, env, res))
    return res


def _site_call_extra(t: Call, env: tuple):
    if not env:
        return (t.sigma, t.q)
    key = (id(t), id(env), "call")
    hit = _SITE_CACHE.get(key)
    if hit is not None and hit[0] is t and hit[1] is env:
        return hit[2]
    s = _env_subst(env)
    res = (subst_stack(t.sigma, s), subst_q(t.q, s))
    _SITE_CACHE.put(key, (t, env, res))
    return res


def _site_instr(i, env: tuple):
    """Substitute a whole (non-binding) instruction under ``env``
    (memoized): what the native import op uses to close its F payload."""
    if not env:
        return i
    key = (id(i), id(env), "instr")
    hit = _SITE_CACHE.get(key)
    if hit is not None and hit[0] is i and hit[1] is env:
        return hit[2]
    s = _env_subst(env)
    res = i if s.is_empty() else subst_instr(i, s)
    _SITE_CACHE.put(key, (i, env, res))
    return res


# ---------------------------------------------------------------------------
# Runtime operand resolution against the flat register file
# ---------------------------------------------------------------------------

def _resolve_rt(u, regs):
    cls = u.__class__
    if cls is RegOp:
        idx = _SLOT.get(u.reg)
        if idx is None:
            check_register(u.reg)  # raises the canonical message
        w = regs[idx]
        if w is _UNSET:
            raise MachineError(f"read of unset register {u.reg}")
        return w
    if cls is WUnit or cls is WInt or cls is WLoc:
        return u
    if cls is Pack:
        return Pack(u.hidden, _resolve_rt(u.body, regs), u.as_ty)
    if cls is Fold:
        return Fold(u.as_ty, _resolve_rt(u.body, regs))
    if cls is TyApp:
        body = _resolve_rt(u.body, regs)
        if body.__class__ is TyApp:
            return TyApp(body.body, body.insts + u.insts)
        return TyApp(body, u.insts)
    raise MachineError(f"cannot resolve operand {u}")


def _resolve_const(u):
    """Resolve a register-free operand to its word value (load time)."""
    return _resolve_rt(u, None)


def _target_of(w) -> Tuple[Loc, tuple]:
    omegas: tuple = ()
    while w.__class__ is TyApp:
        omegas = tuple(w.insts) + omegas
        w = w.body
    if w.__class__ is not WLoc:
        raise MachineError(f"jump to non-location value {w}")
    return w.loc, omegas


def _has_regop(u) -> bool:
    cls = u.__class__
    if cls is RegOp:
        return True
    if cls is Pack or cls is Fold or cls is TyApp:
        return _has_regop(u.body)
    return False


def _is_const(u) -> bool:
    return not _has_regop(u) and not free_type_vars(u)


# ---------------------------------------------------------------------------
# Lowering: instructions -> picklable descriptors
# ---------------------------------------------------------------------------

_FT_CLASSES: Optional[tuple] = None


def _ft_classes() -> tuple:
    global _FT_CLASSES
    if _FT_CLASSES is None:
        try:
            from repro.ft.syntax import Import, Protect
            _FT_CLASSES = (Import, Protect)
        except Exception:  # pragma: no cover - ft always importable here
            _FT_CLASSES = (None, None)
    return _FT_CLASSES


def _uspec(u):
    """Classify an operand: ("c", u) const / ("r", slot, name) register /
    ("g", u, has_ftv) general."""
    if u.__class__ is RegOp:
        slot = _SLOT.get(u.reg)
        if slot is None:
            return None
        return ("r", slot, u.reg)
    if _is_const(u):
        return ("c", u)
    return ("g", u, bool(free_type_vars(u)))


def _lower_instr(i) -> tuple:
    """Total: anything unliftable lowers to a reference delegation."""
    try:
        return _lower_instr_raw(i)
    except Exception:
        return ("refop",)


def _lower_instr_raw(i) -> tuple:
    cls = i.__class__
    if cls is Mv:
        rd = _SLOT.get(i.rd)
        spec = _uspec(i.u)
        if rd is None or spec is None:
            return ("refop",)
        return ("mv", rd, spec)
    if cls is Aop:
        rd, rs = _SLOT.get(i.rd), _SLOT.get(i.rs)
        spec = _uspec(i.u)
        if rd is None or rs is None or spec is None or i.op not in _AOPS:
            return ("refop",)
        return ("aop", i.op, rd, rs, i.rs, spec)
    if cls is Bnz:
        rs = _SLOT.get(i.r)
        if rs is None:
            return ("refop",)
        if _is_const(i.u):
            return ("bnz_c", rs, i.r, i.u)
        return ("bnz_g", rs, i.r, i.u, bool(free_type_vars(i.u)))
    if cls is Ld:
        rd, rs = _SLOT.get(i.rd), _SLOT.get(i.rs)
        if rd is None or rs is None:
            return ("refop",)
        return ("ld", rd, rs, i.index)
    if cls is St:
        rd, rs = _SLOT.get(i.rd), _SLOT.get(i.rs)
        if rd is None or rs is None:
            return ("refop",)
        return ("st", rd, i.index, rs, i.rs)
    if cls is Ralloc or cls is Balloc:
        rd = _SLOT.get(i.rd)
        if rd is None:
            return ("refop",)
        return ("alloc", rd, i.n, REF if cls is Ralloc else BOX)
    if cls is Salloc:
        return ("salloc", i.n)
    if cls is Sfree:
        return ("sfree", i.n)
    if cls is Sld:
        rd = _SLOT.get(i.rd)
        if rd is None:
            return ("refop",)
        return ("sld", rd, i.index)
    if cls is Sst:
        rs = _SLOT.get(i.rs)
        if rs is None:
            return ("refop",)
        return ("sst", i.index, rs, i.rs)
    if cls is Unpack:
        rd = _SLOT.get(i.rd)
        spec = _uspec(i.u)
        if rd is None or spec is None:
            return ("refop",)
        return ("unpack", i.alpha, rd, spec)
    if cls is UnfoldI:
        rd = _SLOT.get(i.rd)
        spec = _uspec(i.u)
        if rd is None or spec is None:
            return ("refop",)
        return ("unfold", rd, spec)
    import_cls, protect_cls = _ft_classes()
    if import_cls is not None and cls is import_cls:
        if _SLOT.get(i.rd) is None:
            return ("refop",)
        # ftv is conservatively True: walking the embedded F expression
        # to prove closedness costs more than the (memoized, usually
        # env-empty) runtime substitution it would skip.
        return ("imp", i, True)
    if protect_cls is not None and cls is protect_cls:
        return ("protect", i.zeta)
    return ("refop",)  # anything unknown: reference rules


def _lower_term(t) -> tuple:
    try:
        return _lower_term_raw(t)
    except Exception:
        return ("ref_term",)


def _lower_term_raw(t) -> tuple:
    cls = t.__class__
    if cls is Halt:
        r = _SLOT.get(t.r)
        if r is None:
            return ("ref_term",)
        ftv = bool(free_type_vars(t.ty) | free_type_vars(t.sigma))
        return ("halt", r, t.r, t, ftv)
    if cls is Jmp:
        if _is_const(t.u):
            return ("jmp_c", t.u)
        return ("jmp_g", t.u, bool(free_type_vars(t.u)))
    if cls is Call:
        sq_ftv = bool(free_type_vars(t.sigma) | free_type_vars(t.q))
        if _is_const(t.u) and not sq_ftv:
            return ("call_c", t.u, t.sigma, t.q)
        return ("call_g", t.u, bool(free_type_vars(t.u)), t, sq_ftv)
    if cls is Ret:
        r = _SLOT.get(t.r)
        if r is None:
            return ("ref_term",)
        return ("ret", r, t.r, t.rr)
    return ("ref_term",)


def _lower_seq(iseq: InstrSeq, delta: tuple) -> dict:
    """Lower an instruction sequence to a picklable FlatCode dict."""
    ops = tuple(_lower_instr(i) for i in iseq.instrs)
    term = _lower_term(iseq.term)
    jit = _jit_source(ops, term)
    return {"delta": delta, "ops": ops, "term": term, "jit": jit}


def _lower_component(comp: Component) -> dict:
    blocks = []
    for idx, (_, h) in enumerate(comp.heap):
        if isinstance(h, HCode):
            blocks.append((idx, _lower_seq(h.instrs, h.delta)))
    return {"version": PREINST_VERSION,
            "entry": _lower_seq(comp.instrs, ()),
            "blocks": tuple(blocks)}


# ---------------------------------------------------------------------------
# Digest-keyed preinstantiation through the link store
# ---------------------------------------------------------------------------

_PURE_INSTRS = (Mv, Aop, Bnz, Ld, St, Ralloc, Balloc, Salloc, Sfree, Sld,
                Sst, Unpack, UnfoldI)


def _scan_component(comp: Component):
    """(pure_t, self_contained): pure-T components whose every referenced
    location is bound in their own heap get a content digest; anything
    else (FT instructions, wrappers embedding runtime locations) is
    lowered under a per-object memo instead, so runtime-unique wrappers
    never pollute the shared store."""
    bound = {loc for loc, _ in comp.heap}
    refs: set = set()

    def walk_operand(u) -> bool:
        cls = u.__class__
        if cls is WLoc:
            refs.add(u.loc)
            return True
        if cls is Pack or cls is Fold or cls is TyApp:
            return walk_operand(u.body)
        return cls in (WInt, WUnit, RegOp)

    protect_cls = _ft_classes()[1]

    def walk_seq(iseq) -> bool:
        for i in iseq.instrs:
            if not isinstance(i, _PURE_INSTRS):
                # protect is type-level only: it renames the protected
                # tail, embeds no runtime state, and lowers to a fixed
                # descriptor -- safe to content-address.  Import is not
                # (it carries an F payload evaluated at runtime).
                if protect_cls is not None and isinstance(i, protect_cls):
                    continue
                return False
            u = getattr(i, "u", None)
            if u is not None and not walk_operand(u):
                return False
        t = iseq.term
        if isinstance(t, (Jmp, Call)):
            return walk_operand(t.u)
        return isinstance(t, (Ret, Halt))

    if not walk_seq(comp.instrs):
        return False, False
    for _, h in comp.heap:
        if isinstance(h, HCode):
            if not walk_seq(h.instrs):
                return False, False
        elif isinstance(h, HTuple):
            for w in h.words:
                if not walk_operand(w):
                    return False, False
        else:
            return False, False
    return True, refs <= bound


def _preinst_program(comp: Component) -> dict:
    """The lowered FlatProgram for a component.

    Memo pipeline, cheapest first: per-object identity -> structural
    equality (boundary wrappers are rebuilt by substitution every
    crossing, so identical structure rarely means identical object) ->
    the digest-keyed in-memory LRU -> the on-disk ArtifactStore.  The
    fingerprint/disk tier is reserved for real artifacts (at least one
    heap code block, pure T, self-contained): the hot FT boundary path
    loads hundreds of tiny one-shot entry snippets per run, and
    digesting those would cost more than lowering them.
    """
    key = id(comp)
    hit = _COMP_MEMO.get(key)
    if hit is not None and hit[0] is comp:
        return hit[1]
    has_code = any(isinstance(h, HCode) for _, h in comp.heap)
    if not has_code:
        # Boundary wrappers: a handful of instructions around an F
        # payload, loaded once each.  Hashing them for the structural
        # memo would walk the payload; straight lowering is cheaper.
        prog = _lower_component(comp)
        _COMP_MEMO.put(key, (comp, prog))
        return prog
    prog = _STRUCT_MEMO.get(comp)
    if prog is None:
        pure, contained = _scan_component(comp)
        if pure and contained:
            from repro.link.fingerprint import stable_fingerprint
            digest = stable_fingerprint(
                ("funtal.tal.preinst", PREINST_VERSION, comp))
            prog = _PREINST_LRU.get(digest)
            if prog is None:
                prog = _preinst_from_store(digest, comp)
            _PREINST_LRU.put(digest, prog)
        else:
            prog = _lower_component(comp)
        _STRUCT_MEMO.put(comp, prog)
    _COMP_MEMO.put(key, (comp, prog))
    return prog


def _preinst_from_store(digest: str, comp: Component) -> dict:
    try:
        from repro.link.store import ArtifactStore
        store = ArtifactStore()
        found = store.get(digest, kind="preinst")
    except Exception:
        store, found = None, None
    if found is not None:
        prog = found[1]
        if isinstance(prog, dict) and prog.get("version") == PREINST_VERSION:
            if OBS.enabled:
                OBS.metrics.inc("tal.fast.preinst.hit")
            return prog
    prog = _lower_component(comp)
    if store is not None:
        try:
            store.put(digest, prog, meta={"kind": "tal-preinst"},
                      kind="preinst")
        except Exception:
            pass
    return prog


# ---------------------------------------------------------------------------
# Per-load build: descriptors -> direct-threaded closures
# ---------------------------------------------------------------------------

class FastBlock:
    """One preinstantiated block: direct-threaded ops plus metadata for
    residual materialisation, the omega memo, and the JIT tier."""

    __slots__ = ("ops", "nops", "term", "delta", "src_seq", "src_hcode",
                 "hot", "jit_spec", "jit_fn", "jit_consts", "_digest")

    def __init__(self, ops, term, delta, src_seq, src_hcode, jit_spec,
                 jit_consts):
        self.ops = ops
        self.nops = len(ops)
        self.term = term
        self.delta = delta
        self.src_seq = src_seq        # renamed InstrSeq (residuals)
        self.src_hcode = src_hcode    # renamed HCode or None (entry seqs)
        self.hot = 0
        self.jit_spec = jit_spec
        self.jit_fn = None
        self.jit_consts = jit_consts
        self._digest = None

    def digest(self) -> Optional[str]:
        """Stable-per-run profiler digest of the source block (what
        ``funtal top --promote-threshold`` emits)."""
        if self._digest is None and self.src_hcode is not None:
            self._digest = content_hash(self.src_hcode, "t")
        return self._digest


def _unset_read(name: str):
    raise MachineError(f"read of unset register {name}")


def _make_op(d: tuple, ren):
    """Build the closure for one op descriptor (``ren`` renames heap
    labels into the current load)."""
    tag = d[0]
    if tag == "mv":
        _, rd, spec = d
        if spec[0] == "c":
            w = _resolve_const(ren(spec[1]))

            def op(mem, regs, env, _rd=rd, _w=w):
                regs[_rd] = _w
            return op
        if spec[0] == "r":
            _, rs, name = spec

            def op(mem, regs, env, _rd=rd, _rs=rs, _n=name):
                w = regs[_rs]
                if w is _UNSET:
                    _unset_read(_n)
                regs[_rd] = w
            return op
        _, u, ftv = spec
        u = ren(u)

        def op(mem, regs, env, _rd=rd, _u=u, _f=ftv):
            regs[_rd] = _resolve_rt(_site_operand(_u, env) if _f else _u,
                                    regs)
        return op
    if tag == "aop":
        _, name, rd, rs, rs_name, spec = d
        fn = _AOP_FNS[name]
        if spec[0] == "c":
            w = _resolve_const(ren(spec[1]))

            def op(mem, regs, env, _rd=rd, _rs=rs, _n=rs_name, _fn=fn,
                   _w=w):
                left = regs[_rs]
                if left.__class__ is not WInt:
                    if left is _UNSET:
                        _unset_read(_n)
                    raise MachineError(
                        f"aop source {_n} holds non-int {left}")
                if _w.__class__ is not WInt:
                    raise MachineError(f"expected an integer, got {_w}")
                regs[_rd] = WInt(_fn(left.value, _w.value))
            return op
        if spec[0] == "r":
            _, rb, rb_name = spec

            def op(mem, regs, env, _rd=rd, _rs=rs, _n=rs_name, _fn=fn,
                   _rb=rb, _bn=rb_name):
                left = regs[_rs]
                if left.__class__ is not WInt:
                    if left is _UNSET:
                        _unset_read(_n)
                    raise MachineError(
                        f"aop source {_n} holds non-int {left}")
                right = regs[_rb]
                if right.__class__ is not WInt:
                    if right is _UNSET:
                        _unset_read(_bn)
                    raise MachineError(f"expected an integer, got {right}")
                regs[_rd] = WInt(_fn(left.value, right.value))
            return op
        _, u, ftv = spec
        u = ren(u)

        def op(mem, regs, env, _rd=rd, _rs=rs, _n=rs_name, _fn=fn, _u=u,
               _f=ftv):
            left = regs[_rs]
            if left.__class__ is not WInt:
                if left is _UNSET:
                    _unset_read(_n)
                raise MachineError(f"aop source {_n} holds non-int {left}")
            w = _resolve_rt(_site_operand(_u, env) if _f else _u, regs)
            if w.__class__ is not WInt:
                raise MachineError(f"expected an integer, got {w}")
            regs[_rd] = WInt(_fn(left.value, w.value))
        return op
    if tag in ("bnz_c", "bnz_g"):
        return None  # handled by _make_bnz (needs its own pc)
    if tag == "ld":
        _, rd, rs, index = d

        def op(mem, regs, env, _rd=rd, _rs=rs, _i=index):
            ptr = regs[_rs]
            if ptr.__class__ is not WLoc:
                if ptr is _UNSET:
                    _unset_read(REGISTERS[_rs])
                raise MachineError(f"ld through non-pointer {ptr}")
            tup = mem.tuple_at(ptr.loc)
            if not 0 <= _i < len(tup.words):
                raise MachineError(f"ld index {_i} out of range")
            regs[_rd] = tup.words[_i]
        return op
    if tag == "st":
        _, rd, index, rs, rs_name = d

        def op(mem, regs, env, _rd=rd, _i=index, _rs=rs, _n=rs_name):
            ptr = regs[_rd]
            if ptr.__class__ is not WLoc:
                if ptr is _UNSET:
                    _unset_read(REGISTERS[_rd])
                raise MachineError(f"st through non-pointer {ptr}")
            w = regs[_rs]
            if w is _UNSET:
                _unset_read(_n)
            mem.store_field(ptr.loc, _i, w)
        return op
    if tag == "alloc":
        _, rd, n, nu = d

        def op(mem, regs, env, _rd=rd, _n=n, _nu=nu):
            words = mem.pop(_n)
            regs[_rd] = WLoc(mem.alloc(HTuple(tuple(words)), _nu))
        return op
    if tag == "salloc":
        units = (WUnit(),) * d[1]

        def op(mem, regs, env, _u=units):
            mem.push(*_u)
        return op
    if tag == "sfree":
        n = d[1]

        def op(mem, regs, env, _n=n):
            mem.pop(_n)
        return op
    if tag == "sld":
        _, rd, index = d

        def op(mem, regs, env, _rd=rd, _i=index):
            regs[_rd] = mem.peek(_i)
        return op
    if tag == "sst":
        _, index, rs, rs_name = d

        def op(mem, regs, env, _i=index, _rs=rs, _n=rs_name):
            w = regs[_rs]
            if w is _UNSET:
                _unset_read(_n)
            mem.poke(_i, w)
        return op
    if tag == "unpack":
        _, alpha, rd, spec = d
        if spec[0] == "r":
            _, rs, name = spec

            def op(mem, regs, env, _a=alpha, _rd=rd, _rs=rs, _n=name):
                w = regs[_rs]
                if w.__class__ is not Pack:
                    if w is _UNSET:
                        _unset_read(_n)
                    raise MachineError(f"unpack of non-package value {w}")
                regs[_rd] = w.body
                return ("bind", (KIND_ALPHA, _a, w.hidden))
            return op
        if spec[0] == "c":
            u = ren(spec[1])

            def op(mem, regs, env, _a=alpha, _rd=rd, _u=u):
                w = _resolve_const(_u)
                if w.__class__ is not Pack:
                    raise MachineError(f"unpack of non-package value {w}")
                regs[_rd] = w.body
                return ("bind", (KIND_ALPHA, _a, w.hidden))
            return op
        _, u, ftv = spec
        u = ren(u)

        def op(mem, regs, env, _a=alpha, _rd=rd, _u=u, _f=ftv):
            w = _resolve_rt(_site_operand(_u, env) if _f else _u, regs)
            if w.__class__ is not Pack:
                raise MachineError(f"unpack of non-package value {w}")
            regs[_rd] = w.body
            return ("bind", (KIND_ALPHA, _a, w.hidden))
        return op
    if tag == "unfold":
        _, rd, spec = d
        if spec[0] == "r":
            _, rs, name = spec

            def op(mem, regs, env, _rd=rd, _rs=rs, _n=name):
                w = regs[_rs]
                if w.__class__ is not Fold:
                    if w is _UNSET:
                        _unset_read(_n)
                    raise MachineError(f"unfold of non-fold value {w}")
                regs[_rd] = w.body
            return op
        u = ren(spec[1]) if spec[0] == "c" else ren(spec[1])
        ftv = spec[2] if spec[0] == "g" else False

        def op(mem, regs, env, _rd=rd, _u=u, _f=ftv):
            w = _resolve_rt(_site_operand(_u, env) if _f else _u, regs)
            if w.__class__ is not Fold:
                raise MachineError(f"unfold of non-fold value {w}")
            regs[_rd] = w.body
        return op
    if tag == "protect":
        zeta = d[1]

        def op(mem, regs, env, _z=zeta):
            return ("shadow", (KIND_ZETA, _z, None))
        return op
    if tag == "imp":
        _, instr, ftv = d
        instr = ren(instr)

        def op(mem, regs, env, _i=instr, _f=ftv):
            return ("imp", _site_instr(_i, env) if _f else _i)
        return op
    if tag == "refop":
        def op(mem, regs, env):
            return _REF_REQ
        return op
    raise AssertionError(f"unknown op descriptor {tag!r}")


_REF_REQ = ("ref",)


def _make_bnz(d: tuple, ren, pc: int):
    """bnz carries its own pc so a failing jump can pin the residual."""
    if d[0] == "bnz_c":
        _, rs, rs_name, u = d
        u_ren = ren(u)
        try:
            loc, omegas = _target_of(_resolve_const(u_ren))
            req = ("enter", loc, omegas, (), pc)
        except MachineError:
            loc = omegas = req = None  # taken branch re-raises exactly

        def op(mem, regs, env, _rs=rs, _n=rs_name, _req=req, _u=u_ren):
            w = regs[_rs]
            if w.__class__ is not WInt:
                if w is _UNSET:
                    _unset_read(_n)
                raise MachineError(f"bnz scrutinee {_n} holds non-int {w}")
            if w.value != 0:
                if _req is None:
                    _target_of(_resolve_const(_u))  # raises
                return _req
            return None
        return op
    _, rs, rs_name, u, ftv = d
    u = ren(u)

    def op(mem, regs, env, _rs=rs, _n=rs_name, _u=u, _f=ftv, _pc=pc):
        w = regs[_rs]
        if w.__class__ is not WInt:
            if w is _UNSET:
                _unset_read(_n)
            raise MachineError(f"bnz scrutinee {_n} holds non-int {w}")
        if w.value != 0:
            loc, omegas = _target_of(
                _resolve_rt(_site_operand(_u, env) if _f else _u, regs))
            return ("enter", loc, omegas, (), _pc)
        return None
    return op


def _make_term(d: tuple, ren, nops: int):
    tag = d[0]
    if tag == "halt":
        _, r, r_name, t, ftv = d

        def term(mem, regs, env, _r=r, _n=r_name, _t=t, _f=ftv):
            w = regs[_r]
            if w is _UNSET:
                _unset_read(_n)
            ty, sigma = _site_halt(_t, env) if _f else (_t.ty, _t.sigma)
            return ("halt", HaltedState(w, ty, sigma, _n))
        return term
    if tag == "jmp_c":
        u_ren = ren(d[1])
        try:
            loc, omegas = _target_of(_resolve_const(u_ren))
            req = ("enter", loc, omegas, (), nops)
        except MachineError:
            req = None

        def term(mem, regs, env, _req=req, _u=u_ren):
            if _req is None:
                _target_of(_resolve_const(_u))  # raises exactly
            return _req
        return term
    if tag == "jmp_g":
        _, u, ftv = d
        u = ren(u)

        def term(mem, regs, env, _u=u, _f=ftv, _pc=nops):
            loc, omegas = _target_of(
                _resolve_rt(_site_operand(_u, env) if _f else _u, regs))
            return ("enter", loc, omegas, (), _pc)
        return term
    if tag == "call_c":
        _, u, sigma, q = d
        u_ren = ren(u)
        try:
            loc, omegas = _target_of(_resolve_const(u_ren))
            req = ("enter", loc, omegas, (sigma, q), nops)
        except MachineError:
            req = None

        def term(mem, regs, env, _req=req, _u=u_ren):
            if _req is None:
                _target_of(_resolve_const(_u))
            return _req
        return term
    if tag == "call_g":
        _, u, u_ftv, t, sq_ftv = d
        u = ren(u)

        def term(mem, regs, env, _u=u, _f=u_ftv, _t=t, _sf=sq_ftv,
                 _pc=nops):
            loc, omegas = _target_of(
                _resolve_rt(_site_operand(_u, env) if _f else _u, regs))
            extra = _site_call_extra(_t, env) if _sf else (_t.sigma, _t.q)
            return ("enter", loc, omegas, extra, _pc)
        return term
    if tag == "ret":
        _, r, r_name, _rr = d

        def term(mem, regs, env, _r=r, _n=r_name):
            w = regs[_r]
            if w is _UNSET:
                _unset_read(_n)
            loc, omegas = _target_of(w)
            return ("enter", loc, omegas, (), None)
        return term
    if tag == "ref_term":
        def term(mem, regs, env):
            return _REF_REQ
        return term
    raise AssertionError(f"unknown terminator descriptor {tag!r}")


def _build_block(flat: dict, mapping, src_seq: InstrSeq,
                 src_hcode: Optional[HCode]) -> FastBlock:
    if mapping:
        def ren(u):
            return rename_locs(u, mapping)
    else:
        def ren(u):
            return u
    nops = len(flat["ops"])
    ops = []
    for pc, d in enumerate(flat["ops"]):
        if d[0] in ("bnz_c", "bnz_g"):
            ops.append(_make_bnz(d, ren, pc))
        else:
            ops.append(_make_op(d, ren))
    term = _make_term(flat["term"], ren, nops)
    jit_spec = flat.get("jit")
    jit_consts = None
    if jit_spec is not None:
        try:
            jit_consts = tuple(_build_const(c, ren, nops)
                               for c in jit_spec[1])
        except MachineError:
            jit_spec = None  # e.g. a const jump to a non-location value
    fb = FastBlock(tuple(ops), term, tuple(flat["delta"]), src_seq,
                   src_hcode, jit_spec, jit_consts)
    if OBS.enabled:
        OBS.metrics.inc("tal.fast.blocks")
    return fb


# ---------------------------------------------------------------------------
# Installation (component loads, direct fallback)
# ---------------------------------------------------------------------------

def install_component(machine, comp: Component, mapping: Dict[Loc, Loc],
                      entry: InstrSeq) -> None:
    """Install the component's preinstantiated block table into the
    machine under this load's renaming (called from ``load_component``).

    Heap-less components (the boundary wrappers FT crossings load by the
    hundreds) install nothing: their entry runs exactly once, so the
    driver executes it by the reference rules and switches to the fast
    tier at its first block transfer -- lowering it could never pay for
    itself."""
    if not any(isinstance(h, HCode) for _, h in comp.heap):
        return
    prog = _preinst_program(comp)
    mem = machine.memory
    heap = comp.heap
    for idx, flat in prog["blocks"]:
        rloc = mapping[heap[idx][0]]
        h_ren = mem.code_at(rloc)
        machine._fast_blocks[rloc] = _build_block(
            flat, mapping, h_ren.instrs, h_ren)
    fb = _build_block(prog["entry"], mapping, entry, None)
    entries = machine._fast_entries
    if len(entries) > 1024:
        entries.clear()
    entries[id(entry)] = (entry, fb)


def _install_hcode(machine, h: HCode, loc: Loc) -> FastBlock:
    """Direct-mode lowering for a block reached outside a component
    install (restored snapshots, exotic loads)."""
    key = id(h)
    hit = _HCODE_MEMO.get(key)
    if hit is not None and hit[0] is h:
        flat = hit[1]
    else:
        flat = _lower_seq(h.instrs, h.delta)
        _HCODE_MEMO.put(key, (h, flat))
    fb = _build_block(flat, None, h.instrs, h)
    machine._fast_blocks[loc] = fb
    return fb


def _block_for_state(machine, iseq: InstrSeq) -> Optional[FastBlock]:
    """The installed entry block for ``iseq``, if this exact object was
    installed (cold states run on the reference walker instead)."""
    ent = machine._fast_entries.get(id(iseq))
    if ent is not None and ent[0] is iseq:
        return ent[1]
    return None


def _make_env(delta: tuple, omegas: tuple) -> tuple:
    entries = []
    for b, omega in zip(delta, omegas):
        expected = _KIND_EXPECT[b.kind]
        if not isinstance(omega, expected):
            raise TypeError(
                f"instantiating {b.kind} {b.name} requires a "
                f"{expected.__name__}, got {omega}")
        entries.append((b.kind, b.name, omega))
    return tuple(entries)


def _close_flat(flat: dict) -> dict:
    """Reclassify a specialized block's descriptors knowing its env
    starts empty.

    Generic lowering calls an operand const only when it has no free
    type variables, because a bind could substitute into it at run time.
    In a specialized block nothing binds before the first ``unpack`` /
    ``protect``, so up to that point register-free operands are fixed
    even when they mention protected (never-substituted) variables --
    promoting them to the const forms precomputes jump targets and makes
    the block JIT-eligible."""
    ops = list(flat["ops"])
    term = flat["term"]
    bound = False
    for i, d in enumerate(ops):
        tag = d[0]
        if tag in ("unpack", "protect"):
            bound = True
            break
        if tag == "bnz_g":
            _, rs, rs_name, u, _ftv = d
            if not _has_regop(u):
                ops[i] = ("bnz_c", rs, rs_name, u)
        elif tag in ("mv", "unfold"):
            spec = d[-1]
            if spec[0] == "g" and not _has_regop(spec[1]):
                ops[i] = d[:-1] + (("c", spec[1]),)
        elif tag == "aop":
            spec = d[5]
            if spec[0] == "g" and not _has_regop(spec[1]):
                ops[i] = d[:5] + (("c", spec[1]),)
    if not bound:
        ttag = term[0]
        if ttag == "jmp_g" and not _has_regop(term[1]):
            term = ("jmp_c", term[1])
        elif ttag == "call_g" and not _has_regop(term[1]):
            t = term[3]
            term = ("call_c", term[1], t.sigma, t.q)
        elif ttag == "halt" and term[4]:
            term = term[:4] + (False,)
    out = {"delta": flat["delta"], "ops": tuple(ops), "term": term}
    out["jit"] = _jit_source(out["ops"], term)
    return out


def _specialize(fb: FastBlock, env: tuple) -> Optional[FastBlock]:
    """Bake ``env`` into a closed copy of the block: one substitution and
    re-lowering, after which every re-entry with the same omega list runs
    const-folded descriptors (JIT-eligible, with identity-stable jump
    requests).  Returns ``None`` when anything refuses to specialize --
    the caller falls back to the env-lazy generic block."""
    try:
        seq2 = subst_instr_seq(fb.src_seq, _env_subst(env))
        flat = _close_flat(_lower_seq(seq2, ()))
        return _build_block(flat, None, seq2, fb.src_hcode)
    except Exception:
        return None


def _materialize(fb: FastBlock, env: tuple, pc: int) -> InstrSeq:
    """The reference-engine InstrSeq state equivalent to (fb, env, pc):
    what snapshots carry, so checkpoints stay engine-portable."""
    seq = fb.src_seq
    if pc:
        seq = InstrSeq(seq.instrs[pc:], seq.term)
    s = _env_subst(env)
    if s.is_empty():
        return seq
    return subst_instr_seq(seq, s)


def _spill(regs: list, mregs: dict) -> None:
    for i in range(_NREGS):
        w = regs[i]
        if w is not _UNSET:
            mregs[REGISTERS[i]] = w


# ---------------------------------------------------------------------------
# Reference fallback walker
# ---------------------------------------------------------------------------

def _walk_ref(machine, state: InstrSeq, ft: bool):
    """Execute ``state`` by the per-step reference rules until the next
    control transfer: ``("halt", hs)`` or ``("enter", loc, omegas, extra,
    residual_term_seq)``.  Registers must be spilled and the budget
    synced before calling."""
    mem = machine.memory
    budget = machine.budget
    obs_on = OBS.enabled
    while True:
        try:
            budget.consume_fuel()
        except FuelExhausted:
            machine._fast_residual = state
            if ft:
                machine._suspension.append(("t", state))
            raise
        machine.steps += 1
        if obs_on:
            OBS.metrics.inc("t.machine.steps")
        try:
            if state.instrs:
                head, rest = state.instrs[0], state.rest
                if head.__class__ is Bnz:
                    scrut = mem.get_reg(head.r)
                    if not isinstance(scrut, WInt):
                        raise MachineError(
                            f"bnz scrutinee {head.r} holds non-int {scrut}")
                    if scrut.value != 0:
                        loc, omegas = machine.resolve_code_target(head.u)
                        machine.emit("bnz", loc.name, detail="taken")
                        return ("enter", loc, omegas, (), state)
                    state = rest
                else:
                    state = machine.exec_instruction(head, rest)
            else:
                t = state.term
                if t.__class__ is Halt:
                    word = mem.get_reg(t.r)
                    hs = HaltedState(word, t.ty, t.sigma, t.r)
                    machine.emit("halt", None, detail=f"{t.r} -> {word}")
                    return ("halt", hs)
                if t.__class__ is Jmp:
                    loc, omegas = machine.resolve_code_target(t.u)
                    machine.emit("jmp", loc.name)
                    return ("enter", loc, omegas, (), state)
                if t.__class__ is Call:
                    loc, omegas = machine.resolve_code_target(t.u)
                    machine.emit("call", loc.name)
                    return ("enter", loc, omegas, (t.sigma, t.q), state)
                if t.__class__ is Ret:
                    loc, omegas = machine.resolve_code_target(RegOp(t.r))
                    machine.emit("ret", loc.name,
                                 detail=f"result in {t.rr}")
                    return ("enter", loc, omegas, (), state)
                raise MachineError(
                    f"unknown terminator {type(t).__name__}")
        except BaseException:
            machine._fast_residual = state
            raise


# ---------------------------------------------------------------------------
# The driver
# ---------------------------------------------------------------------------

def _run_fast(machine, state, ft: bool) -> HaltedState:
    machine._fast_residual = state
    if isinstance(state, HaltedState):
        return state
    mem = machine.memory
    budget = machine.budget
    can_import = hasattr(machine, "_finish_import")
    mregs = mem.regs
    regs = [mregs.get(r, _UNSET) for r in REGISTERS]
    base = budget.fuel_remaining
    fuel = base
    counters = [0, 0]  # instantiations, unpacks
    FB = [0, 0]        # JIT trap sync: [fuel, pc]
    enter_memo: dict = {}  # id(req) -> (req, block, env); identity-guarded

    def flush():
        nonlocal base
        consumed = base - fuel
        if consumed:
            budget.consume_fuel(consumed)
            machine.steps += consumed
        base = fuel
        if OBS.enabled:
            metrics = OBS.metrics
            if consumed:
                metrics.inc("t.machine.steps", consumed)
            if counters[0]:
                metrics.inc("t.subst.instantiate", counters[0])
            if counters[1]:
                metrics.inc("t.subst.unpack", counters[1])
        counters[0] = counters[1] = 0

    def fail(fb_, env_, pc_):
        _spill(regs, mregs)
        flush()
        machine._fast_residual = _materialize(fb_, env_, pc_)

    def exhaust(fb_, env_, pc_):
        residual = _materialize(fb_, env_, pc_)
        _spill(regs, mregs)
        flush()
        machine._fast_residual = residual
        if ft:
            machine._suspension.append(("t", residual))
        budget.consume_fuel()  # trips exactly like the reference engine
        raise AssertionError("unreachable: fuel accounting out of sync")

    def enter(loc, omegas, extra):
        fb2 = machine._fast_blocks.get(loc)
        if fb2 is None:
            fb2 = _install_hcode(machine, mem.code_at(loc), loc)
        all_om = omegas + extra
        delta = fb2.delta
        if len(all_om) > len(delta):
            raise MachineError(
                f"block {loc} instantiated with {len(all_om)} "
                f"arguments but abstracts {len(delta)}")
        counters[0] += 1
        if len(all_om) < len(delta):
            inst = instantiate_code_block(fb2.src_hcode, all_om)
            raise MachineError(
                f"jump to block {loc} with uninstantiated binders "
                f"{[str(b) for b in inst.delta]}")
        if all_om:
            key = (id(fb2), all_om)
            hit = _ENV_CACHE.get(key)
            if hit is not None and hit[0] is fb2:
                orig = fb2
                fb2, env2 = hit[1], hit[2]
                if fb2 is orig and env2:
                    # Second entry with the same omegas: the pair is warm
                    # enough to pay for baking the env into a closed,
                    # JIT-eligible copy.  Once-entered blocks (the common
                    # case outside loops) never reach here.
                    spec = _specialize(fb2, env2)
                    if spec is not None:
                        _ENV_CACHE.put(key, (orig, spec, ()))
                        fb2, env2 = spec, ()
            else:
                env2 = _make_env(delta, all_om)
                _ENV_CACHE.put(key, (fb2, fb2, env2))
        else:
            env2 = ()
        if fb2.jit_fn is None and fb2.jit_spec is not None:
            fb2.hot += 1
            promoted = _PROMOTED
            if (fb2.hot >= _jit_threshold()
                    or (promoted and fb2.digest() in promoted)):
                _promote(fb2)
        return fb2, env2

    env: tuple = ()
    pc = 0
    fb = _block_for_state(machine, state)
    if fb is None:
        # Cold entry (boundary wrapper, restored snapshot): run it by the
        # reference rules; the first block transfer lands in the fast tier.
        try:
            out = _walk_ref(machine, state, ft)
        finally:
            regs = [mregs.get(r, _UNSET) for r in REGISTERS]
            base = budget.fuel_remaining
            fuel = base
        if out[0] == "halt":
            machine._fast_residual = out[1]
            return out[1]
        try:
            fb, env = enter(out[1], out[2], out[3])
        except BaseException:
            flush()
            machine._fast_residual = out[4]
            raise
    while True:
        ops = fb.ops
        nops = fb.nops
        req = None
        jf = fb.jit_fn
        if jf is not None and pc == 0:
            FB[0], FB[1] = fuel, 0
            try:
                pc, fuel, req = jf(mem, regs, fuel, fb.jit_consts, FB)
            except BaseException:
                fuel = FB[0]
                fail(fb, env, FB[1])
                raise
        if req is None:
            while pc < nops:
                if fuel == 0:
                    exhaust(fb, env, pc)
                fuel -= 1
                try:
                    r = ops[pc](mem, regs, env)
                except BaseException:
                    fail(fb, env, pc)
                    raise
                if r is None:
                    pc += 1
                    continue
                tag = r[0]
                if tag == "bind":
                    counters[1] += 1
                    env = env + (r[1],)
                    pc += 1
                elif tag == "shadow":
                    env = env + (r[1],)
                    pc += 1
                else:  # "enter" (taken bnz) or "ref" (delegate)
                    req = r
                    break
            else:
                if fuel == 0:
                    exhaust(fb, env, nops)
                fuel -= 1
                try:
                    req = fb.term(mem, regs, env)
                except BaseException:
                    fail(fb, env, nops)
                    raise
        tag = req[0]
        if tag == "enter":
            # Hot path: a block's const jump request is one stable tuple,
            # so an identity memo skips re-hashing the omega types.
            hit = enter_memo.get(id(req))
            if hit is not None and hit[0] is req:
                fb, env = hit[1], hit[2]
                counters[0] += 1
                if fb.jit_fn is None and fb.jit_spec is not None:
                    fb.hot += 1
                    promoted = _PROMOTED
                    if (fb.hot >= _jit_threshold()
                            or (promoted and fb.digest() in promoted)):
                        _promote(fb)
                pc = 0
                continue
            try:
                fb, env = enter(req[1], req[2], req[3])
                pc = 0
            except BaseException:
                src = req[4]
                fail(fb, env, src if isinstance(src, int) else nops)
                raise
            if len(enter_memo) > 4096:
                enter_memo.clear()
            enter_memo[id(req)] = (req, fb, env)
            continue
        if tag == "halt":
            hs = req[1]
            _spill(regs, mregs)
            flush()
            machine._fast_residual = hs
            return hs
        if tag == "imp" and can_import:
            # Native boundary crossing: spill + settle fuel, evaluate the
            # F payload under the shared budget, write the converted word
            # through the machine's register file, reload.  The rest of
            # the block keeps running fast -- no residual materialised.
            i_s = req[1]
            _spill(regs, mregs)
            flush()
            try:
                if OBS.enabled:
                    OBS.metrics.inc("ft.boundary.t_to_f")
                with OBS.span("ft.import", "f", ty=i_s.ty):
                    machine.emit("boundary", None,
                                 detail=f"TF[{i_s.ty}] enter")
                    try:
                        value = machine.eval_fexpr(i_s.expr)
                    except FuelExhausted:
                        machine._suspension.append(
                            ("import", i_s.rd, i_s.ty,
                             _materialize(fb, env, pc + 1)))
                        raise
                    machine._finish_import(i_s.rd, i_s.ty, value)
            except BaseException:
                machine._fast_residual = _materialize(fb, env, pc)
                raise
            finally:
                regs = [mregs.get(r, _UNSET) for r in REGISTERS]
                base = budget.fuel_remaining
                fuel = base
            pc += 1
            continue
        # tag == "ref" (or an import on a machine without the FT boundary
        # protocol): hand the rest of this block to the reference rules
        fuel += 1  # the delegated instruction pays its own fuel
        residual = _materialize(fb, env, pc)
        _spill(regs, mregs)
        flush()
        try:
            out = _walk_ref(machine, residual, ft)
        finally:
            regs = [mregs.get(r, _UNSET) for r in REGISTERS]
            base = budget.fuel_remaining
            fuel = base
        if out[0] == "halt":
            machine._fast_residual = out[1]
            return out[1]
        try:
            fb, env = enter(out[1], out[2], out[3])
            pc = 0
        except BaseException:
            flush()
            machine._fast_residual = out[4]
            raise


def fast_drive(machine, state) -> HaltedState:
    """Fast-tier replacement for :meth:`TalMachine._drive`."""
    budget = machine.budget
    with OBS.span("t.run_seq", "t"):
        try:
            return _run_fast(machine, state, ft=False)
        except RecursionError:
            raise budget.depth_error() from None
        finally:
            machine._state = machine._fast_residual


def fast_run_t(machine, state) -> HaltedState:
    """Fast-tier replacement for :meth:`FTMachine.run_t` (suspension
    records are appended at the exact reference points)."""
    return _run_fast(machine, state, ft=True)


# ---------------------------------------------------------------------------
# The template JIT
# ---------------------------------------------------------------------------

_JITABLE = {"mv", "aop", "bnz_c", "ld", "st", "alloc", "salloc", "sfree",
            "sld", "sst", "unfold"}

_JIT_GLOBALS = {
    "WInt": WInt, "WLoc": WLoc, "TyApp": TyApp, "Fold": Fold,
    "HTuple": HTuple, "HaltedState": HaltedState, "_U": _UNSET,
    "__builtins__": {"len": len, "tuple": tuple},
}


def _jit_source(ops: tuple, term: tuple) -> Optional[tuple]:
    """Render a block's descriptors into one fused Python function (the
    template JIT).  Returns ``(src, const_specs)`` or ``None`` when any
    op needs the environment, binds a type variable, or delegates.

    The generated function is the happy path only: any check failure
    returns a deopt ``(pc, fuel, None)`` and the direct-threaded
    interpreter re-executes from ``pc`` for exact errors and accounting.
    Calls into :class:`Memory` that can raise are preceded by a
    fuel/pc sync through the ``FB`` box.
    """
    consts: List[tuple] = []
    lines: List[str] = ["def _jit(mem, regs, fuel, C, FB):"]

    def const(spec) -> str:
        consts.append(spec)
        return f"C[{len(consts) - 1}]"

    def emit(s: str) -> None:
        lines.append("    " + s)

    for pc, d in enumerate(ops):
        tag = d[0]
        if tag not in _JITABLE:
            return None
        emit(f"if fuel == 0: return ({pc}, fuel, None)")
        deopt = f"return ({pc}, fuel, None)"
        if tag == "mv":
            _, rd, spec = d
            if spec[0] == "c":
                emit("fuel -= 1")
                emit(f"regs[{rd}] = {const(('word', spec[1]))}")
            elif spec[0] == "r":
                emit(f"w = regs[{spec[1]}]")
                emit(f"if w is _U: {deopt}")
                emit("fuel -= 1")
                emit(f"regs[{rd}] = w")
            else:
                return None
        elif tag == "aop":
            _, name, rd, rs, _rs_name, spec = d
            pyop = _AOPS[name]
            emit(f"w = regs[{rs}]")
            emit(f"if w.__class__ is not WInt: {deopt}")
            if spec[0] == "c":
                if spec[1].__class__ is not WInt:
                    return None
                emit("fuel -= 1")
                emit(f"regs[{rd}] = WInt(w.value {pyop} {spec[1].value})")
            elif spec[0] == "r":
                emit(f"v = regs[{spec[1]}]")
                emit(f"if v.__class__ is not WInt: {deopt}")
                emit("fuel -= 1")
                emit(f"regs[{rd}] = WInt(w.value {pyop} v.value)")
            else:
                return None
        elif tag == "bnz_c":
            _, rs, _name, u = d
            emit(f"w = regs[{rs}]")
            emit(f"if w.__class__ is not WInt: {deopt}")
            emit("fuel -= 1")
            emit(f"if w.value != 0: return (-1, fuel, "
                 f"{const(('enter', u, None, pc))})")
        elif tag == "ld":
            _, rd, rs, index = d
            emit(f"w = regs[{rs}]")
            emit(f"if w.__class__ is not WLoc: {deopt}")
            emit("fuel -= 1")
            emit(f"FB[0] = fuel; FB[1] = {pc}")
            emit("t = mem.tuple_at(w.loc).words")
            emit(f"if not 0 <= {index} < len(t): "
                 f"return ({pc}, fuel + 1, None)")
            emit(f"regs[{rd}] = t[{index}]")
        elif tag == "st":
            _, rd, index, rs, _name = d
            emit(f"w = regs[{rd}]")
            emit(f"if w.__class__ is not WLoc: {deopt}")
            emit(f"v = regs[{rs}]")
            emit(f"if v is _U: {deopt}")
            emit("fuel -= 1")
            emit(f"FB[0] = fuel; FB[1] = {pc}")
            emit(f"mem.store_field(w.loc, {index}, v)")
        elif tag == "alloc":
            _, rd, n, nu = d
            emit("fuel -= 1")
            emit(f"FB[0] = fuel; FB[1] = {pc}")
            emit(f"ws = mem.pop({n})")
            emit(f"regs[{rd}] = WLoc(mem.alloc(HTuple(tuple(ws)), "
                 f"{const(('nu', nu))}))")
        elif tag == "salloc":
            emit("fuel -= 1")
            emit(f"FB[0] = fuel; FB[1] = {pc}")
            emit(f"mem.push(*{const(('units', d[1]))})")
        elif tag == "sfree":
            emit("fuel -= 1")
            emit(f"FB[0] = fuel; FB[1] = {pc}")
            emit(f"mem.pop({d[1]})")
        elif tag == "sld":
            _, rd, index = d
            emit("fuel -= 1")
            emit(f"FB[0] = fuel; FB[1] = {pc}")
            emit(f"regs[{rd}] = mem.peek({index})")
        elif tag == "sst":
            _, index, rs, _name = d
            emit(f"v = regs[{rs}]")
            emit(f"if v is _U: {deopt}")
            emit("fuel -= 1")
            emit(f"FB[0] = fuel; FB[1] = {pc}")
            emit(f"mem.poke({index}, v)")
        elif tag == "unfold":
            _, rd, spec = d
            if spec[0] != "r":
                return None
            emit(f"w = regs[{spec[1]}]")
            emit(f"if w.__class__ is not Fold: {deopt}")
            emit("fuel -= 1")
            emit(f"regs[{rd}] = w.body")
    nops = len(ops)
    tag = term[0]
    emit(f"if fuel == 0: return ({nops}, fuel, None)")
    deopt = f"return ({nops}, fuel, None)"
    if tag == "halt":
        _, r, r_name, t, ftv = term
        if ftv:
            return None
        emit(f"w = regs[{r}]")
        emit(f"if w is _U: {deopt}")
        emit("fuel -= 1")
        emit(f"return (-1, fuel, ('halt', HaltedState(w, "
             f"{const(('ty', t.ty))}, {const(('ty', t.sigma))}, "
             f"{r_name!r})))")
    elif tag == "jmp_c":
        emit("fuel -= 1")
        emit(f"return (-1, fuel, {const(('enter', term[1], None, nops))})")
    elif tag == "call_c":
        _, u, sigma, q = term
        emit("fuel -= 1")
        emit(f"return (-1, fuel, {const(('enter', u, (sigma, q), nops))})")
    elif tag == "ret":
        _, r, _r_name, _rr = term
        emit(f"w = regs[{r}]")
        emit("om = ()")
        emit("while w.__class__ is TyApp:")
        emit("    om = tuple(w.insts) + om; w = w.body")
        emit(f"if w.__class__ is not WLoc: {deopt}")
        emit("fuel -= 1")
        emit("return (-1, fuel, ('enter', w.loc, om, (), None))")
    else:
        return None
    return ("\n".join(lines) + "\n", tuple(consts))


def _build_const(spec: tuple, ren, nops: int):
    kind = spec[0]
    if kind == "word":
        return _resolve_const(ren(spec[1]))
    if kind == "units":
        return (WUnit(),) * spec[1]
    if kind == "nu":
        return spec[1]
    if kind == "ty":
        return spec[1]
    if kind == "enter":
        _, u, extra, pc = spec
        loc, omegas = _target_of(_resolve_const(ren(u)))
        return ("enter", loc, omegas, extra if extra else (), pc)
    raise AssertionError(f"unknown const spec {kind!r}")


def _promote(fb: FastBlock) -> None:
    src = fb.jit_spec[0]
    fn = _JIT_FNS.get(src)
    if fn is None:
        namespace: dict = {}
        exec(compile(src, "<tal-template-jit>", "exec"),
             dict(_JIT_GLOBALS), namespace)
        fn = namespace["_jit"]
        _JIT_FNS[src] = fn
    fb.jit_fn = fn
    if OBS.enabled:
        OBS.metrics.inc("tal.fast.jit.promoted")

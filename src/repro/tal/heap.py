"""Runtime memories ``M = (H, R, S)`` for the T abstract machine (Fig 1).

A :class:`Memory` owns

* a heap ``H`` mapping locations to cells, each cell carrying its
  mutability flag ``nu`` (``ref`` cells may be stored to with ``st``;
  ``box`` cells -- including all code -- are immutable);
* a register file ``R`` mapping register names to word values;
* a stack ``S``, a list of word values with index 0 the *top*.

Unlike the AST, memories are mutable: instructions update them in place.
:meth:`Memory.snapshot` produces the cheap immutable views used by trace
events and by the equivalence checker's observation comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import MachineError
from repro.resilience.budget import Budget
from repro.resilience.chaos import probe
from repro.tal.syntax import (
    BOX, check_register, HCode, HeapValue, HTuple, Loc, REF, WordValue,
    WUnit, fresh_loc,
)

__all__ = ["HeapCell", "Memory", "RegSnapshot", "StackSnapshot"]

RegSnapshot = Tuple[Tuple[str, WordValue], ...]
StackSnapshot = Tuple[WordValue, ...]


@dataclass
class HeapCell:
    """One heap binding: a value plus its mutability ``nu``."""

    nu: str
    value: HeapValue

    def __post_init__(self) -> None:
        if self.nu not in (REF, BOX):
            raise ValueError(f"unknown mutability {self.nu!r}")


class Memory:
    """A mutable runtime memory ``(H, R, S)``.

    A memory may carry a :class:`~repro.resilience.budget.Budget`
    governor: every cell committed through :meth:`alloc`/:meth:`bind`
    is then charged against the budget's heap-cell ceiling (tuples cost
    one cell per word, code and other values one cell), and stack growth
    is checked against its depth ceiling -- so runaway allocation
    degrades into a structured verdict instead of exhausting host RAM.
    """

    def __init__(self, budget: Optional[Budget] = None) -> None:
        self.heap: Dict[Loc, HeapCell] = {}
        self.regs: Dict[str, WordValue] = {}
        self.stack: List[WordValue] = []
        self.budget = budget

    # -- heap ---------------------------------------------------------

    @staticmethod
    def _cells(value: HeapValue) -> int:
        return len(value.words) if isinstance(value, HTuple) else 1

    def alloc(self, value: HeapValue, nu: str, base: str = "l") -> Loc:
        probe("heap.alloc", base)
        if self.budget is not None:
            self.budget.charge_heap(self._cells(value))
        loc = fresh_loc(base)
        self.heap[loc] = HeapCell(nu, value)
        return loc

    def bind(self, loc: Loc, value: HeapValue, nu: str) -> None:
        if loc in self.heap:
            raise MachineError(f"heap location {loc} already bound")
        probe("heap.alloc", loc.name)
        if self.budget is not None:
            self.budget.charge_heap(self._cells(value))
        self.heap[loc] = HeapCell(nu, value)

    def lookup(self, loc: Loc) -> HeapCell:
        cell = self.heap.get(loc)
        if cell is None:
            raise MachineError(f"dangling heap location {loc}")
        return cell

    def code_at(self, loc: Loc) -> HCode:
        cell = self.lookup(loc)
        if not isinstance(cell.value, HCode):
            raise MachineError(f"jump to non-code heap value at {loc}")
        return cell.value

    def tuple_at(self, loc: Loc) -> HTuple:
        cell = self.lookup(loc)
        if not isinstance(cell.value, HTuple):
            raise MachineError(f"tuple access to non-tuple at {loc}")
        return cell.value

    def store_field(self, loc: Loc, index: int, w: WordValue) -> None:
        cell = self.lookup(loc)
        if cell.nu != REF:
            raise MachineError(f"store to immutable location {loc}")
        if not isinstance(cell.value, HTuple):
            raise MachineError(f"store to non-tuple at {loc}")
        words = list(cell.value.words)
        if not 0 <= index < len(words):
            raise MachineError(
                f"store index {index} out of range at {loc}")
        words[index] = w
        cell.value = HTuple(tuple(words))

    # -- registers ----------------------------------------------------

    def get_reg(self, r: str) -> WordValue:
        check_register(r)
        if r not in self.regs:
            raise MachineError(f"read of unset register {r}")
        return self.regs[r]

    def set_reg(self, r: str, w: WordValue) -> None:
        check_register(r)
        self.regs[r] = w

    # -- stack --------------------------------------------------------

    def push(self, *words: WordValue) -> None:
        """Push words; the first argument ends up on top."""
        self.stack[:0] = list(words)
        if self.budget is not None:
            self.budget.check_depth(len(self.stack))

    def pop(self, n: int) -> List[WordValue]:
        if n > len(self.stack):
            raise MachineError(
                f"stack underflow: pop {n} from depth {len(self.stack)}")
        popped = self.stack[:n]
        del self.stack[:n]
        return popped

    def peek(self, i: int) -> WordValue:
        if not 0 <= i < len(self.stack):
            raise MachineError(
                f"stack read at slot {i}, depth {len(self.stack)}")
        return self.stack[i]

    def poke(self, i: int, w: WordValue) -> None:
        if not 0 <= i < len(self.stack):
            raise MachineError(
                f"stack write at slot {i}, depth {len(self.stack)}")
        self.stack[i] = w

    @property
    def depth(self) -> int:
        return len(self.stack)

    # -- observation --------------------------------------------------

    def snapshot_regs(self) -> RegSnapshot:
        return tuple(sorted(self.regs.items()))

    def snapshot_stack(self) -> StackSnapshot:
        return tuple(self.stack)

    def __str__(self) -> str:
        heap = ", ".join(
            f"{loc}: {cell.nu}" for loc, cell in sorted(
                self.heap.items(), key=lambda kv: kv[0].name))
        regs = ", ".join(f"{r} -> {w}" for r, w in sorted(self.regs.items()))
        stack = " :: ".join(str(w) for w in self.stack) or "nil"
        return f"heap {{{heap}}}; regs {{{regs}}}; stack [{stack}]"

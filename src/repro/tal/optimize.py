"""Peephole optimizations over T components.

Fig 16's lesson is that block structure is semantically irrelevant -- the
logical relation equates components with different numbers of blocks.
This module is the constructive counterpart: transformations that *change*
block structure and instruction sequences while staying inside the
contextual-equivalence class (verified by typechecking preservation and
the differential checker in the tests):

* :func:`thread_jumps` -- a block whose entire body is an identity
  trampoline (``jmp l'[own binders]``) is removed and every reference to
  it redirected to its target;
* :func:`collapse_stack_traffic` -- within a straight-line window,

  - ``salloc 1; sst 0, r; sld r', 0; sfree 1``  becomes  ``mv r', r``,
  - ``salloc n; sfree n``  disappears,
  - ``mv r, r``  disappears;

* :func:`optimize_component` -- both, to fixpoint.

All patterns are *typed-semantics preserving*: they never touch a window
in which the return marker moves (a ``sst``/``sld`` on the marker register
or slot changes ``q``; collapsing it would change where returns go), which
the guards below check syntactically against the instruction forms.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.tal.machine import rename_locs
from repro.tal.syntax import (
    Component, HCode, InstrSeq, Jmp, KIND_ALPHA, KIND_EPS, KIND_ZETA, Loc,
    Mv, QEps, RegOp, Salloc, Sfree, Sld, Sst, StackTy, TVar, TyApp, WLoc,
)

__all__ = ["thread_jumps", "collapse_stack_traffic", "optimize_component"]


def _identity_instantiation(block: HCode, omegas: Tuple) -> bool:
    """Do ``omegas`` instantiate ``block``'s binders with themselves?"""
    if len(omegas) != len(block.delta):
        return False
    for bind, omega in zip(block.delta, omegas):
        if bind.kind == KIND_ALPHA:
            if not (isinstance(omega, TVar) and omega.name == bind.name):
                return False
        elif bind.kind == KIND_ZETA:
            if not (isinstance(omega, StackTy) and not omega.prefix
                    and omega.tail == bind.name):
                return False
        elif bind.kind == KIND_EPS:
            if not (isinstance(omega, QEps) and omega.name == bind.name):
                return False
        else:
            return False
    return True


def _trampoline_target(label: Loc, block: HCode) -> Optional[Loc]:
    """If ``block`` is an identity trampoline, its target label."""
    if block.instrs.instrs:
        return None
    term = block.instrs.term
    if not isinstance(term, Jmp):
        return None
    u = term.u
    if isinstance(u, WLoc):
        if block.delta:
            return None
        return u.loc if u.loc != label else None
    if isinstance(u, TyApp) and isinstance(u.body, WLoc):
        if not _identity_instantiation(block, tuple(u.insts)):
            return None
        return u.body.loc if u.body.loc != label else None
    return None


def thread_jumps(comp: Component) -> Component:
    """Remove identity trampolines, redirecting their references.

    A trampoline is only removable when its declared signature matches the
    target's up to the redirection (guaranteed here because the identity
    instantiation means every reference to the trampoline is exactly as
    good as one to the target)."""
    mapping: Dict[Loc, Loc] = {}
    blocks = dict(comp.heap)
    for label, h in comp.heap:
        if isinstance(h, HCode):
            target = _trampoline_target(label, h)
            if target is not None and target in blocks:
                mapping[label] = target
    if not mapping:
        return comp
    # resolve chains (a -> b -> c), refusing cycles
    resolved: Dict[Loc, Loc] = {}
    for src in mapping:
        seen = {src}
        dst = mapping[src]
        while dst in mapping and dst not in seen:
            seen.add(dst)
            dst = mapping[dst]
        if dst not in seen:
            resolved[src] = dst
    if not resolved:
        return comp
    new_heap = tuple(
        (label, rename_locs(h, resolved))
        for label, h in comp.heap if label not in resolved)
    return Component(rename_locs(comp.instrs, resolved), new_heap)


def collapse_stack_traffic(iseq: InstrSeq) -> InstrSeq:
    """Apply the straight-line window patterns once over ``iseq``.

    The push/pop window is marker-safe *by the paper's own rules*: when
    the stored register holds the marker, ``sst``/``sld`` relocate it onto
    the stack and back into the destination register -- which is exactly
    what the second ``mv`` rule does for ``mv rd, rs`` with the marker in
    ``rs``.  The typed postconditions coincide, so the rewrite preserves
    both typing and behaviour."""
    out: List = []
    instrs = list(iseq.instrs)
    i = 0
    while i < len(instrs):
        window = instrs[i:i + 4]
        if (len(window) == 4
                and isinstance(window[0], Salloc) and window[0].n == 1
                and isinstance(window[1], Sst) and window[1].index == 0
                and isinstance(window[2], Sld) and window[2].index == 0
                and isinstance(window[3], Sfree) and window[3].n == 1):
            out.append(Mv(window[2].rd, RegOp(window[1].rs)))
            i += 4
            continue
        window5 = instrs[i:i + 5]
        if (len(window5) == 5
                and isinstance(window5[0], Salloc) and window5[0].n == 1
                and isinstance(window5[1], Sst) and window5[1].index == 0
                and isinstance(window5[2], Sld) and window5[2].index == 0
                and isinstance(window5[3], Sld) and window5[3].index == 1
                and isinstance(window5[4], Sfree) and window5[4].n == 2
                and window5[2].rd != window5[3].rd):
            # push a; b := top; c := below; pop both
            #   ==  b := a; c := top; pop one
            # (every stack position shifts uniformly, so index markers
            # relocate identically in both versions)
            out.append(Mv(window5[2].rd, RegOp(window5[1].rs)))
            out.append(Sld(window5[3].rd, 0))
            out.append(Sfree(1))
            i += 5
            continue
        pair = instrs[i:i + 2]
        if (len(pair) == 2 and isinstance(pair[0], Salloc)
                and isinstance(pair[1], Sfree)
                and pair[0].n == pair[1].n):
            i += 2
            continue
        if (isinstance(instrs[i], Mv) and isinstance(instrs[i].u, RegOp)
                and instrs[i].u.reg == instrs[i].rd):
            i += 1
            continue
        out.append(instrs[i])
        i += 1
    return InstrSeq(tuple(out), iseq.term)


def optimize_component(comp: Component) -> Component:
    """Thread jumps and collapse stack traffic, to fixpoint."""
    previous = None
    current = comp
    while previous != current:
        previous = current
        current = thread_jumps(current)
        current = Component(
            collapse_stack_traffic(current.instrs),
            tuple((label,
                   HCode(h.delta, h.chi, h.sigma, h.q,
                         collapse_stack_traffic(h.instrs))
                   if isinstance(h, HCode) else h)
                  for label, h in current.heap))
    return current

"""Well-formedness judgments for T types and contexts.

These are the ``Delta |- tau``-style side conditions used throughout the
typing rules of paper Fig 2: a type (or stack typing, register-file typing,
return marker, heap-value type) is well-formed under ``Delta`` when every
free type variable is bound in ``Delta`` at the right kind.

Also here is the return-marker *restriction* judgment written
``Delta'[Delta]; chi; sigma |- q`` in the paper: the current return marker
must actually point at a visible return continuation --

* a register marker's register must be in ``chi`` and hold a
  continuation-shaped code pointer (``box forall[].{r': tau; sigma'} q'``);
* a stack-index marker must name an *exposed* slot (not hidden in the
  abstract tail) holding such a pointer;
* an ``eps`` marker is permitted only when bound by the enclosing code
  block's own ``Delta`` (the paper: components cannot abstract their return
  markers, but local blocks can; jumping to such a block requires
  instantiating ``eps`` first);
* ``end{tau; sigma}`` requires its components well-formed;
* ``out`` (FT) is always fine -- F code returns by being a value.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import FTTypeError
from repro.tal.retmarker import is_continuation_type
from repro.tal.syntax import (
    CodeType, Delta, delta_contains, HeapValType, KIND_ALPHA, KIND_EPS,
    KIND_FALPHA, KIND_ZETA, QEnd, QEps, QIdx, QOut, QReg, RegFileTy,
    RetMarker, StackTy, TalType, TBox, TExists, TInt, TRec, TRef, TupleTy,
    TUnit, TVar,
)

__all__ = [
    "check_type_wf", "check_psi_wf", "check_stack_wf", "check_chi_wf",
    "check_q_wf", "check_q_restriction", "check_delta_wf",
    "check_chi_minus_q_wf",
]


def _fail(msg: str, judgment: str, subject) -> FTTypeError:
    return FTTypeError(msg, judgment=judgment, subject=str(subject))


def check_delta_wf(delta: Delta) -> None:
    """A type environment is well-formed when its names are distinct."""
    names = [b.name for b in delta]
    if len(set(names)) != len(names):
        raise _fail(f"duplicate names in Delta: {names}", "tal.delta", names)


def check_type_wf(delta: Delta, ty: TalType) -> None:
    """``Delta |- tau``."""
    if isinstance(ty, TVar):
        if not (delta_contains(delta, KIND_ALPHA, ty.name)
                or delta_contains(delta, KIND_FALPHA, ty.name)):
            raise _fail(f"unbound type variable {ty.name!r}",
                        "tal.type-wf", ty)
        return
    if isinstance(ty, (TUnit, TInt)):
        return
    if isinstance(ty, (TExists, TRec)):
        from repro.tal.syntax import DeltaBind

        inner = delta + (DeltaBind(KIND_ALPHA, ty.var),)
        check_type_wf(inner, ty.body)
        return
    if isinstance(ty, TRef):
        for t in ty.items:
            check_type_wf(delta, t)
        return
    if isinstance(ty, TBox):
        check_psi_wf(delta, ty.psi)
        return
    raise _fail(f"unknown type form {type(ty).__name__}", "tal.type-wf", ty)


def check_psi_wf(delta: Delta, psi: HeapValType) -> None:
    """``Delta |- psi``."""
    if isinstance(psi, TupleTy):
        for t in psi.items:
            check_type_wf(delta, t)
        return
    if isinstance(psi, CodeType):
        check_delta_wf(psi.delta)
        shadowed = {b.name for b in psi.delta}
        outer = tuple(b for b in delta if b.name not in shadowed)
        inner = outer + psi.delta
        check_chi_wf(inner, psi.chi)
        check_stack_wf(inner, psi.sigma)
        check_q_wf(inner, psi.q)
        return
    raise _fail(f"unknown heap type form {type(psi).__name__}",
                "tal.psi-wf", psi)


def check_stack_wf(delta: Delta, sigma: StackTy) -> None:
    """``Delta |- sigma``."""
    for t in sigma.prefix:
        check_type_wf(delta, t)
    if sigma.tail is not None and not delta_contains(
            delta, KIND_ZETA, sigma.tail):
        raise _fail(f"unbound stack variable {sigma.tail!r}",
                    "tal.stack-wf", sigma)


def check_chi_wf(delta: Delta, chi: RegFileTy) -> None:
    """``Delta |- chi``."""
    for _, t in chi.items():
        check_type_wf(delta, t)


def check_q_wf(delta: Delta, q: RetMarker) -> None:
    """``Delta |- q`` -- free-variable well-formedness only.

    Positional validity against ``chi``/``sigma`` is the separate
    restriction judgment :func:`check_q_restriction`.
    """
    if isinstance(q, (QReg, QIdx, QOut)):
        return
    if isinstance(q, QEps):
        if not delta_contains(delta, KIND_EPS, q.name):
            raise _fail(f"unbound return-marker variable {q.name!r}",
                        "tal.q-wf", q)
        return
    if isinstance(q, QEnd):
        check_type_wf(delta, q.ty)
        check_stack_wf(delta, q.sigma)
        return
    raise _fail(f"unknown return marker form {type(q).__name__}",
                "tal.q-wf", q)


def check_q_restriction(delta: Delta, chi: RegFileTy, sigma: StackTy,
                        q: RetMarker) -> None:
    """The paper's ``Delta'[Delta]; chi; sigma |- q`` restriction.

    Ensures a block of instructions "knows where it is returning": the
    marker must designate a *visible*, continuation-shaped code pointer (or
    be ``end{...}``/``out``, or an ``eps`` bound by the block's own Delta).
    """
    if isinstance(q, QReg):
        ty = chi.get(q.reg)
        if ty is None:
            raise _fail(
                f"return marker {q} names a register absent from chi = "
                f"{chi}", "tal.q-restriction", q)
        if not is_continuation_type(ty):
            raise _fail(
                f"return-marker register {q.reg} holds {ty}, which is not "
                "a continuation-shaped code pointer "
                "(box forall[].{r': tau; sigma'} q')",
                "tal.q-restriction", q)
        return
    if isinstance(q, QIdx):
        if not sigma.has_slot(q.index):
            raise _fail(
                f"return marker {q} names stack slot {q.index}, which is "
                f"not exposed in sigma = {sigma}", "tal.q-restriction", q)
        ty = sigma.slot(q.index)
        if not is_continuation_type(ty):
            raise _fail(
                f"return-marker stack slot {q.index} holds {ty}, which is "
                "not a continuation-shaped code pointer",
                "tal.q-restriction", q)
        return
    if isinstance(q, QEps):
        if not delta_contains(delta, KIND_EPS, q.name):
            raise _fail(
                f"return marker is the unbound variable {q.name!r}; "
                "components cannot abstract their own return markers",
                "tal.q-restriction", q)
        return
    if isinstance(q, QEnd):
        check_q_wf(delta, q)
        return
    if isinstance(q, QOut):
        return
    raise _fail(f"unknown return marker form {type(q).__name__}",
                "tal.q-restriction", q)


def check_chi_minus_q_wf(delta: Delta, chi: RegFileTy, q: RetMarker) -> None:
    """The paper's ``Delta |- chi \\ q``.

    When ``q`` is a register, the rest of ``chi`` (everything except that
    register) must be well-formed under ``Delta`` alone; i.e. only the
    return-continuation entry may mention the callee's abstract ``zeta`` and
    ``eps``.
    """
    trimmed = chi.without(q.reg) if isinstance(q, QReg) else chi
    check_chi_wf(delta, trimmed)

"""Small-step operational semantics of T: ``<M | e> --> <M' | e'>`` (sec 3).

The machine executes instruction sequences against a mutable
:class:`~repro.tal.heap.Memory`.  Loading a component ``(I, H)`` merges its
local heap fragment into the global heap under *fresh* locations (renaming
every reference inside the component), exactly as the paper's operational
semantics prescribes -- so structurally identical components loaded twice
never interfere.

Control transfers emit :class:`TraceEvent` records carrying the register
and stack state *at jump time*; :mod:`repro.analysis.trace` reconstructs the
paper's control-flow diagrams (Figs 4 and 12) from these events.

Type instantiations are erased-but-carried: word values of the form
``loc[omega...]`` keep their instantiations so that jumping through them can
substitute concrete types into the target block's instructions (whose
``call``/``halt``/``import`` annotations mention the block's type
variables).  A well-typed program never jumps to a block with leftover
binders; the machine checks this and raises :class:`MachineError` otherwise
(such states are "stuck" in the paper's terminology).

FT's extra instructions are handled by the subclass hook
:meth:`TalMachine.exec_extended_instruction`.
"""

from __future__ import annotations

import itertools
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.errors import MachineError, SnapshotError
from repro.obs.events import MachineEvent, OBS
from repro.obs.profile import PROFILER
from repro.resilience.budget import Budget
from repro.resilience.checkpoint import MachineSnapshot
from repro.tal.heap import Memory, RegSnapshot, StackSnapshot
from repro.tal.subst import instantiate_code_block
from repro.tal.syntax import (
    Aop, Balloc, Bnz, BOX, Call, Component, Fold, Halt, HCode, HeapValue,
    HTuple, InstrSeq, Instruction, Jmp, KIND_ALPHA, Ld, Loc, Mv, Operand,
    Pack, Ralloc, REF, RegOp, Ret, Salloc, Sfree, Sld, Sst, St, StackTy,
    TalType, Terminator, TyApp, UnfoldI, Unpack, WInt, WLoc, WordValue,
    WUnit, fresh_loc,
)
from repro.tal.subst import Subst, subst_instr_seq, subst_ty

__all__ = [
    "TraceEvent", "HaltedState", "TalMachine", "rename_locs",
    "register_loc_renamer", "run_component", "TAL_ENGINES",
    "resolve_tal_engine",
]

#: The selectable T execution engines: the reference stepper and the
#: direct-threaded fast tier (:mod:`repro.tal.fast`).
TAL_ENGINES = ("ref", "fast")


def resolve_tal_engine(name: Optional[str]) -> str:
    """Validate a ``--tal-engine`` choice; ``None`` falls back to the
    ``FUNTAL_TAL_ENGINE`` environment variable, then to ``ref``."""
    if name is None:
        name = os.environ.get("FUNTAL_TAL_ENGINE") or "ref"
    if name not in TAL_ENGINES:
        raise ValueError(
            f"unknown tal engine {name!r} (expected one of "
            f"{', '.join(TAL_ENGINES)})")
    return name


# ---------------------------------------------------------------------------
# Location renaming (component-heap merging)
# ---------------------------------------------------------------------------

_RENAME_HOOKS: Dict[type, Callable] = {}


def register_loc_renamer(cls: type, fn: Callable) -> None:
    """Register a renaming traversal for an FT instruction class."""
    _RENAME_HOOKS[cls] = fn


def rename_locs(x, mapping: Dict[Loc, Loc]):
    """Rename heap labels throughout a syntactic object.

    Types never mention locations, so only value/instruction layers are
    traversed.
    """
    if isinstance(x, WLoc):
        return WLoc(mapping.get(x.loc, x.loc))
    if isinstance(x, (WUnit, WInt, RegOp)):
        return x
    if isinstance(x, Pack):
        return Pack(x.hidden, rename_locs(x.body, mapping), x.as_ty)
    if isinstance(x, Fold):
        return Fold(x.as_ty, rename_locs(x.body, mapping))
    if isinstance(x, TyApp):
        return TyApp(rename_locs(x.body, mapping), x.insts)
    if isinstance(x, InstrSeq):
        return InstrSeq(
            tuple(rename_locs(i, mapping) for i in x.instrs),
            rename_locs(x.term, mapping))
    if isinstance(x, Instruction):
        hook = _RENAME_HOOKS.get(type(x))
        if hook is not None:
            return hook(x, mapping, rename_locs)
        if isinstance(x, Aop):
            return Aop(x.op, x.rd, x.rs, rename_locs(x.u, mapping))
        if isinstance(x, Bnz):
            return Bnz(x.r, rename_locs(x.u, mapping))
        if isinstance(x, Mv):
            return Mv(x.rd, rename_locs(x.u, mapping))
        if isinstance(x, Unpack):
            return Unpack(x.alpha, x.rd, rename_locs(x.u, mapping))
        if isinstance(x, UnfoldI):
            return UnfoldI(x.rd, rename_locs(x.u, mapping))
        return x  # ld/st/ralloc/balloc/salloc/sfree/sld/sst carry no operands
    if isinstance(x, Terminator):
        if isinstance(x, Jmp):
            return Jmp(rename_locs(x.u, mapping))
        if isinstance(x, Call):
            return Call(rename_locs(x.u, mapping), x.sigma, x.q)
        return x  # ret/halt name registers and types only
    if isinstance(x, HTuple):
        return HTuple(tuple(rename_locs(w, mapping) for w in x.words))
    if isinstance(x, HCode):
        return HCode(x.delta, x.chi, x.sigma, x.q,
                     rename_locs(x.instrs, mapping))
    raise TypeError(f"rename_locs: unsupported {type(x).__name__}")


# ---------------------------------------------------------------------------
# Traces and halt states
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class TraceEvent:
    """One control-transfer (or component-entry) event."""

    step: int
    kind: str                  # enter | jmp | call | ret | bnz | halt | boundary
    target: Optional[str]      # pretty label of the destination block
    regs: RegSnapshot
    stack: StackSnapshot
    detail: str = ""

    def pretty_label(self) -> str:
        return self.target.split("%")[0] if self.target else ""

    def __str__(self) -> str:
        regs = ", ".join(f"{r} -> {w}" for r, w in self.regs)
        stack = " :: ".join(str(w) for w in self.stack) or "nil"
        where = f" -> {self.pretty_label()}" if self.target else ""
        info = f" ({self.detail})" if self.detail else ""
        return f"[{self.step}] {self.kind}{where}{info} | {regs} | {stack}"


@dataclass(frozen=True)
class HaltedState:
    """Terminal machine state: ``halt tau, sigma {r}`` was executed."""

    word: WordValue
    ty: TalType
    sigma: StackTy
    reg: str


MachineState = Union[InstrSeq, HaltedState]


# ---------------------------------------------------------------------------
# The machine
# ---------------------------------------------------------------------------

class TalMachine:
    """Executes T instruction sequences against a shared memory.

    Every machine runs under a :class:`~repro.resilience.budget.Budget`
    (fuel + heap cells + stack depth); the budget is shared with the
    machine's :class:`Memory` so allocation and stack growth are charged
    in one place.  A machine whose budget trips mid-run retains its
    state: :meth:`snapshot` captures it as a picklable, content-hashed
    checkpoint and :meth:`restore`/:meth:`resume` continue it -- in the
    same process or another one.
    """

    kind = "t"

    def __init__(self, memory: Optional[Memory] = None,
                 trace: bool = False, max_events: Optional[int] = None,
                 budget: Optional[Budget] = None,
                 tal_engine: Optional[str] = None):
        self.budget = budget if budget is not None else Budget()
        self.memory = memory if memory is not None else Memory()
        if self.memory.budget is None:
            self.memory.budget = self.budget
        self.trace_enabled = trace
        self.trace: List[TraceEvent] = []
        self.max_events = max_events
        self._truncated = False
        self.steps = 0
        self._state: Optional[MachineState] = None
        self.tal_engine = resolve_tal_engine(tal_engine)
        # Fast-tier installation state (fresh per machine, never
        # snapshotted: a restored machine re-lowers blocks on demand).
        self._fast_blocks: Dict[Loc, object] = {}
        self._fast_entries: Dict[int, tuple] = {}
        self._fast_residual: Optional[MachineState] = None

    # -- tracing ------------------------------------------------------

    def emit(self, kind: str, target: Optional[str] = None,
             detail: str = "") -> None:
        publish = OBS.enabled and OBS.bus.active
        if not (self.trace_enabled and not self._truncated) and not publish:
            return
        ev = TraceEvent(
            self.steps, kind, target, self.memory.snapshot_regs(),
            self.memory.snapshot_stack(), detail)
        if self.trace_enabled and not self._truncated:
            if self.max_events is None or len(self.trace) < self.max_events:
                self.trace.append(ev)
            else:
                # cap hit: record one sentinel, then stop retaining events
                # so fuel-heavy runs can't exhaust memory while tracing.
                self._truncated = True
                self.trace.append(TraceEvent(
                    self.steps, "truncated", None, (), (),
                    f"trace capped at {self.max_events} events"))
                if OBS.enabled:
                    OBS.metrics.inc("trace.truncated")
        if publish:
            OBS.bus.publish(MachineEvent(
                ev.step, ev.kind, ev.target,
                tuple((r, str(w)) for r, w in ev.regs),
                tuple(str(w) for w in ev.stack), ev.detail,
                time.perf_counter_ns()))

    # -- component loading --------------------------------------------

    def load_component(self, comp: Component) -> InstrSeq:
        """Merge the component's heap fragment into the global heap under
        fresh labels and return its (renamed) entry sequence."""
        mapping = {loc: fresh_loc(loc.name) for loc, _ in comp.heap}
        for loc, h in comp.heap:
            self.memory.bind(mapping[loc], rename_locs(h, mapping), BOX)
        instrs = rename_locs(comp.instrs, mapping)
        if self.tal_engine == "fast":
            from repro.tal import fast
            fast.install_component(self, comp, mapping, instrs)
        if OBS.enabled:
            OBS.metrics.inc("t.machine.components_loaded")
        self.emit("enter", None,
                  detail=f"merged {len(mapping)} block(s)")
        return instrs

    # -- operand resolution -------------------------------------------

    def resolve(self, u: Operand) -> WordValue:
        """Evaluate a small value to a word value (reading registers)."""
        if isinstance(u, (WUnit, WInt, WLoc)):
            return u
        if isinstance(u, RegOp):
            return self.memory.get_reg(u.reg)
        if isinstance(u, Pack):
            return Pack(u.hidden, self.resolve(u.body), u.as_ty)
        if isinstance(u, Fold):
            return Fold(u.as_ty, self.resolve(u.body))
        if isinstance(u, TyApp):
            body = self.resolve(u.body)
            if isinstance(body, TyApp):
                return TyApp(body.body, body.insts + u.insts)
            return TyApp(body, u.insts)
        raise MachineError(f"cannot resolve operand {u}")

    def resolve_code_target(self, u: Operand) -> Tuple[Loc, Tuple]:
        """Resolve a jump operand to a location plus its accumulated
        type instantiations (innermost first)."""
        w = self.resolve(u)
        omegas: Tuple = ()
        while isinstance(w, TyApp):
            omegas = tuple(w.insts) + omegas
            w = w.body
        if not isinstance(w, WLoc):
            raise MachineError(f"jump to non-location value {w}")
        return w.loc, omegas

    def resolve_int(self, u: Operand) -> int:
        w = self.resolve(u)
        if not isinstance(w, WInt):
            raise MachineError(f"expected an integer, got {w}")
        return w.value

    # -- jumping -------------------------------------------------------

    def enter_block(self, loc: Loc, omegas: Tuple,
                    extra: Tuple = ()) -> InstrSeq:
        block = self.memory.code_at(loc)
        all_omegas = omegas + extra
        if len(all_omegas) > len(block.delta):
            raise MachineError(
                f"block {loc} instantiated with {len(all_omegas)} "
                f"arguments but abstracts {len(block.delta)}")
        if OBS.enabled:
            OBS.metrics.inc("t.subst.instantiate")
        if PROFILER.enabled:
            PROFILER.enter_t(loc.name, block)
        inst = instantiate_code_block(block, all_omegas)
        if inst.delta:
            raise MachineError(
                f"jump to block {loc} with uninstantiated binders "
                f"{[str(b) for b in inst.delta]}")
        return inst.instrs

    # -- instruction execution ----------------------------------------

    def exec_instruction(self, i: Instruction, rest: InstrSeq) -> InstrSeq:
        """Execute one straight-line instruction; returns the remainder of
        the sequence (which ``unpack`` rewrites via type substitution)."""
        mem = self.memory
        if isinstance(i, Mv):
            mem.set_reg(i.rd, self.resolve(i.u))
            return rest
        if isinstance(i, Aop):
            left = mem.get_reg(i.rs)
            if not isinstance(left, WInt):
                raise MachineError(f"aop source {i.rs} holds non-int {left}")
            right = self.resolve_int(i.u)
            ops = {"add": lambda a, b: a + b, "sub": lambda a, b: a - b,
                   "mul": lambda a, b: a * b}
            mem.set_reg(i.rd, WInt(ops[i.op](left.value, right)))
            return rest
        if isinstance(i, Ld):
            ptr = mem.get_reg(i.rs)
            if not isinstance(ptr, WLoc):
                raise MachineError(f"ld through non-pointer {ptr}")
            tup = mem.tuple_at(ptr.loc)
            if not 0 <= i.index < len(tup.words):
                raise MachineError(f"ld index {i.index} out of range")
            mem.set_reg(i.rd, tup.words[i.index])
            return rest
        if isinstance(i, St):
            ptr = mem.get_reg(i.rd)
            if not isinstance(ptr, WLoc):
                raise MachineError(f"st through non-pointer {ptr}")
            mem.store_field(ptr.loc, i.index, mem.get_reg(i.rs))
            return rest
        if isinstance(i, Ralloc):
            words = mem.pop(i.n)
            loc = mem.alloc(HTuple(tuple(words)), REF)
            mem.set_reg(i.rd, WLoc(loc))
            return rest
        if isinstance(i, Balloc):
            words = mem.pop(i.n)
            loc = mem.alloc(HTuple(tuple(words)), BOX)
            mem.set_reg(i.rd, WLoc(loc))
            return rest
        if isinstance(i, Salloc):
            mem.push(*([WUnit()] * i.n))
            return rest
        if isinstance(i, Sfree):
            mem.pop(i.n)
            return rest
        if isinstance(i, Sld):
            mem.set_reg(i.rd, mem.peek(i.index))
            return rest
        if isinstance(i, Sst):
            mem.poke(i.index, mem.get_reg(i.rs))
            return rest
        if isinstance(i, Unpack):
            w = self.resolve(i.u)
            if not isinstance(w, Pack):
                raise MachineError(f"unpack of non-package value {w}")
            mem.set_reg(i.rd, w.body)  # type: ignore[arg-type]
            if OBS.enabled:
                OBS.metrics.inc("t.subst.unpack")
            return subst_instr_seq(
                rest, Subst.single(KIND_ALPHA, i.alpha, w.hidden))
        if isinstance(i, UnfoldI):
            w = self.resolve(i.u)
            if not isinstance(w, Fold):
                raise MachineError(f"unfold of non-fold value {w}")
            mem.set_reg(i.rd, w.body)  # type: ignore[arg-type]
            return rest
        return self.exec_extended_instruction(i, rest)

    def exec_extended_instruction(self, i: Instruction,
                                  rest: InstrSeq) -> InstrSeq:
        """Hook for the FT machine's ``import``/``protect``."""
        raise MachineError(
            f"instruction {type(i).__name__} is not a pure T instruction "
            "(use the FT machine for mixed programs)")

    # -- terminator execution ------------------------------------------

    def exec_terminator(self, t: Terminator) -> MachineState:
        if isinstance(t, Halt):
            word = self.memory.get_reg(t.r)
            state = HaltedState(word, t.ty, t.sigma, t.r)
            self.emit("halt", None, detail=f"{t.r} -> {word}")
            return state
        if isinstance(t, Jmp):
            loc, omegas = self.resolve_code_target(t.u)
            self.emit("jmp", loc.name)
            return self.enter_block(loc, omegas)
        if isinstance(t, Call):
            loc, omegas = self.resolve_code_target(t.u)
            self.emit("call", loc.name)
            return self.enter_block(loc, omegas, extra=(t.sigma, t.q))
        if isinstance(t, Ret):
            loc, omegas = self.resolve_code_target(RegOp(t.r))
            self.emit("ret", loc.name, detail=f"result in {t.rr}")
            return self.enter_block(loc, omegas)
        raise MachineError(f"unknown terminator {type(t).__name__}")

    # -- driving --------------------------------------------------------

    def step(self, state: MachineState) -> MachineState:
        """One small step; halted states are fixed points."""
        if isinstance(state, HaltedState):
            return state
        self.steps += 1
        if OBS.enabled:
            OBS.metrics.inc("t.machine.steps")
        if PROFILER.enabled:
            PROFILER.step_t()
        if state.instrs:
            head, rest = state.instrs[0], state.rest
            if isinstance(head, Bnz):
                # bnz is straight-line *or* a jump; handle it here where
                # both continuations are at hand.
                scrut = self.memory.get_reg(head.r)
                if not isinstance(scrut, WInt):
                    raise MachineError(
                        f"bnz scrutinee {head.r} holds non-int {scrut}")
                if scrut.value != 0:
                    loc, omegas = self.resolve_code_target(head.u)
                    self.emit("bnz", loc.name, detail="taken")
                    return self.enter_block(loc, omegas)
                return rest
            return self.exec_instruction(head, rest)
        return self.exec_terminator(state.term)

    def run_seq(self, iseq: InstrSeq,
                fuel: Optional[int] = None) -> HaltedState:
        """Drive ``iseq`` to a halt under the machine's budget.

        Each ``run_seq`` call is a fresh top-level run: the fuel spend is
        reset (and, if ``fuel`` is given, the ceiling replaced) before
        driving.  Use :meth:`resume` to continue an interrupted run
        without resetting.
        """
        self.budget.refill(fuel)
        return self._drive(iseq)

    def resume(self, fuel: Optional[int] = None) -> HaltedState:
        """Continue an interrupted run (e.g. after restoring a snapshot).

        ``fuel`` refills the budget for this slice; without it the run
        picks up whatever fuel remains unspent.
        """
        if self._state is None:
            raise SnapshotError("machine has no suspended state to resume")
        if fuel is not None:
            self.budget.refill(fuel)
        return self._drive(self._state)

    def _drive(self, state: MachineState) -> HaltedState:
        if self.tal_engine == "fast":
            from repro.tal import fast
            if not fast.instrumented(self):
                return fast.fast_drive(self, state)
        budget = self.budget
        prof = PROFILER if PROFILER.enabled else None
        prof_base = prof.enter_engine() if prof is not None else 0
        with OBS.span("t.run_seq", "t"):
            try:
                while not isinstance(state, HaltedState):
                    budget.consume_fuel()
                    state = self.step(state)
                return state
            except RecursionError:
                raise budget.depth_error() from None
            finally:
                # Keep the suspended (or halted) state live so a tripped
                # governor leaves the machine checkpointable.
                if prof is not None:
                    prof.exit_engine(prof_base)
                self._state = state

    def run_component(self, comp: Component,
                      fuel: Optional[int] = None) -> HaltedState:
        return self.run_seq(self.load_component(comp), fuel)

    # -- checkpointing -------------------------------------------------

    def snapshot_resumable(self) -> dict:
        """The picklable state dict a checkpoint carries; subclasses
        extend it with their own suspension records."""
        return {
            "memory": self.memory,
            "state": self._state,
            "budget": self.budget,
            "steps": self.steps,
            "tal_engine": self.tal_engine,
        }

    def snapshot(self) -> MachineSnapshot:
        """Capture the machine as a content-hashed, picklable checkpoint.

        Valid whenever the machine is not mid-:meth:`step` -- in
        practice: after a budget governor tripped, or after a halt.
        """
        return MachineSnapshot.capture(self.kind, self.snapshot_resumable())

    def _restore_resumable(self, state: dict) -> None:
        self.steps = state.get("steps", 0)
        self._state = state.get("state")
        # Snapshots are engine-portable: honour the recorded engine but
        # tolerate snapshots from before the fast tier existed.
        try:
            self.tal_engine = resolve_tal_engine(state.get("tal_engine"))
        except ValueError:
            self.tal_engine = "ref"

    @classmethod
    def restore(cls, snapshot: MachineSnapshot, trace: bool = False,
                max_events: Optional[int] = None) -> "TalMachine":
        """Revive a checkpoint into a fresh machine (same or different
        process); drive it on with :meth:`resume`."""
        if snapshot.kind != cls.kind:
            raise SnapshotError(
                f"cannot restore a {snapshot.kind!r} snapshot into "
                f"{cls.__name__}")
        state = snapshot.state()
        machine = cls(memory=state["memory"], trace=trace,
                      max_events=max_events, budget=state["budget"])
        machine._restore_resumable(state)
        return machine


def run_component(comp: Component, fuel: Optional[int] = None,
                  trace: bool = False,
                  max_events: Optional[int] = None,
                  budget: Optional[Budget] = None,
                  tal_engine: Optional[str] = None
                  ) -> Tuple[HaltedState, TalMachine]:
    """Run a closed T component in a fresh memory; returns the halt state
    and the machine (for its memory and trace)."""
    machine = TalMachine(trace=trace, max_events=max_events, budget=budget,
                         tal_engine=tal_engine)
    return machine.run_component(comp, fuel), machine

"""The T type system (paper Fig 2 plus the standard elided rules).

Judgments implemented:

* operand typing             ``Psi; Delta; chi |- u : tau``
* instruction typing         ``Psi; Delta; chi; sigma; q |- iota => Delta'; chi'; sigma'; q'``
* sequence typing            ``Psi; Delta; chi; sigma; q |- I``
* terminator typing          (the ``jmp``/``call``/``ret``/``halt`` cases of the above)
* heap-value typing          ``Psi |- h : psi``
* component typing           ``Psi; Delta; chi; sigma; q |- (I, H) : tau; sigma'``
* runtime word/memory typing ``Psi |- w : tau``, ``Psi |- M`` (for the
  preservation property tests; the paper elides these as standard)

The threading of the four-tuple ``(Delta, chi, sigma, q)`` through an
instruction sequence is packaged as :class:`InstrState`; each instruction
consumes one state and produces the next, mirroring the paper's
postcondition-becomes-precondition discipline (illustrated by the
``mv 42 / salloc / sst`` example in section 3, reproduced in our tests).

Return-marker bookkeeping follows the paper exactly:

* ``mv`` has two cases -- moving an ordinary value, and moving the return
  continuation itself, which relocates the marker to the destination
  register;
* ``sst``/``sld`` similarly relocate the marker between a register and a
  stack slot;
* stack allocation/free/``ralloc``/``balloc`` shift a stack-index marker by
  the number of cells pushed or popped, and may never consume the marker
  slot;
* no ordinary instruction may overwrite the register or slot holding the
  marker.

The two ``call`` rules (current marker ``end{...}`` vs a stack index ``i``)
implement the paper's relocation arithmetic: with ``m`` exposed input slots
and ``n`` exposed continuation-output slots on the callee's type, a marker
at slot ``i >= m`` resurfaces at slot ``i + n - m``.

FT's extra instructions hook in through :class:`TalTypechecker` subclassing
(see :class:`repro.ft.typecheck.FTTypechecker`).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

from repro.errors import FTTypeError
from repro.obs.events import OBS
from repro.tal.equality import (
    chis_equal, qs_equal, stacks_equal, types_equal,
)
from repro.tal.retmarker import continuation_parts, ret_addr_type, ret_type
from repro.tal.subst import (
    Subst, free_type_vars, instantiate_code_type, subst_chi, subst_q,
    subst_stack, subst_ty,
)
from repro.tal.subtyping import check_regfile_subtype
from repro.tal.syntax import (
    Aop, Balloc, Bnz, BOX, Call, CodeType, Component, Delta, DeltaBind,
    delta_contains, Fold, Halt, HCode, HeapTy, HeapValType, HeapValue,
    HTuple, InstrSeq, Instruction, Jmp, KIND_ALPHA, KIND_EPS, KIND_ZETA, Ld,
    Loc, Mv, NIL_STACK, Operand, Pack, QEnd, QEps, QIdx, QOut, QReg, Ralloc,
    REF, RegFileTy, RegOp, Ret, RetMarker, Salloc, Sfree, Sld, Sst, St,
    StackTy, TalType, TBox, Terminator, TExists, TInt, TRec, TRef, TupleTy,
    TUnit, TVar, TyApp, UnfoldI, Unpack, WInt, WLoc, WordValue, WUnit,
)
from repro.tal.wellformed import (
    check_chi_minus_q_wf, check_chi_wf, check_delta_wf, check_psi_wf,
    check_q_restriction, check_q_wf, check_stack_wf, check_type_wf,
)

__all__ = [
    "InstrState", "TalTypechecker", "check_component", "check_program",
    "type_of_word", "check_memory",
]


@dataclass(frozen=True)
class InstrState:
    """The ``(Delta; chi; sigma; q)`` context threaded through a sequence."""

    delta: Delta
    chi: RegFileTy
    sigma: StackTy
    q: RetMarker

    def __str__(self) -> str:
        delta = ", ".join(str(b) for b in self.delta) or "."
        return f"{delta}; {self.chi}; {self.sigma}; {self.q}"


def _fail(msg: str, judgment: str, subject) -> FTTypeError:
    return FTTypeError(msg, judgment=judgment, subject=str(subject))


class TalTypechecker:
    """Typechecker for T terms under a fixed static heap typing ``Psi``."""

    def __init__(self, psi: Optional[HeapTy] = None):
        self.psi = psi if psi is not None else HeapTy()

    def with_psi(self, psi: HeapTy) -> "TalTypechecker":
        """A copy of this checker (same dialect) under a different ``Psi``."""
        clone = type(self).__new__(type(self))
        clone.__dict__.update(self.__dict__)
        clone.psi = psi
        return clone

    # ------------------------------------------------------------------
    # Operands:  Psi; Delta; chi |- u : tau
    # ------------------------------------------------------------------

    def type_of_operand(self, delta: Delta, chi: RegFileTy,
                        u: Operand) -> TalType:
        if isinstance(u, WUnit):
            return TUnit()
        if isinstance(u, WInt):
            return TInt()
        if isinstance(u, WLoc):
            entry = self.psi.get(u.loc)
            if entry is None:
                raise _fail(f"location {u.loc} not in Psi",
                            "tal.operand", u)
            nu, psi = entry
            if nu == BOX:
                return TBox(psi)
            if not isinstance(psi, TupleTy):
                raise _fail(
                    f"mutable location {u.loc} holds non-tuple type {psi}",
                    "tal.operand", u)
            return TRef(psi.items)
        if isinstance(u, RegOp):
            ty = chi.get(u.reg)
            if ty is None:
                raise _fail(f"register {u.reg} not in chi = {chi}",
                            "tal.operand", u)
            return ty
        if isinstance(u, Pack):
            if not isinstance(u.as_ty, TExists):
                raise _fail(f"pack annotation {u.as_ty} is not existential",
                            "tal.operand", u)
            check_type_wf(delta, u.hidden)
            check_type_wf(delta, u.as_ty)
            body_ty = self.type_of_operand(delta, chi, u.body)
            expected = subst_ty(
                u.as_ty.body,
                Subst.single(KIND_ALPHA, u.as_ty.var, u.hidden))
            if not types_equal(body_ty, expected):
                raise _fail(
                    f"pack body has type {body_ty}, expected {expected}",
                    "tal.operand", u)
            return u.as_ty
        if isinstance(u, Fold):
            if not isinstance(u.as_ty, TRec):
                raise _fail(f"fold annotation {u.as_ty} is not recursive",
                            "tal.operand", u)
            check_type_wf(delta, u.as_ty)
            body_ty = self.type_of_operand(delta, chi, u.body)
            unrolled = subst_ty(
                u.as_ty.body,
                Subst.single(KIND_ALPHA, u.as_ty.var, u.as_ty))
            if not types_equal(body_ty, unrolled):
                raise _fail(
                    f"fold body has type {body_ty}, expected unrolling "
                    f"{unrolled}", "tal.operand", u)
            return u.as_ty
        if isinstance(u, TyApp):
            body_ty = self.type_of_operand(delta, chi, u.body)
            if not isinstance(body_ty, TBox) or not isinstance(
                    body_ty.psi, CodeType):
                raise _fail(
                    f"type application to non-code-pointer type {body_ty}",
                    "tal.operand", u)
            ct = body_ty.psi
            if len(u.insts) > len(ct.delta):
                raise _fail(
                    f"too many instantiations ({len(u.insts)}) for "
                    f"{ct}", "tal.operand", u)
            for omega in u.insts:
                self._check_omega_wf(delta, omega)
            return TBox(instantiate_code_type(ct, tuple(u.insts)))
        raise _fail(f"unknown operand form {type(u).__name__}",
                    "tal.operand", u)

    def _check_omega_wf(self, delta: Delta, omega) -> None:
        if isinstance(omega, TalType):
            check_type_wf(delta, omega)
        elif isinstance(omega, StackTy):
            check_stack_wf(delta, omega)
        elif isinstance(omega, RetMarker):
            check_q_wf(delta, omega)
        else:  # pragma: no cover - TyApp constructor already rejects
            raise _fail(f"bad instantiation {omega!r}", "tal.omega", omega)

    # ------------------------------------------------------------------
    # Single instructions
    # ------------------------------------------------------------------

    def step_instruction(self, st: InstrState, i: Instruction) -> InstrState:
        """``Psi; Delta; chi; sigma; q |- iota => Delta'; chi'; sigma'; q'``."""
        if OBS.enabled:
            OBS.metrics.inc(f"typecheck.t.instr.{type(i).__name__.lower()}")
        if isinstance(i, Mv):
            return self._step_mv(st, i)
        if isinstance(i, Aop):
            return self._step_aop(st, i)
        if isinstance(i, Bnz):
            return self._step_bnz(st, i)
        if isinstance(i, Ld):
            return self._step_ld(st, i)
        if isinstance(i, St):
            return self._step_st(st, i)
        if isinstance(i, Ralloc):
            return self._step_alloc(st, i.rd, i.n, mutable=True, subject=i)
        if isinstance(i, Balloc):
            return self._step_alloc(st, i.rd, i.n, mutable=False, subject=i)
        if isinstance(i, Salloc):
            return self._step_salloc(st, i)
        if isinstance(i, Sfree):
            return self._step_sfree(st, i)
        if isinstance(i, Sld):
            return self._step_sld(st, i)
        if isinstance(i, Sst):
            return self._step_sst(st, i)
        if isinstance(i, Unpack):
            return self._step_unpack(st, i)
        if isinstance(i, UnfoldI):
            return self._step_unfold(st, i)
        return self.step_extended_instruction(st, i)

    def step_extended_instruction(self, st: InstrState,
                                  i: Instruction) -> InstrState:
        """Hook for multi-language instructions; pure T has none."""
        raise _fail(
            f"instruction {type(i).__name__} is not a pure T instruction "
            "(use the FT typechecker for mixed programs)",
            "tal.instruction", i)

    def _guard_not_marker_dest(self, st: InstrState, rd: str,
                               subject) -> None:
        if isinstance(st.q, QReg) and st.q.reg == rd:
            raise _fail(
                f"instruction would overwrite the return marker register "
                f"{rd}", "tal.instruction", subject)

    def _step_mv(self, st: InstrState, i: Mv) -> InstrState:
        # Second mv case (paper Fig 2): moving the return continuation
        # itself relocates the marker to rd.
        if (isinstance(i.u, RegOp) and isinstance(st.q, QReg)
                and i.u.reg == st.q.reg):
            ty = st.chi.get(i.u.reg)
            if ty is None:  # pragma: no cover - q-restriction precludes
                raise _fail(f"marker register {i.u.reg} untyped",
                            "tal.instruction", i)
            return replace(st, chi=st.chi.set(i.rd, ty), q=QReg(i.rd))
        # First case: an ordinary move; may not clobber the marker.
        self._guard_not_marker_dest(st, i.rd, i)
        ty = self.type_of_operand(st.delta, st.chi, i.u)
        return replace(st, chi=st.chi.set(i.rd, ty))

    def _step_aop(self, st: InstrState, i: Aop) -> InstrState:
        self._guard_not_marker_dest(st, i.rd, i)
        src_ty = st.chi.get(i.rs)
        if src_ty is None or not isinstance(src_ty, TInt):
            raise _fail(
                f"arithmetic source {i.rs} has type {src_ty}, expected int",
                "tal.instruction", i)
        op_ty = self.type_of_operand(st.delta, st.chi, i.u)
        if not isinstance(op_ty, TInt):
            raise _fail(
                f"arithmetic operand has type {op_ty}, expected int",
                "tal.instruction", i)
        return replace(st, chi=st.chi.set(i.rd, TInt()))

    def _step_bnz(self, st: InstrState, i: Bnz) -> InstrState:
        scrut_ty = st.chi.get(i.r)
        if scrut_ty is None or not isinstance(scrut_ty, TInt):
            raise _fail(
                f"bnz scrutinee {i.r} has type {scrut_ty}, expected int",
                "tal.instruction", i)
        target = self.type_of_operand(st.delta, st.chi, i.u)
        ct = self._expect_instantiated_code(target, i)
        check_regfile_subtype(st.delta, st.chi, ct.chi)
        if not stacks_equal(st.sigma, ct.sigma):
            raise _fail(
                f"bnz target expects stack {ct.sigma}, current is "
                f"{st.sigma}", "tal.instruction", i)
        if not qs_equal(ct.q, st.q):
            raise _fail(
                f"bnz is an intra-component jump: target marker {ct.q} "
                f"must equal current marker {st.q}", "tal.instruction", i)
        return st

    def _expect_instantiated_code(self, ty: TalType, subject) -> CodeType:
        if (not isinstance(ty, TBox)
                or not isinstance(ty.psi, CodeType)):
            raise _fail(f"jump target has non-code type {ty}",
                        "tal.instruction", subject)
        if ty.psi.delta:
            raise _fail(
                f"jump target type {ty} still abstracts "
                f"{[str(b) for b in ty.psi.delta]}; instantiate first",
                "tal.instruction", subject)
        return ty.psi

    def _step_ld(self, st: InstrState, i: Ld) -> InstrState:
        self._guard_not_marker_dest(st, i.rd, i)
        src_ty = st.chi.get(i.rs)
        if isinstance(src_ty, TRef):
            items = src_ty.items
        elif isinstance(src_ty, TBox) and isinstance(src_ty.psi, TupleTy):
            items = src_ty.psi.items
        else:
            raise _fail(
                f"ld source {i.rs} has type {src_ty}, expected a tuple "
                "pointer", "tal.instruction", i)
        if not 0 <= i.index < len(items):
            raise _fail(
                f"ld index {i.index} out of range for {src_ty}",
                "tal.instruction", i)
        return replace(st, chi=st.chi.set(i.rd, items[i.index]))

    def _step_st(self, st: InstrState, i: St) -> InstrState:
        dst_ty = st.chi.get(i.rd)
        if not isinstance(dst_ty, TRef):
            raise _fail(
                f"st destination {i.rd} has type {dst_ty}; only mutable "
                "(ref) tuples may be stored to", "tal.instruction", i)
        if not 0 <= i.index < len(dst_ty.items):
            raise _fail(
                f"st index {i.index} out of range for {dst_ty}",
                "tal.instruction", i)
        src_ty = st.chi.get(i.rs)
        if src_ty is None:
            raise _fail(f"st source {i.rs} not in chi", "tal.instruction", i)
        if not types_equal(src_ty, dst_ty.items[i.index]):
            raise _fail(
                f"st stores {src_ty} into a field of type "
                f"{dst_ty.items[i.index]}", "tal.instruction", i)
        return st

    def _step_alloc(self, st: InstrState, rd: str, n: int, *,
                    mutable: bool, subject) -> InstrState:
        self._guard_not_marker_dest(st, rd, subject)
        if st.sigma.depth < n:
            raise _fail(
                f"allocation of {n} cells but only {st.sigma.depth} stack "
                f"slots exposed in {st.sigma}", "tal.instruction", subject)
        if isinstance(st.q, QIdx) and st.q.index < n:
            raise _fail(
                f"allocation would consume the return-marker slot "
                f"{st.q.index}", "tal.instruction", subject)
        taken = st.sigma.prefix[:n]
        new_ty: TalType = TRef(taken) if mutable else TBox(TupleTy(taken))
        new_q = QIdx(st.q.index - n) if isinstance(st.q, QIdx) else st.q
        return replace(st, chi=st.chi.set(rd, new_ty),
                       sigma=st.sigma.drop(n), q=new_q)

    def _step_salloc(self, st: InstrState, i: Salloc) -> InstrState:
        if i.n < 0:
            raise _fail("salloc of negative count", "tal.instruction", i)
        new_sigma = st.sigma.cons(*([TUnit()] * i.n))
        new_q = QIdx(st.q.index + i.n) if isinstance(st.q, QIdx) else st.q
        return replace(st, sigma=new_sigma, q=new_q)

    def _step_sfree(self, st: InstrState, i: Sfree) -> InstrState:
        if st.sigma.depth < i.n:
            raise _fail(
                f"sfree {i.n} but only {st.sigma.depth} slots exposed in "
                f"{st.sigma}", "tal.instruction", i)
        if isinstance(st.q, QIdx):
            if st.q.index < i.n:
                raise _fail(
                    f"sfree would free the return-marker slot "
                    f"{st.q.index}", "tal.instruction", i)
            return replace(st, sigma=st.sigma.drop(i.n),
                           q=QIdx(st.q.index - i.n))
        return replace(st, sigma=st.sigma.drop(i.n))

    def _step_sld(self, st: InstrState, i: Sld) -> InstrState:
        if not st.sigma.has_slot(i.index):
            raise _fail(
                f"sld from slot {i.index}, not exposed in {st.sigma}",
                "tal.instruction", i)
        ty = st.sigma.slot(i.index)
        # Loading the return continuation relocates the marker into rd.
        if isinstance(st.q, QIdx) and st.q.index == i.index:
            return replace(st, chi=st.chi.set(i.rd, ty), q=QReg(i.rd))
        self._guard_not_marker_dest(st, i.rd, i)
        return replace(st, chi=st.chi.set(i.rd, ty))

    def _step_sst(self, st: InstrState, i: Sst) -> InstrState:
        if not st.sigma.has_slot(i.index):
            raise _fail(
                f"sst to slot {i.index}, not exposed in {st.sigma}",
                "tal.instruction", i)
        ty = st.chi.get(i.rs)
        if ty is None:
            raise _fail(f"sst source {i.rs} not in chi", "tal.instruction", i)
        # Storing the return continuation relocates the marker to slot i.
        if isinstance(st.q, QReg) and st.q.reg == i.rs:
            return replace(st, sigma=st.sigma.set_slot(i.index, ty),
                           q=QIdx(i.index))
        if isinstance(st.q, QIdx) and st.q.index == i.index:
            raise _fail(
                f"sst would overwrite the return-marker slot {i.index}",
                "tal.instruction", i)
        return replace(st, sigma=st.sigma.set_slot(i.index, ty))

    def _step_unpack(self, st: InstrState, i: Unpack) -> InstrState:
        self._guard_not_marker_dest(st, i.rd, i)
        ty = self.type_of_operand(st.delta, st.chi, i.u)
        if not isinstance(ty, TExists):
            raise _fail(f"unpack of non-existential type {ty}",
                        "tal.instruction", i)
        if i.alpha in {b.name for b in st.delta}:
            raise _fail(
                f"unpack binder {i.alpha} shadows an existing type "
                "variable; pick a fresh name", "tal.instruction", i)
        opened = subst_ty(
            ty.body, Subst.single(KIND_ALPHA, ty.var, TVar(i.alpha)))
        return replace(
            st,
            delta=st.delta + (DeltaBind(KIND_ALPHA, i.alpha),),
            chi=st.chi.set(i.rd, opened))

    def _step_unfold(self, st: InstrState, i: UnfoldI) -> InstrState:
        self._guard_not_marker_dest(st, i.rd, i)
        ty = self.type_of_operand(st.delta, st.chi, i.u)
        if not isinstance(ty, TRec):
            raise _fail(f"unfold of non-recursive type {ty}",
                        "tal.instruction", i)
        unrolled = subst_ty(ty.body, Subst.single(KIND_ALPHA, ty.var, ty))
        return replace(st, chi=st.chi.set(i.rd, unrolled))

    # ------------------------------------------------------------------
    # Terminators
    # ------------------------------------------------------------------

    def check_terminator(self, st: InstrState, t: Terminator) -> None:
        if OBS.enabled:
            OBS.metrics.inc(f"typecheck.t.term.{type(t).__name__.lower()}")
        if isinstance(t, Halt):
            self._check_halt(st, t)
        elif isinstance(t, Jmp):
            self._check_jmp(st, t)
        elif isinstance(t, Ret):
            self._check_ret(st, t)
        elif isinstance(t, Call):
            self._check_call(st, t)
        else:
            raise _fail(f"unknown terminator {type(t).__name__}",
                        "tal.terminator", t)

    def _check_halt(self, st: InstrState, t: Halt) -> None:
        if not isinstance(st.q, QEnd):
            raise _fail(
                f"halt requires an end{{...}} return marker, current is "
                f"{st.q}", "tal.terminator", t)
        if not types_equal(t.ty, st.q.ty):
            raise _fail(
                f"halt announces type {t.ty} but the marker promises "
                f"{st.q.ty}", "tal.terminator", t)
        if not stacks_equal(t.sigma, st.q.sigma):
            raise _fail(
                f"halt announces stack {t.sigma} but the marker promises "
                f"{st.q.sigma}", "tal.terminator", t)
        if not stacks_equal(st.sigma, t.sigma):
            raise _fail(
                f"halt with stack {st.sigma}, expected {t.sigma}",
                "tal.terminator", t)
        val_ty = st.chi.get(t.r)
        if val_ty is None or not types_equal(val_ty, t.ty):
            raise _fail(
                f"halt register {t.r} has type {val_ty}, expected {t.ty}",
                "tal.terminator", t)

    def _check_jmp(self, st: InstrState, t: Jmp) -> None:
        target = self.type_of_operand(st.delta, st.chi, t.u)
        ct = self._expect_instantiated_code(target, t)
        check_regfile_subtype(st.delta, st.chi, ct.chi)
        if not stacks_equal(st.sigma, ct.sigma):
            raise _fail(
                f"jmp target expects stack {ct.sigma}, current is "
                f"{st.sigma}", "tal.terminator", t)
        if not qs_equal(ct.q, st.q):
            raise _fail(
                f"jmp is an intra-component jump: target marker {ct.q} "
                f"must equal current marker {st.q}", "tal.terminator", t)

    def _check_ret(self, st: InstrState, t: Ret) -> None:
        if not (isinstance(st.q, QReg) and st.q.reg == t.r):
            raise _fail(
                f"ret through {t.r} but the return marker is {st.q}",
                "tal.terminator", t)
        cont_ty = st.chi.get(t.r)
        parts = continuation_parts(cont_ty) if cont_ty is not None else None
        if parts is None:
            raise _fail(
                f"ret register {t.r} has non-continuation type {cont_ty}",
                "tal.terminator", t)
        expected_reg, val_ty, cont_sigma, _ = parts
        if t.rr != expected_reg:
            raise _fail(
                f"ret passes its result in {t.rr} but the continuation "
                f"expects it in {expected_reg}", "tal.terminator", t)
        actual = st.chi.get(t.rr)
        if actual is None or not types_equal(actual, val_ty):
            raise _fail(
                f"ret result register {t.rr} has type {actual}, the "
                f"continuation expects {val_ty}", "tal.terminator", t)
        if not stacks_equal(st.sigma, cont_sigma):
            raise _fail(
                f"ret with stack {st.sigma}, the continuation expects "
                f"{cont_sigma}", "tal.terminator", t)

    def _check_call(self, st: InstrState, t: Call) -> None:
        target = self.type_of_operand(st.delta, st.chi, t.u)
        if (not isinstance(target, TBox)
                or not isinstance(target.psi, CodeType)):
            raise _fail(f"call target has non-code type {target}",
                        "tal.terminator", t)
        ct = target.psi
        if (len(ct.delta) != 2 or ct.delta[0].kind != KIND_ZETA
                or ct.delta[1].kind != KIND_EPS):
            raise _fail(
                f"call target must abstract exactly [zeta, eps]; its type "
                f"is {ct}", "tal.terminator", t)
        zeta, eps = ct.delta[0].name, ct.delta[1].name
        check_chi_minus_q_wf(st.delta, ct.chi, ct.q)
        cont = ret_addr_type(ct.q, ct.chi, ct.sigma)
        if cont.delta:
            raise _fail(
                f"callee continuation type {cont} must have an empty "
                "Delta", "tal.terminator", t)
        if not (isinstance(cont.q, QEps) and cont.q.name == eps):
            raise _fail(
                f"callee continuation marker is {cont.q}; it must be the "
                f"callee's abstract eps {eps}", "tal.terminator", t)
        cont_entries = cont.chi.items()
        if len(cont_entries) != 1:  # pragma: no cover - ret_addr_type shape
            raise _fail("callee continuation must expect one register",
                        "tal.terminator", t)
        (_, ret_val_ty), = cont_entries
        check_type_wf(st.delta, ret_val_ty)
        if ct.sigma.tail != zeta:
            raise _fail(
                f"callee input stack {ct.sigma} must end in its abstract "
                f"tail {zeta}", "tal.terminator", t)
        if cont.sigma.tail != zeta:
            raise _fail(
                f"callee continuation stack {cont.sigma} must end in the "
                f"same abstract tail {zeta}", "tal.terminator", t)
        m = len(ct.sigma.prefix)       # exposed input slots
        n = len(cont.sigma.prefix)     # exposed output slots
        # Current stack must be the callee's exposed prefix over sigma_0.
        if st.sigma.depth < m:
            raise _fail(
                f"call needs {m} exposed argument slots, current stack is "
                f"{st.sigma}", "tal.terminator", t)
        for k in range(m):
            if not types_equal(st.sigma.prefix[k], ct.sigma.prefix[k]):
                raise _fail(
                    f"stack slot {k} has type {st.sigma.prefix[k]}, callee "
                    f"expects {ct.sigma.prefix[k]}", "tal.terminator", t)
        if not stacks_equal(st.sigma.drop(m), t.sigma):
            raise _fail(
                f"protected tail {t.sigma} does not match the current "
                f"stack remainder {st.sigma.drop(m)}", "tal.terminator", t)
        check_stack_wf(st.delta, t.sigma)
        # The two call rules, by the shape of the *current* marker.
        if isinstance(st.q, QEnd):
            if not qs_equal(t.q, st.q):
                raise _fail(
                    f"call under an end marker must pass that marker; got "
                    f"{t.q}, current {st.q}", "tal.terminator", t)
            eps_inst: RetMarker = st.q
        elif isinstance(st.q, QIdx):
            i = st.q.index
            if i < m:
                raise _fail(
                    f"marker slot {i} lies within the {m} argument slots "
                    "consumed by the call", "tal.terminator", t)
            shifted = QIdx(i + n - m)
            if not qs_equal(t.q, shifted):
                raise _fail(
                    f"call must relocate the marker to slot {shifted.index}"
                    f" (i + k - j); instruction says {t.q}",
                    "tal.terminator", t)
            eps_inst = shifted
        else:
            raise _fail(
                f"call requires the current marker to be end{{...}} or a "
                f"stack index; it is {st.q}", "tal.terminator", t)
        inst = Subst({(KIND_ZETA, zeta): t.sigma, (KIND_EPS, eps): eps_inst})
        inst_chi = subst_chi(ct.chi, inst)
        inst_sigma = subst_stack(ct.sigma, inst)
        inst_q = subst_q(ct.q, inst)
        check_psi_wf(st.delta, CodeType((), inst_chi, inst_sigma, inst_q))
        check_regfile_subtype(st.delta, st.chi, inst_chi)
        check_stack_wf(st.delta, subst_stack(cont.sigma, inst))

    # ------------------------------------------------------------------
    # Sequences and components
    # ------------------------------------------------------------------

    def check_sequence(self, st: InstrState, iseq: InstrSeq) -> None:
        """``Psi; Delta; chi; sigma; q |- I``."""
        check_q_restriction(st.delta, st.chi, st.sigma, st.q)
        while iseq.instrs:
            head, rest = iseq.instrs[0], iseq.rest
            st, iseq = self.step_in_sequence(st, head, rest)
            check_q_restriction(st.delta, st.chi, st.sigma, st.q)
        self.check_terminator(st, iseq.term)

    def step_in_sequence(self, st: InstrState, instr: Instruction,
                         rest: InstrSeq) -> Tuple[InstrState, InstrSeq]:
        """One sequencing step.  ``rest`` is available so binding
        instructions (FT's ``protect``) can alpha-rename their binder in
        the remainder when it would shadow an ambient type variable."""
        return self.step_instruction(st, instr), rest

    def check_heap_value(self, h: HeapValue) -> HeapValType:
        """``Psi |- h : psi`` (synthesized)."""
        if isinstance(h, HTuple):
            return TupleTy(tuple(
                self.type_of_operand((), RegFileTy(), w) for w in h.words))
        if isinstance(h, HCode):
            check_delta_wf(h.delta)
            check_chi_wf(h.delta, h.chi)
            check_stack_wf(h.delta, h.sigma)
            check_q_wf(h.delta, h.q)
            st = InstrState(h.delta, h.chi, h.sigma, h.q)
            self.check_sequence(st, h.instrs)
            return h.code_type
        raise _fail(f"unknown heap value {type(h).__name__}",
                    "tal.heap-value", h)

    def synthesize_local_heap_typing(self, comp: Component) -> HeapTy:
        """The ``Psi'`` of the component typing rule: declared signatures of
        the local blocks, plus inferred types of local boxed data.

        All local entries are ``box`` (immutable), as the rule requires.
        """
        entries: Dict[Loc, Tuple[str, HeapValType]] = {}
        for loc, h in comp.heap:
            if isinstance(h, HCode):
                entries[loc] = (BOX, h.code_type)
        # Second pass for data tuples, which may point at the blocks (or at
        # earlier tuples).
        probe = self.with_psi(self.psi.extend(HeapTy.of(entries)))
        for loc, h in comp.heap:
            if isinstance(h, HTuple):
                psi = probe.check_heap_value(h)
                entries[loc] = (BOX, psi)
                probe = self.with_psi(
                    self.psi.extend(HeapTy.of(entries)))
        return HeapTy.of(entries)

    def check_component(self, st: InstrState,
                        comp: Component) -> Tuple[TalType, StackTy]:
        """``Psi; Delta; chi; sigma; q |- (I, H) : tau; sigma'``."""
        if OBS.enabled:
            OBS.metrics.inc("typecheck.t.component")
        for loc, _ in comp.heap:
            if loc in self.psi:
                raise _fail(
                    f"component heap label {loc} shadows a global location",
                    "tal.component", comp)
        local_psi = self.synthesize_local_heap_typing(comp)
        extended = self.with_psi(self.psi.extend(local_psi))
        for loc, h in comp.heap:
            declared = local_psi.get(loc)
            if declared is None:
                raise _fail(
                    f"component heap value at {loc} is not boxable",
                    "tal.component", comp)
            extended.check_heap_value(h)
        result = ret_type(st.q, st.chi, st.sigma)
        extended.check_sequence(st, comp.instrs)
        return result


# ---------------------------------------------------------------------------
# Convenience entry points
# ---------------------------------------------------------------------------

def check_component(comp: Component, *, psi: Optional[HeapTy] = None,
                    delta: Delta = (), chi: Optional[RegFileTy] = None,
                    sigma: StackTy = NIL_STACK,
                    q: Optional[RetMarker] = None) -> Tuple[TalType, StackTy]:
    """Typecheck a T component under an explicit context."""
    if q is None:
        raise FTTypeError("a component needs a return marker q",
                          judgment="tal.component")
    checker = TalTypechecker(psi)
    st = InstrState(delta, chi if chi is not None else RegFileTy(), sigma, q)
    return checker.check_component(st, comp)


def check_program(comp: Component, expected: TalType,
                  *, psi: Optional[HeapTy] = None) -> Tuple[TalType, StackTy]:
    """Typecheck a whole T program: empty registers and stack, halting
    marker ``end{expected; nil}``."""
    return check_component(
        comp, psi=psi, q=QEnd(expected, NIL_STACK))


# ---------------------------------------------------------------------------
# Runtime typing (for the type-safety property tests)
# ---------------------------------------------------------------------------

def type_of_word(psi: HeapTy, w: WordValue) -> TalType:
    """``Psi |- w : tau`` for closed word values."""
    checker = TalTypechecker(psi)
    return checker.type_of_operand((), RegFileTy(), w)


def check_memory(psi: HeapTy, heap_items, regs: Dict[str, WordValue],
                 chi: RegFileTy, stack, sigma: StackTy) -> None:
    """``Psi |- M`` against expectations ``chi`` (registers) and ``sigma``
    (stack).  ``heap_items`` iterates ``(loc, nu, heap_value)``.

    The stack check only constrains the exposed prefix of ``sigma``; an
    abstract tail stands for the (arbitrary) rest of the concrete stack.
    """
    checker = TalTypechecker(psi)
    for loc, nu, h in heap_items:
        entry = psi.get(loc)
        if entry is None:
            raise _fail(f"runtime heap location {loc} missing from Psi",
                        "tal.memory", loc)
        expected_nu, expected_psi = entry
        if nu != expected_nu:
            raise _fail(
                f"location {loc} mutability {nu} disagrees with Psi's "
                f"{expected_nu}", "tal.memory", loc)
        actual_psi = checker.check_heap_value(h)
        from repro.tal.equality import psis_equal

        if not psis_equal(actual_psi, expected_psi):
            raise _fail(
                f"location {loc} holds {actual_psi}, Psi says "
                f"{expected_psi}", "tal.memory", loc)
    for reg, expected_ty in chi.items():
        if reg not in regs:
            raise _fail(f"register {reg} unset but typed {expected_ty}",
                        "tal.memory", reg)
        actual = type_of_word(psi, regs[reg])
        if not types_equal(actual, expected_ty):
            raise _fail(
                f"register {reg} holds {actual}, chi says {expected_ty}",
                "tal.memory", reg)
    if len(stack) < sigma.depth:
        raise _fail(
            f"stack has {len(stack)} cells, sigma exposes {sigma.depth}",
            "tal.memory", sigma)
    for i, expected_ty in enumerate(sigma.prefix):
        actual = type_of_word(psi, stack[i])
        if not types_equal(actual, expected_ty):
            raise _fail(
                f"stack slot {i} holds {actual}, sigma says {expected_ty}",
                "tal.memory", sigma)

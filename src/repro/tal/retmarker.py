"""The ``ret-type`` and ``ret-addr-type`` metafunctions (paper Fig 2, bottom).

A *continuation-shaped* code-pointer type is::

    box forall[]. {r': tau; sigma'} q'

i.e. an immutable pointer to a code block with no remaining type binders and
exactly one register precondition -- the register where the return value
will be delivered.  (Free ``eps``/``zeta`` variables may occur inside; they
are instantiated by the caller's ``call`` before the jump.)

Given a return marker ``q`` and the current register-file and stack typings,

* ``ret-type(q, chi, sigma) = tau; sigma'`` extracts the *result* type of
  the current component: the value type it will deliver and the stack type
  at delivery time.  This is what lets the paper treat continuation-style
  assembly components as semantic objects producing values of a type.
* ``ret-addr-type(q, chi, sigma)`` extracts the full code type of the return
  continuation itself (used by the ``call`` rules to inspect the callee's
  continuation, including its ``eps`` marker).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.errors import FTTypeError
from repro.tal.syntax import (
    CodeType, QEnd, QIdx, QReg, RegFileTy, RetMarker, StackTy, TalType, TBox,
)

__all__ = [
    "is_continuation_type", "continuation_parts", "ret_type",
    "ret_addr_type",
]


def continuation_parts(
        ty: TalType) -> Optional[Tuple[str, TalType, StackTy, "RetMarker"]]:
    """Decompose a continuation-shaped type into ``(r', tau, sigma', q')``.

    Returns ``None`` when ``ty`` is not continuation-shaped.
    """
    if not isinstance(ty, TBox):
        return None
    psi = ty.psi
    if not isinstance(psi, CodeType):
        return None
    if psi.delta:
        return None
    entries = psi.chi.items()
    if len(entries) != 1:
        return None
    (reg, val_ty), = entries
    return (reg, val_ty, psi.sigma, psi.q)


def is_continuation_type(ty: TalType) -> bool:
    """Is ``ty`` of the shape ``box forall[].{r': tau; sigma'} q'``?"""
    return continuation_parts(ty) is not None


def _marker_slot_type(q: RetMarker, chi: RegFileTy,
                      sigma: StackTy) -> TalType:
    if isinstance(q, QReg):
        ty = chi.get(q.reg)
        if ty is None:
            raise FTTypeError(
                f"ret-type: marker register {q.reg} not in chi = {chi}",
                judgment="tal.ret-type", subject=str(q))
        return ty
    assert isinstance(q, QIdx)
    if not sigma.has_slot(q.index):
        raise FTTypeError(
            f"ret-type: marker slot {q.index} not exposed in sigma = "
            f"{sigma}", judgment="tal.ret-type", subject=str(q))
    return sigma.slot(q.index)


def ret_type(q: RetMarker, chi: RegFileTy,
             sigma: StackTy) -> Tuple[TalType, StackTy]:
    """``ret-type(q, chi, sigma) = tau; sigma'`` (paper Fig 2).

    Undefined (raises) for ``eps`` and ``out`` markers: abstract markers
    have no concrete result type, and F code's result type comes from its
    own typing judgment.
    """
    if isinstance(q, QEnd):
        return (q.ty, q.sigma)
    if isinstance(q, (QReg, QIdx)):
        ty = _marker_slot_type(q, chi, sigma)
        parts = continuation_parts(ty)
        if parts is None:
            raise FTTypeError(
                f"ret-type: marker {q} holds non-continuation type {ty}",
                judgment="tal.ret-type", subject=str(q))
        _, val_ty, cont_sigma, _ = parts
        return (val_ty, cont_sigma)
    raise FTTypeError(
        f"ret-type is undefined for marker {q}",
        judgment="tal.ret-type", subject=str(q))


def ret_addr_type(q: RetMarker, chi: RegFileTy,
                  sigma: StackTy) -> CodeType:
    """``ret-addr-type(q, chi, sigma)``: the continuation's full code type."""
    if not isinstance(q, (QReg, QIdx)):
        raise FTTypeError(
            f"ret-addr-type is undefined for marker {q}",
            judgment="tal.ret-addr-type", subject=str(q))
    ty = _marker_slot_type(q, chi, sigma)
    parts = continuation_parts(ty)
    if parts is None:
        raise FTTypeError(
            f"ret-addr-type: marker {q} holds non-continuation type {ty}",
            judgment="tal.ret-addr-type", subject=str(q))
    assert isinstance(ty, TBox) and isinstance(ty.psi, CodeType)
    return ty.psi

"""Alpha-equivalence of T types and the auxiliary typing categories.

Semantic type equality in T must identify types that differ only in bound
variable names -- e.g. the code types ``forall[zeta z1].{...; z1} ra`` and
``forall[zeta z2].{...; z2} ra`` -- because boundary translations and the
typechecker's symbolic instantiations generate fresh binder names freely.

The implementation threads a renaming environment mapping bound variables of
the left term to bound variables of the right term, keyed by kind so that an
``alpha`` can never alias a ``zeta``.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.caching import LRUCache
from repro.tal.syntax import (
    CodeType, HeapValType, KIND_ALPHA, KIND_EPS, KIND_ZETA, QEnd, QEps, QIdx,
    QOut, QReg, RegFileTy, RetMarker, StackTy, TalType, TBox, TExists, TInt,
    TRec, TRef, TupleTy, TUnit, TVar,
)

__all__ = [
    "types_equal", "psis_equal", "stacks_equal", "chis_equal", "qs_equal",
    "RenEnv", "clear_equality_cache",
]

#: Renaming environment: (kind, left-name) -> right-name.
RenEnv = Dict[Tuple[str, str], str]

#: Memo for top-level (empty-environment) alpha-equivalence queries.
#: Calls carrying a renaming environment are not memoized -- the env is
#: part of the answer and not worth hashing -- but those only occur as
#: inner recursion, whose outermost query this cache already covers.
_EQ_CACHE = LRUCache(8192, metric_prefix="tal.equality.cache")


def clear_equality_cache() -> None:
    """Drop the memoized alpha-equivalence verdicts (tests, benchmarks)."""
    _EQ_CACHE.clear()


def types_equal(a: TalType, b: TalType, env: Optional[RenEnv] = None) -> bool:
    """Alpha-equivalence of T value types.

    Interned/shared nodes hit the ``a is b`` fast path; distinct
    top-level queries are memoized structurally in a bounded LRU
    (sound because types are immutable and alpha-equivalence has no
    other inputs when ``env`` is empty).
    """
    if env is None or not env:
        # Identity implies alpha-equivalence only without a pending
        # renaming: under ``{x -> y}`` a type compared against itself can
        # legitimately differ (its free ``x`` must match a literal ``y``).
        if a is b:
            return True
        key = (a, b)
        verdict = _EQ_CACHE.get(key)
        if verdict is None:
            verdict = _types_equal_uncached(a, b, {})
            _EQ_CACHE.put(key, verdict)
        return verdict
    return _types_equal_uncached(a, b, env)


def _types_equal_uncached(a: TalType, b: TalType, env: RenEnv) -> bool:
    if isinstance(a, TVar) and isinstance(b, TVar):
        return env.get((KIND_ALPHA, a.name), a.name) == b.name
    if isinstance(a, TUnit) and isinstance(b, TUnit):
        return True
    if isinstance(a, TInt) and isinstance(b, TInt):
        return True
    if isinstance(a, TExists) and isinstance(b, TExists):
        return types_equal(a.body, b.body,
                           _bind(env, KIND_ALPHA, a.var, b.var))
    if isinstance(a, TRec) and isinstance(b, TRec):
        return types_equal(a.body, b.body,
                           _bind(env, KIND_ALPHA, a.var, b.var))
    if isinstance(a, TRef) and isinstance(b, TRef):
        return (len(a.items) == len(b.items)
                and all(types_equal(x, y, env)
                        for x, y in zip(a.items, b.items)))
    if isinstance(a, TBox) and isinstance(b, TBox):
        return psis_equal(a.psi, b.psi, env)
    return False


def psis_equal(a: HeapValType, b: HeapValType,
               env: Optional[RenEnv] = None) -> bool:
    """Alpha-equivalence of heap-value types."""
    env = env if env is not None else {}
    if isinstance(a, TupleTy) and isinstance(b, TupleTy):
        return (len(a.items) == len(b.items)
                and all(types_equal(x, y, env)
                        for x, y in zip(a.items, b.items)))
    if isinstance(a, CodeType) and isinstance(b, CodeType):
        if len(a.delta) != len(b.delta):
            return False
        inner = dict(env)
        for ba, bb in zip(a.delta, b.delta):
            if ba.kind != bb.kind:
                return False
            inner[(ba.kind, ba.name)] = bb.name
        return (chis_equal(a.chi, b.chi, inner)
                and stacks_equal(a.sigma, b.sigma, inner)
                and qs_equal(a.q, b.q, inner))
    return False


def stacks_equal(a: StackTy, b: StackTy,
                 env: Optional[RenEnv] = None) -> bool:
    """Alpha-equivalence of stack typings (prefix-wise, then tails)."""
    env = env if env is not None else {}
    if len(a.prefix) != len(b.prefix):
        return False
    if not all(types_equal(x, y, env) for x, y in zip(a.prefix, b.prefix)):
        return False
    if (a.tail is None) != (b.tail is None):
        return False
    if a.tail is None:
        return True
    return env.get((KIND_ZETA, a.tail), a.tail) == b.tail


def chis_equal(a: RegFileTy, b: RegFileTy,
               env: Optional[RenEnv] = None) -> bool:
    """Alpha-equivalence of register-file typings: same domain, equal types."""
    env = env if env is not None else {}
    if a.registers() != b.registers():
        return False
    return all(types_equal(ta, tb, env)
               for (_, ta), (_, tb) in zip(a.items(), b.items()))


def qs_equal(a: RetMarker, b: RetMarker,
             env: Optional[RenEnv] = None) -> bool:
    """Alpha-equivalence of return markers."""
    env = env if env is not None else {}
    if isinstance(a, QReg) and isinstance(b, QReg):
        return a.reg == b.reg
    if isinstance(a, QIdx) and isinstance(b, QIdx):
        return a.index == b.index
    if isinstance(a, QEps) and isinstance(b, QEps):
        return env.get((KIND_EPS, a.name), a.name) == b.name
    if isinstance(a, QEnd) and isinstance(b, QEnd):
        return (types_equal(a.ty, b.ty, env)
                and stacks_equal(a.sigma, b.sigma, env))
    if isinstance(a, QOut) and isinstance(b, QOut):
        return True
    return False


def _bind(env: RenEnv, kind: str, left: str, right: str) -> RenEnv:
    inner = dict(env)
    inner[(kind, left)] = right
    return inner

"""Type erasure for T: the machine never consults type annotations.

T's operational semantics is *erasure-compatible*: types decorate
instructions (``halt τ, σ``, ``pack <τ, w> as τ'``, instantiation lists)
but never influence which step is taken or what value is computed.  The
paper relies on this implicitly -- "we merge local heap fragments ... the
full semantics are standard" -- and it is what makes the type system a
static discipline rather than a runtime cost.

:func:`erase_types` makes the property *testable*: it rewrites every value
type to ``unit``, every annotation stack to an empty one, and every
``end{τ; σ}`` to ``end{unit; nil}``, while preserving everything the
machine does consult -- register names, slot indices, labels, binder
*kinds and names* (so instantiation arity still lines up), and marker
positions.  The erasure-invariance tests run a component and its erasure
and require the same halt value; running them over the random well-typed
program battery gives a machine-level proof-by-testing that evaluation is
typing-independent.

(Scope: pure T.  FT boundaries genuinely *are* type-directed -- the value
translations dispatch on the boundary type -- so erasure stops at
``import``; that contrast is itself the interesting fact.)
"""

from __future__ import annotations

from typing import Dict

from repro.tal.syntax import (
    Aop, Balloc, Bnz, Call, Component, DeltaBind, Fold, Halt, HCode,
    HeapValue, HTuple, InstrSeq, Instruction, Jmp, KIND_ALPHA, KIND_EPS,
    KIND_ZETA, Ld, Mv, NIL_STACK, Operand, Pack, QEnd, QEps, QIdx, QOut,
    QReg, Ralloc, RegFileTy, RegOp, Ret, RetMarker, Salloc, Sfree, Sld,
    Sst, St, StackTy, TalType, Terminator, TExists, TUnit, TyApp, UnfoldI,
    Unpack, WInt, WLoc, WUnit,
)

__all__ = ["erase_types", "erase_word"]

_UNIT = TUnit()
_UNIT_EXISTS = TExists("a", TUnit())
_UNIT_REC_ANN = None  # computed lazily to avoid import noise


def _erase_ty(ty: TalType) -> TalType:
    return _UNIT


def _erase_stack(sigma: StackTy) -> StackTy:
    # keep the tail variable (it may be an instantiation target) but drop
    # the informative prefix entirely
    return StackTy((), sigma.tail)


def _erase_q(q: RetMarker) -> RetMarker:
    if isinstance(q, QEnd):
        return QEnd(_UNIT, NIL_STACK)
    return q  # registers, indices, eps names, out: all machine-relevant


def _erase_omega(omega):
    if isinstance(omega, TalType):
        return _UNIT
    if isinstance(omega, StackTy):
        return _erase_stack(omega)
    return _erase_q(omega)


def erase_word(u: Operand) -> Operand:
    """Erase the annotations inside a small value."""
    if isinstance(u, (WUnit, WInt, WLoc, RegOp)):
        return u
    if isinstance(u, Pack):
        return Pack(_UNIT, erase_word(u.body), _UNIT_EXISTS)
    if isinstance(u, Fold):
        from repro.tal.syntax import TRec

        return Fold(TRec("a", _UNIT), erase_word(u.body))
    if isinstance(u, TyApp):
        return TyApp(erase_word(u.body),
                     tuple(_erase_omega(o) for o in u.insts))
    raise TypeError(f"erase_word: unsupported {type(u).__name__}")


def _erase_instr(i: Instruction) -> Instruction:
    if isinstance(i, Aop):
        return Aop(i.op, i.rd, i.rs, erase_word(i.u))
    if isinstance(i, Bnz):
        return Bnz(i.r, erase_word(i.u))
    if isinstance(i, Mv):
        return Mv(i.rd, erase_word(i.u))
    if isinstance(i, Unpack):
        return Unpack(i.alpha, i.rd, erase_word(i.u))
    if isinstance(i, UnfoldI):
        return UnfoldI(i.rd, erase_word(i.u))
    if isinstance(i, (Ld, St, Ralloc, Balloc, Salloc, Sfree, Sld, Sst)):
        return i
    raise TypeError(
        f"erase_types is defined for pure T; found {type(i).__name__}")


def _erase_term(t: Terminator) -> Terminator:
    if isinstance(t, Jmp):
        return Jmp(erase_word(t.u))
    if isinstance(t, Call):
        return Call(erase_word(t.u), _erase_stack(t.sigma), _erase_q(t.q))
    if isinstance(t, Ret):
        return t
    if isinstance(t, Halt):
        return Halt(_UNIT, NIL_STACK, t.r)
    raise TypeError(f"erase_types: unknown terminator {type(t).__name__}")


def _erase_seq(iseq: InstrSeq) -> InstrSeq:
    return InstrSeq(tuple(_erase_instr(i) for i in iseq.instrs),
                    _erase_term(iseq.term))


def _erase_heap_value(h: HeapValue) -> HeapValue:
    if isinstance(h, HTuple):
        return HTuple(tuple(erase_word(w) for w in h.words))
    if isinstance(h, HCode):
        chi = RegFileTy(tuple((r, _UNIT) for r, _ in h.chi.items()))
        return HCode(h.delta, chi, _erase_stack(h.sigma), _erase_q(h.q),
                     _erase_seq(h.instrs))
    raise TypeError(f"erase_types: unknown heap value {type(h).__name__}")


def erase_types(comp: Component) -> Component:
    """Erase every type annotation in a pure T component.

    The result is (intentionally) almost never well-typed; it exists to
    run, and running it must produce the same observable result as the
    original."""
    return Component(
        _erase_seq(comp.instrs),
        tuple((loc, _erase_heap_value(h)) for loc, h in comp.heap))

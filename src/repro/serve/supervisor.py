"""Supervision policy for the serve fleet.

The :class:`~repro.serve.pool.WorkerPool` mechanism (pipes, selectors,
respawns) stays in :mod:`repro.serve.pool`; this module holds the
*policy* objects the pool consults, each independently testable:

* :class:`SupervisorConfig` -- every knob in one dataclass: heartbeat
  cadence and miss budget for hung-worker detection, per-slot restart
  budgets, the per-kind circuit breaker, digest quarantine, and the
  shed policy of the bounded queue.
* :class:`CircuitBreaker` -- counts worker-fatal attempts per job
  *kind* inside a sliding window; past the threshold the kind's
  breaker opens for a cooldown and admission control refuses (or
  degrades) new work of that kind instead of feeding it to workers.
* :class:`DigestQuarantine` -- job digests that exhausted their retry
  budget fatally (crash/hang) are quarantined, so a poison job cannot
  keep killing workers via resubmission.
* :class:`RestartTracker` -- per-worker-slot respawn budget: a slot
  that keeps dying respawns with exponential backoff plus jitter
  instead of hot-looping fork/exec.

``job_fault_key`` is deliberately *not* the result-cache key: the
cache key drops non-semantic options (``inject_crash`` among them),
but for blame purposes two submissions that differ only in a fault
injection flag are different jobs -- quarantining the faulty one must
not condemn its clean twin.
"""

from __future__ import annotations

import collections
import hashlib
import json
import random
import time
from dataclasses import dataclass
from typing import Dict, Optional

__all__ = ["SupervisorConfig", "CircuitBreaker", "DigestQuarantine",
           "RestartTracker", "job_fault_key"]


def job_fault_key(job) -> str:
    """Content address of a job *for blame purposes*: SHA-256 over the
    canonical full wire dict (fault-injection options included, trace
    context and id excluded)."""
    wire = job.to_dict()
    wire.pop("id", None)
    wire.pop("trace_ctx", None)
    blob = json.dumps(wire, sort_keys=True, separators=(",", ":"),
                      default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass
class SupervisorConfig:
    """Fleet supervision knobs, with production-ish defaults.

    The breaker defaults to *disabled* (``breaker_threshold=0``):
    opening it is an explicit operational choice (the serve drill and
    the chaos tests enable it), because a breaker that trips during a
    normal burst of poison jobs would refuse unrelated work.
    """

    #: Seconds between heartbeat pings to each worker; ``0`` disables
    #: hung-worker detection entirely.
    heartbeat_interval: float = 1.0
    #: Silent intervals tolerated before a worker is declared hung.
    heartbeat_misses: int = 4
    #: Respawns one slot may consume inside ``restart_window`` seconds
    #: before its respawns start backing off.
    restart_budget: int = 5
    restart_window: float = 30.0
    #: Base backoff once over budget; doubles per excess respawn.
    restart_backoff: float = 0.5
    restart_backoff_max: float = 10.0
    #: Worker-fatal attempts of one kind inside ``breaker_window``
    #: seconds that open its breaker; ``0`` disables the breaker.
    breaker_threshold: int = 0
    breaker_window: float = 30.0
    #: Seconds an open breaker refuses the kind before half-opening.
    breaker_cooldown: float = 5.0
    #: Quarantine job digests whose retry budget died fatally.
    quarantine_fatal: bool = True
    #: Bounded-queue policy: ``"reject"`` (block or raise QueueFull) or
    #: ``"shed-oldest"`` (evict the oldest pending job as ``overloaded``
    #: to admit the new one).
    shed_policy: str = "reject"

    def __post_init__(self) -> None:
        if self.shed_policy not in ("reject", "shed-oldest"):
            raise ValueError(
                f"unknown shed_policy {self.shed_policy!r} "
                f"(expected 'reject' or 'shed-oldest')")


class CircuitBreaker:
    """Per-job-kind circuit breaker over worker-fatal attempts.

    ``record_fatal(kind)`` notes one crash/hang attempt; once a kind
    accumulates ``threshold`` of them inside ``window`` seconds its
    breaker opens for ``cooldown`` seconds.  While open, ``is_open``
    is true and admission control sheds (or degrades) the kind.  A
    successful result (``record_ok``) closes the breaker and clears
    the kind's history -- the classic half-open probe: the first job
    admitted after the cooldown decides whether it reopens.
    """

    def __init__(self, threshold: int = 0, window: float = 30.0,
                 cooldown: float = 5.0):
        self.threshold = threshold
        self.window = window
        self.cooldown = cooldown
        self.opened = 0     # times any kind's breaker tripped (stats)
        self._fatal: Dict[str, collections.deque] = {}
        self._open_until: Dict[str, float] = {}

    @property
    def enabled(self) -> bool:
        return self.threshold > 0

    def record_fatal(self, kind: str,
                     now: Optional[float] = None) -> bool:
        """Note one worker-fatal attempt; True if this one opened the
        breaker."""
        if not self.enabled:
            return False
        now = time.monotonic() if now is None else now
        recent = self._fatal.setdefault(kind, collections.deque())
        recent.append(now)
        while recent and recent[0] < now - self.window:
            recent.popleft()
        if len(recent) >= self.threshold \
                and self._open_until.get(kind, 0.0) <= now:
            self._open_until[kind] = now + self.cooldown
            self.opened += 1
            return True
        return False

    def record_ok(self, kind: str) -> None:
        """A job of ``kind`` completed normally: close and forgive."""
        self._fatal.pop(kind, None)
        self._open_until.pop(kind, None)

    def is_open(self, kind: str, now: Optional[float] = None) -> bool:
        until = self._open_until.get(kind)
        if until is None:
            return False
        now = time.monotonic() if now is None else now
        if now >= until:
            # Cooldown over: half-open.  Leave the fatal history in
            # place so the next fatal re-opens immediately.
            self._open_until.pop(kind, None)
            return False
        return True

    def retry_after_ms(self, kind: str,
                       now: Optional[float] = None) -> int:
        until = self._open_until.get(kind)
        if until is None:
            return 0
        now = time.monotonic() if now is None else now
        return max(0, int((until - now) * 1000))

    def snapshot(self) -> Dict[str, object]:
        now = time.monotonic()
        return {
            "enabled": self.enabled,
            "threshold": self.threshold,
            "opened_total": self.opened,
            "open": sorted(k for k in list(self._open_until)
                           if self.is_open(k, now)),
        }


class DigestQuarantine:
    """Job digests barred from dispatch, with the reason each earned it."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._reasons: Dict[str, str] = {}

    def add(self, key: str, reason: str) -> None:
        if self.enabled:
            self._reasons.setdefault(key, reason)

    def __contains__(self, key: str) -> bool:
        return self.enabled and key in self._reasons

    def __len__(self) -> int:
        return len(self._reasons)

    def reason(self, key: str) -> str:
        return self._reasons.get(key, "")

    def clear(self) -> None:
        self._reasons.clear()

    def snapshot(self) -> Dict[str, object]:
        return {"enabled": self.enabled, "entries": len(self._reasons)}


class RestartTracker:
    """Per-worker-slot respawn budget with exponential backoff + jitter.

    ``delay(wid)`` records one respawn need for slot ``wid`` and
    returns how long the pool should wait before actually respawning:
    ``0.0`` while the slot is inside its budget, then
    ``backoff * 2**excess`` (jittered, capped) once it keeps dying --
    a crash-looping slot must not turn the manager thread into a
    fork bomb.
    """

    def __init__(self, budget: int = 5, window: float = 30.0,
                 backoff: float = 0.5, backoff_max: float = 10.0,
                 seed: Optional[int] = None):
        self.budget = max(1, budget)
        self.window = window
        self.backoff = backoff
        self.backoff_max = backoff_max
        self._rng = random.Random(seed)
        self._history: Dict[int, collections.deque] = {}
        self.delayed = 0    # respawns that had to back off (stats)

    def delay(self, wid: int, now: Optional[float] = None) -> float:
        now = time.monotonic() if now is None else now
        recent = self._history.setdefault(wid, collections.deque())
        while recent and recent[0] < now - self.window:
            recent.popleft()
        recent.append(now)
        excess = len(recent) - self.budget
        if excess <= 0:
            return 0.0
        self.delayed += 1
        base = min(self.backoff * (2 ** (excess - 1)), self.backoff_max)
        # Full jitter on top of the base keeps simultaneously-dying
        # slots from thundering back in lockstep.
        return min(base + self._rng.uniform(0, self.backoff),
                   self.backoff_max)

    def snapshot(self) -> Dict[str, object]:
        return {"budget": self.budget, "delayed_total": self.delayed}

"""``repro.serve`` -- a concurrent, fault-isolated FunTAL evaluation service.

The paper shipped as an interactive artifact: an in-browser typechecker
and machine stepper.  Its natural production shape is therefore a
*service* that accepts programs and returns typing / evaluation results.
This package is that service, built from four layers:

* :mod:`repro.serve.protocol` -- typed :class:`Job` / :class:`JobResult`
  dataclasses and the JSON-lines wire format.  Five job kinds mirror the
  CLI: ``parse``, ``typecheck``, ``run``, ``jit``, and ``equiv``, each
  carrying fuel/timeout options.
* :mod:`repro.serve.cache` -- a content-addressed LRU result cache keyed
  on ``(kind, source hash, options)``.  Its generic :class:`LRUCache` also
  backs the JIT's compile cache (it absorbed the previous ad-hoc FIFO).
* :mod:`repro.serve.pool` -- a multiprocessing worker pool with per-job
  wall-clock timeouts and crash isolation: a worker that dies or hangs is
  reaped and respawned, its job retried with backoff up to a retry budget,
  then reported failed -- the pool itself never goes down.
* :mod:`repro.serve.supervisor` -- the fleet supervision policy layered
  over the pool: heartbeat-based hung-worker detection, per-slot restart
  budgets with backoff, a per-kind circuit breaker, digest quarantine,
  deadline shedding, and checkpoint-based mid-job crash recovery.
* :mod:`repro.serve.server` / :mod:`repro.serve.client` -- an asyncio
  JSON-lines TCP server over the pool plus a synchronous client library
  with ``submit``, ``submit_batch``, and streaming result iteration;
  the client retries ``overloaded`` refusals with jittered backoff.
* :mod:`repro.serve.drill` -- the seeded serve-level chaos drill
  (``funtal chaos drill --serve``): a mixed job corpus under worker
  kills, hangs, corrupt envelopes, and store faults, verifying that no
  job is ever lost.

Everything is instrumented through :mod:`repro.obs` (``serve.*`` counters,
a queue-depth gauge, per-job spans).  CLI front-ends: ``funtal serve``,
``funtal submit``, ``funtal batch``.  See ``docs/serving.md``.
"""

from repro.serve.cache import LRUCache, ResultCache, job_cache_key
from repro.serve.executor import execute_job
from repro.serve.pool import PoolClosed, QueueFull, Ticket, WorkerPool
from repro.serve.protocol import (
    JOB_KINDS, Job, JobResult, ProtocolError, decode_line, encode_line,
)
from repro.serve.supervisor import SupervisorConfig, job_fault_key

__all__ = [
    "JOB_KINDS", "Job", "JobResult", "ProtocolError",
    "decode_line", "encode_line",
    "LRUCache", "ResultCache", "job_cache_key",
    "execute_job",
    "PoolClosed", "QueueFull", "Ticket", "WorkerPool",
    "SupervisorConfig", "job_fault_key",
]

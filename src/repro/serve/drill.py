"""Seeded serve-fleet chaos drill: ``funtal chaos drill --serve``.

The classic chaos drill (:mod:`repro.resilience.chaos`) injects faults
*inside* one process and checks that errors stay structured.  This
drill attacks the layer above: a live :class:`~repro.serve.pool.
WorkerPool` under worker kills, hangs, corrupted result envelopes,
slow jobs, hostile inputs, and artifact-store I/O faults -- and
verifies the supervision invariant that matters in production:

    **no job is ever lost.**  Every submitted job resolves to a
    terminal result (``ok`` / ``error`` / ``crashed`` / ``timeout`` /
    ``overloaded`` / ``rejected`` / ``suspended``); none hangs forever
    and none vanishes.

The corpus is seeded and mixed:

* plain ``run`` / ``typecheck`` / ``parse`` jobs over the paper's
  example registry;
* the adversarial T components from :mod:`repro.adversarial`
  (hostile *inputs*, expected to resolve ``error``);
* ``link`` jobs against a real artifact store with ``store.io`` chaos
  armed (expected to succeed, possibly ``degraded``);
* checkpointed ``run`` jobs that crash their worker *after* shipping a
  snapshot (``inject_crash_at``), so at least one job must finish via
  mid-run recovery on a different worker;
* a ``rate``-sized share of jobs carrying ``inject_crash`` /
  ``inject_sleep`` / ``inject_corrupt`` / ``inject_hang`` faults.

The report carries everything the CI gate and the resilience benchmark
need: per-status counts, ``lost`` (must be 0), ``recovered`` (must be
>= 1), shed/breaker/quarantine activity, and the pool's MTTR summary.
"""

from __future__ import annotations

import collections
import random
import shutil
import tempfile
import time
from typing import Any, Dict, List, Optional

from repro.adversarial import adversarial_jobs
from repro.serve.pool import WorkerPool
from repro.serve.protocol import Job, JobOptions
from repro.serve.supervisor import SupervisorConfig

__all__ = ["run_serve_drill", "build_corpus"]

#: Examples cheap enough to run hundreds of times in a drill.
_RUN_EXAMPLES = ("fact-f", "fact-t", "two-blocks-1", "two-blocks-2",
                 "fig17", "jit")

_LINK_MANIFEST = (
    '{"components": {'
    '"double": "lam (x: int). (x + x)", '
    '"quad": "lam (x: int). double (double x)"}, '
    '"main": "quad 7"}'
)


def build_corpus(seed: int, jobs: int, rate: float,
                 store_dir: Optional[str] = None) -> List[Job]:
    """The seeded mixed job list.  Deterministic in ``(seed, jobs,
    rate, store_dir)`` up to the store directory name."""
    rng = random.Random(seed)
    corpus: List[Job] = []

    # Guaranteed recovery probes: crash after the first shipped
    # checkpoint, every attempt, until the pool resumes from the
    # snapshot on a sibling (the resume rewrite strips inject_*).
    for i in range(3):
        corpus.append(Job(
            "run", id=f"d{seed}-recover-{i}", example="fact-f",
            options=JobOptions(checkpoint=True, checkpoint_every=8,
                               inject_crash_at=1)))

    # Hostile inputs: adversarial components must resolve ``error``.
    corpus.extend(adversarial_jobs(ids_prefix=f"d{seed}-adv"))

    hangs = 0
    for i in range(jobs - len(corpus)):
        jid = f"d{seed}-{i}"
        kind_roll = rng.random()
        if kind_roll < 0.08 and store_dir is not None:
            job = Job("link", id=jid, source=_LINK_MANIFEST,
                      options=JobOptions(
                          store=store_dir, run=True,
                          chaos_rate=rate, chaos_seed=seed * 10_007 + i,
                          chaos_seams="store.io"))
        elif kind_roll < 0.16:
            job = Job("typecheck", id=jid,
                      example=rng.choice(("fact-f", "fact-t")))
        elif kind_roll < 0.22:
            job = Job("parse", id=jid, example=rng.choice(_RUN_EXAMPLES))
        elif kind_roll < 0.34:
            job = Job("run", id=jid, example="fact-f",
                      options=JobOptions(checkpoint=True,
                                         checkpoint_every=16))
        else:
            job = Job("run", id=jid, example=rng.choice(_RUN_EXAMPLES))

        if rng.random() < rate:
            fault = rng.random()
            if fault < 0.35:
                job.options.inject_crash = True
            elif fault < 0.55 and hangs < 3:
                # SIGSTOP storms are the slowest fault to clear
                # (heartbeat misses x interval per attempt), so cap
                # them; the kill path is still exercised every drill.
                job.options.inject_hang = True
                hangs += 1
            elif fault < 0.80:
                job.options.inject_corrupt = True
            else:
                job.options.inject_sleep = rng.choice((0.05, 0.15, 6.0))
        corpus.append(job)
    return corpus


def run_serve_drill(seed: int = 0, jobs: int = 200, workers: int = 4,
                    rate: float = 0.1, *,
                    default_timeout: float = 3.0,
                    queue_size: int = 64,
                    store_dir: Optional[str] = None) -> Dict[str, Any]:
    """Run one seeded drill; returns the report dict (see module doc).

    ``store_dir`` overrides the throwaway artifact store used by link
    jobs (a temp directory by default, removed afterwards).
    """
    own_store = store_dir is None
    if own_store:
        store_dir = tempfile.mkdtemp(prefix="funtal-drill-store-")

    cfg = SupervisorConfig(
        heartbeat_interval=0.2, heartbeat_misses=3,
        restart_budget=max(8, jobs // 8), restart_window=30.0,
        restart_backoff=0.05, restart_backoff_max=0.5,
        breaker_threshold=max(12, jobs // 4), breaker_window=10.0,
        breaker_cooldown=0.5, shed_policy="shed-oldest")

    corpus = build_corpus(seed, jobs, rate, store_dir=store_dir)
    statuses: "collections.Counter[str]" = collections.Counter()
    recovered = degraded = shed = quarantined = 0
    lost: List[str] = []
    t0 = time.monotonic()
    try:
        with WorkerPool(workers, cache=None, max_retries=2,
                        default_timeout=default_timeout,
                        queue_size=queue_size, retry_backoff=0.02,
                        supervisor=cfg) as pool:
            # Submit through a sliding window a bit wider than the
            # bounded queue: backpressure (shed-oldest) triggers under
            # bursts but does not swallow the whole corpus the way
            # dumping all N jobs at once would.
            window = queue_size + workers * 4
            tickets: List[Any] = []
            # Worst case is a hang storm: each hung attempt costs
            # ``misses * interval`` to detect, serialized per worker.
            budget = max(60.0, jobs * default_timeout / workers)
            deadline = time.monotonic() + budget
            for job in corpus:
                while sum(1 for t in tickets if not t.done) >= window:
                    time.sleep(0.01)
                    if time.monotonic() > deadline:
                        break
                tickets.append(pool.submit(job))
            for ticket in tickets:
                result = ticket.wait(max(0.1, deadline - time.monotonic()))
                if result is None:
                    lost.append(ticket.job.id)
                    continue
                statuses[result.status] += 1
                out = result.output or {}
                if out.get("recovered"):
                    recovered += 1
                if out.get("degraded"):
                    degraded += 1
                if out.get("shed"):
                    shed += 1
                if result.error_type == "QuarantinedJob":
                    quarantined += 1
            stats = pool.stats()
    finally:
        if own_store:
            shutil.rmtree(store_dir, ignore_errors=True)

    sup = stats.get("supervisor", {})
    return {
        "seed": seed,
        "jobs": len(corpus),
        "workers": workers,
        "fault_rate": rate,
        "duration_s": round(time.monotonic() - t0, 3),
        "statuses": dict(sorted(statuses.items())),
        "lost": len(lost),
        "lost_ids": lost[:10],
        "recovered": recovered,
        "degraded": degraded,
        "shed": shed,
        "quarantined": quarantined,
        "mttr_ms": sup.get("mttr_ms", {}),
        "breaker": sup.get("breaker", {}),
        "quarantine": sup.get("quarantine", {}),
        "restarts": sup.get("restarts", {}),
    }

"""Worker-side job execution: one :class:`Job` in, one :class:`JobResult` out.

:func:`execute_job` is the single function a pool worker runs.  It is a
plain module-level function (picklable under every multiprocessing start
method) and *total*: every outcome, including typing errors, parse errors
and fuel exhaustion, is folded into a :class:`JobResult` -- only genuine
crashes (segfault-alikes, ``os._exit``) and wall-clock hangs escape, and
those are the pool's department.

Job kinds mirror the CLI subcommands:

=============  ===========================================================
``parse``      parse + pretty-print back
``typecheck``  infer the type (and out-stack); bare T components halt at
               ``options.result_type``
``run``        evaluate under ``options.fuel``; reports value/halt word,
               machine steps consumed, optionally the control-flow table
``jit``        compile an F lambda to typed assembly (``options.optimize``
               / ``options.check`` as in ``funtal jit``)
``compile``    whole-F compilation through the tiered pipeline
               (``options.tier`` forces a tier, ``options.ir`` includes
               the closure-conversion IR, ``options.validate`` runs
               translation validation); results are content-addressed
               like every other ``ok`` result
``equiv``      bounded contextual-equivalence check of ``source`` vs
               ``options.right`` at ``options.type``
``resume``     continue a fuel-suspended machine from ``job.snapshot``
               with ``options.fuel`` as the next slice
``link``       build the multi-component manifest in ``source``
               incrementally against the on-disk artifact store
               (``options.store``), link with interface checking, and
               (unless ``options.run`` is false) evaluate the linked
               program; warm workers reuse store artifacts across jobs
=============  ===========================================================

``run`` and ``resume`` respect the unified resource governors
(``options.fuel`` / ``heap`` / ``depth``); with ``options.checkpoint``
a fuel-exhausted run comes back ``suspended`` with a resumable,
content-addressed snapshot instead of failing, and with ``options.jit``
an expression runs under the JIT safety net (faults fall back to the
interpreter and quarantine the offending lambda).

Programs come either inline (``source``) or as a built-in paper example
(``example``), resolved through the registry in
:mod:`repro.papers_examples`.
"""

from __future__ import annotations

import os
import signal
import time
from typing import Any, Callable, Dict, Optional, Tuple

from repro.errors import (
    FuelExhausted, FunTALError, InjectedFault, ResourceExhausted,
)
from repro.resilience.budget import DEFAULT_FUEL
from repro.serve.protocol import Job, JobResult

__all__ = ["execute_job", "DEFAULT_FUEL"]

#: Callback type for mid-run checkpoints: the worker loop wires this to
#: the result pipe, so the pool learns how far a job got before a crash.
Progress = Callable[[Dict[str, Any]], None]


class _Suspended(Exception):
    """Internal: a checkpointing run hit its fuel ceiling; ``output``
    carries the wire snapshot for the ``suspended`` result."""

    def __init__(self, output: Dict[str, Any]):
        super().__init__("suspended")
        self.output = output


def _job_budget(job: Job):
    """The unified governor for this job's execution slice."""
    from repro.resilience.budget import Budget

    return Budget(fuel=job.options.fuel or DEFAULT_FUEL,
                  heap=job.options.heap, depth=job.options.depth)


def _suspend(machine, out_extra: Dict[str, Any],
             job: Optional[Job] = None) -> "_Suspended":
    """Package a fuel-suspended machine as a ``suspended`` result."""
    snapshot = machine.snapshot()
    output = {"snapshot": snapshot.to_wire(),
              "spent": machine.budget.spent()}
    if job is not None:
        promoted = bool(job.options.promoted) and not job.options.degraded
        output["tier"] = _tier_envelope(job, machine, promoted=promoted)
    output.update(out_extra)
    return _Suspended(output)


def _resolve_program(job: Job) -> Tuple[Any, bool]:
    """(program node, is_component).  Inline sources go through the
    surface parser; examples come from the registry pre-built."""
    from repro.surface.parser import parse_program
    from repro.tal.syntax import Component

    if job.example is not None:
        from repro.papers_examples import resolve_example

        entry = resolve_example(job.example)
        if entry is None:
            raise FunTALError(f"unknown example {job.example!r}")
        node = entry[1]()
    else:
        node = parse_program(job.source)
    return node, isinstance(node, Component)


def _do_parse(job: Job) -> Dict[str, Any]:
    from repro.surface.pretty import pretty_component

    node, is_component = _resolve_program(job)
    pretty = pretty_component(node) if is_component else str(node)
    return {"pretty": pretty,
            "node": "component" if is_component else "expression"}


def _do_typecheck(job: Job) -> Dict[str, Any]:
    from repro.ft.typecheck import check_ft_component, check_ft_expr
    from repro.surface.parser import parse_ttype
    from repro.tal.syntax import NIL_STACK, QEnd

    node, is_component = _resolve_program(job)
    if is_component:
        result = parse_ttype(job.options.result_type)
        ty, sigma = check_ft_component(node, q=QEnd(result, NIL_STACK))
    else:
        ty, sigma = check_ft_expr(node)
    return {"type": str(ty), "stack": str(sigma),
            "node": "component" if is_component else "expression"}


def _drive_slices(job: Job, machine, first: Callable[[], Any],
                  progress: Optional[Progress],
                  extra: Dict[str, Any]) -> Tuple[Any, int]:
    """Run ``first()`` and keep resuming in ``checkpoint_every``-sized
    fuel slices until the overall ``options.fuel`` budget is spent,
    shipping a progress snapshot between slices.

    Returns ``(outcome, total fuel used)``.  Exhausting the *overall*
    budget behaves exactly like the unsliced path: ``suspended`` when
    ``options.checkpoint`` is set and the machine can suspend,
    ``fuel_exhausted`` otherwise.  ``inject_crash_at=N`` kills the
    worker right *after* the Nth snapshot is on the wire, so recovery
    tests know a checkpoint exists before the crash."""
    total = job.options.fuel or DEFAULT_FUEL
    every = max(1, int(job.options.checkpoint_every))
    used = 0
    shipped = 0
    attempt = first
    while True:
        try:
            outcome = attempt()
        except FuelExhausted:
            used += machine.budget.fuel_used
            if not machine.suspended:
                raise
            if used >= total:
                if job.options.checkpoint:
                    raise _suspend(machine, dict(extra), job) from None
                raise
            if progress is not None:
                snapshot = machine.snapshot()
                progress({"snapshot": snapshot.to_wire(), "spent": used,
                          "remaining": total - used})
            shipped += 1
            if job.options.inject_crash_at is not None \
                    and shipped >= job.options.inject_crash_at:
                os._exit(23)
            nxt = min(every, total - used)
            attempt = lambda f=nxt: machine.resume(fuel=f)  # noqa: E731
            continue
        return outcome, used + machine.budget.fuel_used


def _outcome_dict(outcome) -> Dict[str, Any]:
    from repro.tal.machine import HaltedState

    if isinstance(outcome, HaltedState):
        return {"halted": str(outcome.word), "type": str(outcome.ty)}
    return {"value": str(outcome)}


def _tier_envelope(job: Job, machine=None, *, compile_tier=None,
                   promoted=False, degraded=False,
                   tal_engine=None) -> Dict[str, Any]:
    """The effective tier of a serve answer, surfaced in every
    run/resume envelope so a degraded or demoted answer is
    distinguishable from a first-class fast one."""
    from repro.f.cek import resolve_engine
    from repro.tal.machine import resolve_tal_engine

    f_engine = getattr(machine, "engine", None) \
        or resolve_engine(job.options.engine)
    tal = getattr(machine, "tal_engine", None) if machine is not None \
        else None
    if tal is None:
        tal = resolve_tal_engine(tal_engine if tal_engine is not None
                                 else job.options.tal_engine)
    return {"f_engine": f_engine, "compile_tier": compile_tier,
            "tal_engine": tal, "promoted": bool(promoted and not degraded)}


def _do_run(job: Job, progress: Optional[Progress] = None) -> Dict[str, Any]:
    from repro.ft.machine import FTMachine

    node, is_component = _resolve_program(job)
    trace = job.options.trace
    promoted = bool(job.options.promoted) and not job.options.degraded
    payload = job.options.tiering if promoted else None
    tal_engine = job.options.tal_engine
    if promoted:
        from repro.tiering.promote import apply_promotion

        apply_promotion(payload)
        if tal_engine is None:
            # The receipt certifies the fast T tier for this digest.
            tal_engine = "fast"

    # A promoted expression whose receipt covers a compile tier runs
    # under the same guarded-JIT envelope as ``options.jit`` (the PR 3
    # safety net stays the demotion backstop); checkpointed runs stay
    # on the plain machine, whose state is snapshottable.
    guard_tiers = None
    if promoted and not is_component and not job.options.checkpoint \
            and not job.options.checkpoint_every:
        from repro.tiering.promote import guarded_tiers

        guard_tiers = guarded_tiers(payload)

    if (job.options.jit or guard_tiers is not None) and not is_component \
            and not job.options.degraded:
        from repro.resilience.safety_net import run_guarded
        from repro.tiering.policy import resolve_tiers

        tiers = guard_tiers if guard_tiers is not None \
            else resolve_tiers(None, "jit")
        value, machine, report = run_guarded(
            node, job.options.fuel or DEFAULT_FUEL,
            job.options.heap, job.options.depth, trace, None,
            tiers, tal_engine if promoted else job.options.tal_engine)
        out = {"value": str(value), "jit": report.to_json()}
        degraded_run = bool(getattr(report, "fell_back", False))
        if degraded_run:
            out["degraded"] = True
        out["steps"] = machine.budget.fuel_used
        compile_tier = None
        if getattr(report, "jitted", 0) and not degraded_run:
            compile_tier = "general" if "general" in tiers else "arith"
        out["tier"] = _tier_envelope(
            job, machine, compile_tier=compile_tier, promoted=promoted,
            degraded=degraded_run)
        return out

    machine = FTMachine(trace=trace, budget=_job_budget(job),
                        engine=job.options.engine,
                        tal_engine=tal_engine)
    if job.options.checkpoint_every:
        total = job.options.fuel or DEFAULT_FUEL
        machine.budget.refill(min(max(1, job.options.checkpoint_every),
                                  total))
        outcome, used = _drive_slices(
            job, machine,
            (lambda: machine.run_component(node)) if is_component
            else (lambda: machine.evaluate(node)),
            progress, {})
        out = _outcome_dict(outcome)
        out["steps"] = used
    else:
        try:
            if is_component:
                halted = machine.run_component(node)
                out = {"halted": str(halted.word), "type": str(halted.ty)}
            else:
                value = machine.evaluate(node)
                out = {"value": str(value)}
        except FuelExhausted:
            if job.options.checkpoint and machine.suspended:
                raise _suspend(machine, {}, job) from None
            raise
        out["steps"] = machine.budget.fuel_used
    if job.options.degraded and job.options.jit:
        # Breaker-forced interpreter tier: same answer, no JIT.
        out["degraded"] = True
    out["tier"] = _tier_envelope(job, machine, promoted=promoted,
                                 degraded=bool(out.get("degraded")))
    if trace:
        from repro.analysis.trace import control_flow_table, format_table

        out["control_flow"] = format_table(
            control_flow_table(machine.trace), title="control flow")
    return out


def _do_resume(job: Job,
               progress: Optional[Progress] = None) -> Dict[str, Any]:
    from repro.ft.machine import FTMachine
    from repro.resilience.checkpoint import MachineSnapshot

    snapshot = MachineSnapshot.from_wire(job.snapshot)
    machine = FTMachine.restore(snapshot, trace=job.options.trace)
    if job.options.engine is not None:
        # Snapshots are engine-portable (pending records are plain
        # terms), so a resume may switch steppers explicitly.
        from repro.f.cek import resolve_engine

        machine.engine = resolve_engine(job.options.engine)
    if job.options.tal_engine is not None:
        # Same portability for the T tier: the fast engine re-lowers
        # blocks on demand from the restored heap.
        from repro.tal.machine import resolve_tal_engine

        machine.tal_engine = resolve_tal_engine(job.options.tal_engine)
    promoted = bool(job.options.promoted) and not job.options.degraded
    if promoted:
        # Cross-tier resume: a snapshot taken pre-promotion may land
        # on a worker where the digest has since been promoted (and
        # vice versa).  Snapshots are engine-portable, so the restored
        # machine simply continues at the receipt's tier.
        from repro.tal.machine import resolve_tal_engine
        from repro.tiering.promote import apply_promotion

        apply_promotion(job.options.tiering)
        if job.options.tal_engine is None:
            machine.tal_engine = resolve_tal_engine("fast")
    fuel = job.options.fuel or DEFAULT_FUEL
    if job.options.checkpoint_every:
        slice_fuel = min(max(1, job.options.checkpoint_every), fuel)
        outcome, used = _drive_slices(
            job, machine, lambda: machine.resume(fuel=slice_fuel),
            progress, {"resumed_from": snapshot.digest})
        out = _outcome_dict(outcome)
        out["steps"] = used
        out["resumed_from"] = snapshot.digest
        out["tier"] = _tier_envelope(job, machine, promoted=promoted)
        return out
    try:
        outcome = machine.resume(fuel=fuel)
    except FuelExhausted:
        if job.options.checkpoint and machine.suspended:
            raise _suspend(machine, {"resumed_from": snapshot.digest},
                           job) from None
        raise
    out = _outcome_dict(outcome)
    out["steps"] = machine.budget.fuel_used
    out["resumed_from"] = snapshot.digest
    out["tier"] = _tier_envelope(job, machine, promoted=promoted)
    return out


def _do_jit(job: Job) -> Dict[str, Any]:
    from repro.f.syntax import App, Lam, Var
    from repro.jit.compiler import compile_function, is_compilable
    from repro.surface.pretty import pretty_component

    node, is_component = _resolve_program(job)
    if is_component or not is_compilable(node):
        raise FunTALError(
            "not a compilable lambda (first-order arithmetic fragment: "
            "int parameters; literals, parameters, + - *, if0)")
    compiled = compile_function(node)
    comp = compiled.body.fn.comp
    if job.options.optimize:
        from repro.tal.optimize import optimize_component

        comp = optimize_component(comp)
    out: Dict[str, Any] = {"assembly": pretty_component(comp),
                           "blocks": 1 + len(comp.heap)}
    if job.options.check:
        from repro.equiv.checker import check_equivalence
        from repro.f.typecheck import typecheck as f_typecheck
        from repro.ft.syntax import Boundary

        rebuilt = Lam(compiled.params,
                      App(Boundary(compiled.body.fn.ty, comp),
                          tuple(Var(x) for x, _ in compiled.params)))
        report = check_equivalence(
            node, rebuilt, f_typecheck(node),
            fuel=job.options.fuel or 25_000)
        out["equivalent"] = report.equivalent
        out["report"] = str(report)
    return out


def _do_compile(job: Job) -> Dict[str, Any]:
    from repro.compile import compile_term, validate_compilation
    from repro.surface.pretty import pretty_component
    from repro.tiering.policy import resolve_tiers

    node, is_component = _resolve_program(job)
    if is_component:
        raise FunTALError("compile jobs take an F term, not a T component")
    result = compile_term(node, None, resolve_tiers(job.options.tier,
                                                    "compile"))
    out: Dict[str, Any] = {
        "assembly": pretty_component(result.component),
        "blocks": result.block_count(),
        "tier": result.tier,
        "type": str(result.ty),
    }
    if job.options.ir:
        out["ir"] = result.pretty_ir()
    if job.options.validate:
        report = validate_compilation(
            result, fuel=job.options.fuel or 30_000,
            seed=job.options.seed)
        out["validation"] = report.to_json()
        if not report.ok:
            raise FunTALError(f"translation validation failed: "
                              f"{report.failure}")
    return out


def _do_equiv(job: Job) -> Dict[str, Any]:
    from repro.equiv.checker import check_equivalence
    from repro.surface.parser import parse_fexpr, parse_ftype

    left = parse_fexpr(job.source) if job.source is not None else None
    if left is None:
        left, _ = _resolve_program(job)
    right = parse_fexpr(job.options.right)
    ty = parse_ftype(job.options.type)
    report = check_equivalence(left, right, ty,
                               fuel=job.options.fuel or 30_000,
                               seed=job.options.seed)
    return {"equivalent": report.equivalent, "report": str(report),
            "agreements": len(report.agreements)}


def _do_link(job: Job) -> Dict[str, Any]:
    import sys

    from repro.ft.machine import FTMachine
    from repro.link import ArtifactStore, build_and_link, parse_manifest
    from repro.resilience.budget import Budget

    manifest = parse_manifest(job.source)
    store = ArtifactStore(job.options.store) if job.options.store else None
    degraded_store = False
    try:
        report, linked = build_and_link(
            manifest, store, validate=job.options.validate,
            validate_fuel=job.options.fuel or 30_000,
            seed=job.options.seed)
    except (InjectedFault, OSError) as fault:
        # Graceful degradation: a faulting artifact store must cost
        # cache hits, not answers.  Rebuild everything store-less.
        if store is None or (isinstance(fault, InjectedFault)
                             and fault.seam != "store.io"):
            raise
        degraded_store = True
        from repro.obs.events import OBS
        if OBS.enabled:
            OBS.metrics.inc("serve.degraded.store")
        report, linked = build_and_link(
            manifest, None, validate=job.options.validate,
            validate_fuel=job.options.fuel or 30_000,
            seed=job.options.seed)
    out: Dict[str, Any] = {
        "components": [r.name for r in report.records],
        "tiers": {r.name: r.tier for r in report.records},
        "digests": {r.name: r.digest for r in report.records},
        "recompiled": report.recompiled,
        "cached": report.cached,
        "labels_renamed": linked.labels_renamed,
    }
    if degraded_store:
        out["degraded"] = True
    if job.options.validate:
        out["validation"] = {
            r.name: dict(r.validation, cached=r.validation_cached)
            for r in report.records if r.validation is not None}
    # Linked closures nest an F evaluator per boundary crossing, so
    # typechecking/running recursive programs needs the same host-stack
    # headroom the compile CLI grants (docs/performance.md).
    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, 100_000))
    try:
        from repro.ft.typecheck import check_ft_expr

        ty, _ = check_ft_expr(linked.program)
        out["type"] = str(ty)
        if job.options.run:
            machine = FTMachine(budget=Budget(
                fuel=job.options.fuel or DEFAULT_FUEL,
                heap=job.options.heap, depth=job.options.depth))
            value = machine.evaluate(linked.program)
            out["value"] = str(value)
            out["steps"] = machine.budget.fuel_used
    finally:
        sys.setrecursionlimit(old_limit)
    return out


def _do_promote(job: Job) -> Dict[str, Any]:
    """Background tiering work: earn (or reuse) a signed tier receipt
    for the job's program digest.  Scheduled by the pool-side
    :class:`repro.tiering.coordinator.TieringCoordinator`; runs at
    ordinary queue discipline so it never blocks foreground traffic."""
    from repro.tiering.promote import run_promotion

    return run_promotion(job)


_EXECUTORS = {
    "parse": _do_parse,
    "typecheck": _do_typecheck,
    "run": _do_run,
    "jit": _do_jit,
    "compile": _do_compile,
    "equiv": _do_equiv,
    "resume": _do_resume,
    "link": _do_link,
    "promote": _do_promote,
}


def execute_job(job: Job,
                progress: Optional[Progress] = None) -> JobResult:
    """Execute ``job`` to a result; never raises for program-level
    failures.  The fault-injection options act *before* execution so the
    resilience tests can stage crashes and hangs deterministically.

    ``progress`` (wired by the pool worker loop to the result pipe)
    receives mid-run checkpoint records from jobs that set
    ``options.checkpoint_every``.

    When the job carries a ``trace_ctx``, execution runs under a
    :class:`repro.obs.distributed.WorkerCapture` and the result's
    ``obs`` field ships this process's spans/metrics back to whoever is
    stitching the cross-process trace.
    """
    if job.options.inject_sleep > 0:
        time.sleep(job.options.inject_sleep)
    if job.options.inject_crash:
        # Simulate a segfault: bypass all exception handling and die.
        os._exit(23)
    if job.options.inject_hang and hasattr(signal, "SIGSTOP"):
        # Freeze the whole process (heartbeat thread included): only
        # the manager's hung-worker detection can clear this.
        os.kill(os.getpid(), signal.SIGSTOP)
    if job.trace_ctx is not None:
        from repro.obs.distributed import TraceContext, WorkerCapture

        with WorkerCapture(TraceContext.from_dict(job.trace_ctx)) as cap:
            result = _run_with_chaos(job, progress)
        result.obs = cap.envelope
        return result
    return _run_with_chaos(job, progress)


def _run_with_chaos(job: Job, progress: Optional[Progress]) -> JobResult:
    """Arm a worker-side :class:`FaultPlane` when the job asks for one
    (``options.chaos_rate``), so drills can storm the executor seams
    inside real worker processes."""
    if job.options.chaos_rate <= 0:
        return _execute_guarded(job, progress)
    from repro.resilience.chaos import FaultPlane, active_plane

    if active_plane() is not None:     # e.g. in-process pool tests
        return _execute_guarded(job, progress)
    seams = [s.strip() for s in (job.options.chaos_seams or "").split(",")
             if s.strip()] or None
    with FaultPlane(seed=job.options.chaos_seed,
                    rate=job.options.chaos_rate, seams=seams):
        return _execute_guarded(job, progress)


def _execute_guarded(job: Job,
                     progress: Optional[Progress] = None) -> JobResult:
    start = time.perf_counter()
    try:
        fn = _EXECUTORS[job.kind]
        if job.kind in ("run", "resume"):
            output = fn(job, progress)
        else:
            output = fn(job)
        status, error, error_type = "ok", "", ""
    except _Suspended as s:
        output, status = s.output, "suspended"
        error, error_type = "", ""
    except FuelExhausted as err:
        output, status = {"fuel": err.fuel}, "fuel_exhausted"
        error, error_type = str(err), "FuelExhausted"
    except ResourceExhausted as err:
        output = {"resource": err.resource, "limit": err.limit,
                  "spent": err.spent}
        status = "resource_exhausted"
        error, error_type = str(err), type(err).__name__
    except FunTALError as err:
        output, status = {}, "error"
        error, error_type = str(err), type(err).__name__
    except RecursionError as err:
        output, status = {}, "error"
        error, error_type = f"recursion limit: {err}", "RecursionError"
    duration_ms = (time.perf_counter() - start) * 1000.0
    return JobResult(id=job.id, kind=job.kind, status=status, output=output,
                     error=error, error_type=error_type,
                     duration_ms=round(duration_ms, 3), worker=os.getpid())

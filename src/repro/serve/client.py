"""Synchronous client library for the ``repro.serve`` TCP protocol.

:class:`ServeClient` speaks the JSON-lines wire format over one socket::

    from repro.serve.client import ServeClient
    from repro.serve.protocol import Job, JobOptions

    with ServeClient(port=4017) as client:
        result = client.submit(Job("run", example="fig17"))
        print(result.status, result.output)

        jobs = [Job("run", example=name) for name in ("fact-f", "fact-t")]
        for result in client.stream(jobs):       # arrival order
            print(result.id, result.duration_ms)

        results = client.submit_batch(jobs)      # submission order

The server replies out of submission order (results return as workers
finish), so every call correlates replies by job id; ids are assigned
client-side (``c1``, ``c2``, ...) when the caller did not pick any.

``overloaded`` replies (admission control: bounded queue at capacity or
an open circuit breaker) are retried automatically: the client honors
the server's ``retry_after_ms`` hint with multiplicative jitter, up to
``overload_retries`` resubmissions per job, before surfacing the
``overloaded`` result to the caller.
"""

from __future__ import annotations

import itertools
import random
import socket
import time
from typing import Dict, Iterable, Iterator, List, Optional

from repro.errors import FunTALError
from repro.serve.protocol import (
    Job, JobOptions, JobResult, ProtocolError, decode_line, encode_line,
)

__all__ = ["ServeClient", "ClientError"]


class ClientError(FunTALError):
    """The connection failed or the server broke protocol."""


class ServeClient:
    """One connection to a running ``funtal serve`` instance."""

    def __init__(self, host: str = "127.0.0.1", port: int = 4017,
                 timeout: Optional[float] = 60.0,
                 overload_retries: int = 3):
        self.host = host
        self.port = port
        self.overload_retries = max(0, overload_retries)
        self._rng = random.Random()
        self._ids = itertools.count(1)
        try:
            self._sock = socket.create_connection((host, port),
                                                  timeout=timeout)
        except OSError as err:
            raise ClientError(
                f"cannot connect to {host}:{port}: {err}") from None
        self._rfile = self._sock.makefile("rb")

    # -- plumbing --------------------------------------------------------

    def _send(self, message: dict) -> None:
        try:
            self._sock.sendall(encode_line(message))
        except OSError as err:
            raise ClientError(f"send failed: {err}") from None

    def _recv(self) -> dict:
        line = self._rfile.readline()
        if not line:
            raise ClientError("server closed the connection")
        try:
            return decode_line(line)
        except ProtocolError as err:
            raise ClientError(f"bad server reply: {err}") from None

    def _ensure_id(self, job: Job) -> Job:
        if not job.id:
            job.id = f"c{next(self._ids)}"
        return job

    # -- API -------------------------------------------------------------

    def ping(self) -> bool:
        self._send({"op": "ping"})
        return self._recv().get("op") == "pong"

    def stats(self) -> dict:
        self._send({"op": "stats"})
        reply = self._recv()
        if reply.get("op") != "stats":
            raise ClientError(f"expected stats reply, got {reply!r}")
        return reply

    def submit(self, job: Job) -> JobResult:
        """Submit one job and wait for its result."""
        return self.submit_batch([job])[0]

    def resume(self, suspended: JobResult,
               options: Optional["JobOptions"] = None) -> JobResult:
        """Continue a ``suspended`` result from its snapshot.

        The snapshot is content-addressed and self-contained, so the
        resume may be served by any worker (or any server).  ``options``
        sets the next slice's budget (``fuel``/``heap``/``depth``) and
        may itself set ``checkpoint`` to keep hopping.
        """
        if suspended.status != "suspended":
            raise ClientError(
                f"cannot resume a {suspended.status!r} result "
                "(only 'suspended' results carry a snapshot)")
        snapshot = suspended.output.get("snapshot")
        if not snapshot:
            raise ClientError("suspended result is missing its snapshot")
        job = Job("resume", snapshot=snapshot,
                  options=options or JobOptions())
        return self.submit(job)

    def stream(self, jobs: Iterable[Job]) -> Iterator[JobResult]:
        """Submit everything up front, then yield results *as the server
        finishes them* (arrival order, not submission order).

        ``overloaded`` replies are resubmitted after the server's
        ``retry_after_ms`` hint (jittered by a uniform factor in
        [0.5, 1.5) so a fleet of shed clients does not stampede back in
        lockstep), up to :attr:`overload_retries` times per job."""
        expected = set()
        by_id: Dict[str, Job] = {}
        budget: Dict[str, int] = {}
        for job in jobs:
            self._ensure_id(job)
            if job.id in expected:
                raise ClientError(f"duplicate job id {job.id!r}")
            expected.add(job.id)
            by_id[job.id] = job
            budget[job.id] = self.overload_retries
            self._send(job.to_dict())
        while expected:
            data = self._recv()
            result = JobResult.from_dict(data)
            if result.status == "overloaded" \
                    and budget.get(result.id, 0) > 0:
                budget[result.id] -= 1
                hint_ms = int(result.output.get("retry_after_ms", 0)) \
                    or 50
                time.sleep((hint_ms / 1000.0)
                           * (0.5 + self._rng.random()))
                self._send(by_id[result.id].to_dict())
                continue
            # Unsolicited ids (e.g. rejects for unparsable lines) are
            # surfaced too -- the caller sent every line we read replies
            # for on this socket.
            expected.discard(result.id)
            yield result

    def submit_batch(self, jobs: List[Job]) -> List[JobResult]:
        """Submit everything, return results in submission order."""
        jobs = [self._ensure_id(job) for job in jobs]
        by_id: Dict[str, JobResult] = {}
        for result in self.stream(jobs):
            by_id[result.id] = result
        return [by_id[job.id] for job in jobs]

    def close(self) -> None:
        try:
            self._rfile.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

"""Asyncio JSON-lines TCP server over the worker pool.

One connection, many jobs: clients write one JSON object per line and
read one result object per line.  Results come back *as they finish* --
possibly out of submission order -- correlated by job ``id`` (the server
assigns ``srv-N`` ids to jobs submitted without one).  Control lines:

* ``{"op": "ping"}``            -> ``{"op": "pong"}``
* ``{"op": "stats"}``           -> pool/cache stats + metrics snapshot

Malformed lines are answered with ``status: "rejected"`` results and
backpressure (bounded pool queue at capacity, open circuit breaker)
with ``status: "overloaded"`` results carrying a ``retry_after_ms``
hint, rather than dropped connections, so a batch client can account
for every job it sent -- and knows which refusals are worth retrying
(:class:`~repro.serve.client.ServeClient` retries ``overloaded``
automatically with jittered backoff).

The bridge between the pool's threads and asyncio is one-way and safe:
pool tickets resolve on the manager thread, whose done-callback hops the
result onto the connection's outbound :class:`asyncio.Queue` via
``loop.call_soon_threadsafe``; a single writer task per connection drains
that queue, so line writes never interleave.

:class:`ServeServer` embeds in-process (``start_background`` /
``stop_background``, used by the tests and ``examples/batch_service.py``)
or runs in the foreground via :meth:`run_forever` (``funtal serve``).
"""

from __future__ import annotations

import asyncio
import itertools
import threading
from typing import Optional

from repro.obs.events import OBS
from repro.serve.cache import ResultCache
from repro.serve.pool import (
    PoolClosed, QueueFull, SupervisorConfig, WorkerPool,
)
from repro.serve.protocol import (
    Job, JobResult, ProtocolError, decode_line, encode_line,
)

__all__ = ["ServeServer", "DEFAULT_PORT"]

DEFAULT_PORT = 4017


class ServeServer:
    """A TCP front-end over a :class:`~repro.serve.pool.WorkerPool`."""

    def __init__(self, host: str = "127.0.0.1", port: int = DEFAULT_PORT,
                 *, workers: int = 2, cache_size: int = 1024,
                 queue_size: int = 256, default_timeout: float = 30.0,
                 max_retries: int = 2,
                 mp_context: Optional[str] = None,
                 supervisor: Optional[SupervisorConfig] = None,
                 shed_policy: Optional[str] = None,
                 tiering=None):
        self.host = host
        self.port = port
        self.cache = ResultCache(cache_size) if cache_size else None
        self.pool = WorkerPool(
            workers, cache=self.cache, queue_size=queue_size,
            default_timeout=default_timeout, max_retries=max_retries,
            mp_context=mp_context, supervisor=supervisor,
            shed_policy=shed_policy, tiering=tiering)
        self._ids = itertools.count(1)
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._connections = 0

    # -- request handling ------------------------------------------------

    def _control(self, data: dict) -> Optional[dict]:
        op = data.get("op")
        if op in (None, "job"):
            return None
        if op == "ping":
            return {"op": "pong"}
        if op == "stats":
            return {
                "op": "stats",
                "pool": self.pool.stats(),
                "connections": self._connections,
                "metrics": OBS.metrics.snapshot(),
            }
        return {"op": "error", "error": f"unknown op {op!r}"}

    def _submit(self, data: dict, outbox: "asyncio.Queue",
                loop: asyncio.AbstractEventLoop) -> Optional[JobResult]:
        """Parse + submit one job line.  Immediate outcomes (parse
        failure, backpressure, cache hit) come back as a result; queued
        jobs reply later through the outbox."""
        try:
            job = Job.from_dict(data)
        except ProtocolError as err:
            return JobResult(id=str(data.get("id", "")),
                            kind=str(data.get("kind", "")),
                            status="rejected", error=str(err),
                            error_type="ProtocolError")
        if not job.id:
            job.id = f"srv-{next(self._ids)}"
        try:
            ticket = self.pool.submit(job, block=False)
        except QueueFull as err:
            # Transient: the bounded queue is at capacity.  Tell the
            # client when to come back instead of pretending the job
            # itself was bad.
            if OBS.enabled:
                OBS.metrics.inc("serve.jobs.overloaded")
            return JobResult.failure(
                job, "overloaded", str(err), error_type="QueueFull",
                output={"retry_after_ms":
                        getattr(err, "retry_after_ms", 0) or 50})
        except PoolClosed as err:
            # Terminal for this server: resubmission cannot succeed.
            if OBS.enabled:
                OBS.metrics.inc("serve.jobs.rejected")
            return JobResult.failure(job, "rejected", str(err),
                                     error_type="PoolClosed")
        if ticket.done:          # cache hit resolved synchronously
            return ticket.result
        ticket.add_done_callback(
            lambda result: loop.call_soon_threadsafe(
                outbox.put_nowait, result))
        return None

    async def _write_loop(self, writer: asyncio.StreamWriter,
                          outbox: "asyncio.Queue") -> None:
        while True:
            result = await outbox.get()
            if result is None:
                break
            writer.write(encode_line(result if isinstance(result, dict)
                                     else result.to_dict()))
            await writer.drain()

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        loop = asyncio.get_running_loop()
        outbox: "asyncio.Queue" = asyncio.Queue()
        self._connections += 1
        if OBS.enabled:
            OBS.metrics.inc("serve.connections")
        writer_task = asyncio.ensure_future(self._write_loop(writer, outbox))
        try:
            try:
                while True:
                    line = await reader.readline()
                    if not line:
                        break
                    if not line.strip():
                        continue
                    try:
                        data = decode_line(line)
                    except ProtocolError as err:
                        outbox.put_nowait(JobResult(
                            id="", kind="", status="rejected",
                            error=str(err), error_type="ProtocolError"))
                        continue
                    reply = self._control(data)
                    if reply is not None:
                        outbox.put_nowait(reply)
                        continue
                    immediate = self._submit(data, outbox, loop)
                    if immediate is not None:
                        outbox.put_nowait(immediate)
            except asyncio.CancelledError:
                pass        # server shutdown; fall through to cleanup
        finally:
            self._connections -= 1
            outbox.put_nowait(None)
            try:
                await asyncio.wait_for(writer_task, timeout=5.0)
            except (asyncio.TimeoutError, asyncio.CancelledError):
                writer_task.cancel()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting (the caller owns the event loop)."""
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._started.set()

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    def run_forever(self) -> None:
        """Foreground entry point (``funtal serve``): serve until
        interrupted, then drain the pool."""
        try:
            asyncio.run(self.serve_forever())
        except KeyboardInterrupt:
            pass
        finally:
            self.pool.close()

    # -- background embedding (tests, examples) --------------------------

    def start_background(self, timeout: float = 10.0) -> "ServeServer":
        """Serve from a daemon thread; returns once the port is bound."""

        def runner() -> None:
            self._loop = asyncio.new_event_loop()
            asyncio.set_event_loop(self._loop)
            try:
                self._loop.run_until_complete(self.start())
                self._loop.run_forever()
                # Unwind inside the loop before closing it, so connection
                # handlers (and their writer tasks) are cancelled cleanly
                # instead of dying with "event loop is closed".
                self._loop.run_until_complete(self._shutdown())
            finally:
                self._loop.close()

        self._thread = threading.Thread(target=runner, daemon=True,
                                        name="funtal-serve")
        self._thread.start()
        if not self._started.wait(timeout):
            raise RuntimeError("server failed to start")
        return self

    async def _shutdown(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        tasks = [t for t in asyncio.all_tasks()
                 if t is not asyncio.current_task()]
        for task in tasks:
            task.cancel()
        await asyncio.gather(*tasks, return_exceptions=True)

    def stop_background(self) -> None:
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        self.pool.close()

    def __enter__(self) -> "ServeServer":
        return self.start_background()

    def __exit__(self, *exc) -> None:
        self.stop_background()

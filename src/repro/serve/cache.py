"""Content-addressed result caching (and the shared LRU that backs it).

Two layers:

* :class:`LRUCache` -- a small, thread-safe, generic LRU with hit/miss/
  eviction accounting and optional :mod:`repro.obs` counter mirroring.
  The implementation now lives in the dependency-neutral
  :mod:`repro.caching` (the TAL substitution caches need it below the
  serve layer); it is re-exported here unchanged.  It also backs the
  JIT's compile cache (``metric_prefix="jit.cache"``).
* :class:`ResultCache` -- the service-level cache: finished
  :class:`~repro.serve.protocol.JobResult`\\ s addressed by
  :func:`job_cache_key`, the SHA-256 of the job's canonical JSON identity
  ``(kind, source-or-example, semantic options)``.  Only ``ok`` results
  are stored; a hit is returned as a *copy* flagged ``cached=True`` so
  the stored record stays pristine.

Wall-clock options (``timeout``) and fault-injection hooks never reach
the key -- two jobs that demand the same semantics share one entry.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import replace
from typing import Dict, Optional

from repro.caching import LRUCache
from repro.serve.protocol import Job, JobResult

__all__ = ["LRUCache", "ResultCache", "job_cache_key"]


def job_cache_key(job: Job) -> str:
    """The content address of a job: SHA-256 over its canonical identity.

    Two jobs collide exactly when they demand the same computation: same
    kind, same program text (or example name), same semantic options.
    The job ``id`` and operational options are excluded.  Resume jobs
    are addressed by their snapshot's content digest -- the digest
    already hashes the entire machine state.
    """
    identity = {
        "kind": job.kind,
        "source": job.source,
        "example": job.example,
        "options": job.options.semantic_dict(),
    }
    if job.snapshot is not None:
        identity["snapshot"] = job.snapshot.get("digest")
    blob = json.dumps(identity, separators=(",", ":"), sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ResultCache:
    """Content-addressed cache of successful job results."""

    def __init__(self, maxsize: int = 1024):
        self._lru = LRUCache(maxsize, metric_prefix="serve.cache")

    def get(self, job: Job) -> Optional[JobResult]:
        """A cached result for ``job`` (flagged ``cached=True``), or None.
        Jobs opting out via ``no_cache`` always miss (and are counted)."""
        if job.options.no_cache:
            self._lru._count("miss")
            self._lru.misses += 1
            return None
        stored = self._lru.get(job_cache_key(job))
        if stored is None:
            return None
        return replace(stored, id=job.id, cached=True, attempts=0)

    def put(self, job: Job, result: JobResult) -> None:
        """Store a finished result; only ``ok`` outcomes are kept.  The
        per-request obs envelope is stripped -- it describes one
        execution, not the cacheable answer."""
        if result.ok and not job.options.no_cache:
            self._lru.put(job_cache_key(job),
                          replace(result, cached=False, obs=None))

    def __len__(self) -> int:
        return len(self._lru)

    def clear(self) -> None:
        self._lru.clear()

    def stats(self) -> Dict[str, int]:
        return self._lru.stats()

"""Content-addressed result caching (and the shared LRU that backs it).

Two layers:

* :class:`LRUCache` -- a small, thread-safe, generic LRU with hit/miss/
  eviction accounting and optional :mod:`repro.obs` counter mirroring.
  It also backs the JIT's compile cache (:mod:`repro.jit.compiler`
  previously kept its own ad-hoc FIFO dict; that is now this class with
  ``metric_prefix="jit.cache"``).
* :class:`ResultCache` -- the service-level cache: finished
  :class:`~repro.serve.protocol.JobResult`\\ s addressed by
  :func:`job_cache_key`, the SHA-256 of the job's canonical JSON identity
  ``(kind, source-or-example, semantic options)``.  Only ``ok`` results
  are stored; a hit is returned as a *copy* flagged ``cached=True`` so
  the stored record stays pristine.

Wall-clock options (``timeout``) and fault-injection hooks never reach
the key -- two jobs that demand the same semantics share one entry.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict
from dataclasses import replace
from typing import Any, Dict, Hashable, Optional

from repro.obs.events import OBS
from repro.serve.protocol import Job, JobResult

__all__ = ["LRUCache", "ResultCache", "job_cache_key"]


class LRUCache:
    """Bounded least-recently-used mapping with hit/miss accounting.

    ``metric_prefix`` mirrors the accounting into the process-wide
    metrics registry (``<prefix>.hit`` / ``.miss`` / ``.eviction``) when
    instrumentation is enabled, so cache behaviour shows up in
    ``funtal stats`` alongside machine steps and boundary crossings.
    """

    def __init__(self, maxsize: int = 1024,
                 metric_prefix: Optional[str] = None):
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = maxsize
        self.metric_prefix = metric_prefix
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _count(self, outcome: str) -> None:
        if self.metric_prefix and OBS.enabled:
            OBS.metrics.inc(f"{self.metric_prefix}.{outcome}")

    def get(self, key: Hashable, default: Any = None) -> Any:
        with self._lock:
            try:
                value = self._data[key]
            except KeyError:
                self.misses += 1
                hit = False
            else:
                self._data.move_to_end(key)
                self.hits += 1
                hit = True
        self._count("hit" if hit else "miss")
        return value if hit else default

    def put(self, key: Hashable, value: Any) -> None:
        evicted = False
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = value
            if len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self.evictions += 1
                evicted = True
        if evicted:
            self._count("eviction")

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._data

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "size": len(self._data),
                "maxsize": self.maxsize,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }


def job_cache_key(job: Job) -> str:
    """The content address of a job: SHA-256 over its canonical identity.

    Two jobs collide exactly when they demand the same computation: same
    kind, same program text (or example name), same semantic options.
    The job ``id`` and operational options are excluded.  Resume jobs
    are addressed by their snapshot's content digest -- the digest
    already hashes the entire machine state.
    """
    identity = {
        "kind": job.kind,
        "source": job.source,
        "example": job.example,
        "options": job.options.semantic_dict(),
    }
    if job.snapshot is not None:
        identity["snapshot"] = job.snapshot.get("digest")
    blob = json.dumps(identity, separators=(",", ":"), sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ResultCache:
    """Content-addressed cache of successful job results."""

    def __init__(self, maxsize: int = 1024):
        self._lru = LRUCache(maxsize, metric_prefix="serve.cache")

    def get(self, job: Job) -> Optional[JobResult]:
        """A cached result for ``job`` (flagged ``cached=True``), or None.
        Jobs opting out via ``no_cache`` always miss (and are counted)."""
        if job.options.no_cache:
            self._lru._count("miss")
            self._lru.misses += 1
            return None
        stored = self._lru.get(job_cache_key(job))
        if stored is None:
            return None
        return replace(stored, id=job.id, cached=True, attempts=0)

    def put(self, job: Job, result: JobResult) -> None:
        """Store a finished result; only ``ok`` outcomes are kept."""
        if result.ok and not job.options.no_cache:
            self._lru.put(job_cache_key(job), replace(result, cached=False))

    def __len__(self) -> int:
        return len(self._lru)

    def clear(self) -> None:
        self._lru.clear()

    def stats(self) -> Dict[str, int]:
        return self._lru.stats()

"""Typed jobs/results and the JSON-lines wire format of ``repro.serve``.

One request or response per line, each a single JSON object.  A request is
either a *job* (the default when no ``op`` key is present) or a control
operation (``{"op": "ping"}``, ``{"op": "stats"}``).  A job names one of
the kinds mirroring the CLI -- ``parse``, ``typecheck``, ``run``,
``jit``, ``equiv`` -- and supplies the program either inline (``source``,
surface syntax) or by built-in paper-example name (``example``); the
sixth kind, ``resume``, instead supplies the ``snapshot`` of a
fuel-suspended machine from an earlier checkpointing ``run``.

The dataclasses are the single source of truth: the wire dicts, the
content-address used by :mod:`repro.serve.cache`, and the worker-side
executor all consume :class:`Job`; the server, client, and CLI all consume
:class:`JobResult`.  ``from_dict`` is strict -- unknown keys and unknown
option names raise :class:`ProtocolError` -- so that a typo'd option fails
loudly instead of silently missing the cache.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields
from typing import Any, ClassVar, Dict, List, Optional

from repro.errors import FunTALError

__all__ = [
    "JOB_KINDS", "RESULT_STATUSES", "ProtocolError",
    "SEMANTIC_OPTIONS", "NON_SEMANTIC_OPTIONS",
    "JobOptions", "Job", "JobResult",
    "encode_line", "decode_line",
]

#: The request kinds: six mirroring the CLI subcommands, plus
#: ``resume``, which continues a fuel-suspended machine from the
#: content-addressed snapshot a checkpointing ``run`` handed back.
#: ``compile`` is the whole-F compiler (:mod:`repro.compile`); ``jit``
#: remains the historical arithmetic-fragment entry point.  ``link``
#: builds and links a multi-component manifest (:mod:`repro.link`);
#: its ``source`` is the manifest JSON, and warm workers reuse the
#: on-disk artifact store (``options.store``) across jobs.  ``promote``
#: is background tiering work scheduled by
#: :mod:`repro.tiering.coordinator`: validate a program's fast tiers
#: and persist the signed receipt (:mod:`repro.tiering.promote`).
JOB_KINDS = ("parse", "typecheck", "run", "jit", "compile", "equiv",
             "resume", "link", "promote")

#: Every status a result can carry.  ``ok`` is the only cacheable one;
#: ``rejected`` is produced for malformed requests, for quarantined job
#: digests, and when the pool is closing (resubmission cannot help).
#: ``overloaded`` is the *transient* refusal: admission control shed the
#: job (bounded queue at capacity, or an open per-kind circuit breaker)
#: and the output carries ``retry_after_ms`` -- back off and resubmit.
#: ``suspended`` means the run hit its fuel ceiling with
#: ``options.checkpoint`` set and the output carries a resumable
#: snapshot; ``resource_exhausted`` covers the non-fuel governors (heap
#: cells, stack depth), which are terminal.
RESULT_STATUSES = ("ok", "error", "fuel_exhausted", "resource_exhausted",
                   "suspended", "timeout", "crashed", "rejected",
                   "overloaded")


class ProtocolError(FunTALError):
    """A wire message was malformed (bad JSON, unknown kind/option, ...)."""


@dataclass
class JobOptions:
    """Per-job knobs.  Only non-default values go on the wire, so the
    canonical JSON used for cache keys stays minimal and stable.

    ``timeout`` is *wall-clock seconds* enforced by the worker pool;
    ``fuel`` is the machines' step budget.  The two ``inject_*`` fields
    are fault-injection hooks used by the resilience tests (and handy for
    drills): ``inject_crash`` makes the worker die with ``os._exit`` and
    ``inject_sleep`` stalls it before execution.  Both are excluded from
    the cache key, as is ``timeout`` (operational, not semantic) and
    ``no_cache`` itself.
    """

    fuel: Optional[int] = None          # machine step budget
    heap: Optional[int] = None          # heap-cell ceiling (Budget)
    depth: Optional[int] = None         # stack-depth ceiling (Budget)
    checkpoint: bool = False            # run/resume: suspend + snapshot on
                                        # fuel exhaustion instead of failing
    jit: bool = False                   # run: execute under the guarded JIT
    timeout: Optional[float] = None     # wall-clock seconds (pool enforced)
    result_type: str = "int"            # halt type for bare T components
    trace: bool = False                 # run: include the control-flow table
    optimize: bool = False              # jit: run the peephole optimizer
    check: bool = False                 # jit: discharge the equiv obligation
    tier: Optional[str] = None          # compile: force a tier (arith|general)
    validate: bool = False              # compile: translation validation
    ir: bool = False                    # compile: include the closure IR
    seed: int = 0                       # equiv: context-generator seed
    type: Optional[str] = None          # equiv: the common F type
    right: Optional[str] = None         # equiv: right-hand source
    no_cache: bool = False              # bypass the result cache
    engine: Optional[str] = None        # run/resume: F stepper (subst|cek)
    tal_engine: Optional[str] = None    # run/resume: T engine (ref|fast)
    store: Optional[str] = None         # link: artifact-store directory
    run: bool = True                    # link: evaluate the linked program
    deadline_ms: Optional[int] = None   # admission control: shed the job
                                        # if not *started* within this
                                        # many ms of submission
    checkpoint_every: Optional[int] = None  # run/resume: ship a progress
                                        # snapshot every N fuel, so a
                                        # killed worker's job resumes
                                        # from its last checkpoint
    degraded: bool = False              # dispatch-side: forced interpreter
                                        # tier (open compile/jit breaker)
    inject_crash: bool = False          # fault injection: kill the worker
    inject_sleep: float = 0.0           # fault injection: stall the worker
    inject_hang: bool = False           # fault injection: SIGSTOP the
                                        # worker (freezes heartbeats too)
    inject_corrupt: bool = False        # fault injection: garbage result
                                        # envelope on the wire
    inject_crash_at: Optional[int] = None   # fault injection: die right
                                        # after the Nth progress snapshot
    chaos_rate: float = 0.0             # worker-side FaultPlane rate
    chaos_seed: int = 0                 # worker-side FaultPlane seed
    chaos_seams: Optional[str] = None   # comma-separated seam subset
    promoted: bool = False              # dispatch-side: the digest holds a
                                        # verified tier receipt; serve at
                                        # its best tier
    tiering: Optional[Dict[str, Any]] = None    # dispatch-side: the receipt
                                        # payload (t_blocks, jit_threshold,
                                        # compile_tier) the worker applies
                                        # before running

    #: Back-compat alias for the audited module-level constant
    #: :data:`NON_SEMANTIC_OPTIONS` (defined after the class, which it
    #: describes).  Prefer the module-level names in new code.
    NON_SEMANTIC: ClassVar[tuple] = ()   # rebound below

    def to_dict(self) -> Dict[str, Any]:
        """Wire dict containing only the non-default entries."""
        out = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if value != f.default:
                out[f.name] = value
        return out

    def semantic_dict(self) -> Dict[str, Any]:
        """The entries that feed the cache key."""
        return {k: v for k, v in self.to_dict().items()
                if k not in self.NON_SEMANTIC}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JobOptions":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ProtocolError(
                f"unknown job option(s): {', '.join(sorted(unknown))}")
        return cls(**data)


#: Options that change *what* a job computes: they feed the result-cache
#: content address (:meth:`JobOptions.semantic_dict`).
SEMANTIC_OPTIONS = (
    "fuel", "heap", "depth", "checkpoint", "jit", "result_type", "trace",
    "optimize", "check", "tier", "validate", "ir", "seed", "type", "right",
    "run",
)

#: Options that do not affect the *semantic* result and are therefore
#: excluded from the content address.  This is the one audited list --
#: ``test_tiering_lint`` fails when a :class:`JobOptions` field is not
#: classified in exactly one of the two tuples.  The load-bearing
#: entries:
#:
#: * ``engine`` -- the two F steppers are observably step-equivalent
#:   (the differential suite enforces identical values, step counts,
#:   and budget verdicts), so results are shareable across engines.
#: * ``tal_engine`` -- the fast T tier locksteps with the reference
#:   machine (identical values, fuel verdicts, and trap behaviour), so
#:   ref/fast runs share entries.
#: * ``store`` -- the artifact store is a cache; content addressing
#:   makes its hits semantically invisible.
#: * ``checkpoint_every`` -- preserves exact slicing (same value, same
#:   total steps); ``deadline_ms`` is pure admission control.
#: * ``degraded`` -- degraded results never enter the cache (the pool
#:   skips the put), so the flag staying out of the key cannot poison
#:   it.
#: * ``promoted``/``tiering`` -- a promoted run must return exactly
#:   what the interpreted run returns (that is what the receipt
#:   certifies, and the safety net + quarantine enforce at runtime),
#:   so promoted and cold results share cache entries by construction.
NON_SEMANTIC_OPTIONS = (
    "timeout", "no_cache", "engine", "tal_engine", "store",
    "deadline_ms", "checkpoint_every", "degraded",
    "inject_crash", "inject_sleep", "inject_hang",
    "inject_corrupt", "inject_crash_at",
    "chaos_rate", "chaos_seed", "chaos_seams",
    "promoted", "tiering",
)

JobOptions.NON_SEMANTIC = NON_SEMANTIC_OPTIONS


@dataclass
class Job:
    """One unit of work: a kind plus a program (inline or by example).

    ``resume`` jobs carry neither -- they carry ``snapshot``, the wire
    form of a :class:`repro.resilience.checkpoint.MachineSnapshot`
    handed back by a previous checkpointing run, and continue it with
    ``options.fuel`` as the new slice.  The snapshot is self-verifying
    (content digest), so a resume may land on any worker.
    """

    kind: str
    id: str = ""
    source: Optional[str] = None        # surface-syntax program text
    example: Optional[str] = None       # built-in paper example name
    snapshot: Optional[Dict[str, Any]] = None   # resume: wire snapshot
    options: JobOptions = field(default_factory=JobOptions)
    #: Cross-process trace propagation record
    #: (:class:`repro.obs.distributed.TraceContext` wire dict).  Purely
    #: observational: never part of the cache key, and absent from the
    #: wire unless set.
    trace_ctx: Optional[Dict[str, Any]] = None

    def __post_init__(self) -> None:
        if self.kind not in JOB_KINDS:
            raise ProtocolError(
                f"unknown job kind {self.kind!r} "
                f"(expected one of {', '.join(JOB_KINDS)})")
        if self.kind == "resume":
            if self.snapshot is None:
                raise ProtocolError("resume jobs need 'snapshot'")
            if self.source is not None or self.example is not None:
                raise ProtocolError(
                    "resume jobs take 'snapshot', not 'source'/'example'")
        else:
            if self.snapshot is not None:
                raise ProtocolError(
                    f"{self.kind} jobs do not take 'snapshot'")
            if (self.source is None) == (self.example is None):
                raise ProtocolError(
                    "a job needs exactly one of 'source' or 'example'")
        if self.kind == "equiv":
            if self.options.right is None or self.options.type is None:
                raise ProtocolError(
                    "equiv jobs need options.right and options.type")
        if self.kind == "link" and self.source is None:
            raise ProtocolError(
                "link jobs take 'source' (the manifest JSON), not "
                "'example'")
        if self.options.checkpoint and self.options.jit:
            raise ProtocolError(
                "options.checkpoint and options.jit are mutually "
                "exclusive (the guarded JIT re-runs on faults, so its "
                "machine state is not checkpointable)")

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"kind": self.kind}
        if self.id:
            out["id"] = self.id
        if self.source is not None:
            out["source"] = self.source
        if self.example is not None:
            out["example"] = self.example
        if self.snapshot is not None:
            out["snapshot"] = self.snapshot
        opts = self.options.to_dict()
        if opts:
            out["options"] = opts
        if self.trace_ctx is not None:
            out["trace_ctx"] = self.trace_ctx
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Job":
        extra = set(data) - {"kind", "id", "source", "example", "snapshot",
                             "options", "op", "v", "trace_ctx"}
        if extra:
            raise ProtocolError(
                f"unknown job field(s): {', '.join(sorted(extra))}")
        if "kind" not in data:
            raise ProtocolError("job is missing 'kind'")
        return cls(
            kind=data["kind"],
            id=str(data.get("id", "")),
            source=data.get("source"),
            example=data.get("example"),
            snapshot=data.get("snapshot"),
            options=JobOptions.from_dict(data.get("options", {}) or {}),
            trace_ctx=data.get("trace_ctx"),
        )


@dataclass
class JobResult:
    """The outcome of one job, as it travels back over the wire."""

    id: str
    kind: str
    status: str                         # one of RESULT_STATUSES
    output: Dict[str, Any] = field(default_factory=dict)
    error: str = ""
    error_type: str = ""
    attempts: int = 1                   # dispatch attempts consumed
    cached: bool = False                # served from the result cache
    duration_ms: float = 0.0            # executor wall time (the cached
                                        # value keeps the original run's)
    worker: Optional[int] = None        # pid of the executing worker
    #: Worker-side observability envelope (``{"pid", "metrics",
    #: "events"}``) captured when the job carried a ``trace_ctx``; see
    #: :mod:`repro.obs.distributed`.  Stripped before caching.
    obs: Optional[Dict[str, Any]] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_dict(self) -> Dict[str, Any]:
        out = asdict(self)
        if self.worker is None:
            del out["worker"]
        if self.obs is None:
            del out["obs"]
        if not self.error:
            del out["error"]
            del out["error_type"]
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JobResult":
        if data.get("status") not in RESULT_STATUSES:
            raise ProtocolError(
                f"unknown result status {data.get('status')!r}")
        return cls(
            id=str(data.get("id", "")),
            kind=data.get("kind", ""),
            status=data["status"],
            output=data.get("output", {}) or {},
            error=data.get("error", ""),
            error_type=data.get("error_type", ""),
            attempts=int(data.get("attempts", 1)),
            cached=bool(data.get("cached", False)),
            duration_ms=float(data.get("duration_ms", 0.0)),
            worker=data.get("worker"),
            obs=data.get("obs"),
        )

    @classmethod
    def failure(cls, job: "Job", status: str, error: str,
                error_type: str = "", attempts: int = 1,
                output: Optional[Dict[str, Any]] = None) -> "JobResult":
        return cls(id=job.id, kind=job.kind, status=status, error=error,
                   error_type=error_type or status, attempts=attempts,
                   output=output or {})


def encode_line(message: Dict[str, Any]) -> bytes:
    """One wire line: compact JSON + newline."""
    return json.dumps(message, separators=(",", ":"),
                      sort_keys=True).encode("utf-8") + b"\n"


def decode_line(line: bytes) -> Dict[str, Any]:
    """Parse one wire line into a dict; :class:`ProtocolError` on junk."""
    try:
        data = json.loads(line.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as err:
        raise ProtocolError(f"bad wire line: {err}") from None
    if not isinstance(data, dict):
        raise ProtocolError("wire line is not a JSON object")
    return data


def jobs_from_jsonl(text: str) -> List[Job]:
    """Parse a ``.jsonl`` batch file (blank lines and ``#`` comments ok)."""
    jobs = []
    for i, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        try:
            job = Job.from_dict(decode_line(line.encode("utf-8")))
        except ProtocolError as err:
            raise ProtocolError(f"line {i}: {err}") from None
        if not job.id:
            job.id = f"job-{i}"
        jobs.append(job)
    return jobs

"""A crash-isolated multiprocessing worker pool with per-job timeouts.

Architecture: each worker is a separate OS process connected to the pool
by its own duplex :func:`multiprocessing.Pipe`.  A single *manager*
thread owns all worker state and multiplexes a persistent
:mod:`selectors` instance over

* every worker's pipe end (results arriving),
* every worker's process *sentinel* (death detection, even when the pipe
  stays open because a sibling inherited a dup of it), and
* a self-kick socket written by :meth:`WorkerPool.submit` (so dispatch
  latency is not bounded by the poll interval).

**Job batching.**  Paper-example jobs run in well under a millisecond, so
per-job round-trips would leave the manager thread as the bottleneck.
Dispatch therefore sends *chunks*: an idle worker receives up to
``chunk_max`` jobs in one message (sized ``ceil(pending / idle)``, so a
shallow queue still gets single-job latency) and executes them in order,
streaming each result back individually.  Streaming keeps fault blame
precise: the manager tracks the worker's in-flight FIFO, the head of
which is by construction the job being executed right now.

Fault model -- the pool survives anything a job does to its worker:

* **crash** (``os._exit``, segfault, unpicklable explosion): the process
  sentinel fires, the worker is reaped and respawned;
* **hang** (infinite loop, ``inject_sleep``): the head job's wall-clock
  deadline passes (the deadline re-arms as each result arrives), the
  worker is killed, reaped, and respawned;
* the *head* job -- the culprit -- is retried with exponential backoff up
  to ``max_retries`` extra dispatches, then reported failed with status
  ``crashed``/``timeout``; its chunk-mates never started, so they are
  requeued without touching their retry budgets.  The pool itself never
  goes down.

Backpressure: the pending queue is bounded (``queue_size``); ``submit``
either blocks or raises :class:`QueueFull` (``block=False``), which the
TCP server surfaces to clients as a ``rejected`` result.

A :class:`~repro.serve.cache.ResultCache` can be attached; ``submit``
then resolves content-addressed hits instantly and successful results are
inserted on completion.  Instrumentation (when :mod:`repro.obs` is
enabled): ``serve.jobs.*`` / ``serve.worker.*`` counters, a
``serve.queue.depth`` gauge, a ``serve.job.ms`` histogram, and one
``serve.job`` span per job covering submit -> resolve.
"""

from __future__ import annotations

import collections
import multiprocessing
import os
import selectors
import signal
import socket
import threading
import time
from typing import Any, Callable, Dict, List, Optional

from repro.obs import events as obs_events
from repro.obs.distributed import new_trace_id, stitch_envelope
from repro.obs.events import OBS
from repro.serve.cache import ResultCache
from repro.serve.protocol import Job, JobResult

__all__ = ["WorkerPool", "Ticket", "PoolClosed", "QueueFull",
           "DEFAULT_TIMEOUT"]

#: Per-job wall-clock budget when neither the job nor the pool sets one.
DEFAULT_TIMEOUT = 30.0


class PoolClosed(RuntimeError):
    """submit() after close()."""


class QueueFull(RuntimeError):
    """Bounded queue at capacity and ``block=False``."""


class Ticket:
    """A future for one submitted job."""

    __slots__ = ("job", "attempts", "not_before", "start_ns", "span_id",
                 "_event", "_lock", "_result", "_callbacks")

    def __init__(self, job: Job):
        self.job = job
        self.attempts = 0           # execution attempts charged so far
        self.not_before = 0.0       # backoff gate (monotonic seconds)
        self.start_ns = time.perf_counter_ns()
        # Pre-allocate the serve.job span id while a trace is being
        # recorded, so worker-side spans can be stitched under it.
        self.span_id = next(obs_events._span_ids) \
            if OBS.enabled and OBS.bus.active else 0
        self._event = threading.Event()
        self._lock = threading.Lock()
        self._result: Optional[JobResult] = None
        self._callbacks: List[Callable[[JobResult], None]] = []

    @property
    def done(self) -> bool:
        return self._event.is_set()

    @property
    def result(self) -> Optional[JobResult]:
        return self._result

    def wait(self, timeout: Optional[float] = None) -> Optional[JobResult]:
        """Block until resolved; None only if ``timeout`` elapses."""
        self._event.wait(timeout)
        return self._result

    def add_done_callback(self, fn: Callable[[JobResult], None]) -> None:
        """Run ``fn(result)`` on resolution (immediately if already
        done).  Callbacks fire on the resolving thread -- keep them
        short and thread-safe (e.g. ``loop.call_soon_threadsafe``)."""
        with self._lock:
            if self._result is None:
                self._callbacks.append(fn)
                return
        fn(self._result)

    def _resolve(self, result: JobResult) -> None:
        with self._lock:
            self._result = result
            callbacks, self._callbacks = self._callbacks, []
        self._event.set()
        for fn in callbacks:
            fn(result)

    def _timeout_for(self, default: float) -> float:
        return self.job.options.timeout or default


class _Worker:
    """Manager-thread-private record of one live worker process.

    ``inflight`` is the FIFO of tickets dispatched to this worker; the
    head is the job the worker is executing *right now* (it streams
    results back in order), so crash/timeout blame lands exactly there.
    """

    __slots__ = ("wid", "proc", "conn", "inflight", "deadline")

    def __init__(self, wid: int, proc, conn):
        self.wid = wid
        self.proc = proc
        self.conn = conn
        self.inflight: "collections.deque[Ticket]" = collections.deque()
        self.deadline = 0.0


def _worker_main(conn) -> None:
    """The worker loop: recv a chunk of job dicts, execute in order,
    stream one result dict back per job."""
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    from repro.serve.executor import execute_job
    from repro.serve.protocol import Job, JobResult, ProtocolError

    while True:
        try:
            chunk = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        if chunk is None:
            break
        for msg in chunk:
            try:
                result = execute_job(Job.from_dict(msg))
            except ProtocolError as err:
                result = JobResult(id=str(msg.get("id", "")),
                                   kind=str(msg.get("kind", "")),
                                   status="rejected", error=str(err),
                                   error_type="ProtocolError",
                                   worker=os.getpid())
            except Exception as err:  # executor is total; belt and braces
                result = JobResult(id=str(msg.get("id", "")),
                                   kind=str(msg.get("kind", "")),
                                   status="error", error=str(err),
                                   error_type=type(err).__name__,
                                   worker=os.getpid())
            try:
                conn.send(result.to_dict())
            except (BrokenPipeError, EOFError, OSError):
                return


def _preload_executor_deps() -> None:
    """Import the executor's lazy dependencies *in the parent* before
    forking, so workers inherit warm modules instead of each paying the
    full import bill on its first job.  (Spawned workers on non-POSIX
    platforms still import on demand.)"""
    import repro.analysis.trace          # noqa: F401
    import repro.equiv.checker           # noqa: F401
    import repro.ft.machine              # noqa: F401
    import repro.ft.typecheck            # noqa: F401
    import repro.jit.compiler            # noqa: F401
    import repro.papers_examples         # noqa: F401
    import repro.surface.parser          # noqa: F401
    import repro.surface.pretty          # noqa: F401


def _pick_context(name: Optional[str]):
    """fork where available (instant respawns, no re-import); spawn
    elsewhere.  The worker target and executor are module-level, so every
    start method works."""
    if name:
        return multiprocessing.get_context(name)
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context("spawn")


class WorkerPool:
    """See the module docstring.  Thread-safe; use as a context manager."""

    def __init__(self, workers: int = 2, *,
                 max_retries: int = 2,
                 default_timeout: float = DEFAULT_TIMEOUT,
                 queue_size: int = 256,
                 retry_backoff: float = 0.05,
                 chunk_max: int = 16,
                 cache: Optional[ResultCache] = None,
                 mp_context: Optional[str] = None):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.max_retries = max_retries
        self.default_timeout = default_timeout
        self.queue_size = queue_size
        self.retry_backoff = retry_backoff
        self.chunk_max = max(1, chunk_max)
        self.cache = cache
        self._ctx = _pick_context(mp_context)
        self._trace_id = new_trace_id()

        self._lock = threading.Lock()
        self._not_full = threading.Condition(self._lock)
        self._all_done = threading.Condition(self._lock)
        self._pending: "collections.deque[Ticket]" = collections.deque()
        self._delayed: List[Ticket] = []
        self._outstanding = 0
        self._closing = False
        self._closed = False

        self._kick_r, self._kick_w = socket.socketpair()
        self._kick_r.setblocking(False)
        self._kick_w.setblocking(False)
        self._selector = selectors.DefaultSelector()
        self._selector.register(self._kick_r, selectors.EVENT_READ,
                                ("kick", None))

        # Workers are started before the manager thread so the first
        # forks happen from a single-threaded parent.
        _preload_executor_deps()
        self._workers: Dict[int, _Worker] = {}
        for wid in range(workers):
            self._workers[wid] = self._spawn(wid)
        self._manager = threading.Thread(target=self._loop,
                                         name="funtal-pool-manager",
                                         daemon=True)
        self._manager.start()

    # -- metrics helpers -------------------------------------------------

    @staticmethod
    def _inc(name: str) -> None:
        if OBS.enabled:
            OBS.metrics.inc(name)

    def _gauge_depth_locked(self) -> None:
        if OBS.enabled:
            OBS.metrics.set_gauge("serve.queue.depth",
                                  len(self._pending) + len(self._delayed))

    # -- submission ------------------------------------------------------

    def submit(self, job: Job, *, block: bool = True,
               timeout: Optional[float] = None) -> Ticket:
        """Enqueue ``job``; returns its :class:`Ticket`.  Resolves
        immediately on a cache hit.  Raises :class:`PoolClosed` after
        :meth:`close`, :class:`QueueFull` when the bounded queue is at
        capacity and ``block`` is false."""
        ticket = Ticket(job)
        if self._closing:
            raise PoolClosed("pool is closed")
        if self.cache is not None:
            hit = self.cache.get(job)
            if hit is not None:
                ticket._resolve(hit)
                return ticket
        with self._not_full:
            while len(self._pending) + len(self._delayed) >= self.queue_size:
                if self._closing:
                    raise PoolClosed("pool is closed")
                if not block:
                    raise QueueFull(
                        f"pending queue at capacity ({self.queue_size})")
                self._not_full.wait(timeout)
            if self._closing:
                raise PoolClosed("pool is closed")
            self._pending.append(ticket)
            self._outstanding += 1
            self._inc("serve.jobs.submitted")
            self._gauge_depth_locked()
        self._kick()
        return ticket

    def submit_batch(self, jobs: List[Job]) -> List[Ticket]:
        """Bulk :meth:`submit`: cache hits resolve up front, the misses
        enter the queue under one lock acquisition and one manager
        wakeup, so the dispatcher sees the whole batch at once and can
        cut full-size chunks immediately."""
        if self._closing:
            raise PoolClosed("pool is closed")
        tickets = []
        queued = []
        for job in jobs:
            ticket = Ticket(job)
            tickets.append(ticket)
            hit = self.cache.get(job) if self.cache is not None else None
            if hit is not None:
                ticket._resolve(hit)
            else:
                queued.append(ticket)
        offset = 0
        while offset < len(queued):
            with self._not_full:
                while len(self._pending) + len(self._delayed) \
                        >= self.queue_size:
                    if self._closing:
                        raise PoolClosed("pool is closed")
                    self._not_full.wait()
                if self._closing:
                    raise PoolClosed("pool is closed")
                room = self.queue_size - len(self._pending) \
                    - len(self._delayed)
                take = queued[offset:offset + room]
                self._pending.extend(take)
                self._outstanding += len(take)
                if OBS.enabled:
                    OBS.metrics.inc("serve.jobs.submitted", len(take))
                self._gauge_depth_locked()
                offset += len(take)
            self._kick()
        return tickets

    def run_batch(self, jobs: List[Job],
                  timeout: Optional[float] = None) -> List[JobResult]:
        """Submit everything, wait for everything; results in job order."""
        tickets = self.submit_batch(jobs)
        deadline = None if timeout is None else time.monotonic() + timeout
        results = []
        for t in tickets:
            left = None if deadline is None else \
                max(0.0, deadline - time.monotonic())
            result = t.wait(left)
            if result is None:
                result = JobResult.failure(t.job, "timeout",
                                           "client-side wait timed out",
                                           attempts=t.attempts)
            results.append(result)
        return results

    def _kick(self) -> None:
        try:
            self._kick_w.send(b"\0")
        except (BlockingIOError, OSError):
            pass  # manager already has a wakeup pending

    # -- worker lifecycle (manager thread only, after init) --------------

    def _spawn(self, wid: int) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(target=_worker_main, args=(child_conn,),
                                 name=f"funtal-worker-{wid}", daemon=True)
        proc.start()
        child_conn.close()
        worker = _Worker(wid, proc, parent_conn)
        self._selector.register(parent_conn, selectors.EVENT_READ,
                                ("conn", worker))
        self._selector.register(proc.sentinel, selectors.EVENT_READ,
                                ("sentinel", worker))
        self._inc("serve.worker.spawn")
        return worker

    def _reap_and_respawn(self, worker: _Worker) -> None:
        for key in (worker.conn, worker.proc.sentinel):
            try:
                self._selector.unregister(key)
            except (KeyError, ValueError):
                pass
        try:
            worker.conn.close()
        except OSError:
            pass
        if worker.proc.is_alive():
            worker.proc.kill()
        worker.proc.join(timeout=5.0)
        if not self._closing:
            self._workers[worker.wid] = self._spawn(worker.wid)
            self._inc("serve.worker.respawn")
        else:
            self._workers.pop(worker.wid, None)

    def _fail_worker(self, worker: _Worker, status: str) -> None:
        """The worker crashed or its head job overran the deadline: reap
        and respawn it, retry-or-fail the head (the job being executed),
        requeue the untouched chunk-mates without penalty."""
        inflight = worker.inflight
        worker.inflight = collections.deque()
        self._inc("serve.worker."
                  + ("timeout" if status == "timeout" else "crash"))
        self._reap_and_respawn(worker)
        if inflight:
            head = inflight.popleft()
            self._retry_or_fail(head, status)
        if inflight:
            with self._lock:
                self._pending.extendleft(reversed(inflight))
                self._gauge_depth_locked()

    def _retry_or_fail(self, ticket: Ticket, status: str) -> None:
        if ticket.attempts <= self.max_retries:
            delay = self.retry_backoff * (2 ** (ticket.attempts - 1))
            ticket.not_before = time.monotonic() + delay
            with self._lock:
                self._delayed.append(ticket)
                self._gauge_depth_locked()
            self._inc("serve.jobs.retried")
            return
        what = "hung (wall-clock timeout)" if status == "timeout" \
            else "crashed its worker"
        self._finish(ticket, JobResult.failure(
            ticket.job, status,
            f"job {what} {ticket.attempts} time(s); retry budget "
            f"({self.max_retries}) exhausted", attempts=ticket.attempts))

    def _wire_job(self, ticket: Ticket) -> Dict[str, Any]:
        """The wire dict for one dispatch.  While instrumentation is on,
        jobs that do not already carry a trace context get one, so the
        worker ships its spans/metrics back for stitching (events only
        while a trace is actually being recorded)."""
        wire = ticket.job.to_dict()
        if OBS.enabled and "trace_ctx" not in wire:
            wire["trace_ctx"] = {
                "trace_id": self._trace_id,
                "parent_span_id": ticket.span_id,
                "record": bool(ticket.span_id),
            }
        return wire

    def _finish(self, ticket: Ticket, result: JobResult) -> None:
        result.attempts = max(result.attempts, ticket.attempts)
        if self.cache is not None:
            self.cache.put(ticket.job, result)
        end_ns = time.perf_counter_ns()
        if OBS.enabled:
            OBS.metrics.inc("serve.jobs.completed" if result.ok
                            else "serve.jobs.failed")
            OBS.metrics.observe("serve.job.ms",
                                (end_ns - ticket.start_ns) / 1e6)
            envelope = result.obs
            if envelope and envelope.get("metrics"):
                OBS.metrics.merge_snapshot(envelope["metrics"])
                OBS.metrics.inc("serve.obs.envelopes")
            if OBS.bus.active:
                span_id = ticket.span_id or next(obs_events._span_ids)
                if envelope and envelope.get("events"):
                    stitched = stitch_envelope(envelope, span_id)
                    for event in stitched:
                        OBS.bus.publish(event)
                    OBS.metrics.inc(
                        "serve.obs.spans_stitched",
                        sum(1 for e in stitched
                            if isinstance(e, obs_events.Span)))
                OBS.bus.publish(obs_events.Span(
                    "serve.job", "serve", ticket.start_ns, end_ns,
                    span_id, None,
                    (("kind", ticket.job.kind),
                     ("status", result.status),
                     ("attempts", str(ticket.attempts)),
                     ("worker", str(result.worker or "")))))
        ticket._resolve(result)
        with self._all_done:
            self._outstanding -= 1
            if self._outstanding == 0:
                self._all_done.notify_all()

    # -- the manager loop ------------------------------------------------

    def _arm_deadline(self, worker: _Worker) -> None:
        """(Re)start the head job's wall clock."""
        if worker.inflight:
            head = worker.inflight[0]
            head.attempts += 1
            worker.deadline = time.monotonic() \
                + head._timeout_for(self.default_timeout)

    def _assign(self) -> None:
        now = time.monotonic()
        with self._lock:
            if self._delayed:
                due = [t for t in self._delayed if t.not_before <= now]
                for t in due:
                    self._delayed.remove(t)
                    self._pending.appendleft(t)   # retries jump the queue
        idle = [w for w in self._workers.values() if not w.inflight]
        for i, worker in enumerate(idle):
            with self._not_full:
                if not self._pending:
                    break
                # Spread the queue over the remaining idle workers; a
                # shallow queue yields single-job chunks (low latency), a
                # deep one yields up to chunk_max (amortized round-trips).
                share = -(-len(self._pending) // (len(idle) - i))
                take = min(share, self.chunk_max, len(self._pending))
                chunk = [self._pending.popleft() for _ in range(take)]
                self._gauge_depth_locked()
                self._not_full.notify(take)
            worker.inflight.extend(chunk)
            self._arm_deadline(worker)
            try:
                worker.conn.send([self._wire_job(t) for t in chunk])
            except (BrokenPipeError, OSError):
                self._fail_worker(worker, "crashed")

    def _drain_results(self, worker: _Worker) -> None:
        """Consume every result the worker has streamed so far."""
        while worker.inflight:
            try:
                if not worker.conn.poll():
                    return
                data = worker.conn.recv()
                result = JobResult.from_dict(data)
            except Exception:
                self._fail_worker(worker, "crashed")
                return
            ticket = worker.inflight.popleft()
            self._finish(ticket, result)
            self._arm_deadline(worker)

    def _wait_timeout(self) -> float:
        now = time.monotonic()
        timeout = 0.2
        for w in self._workers.values():
            if w.inflight:
                timeout = min(timeout, max(0.0, w.deadline - now))
        with self._lock:
            for t in self._delayed:
                timeout = min(timeout, max(0.0, t.not_before - now))
        return timeout

    def _loop(self) -> None:
        while True:
            with self._lock:
                idle_exit = (self._closed and not self._pending
                             and not self._delayed
                             and all(not w.inflight
                                     for w in self._workers.values()))
            if idle_exit:
                break
            self._assign()

            ready = self._selector.select(self._wait_timeout())

            # Results first, so a job that finished just before its
            # deadline (or its worker's death rattle) still counts.
            dead: List[_Worker] = []
            for key, _ in ready:
                tag, worker = key.data
                if tag == "kick":
                    try:
                        while self._kick_r.recv(8192):
                            pass
                    except (BlockingIOError, OSError):
                        pass
                elif tag == "conn":
                    self._drain_results(worker)
                elif tag == "sentinel":
                    dead.append(worker)

            for worker in dead:
                if worker is not self._workers.get(worker.wid):
                    continue  # already reaped via its pipe this round
                if worker.proc.is_alive():
                    continue
                self._drain_results(worker)    # salvage the death rattle
                if worker is self._workers.get(worker.wid):
                    self._fail_worker(worker, "crashed")

            now = time.monotonic()
            for worker in list(self._workers.values()):
                if worker.inflight and now > worker.deadline:
                    self._fail_worker(worker, "timeout")

        # Shutdown: politely stop workers, then make sure.
        for worker in list(self._workers.values()):
            try:
                worker.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for worker in list(self._workers.values()):
            worker.proc.join(timeout=2.0)
            if worker.proc.is_alive():
                worker.proc.kill()
                worker.proc.join(timeout=5.0)
            try:
                worker.conn.close()
            except OSError:
                pass
        self._selector.close()

    # -- lifecycle -------------------------------------------------------

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until every submitted job has resolved."""
        with self._all_done:
            if self._outstanding == 0:
                return True
            return self._all_done.wait_for(
                lambda: self._outstanding == 0, timeout)

    def close(self, drain: bool = True,
              timeout: Optional[float] = None) -> None:
        """Stop accepting work; by default wait for in-flight jobs, then
        shut the workers down.  ``drain=False`` abandons the queue
        (pending tickets resolve ``rejected``)."""
        with self._lock:
            already = self._closing
            self._closing = True
            self._not_full.notify_all()
        if already:
            self._manager.join(timeout=timeout)
            return
        if drain:
            self.drain(timeout)
        else:
            with self._lock:
                abandoned = list(self._pending) + list(self._delayed)
                self._pending.clear()
                self._delayed.clear()
            for ticket in abandoned:
                self._finish(ticket, JobResult.failure(
                    ticket.job, "rejected", "pool closed",
                    attempts=ticket.attempts))
        with self._lock:
            self._closed = True
        self._kick()
        self._manager.join(timeout=timeout or 30.0)
        self._kick_r.close()
        self._kick_w.close()

    def stats(self) -> Dict[str, object]:
        """Operational snapshot (workers, queue, cache)."""
        with self._lock:
            queued = len(self._pending) + len(self._delayed)
            outstanding = self._outstanding
        return {
            "workers": len(self._workers),
            "queued": queued,
            "outstanding": outstanding,
            "queue_size": self.queue_size,
            "chunk_max": self.chunk_max,
            "max_retries": self.max_retries,
            "default_timeout": self.default_timeout,
            "cache": self.cache.stats() if self.cache is not None else None,
        }

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

"""A crash-isolated, supervised multiprocessing worker pool.

Architecture: each worker is a separate OS process connected to the pool
by its own duplex :func:`multiprocessing.Pipe` pair -- one pipe for jobs
and results, one for heartbeats.  A single *manager* thread owns all
worker state and multiplexes a persistent :mod:`selectors` instance over

* every worker's job pipe end (results and progress arriving),
* every worker's heartbeat pipe end (pongs arriving),
* every worker's process *sentinel* (death detection, even when the pipe
  stays open because a sibling inherited a dup of it), and
* a self-kick socket written by :meth:`WorkerPool.submit` (so dispatch
  latency is not bounded by the poll interval).

**Job batching.**  Paper-example jobs run in well under a millisecond, so
per-job round-trips would leave the manager thread as the bottleneck.
Dispatch therefore sends *chunks*: an idle worker receives up to
``chunk_max`` jobs in one message (sized ``ceil(pending / idle)``, so a
shallow queue still gets single-job latency) and executes them in order,
streaming each result back individually.  Streaming keeps fault blame
precise: the manager tracks the worker's in-flight FIFO, the head of
which is by construction the job being executed right now.

Fault model -- the pool survives anything a job does to its worker:

* **crash** (``os._exit``, segfault, unpicklable explosion): the process
  sentinel fires, the worker is reaped and respawned;
* **hang** (infinite loop, ``inject_sleep``): the head job's wall-clock
  deadline passes (the deadline re-arms as each result arrives), the
  worker is killed, reaped, and respawned;
* **wedge** (``SIGSTOP``, kernel-level stall): independent of any job
  deadline, the manager pings each worker's heartbeat pipe every
  ``heartbeat_interval`` seconds; a worker silent for
  ``heartbeat_misses`` intervals is declared hung and replaced;
* the *head* job -- the culprit -- is retried with exponential backoff up
  to ``max_retries`` extra dispatches, then reported failed with status
  ``crashed``/``timeout``; its chunk-mates never started, so they are
  requeued without touching their retry budgets.  The pool itself never
  goes down.

Supervision policy (:mod:`repro.serve.supervisor`) layers on top:

* **restart budgets** -- a slot that keeps dying respawns with
  exponential backoff plus jitter instead of hot-looping fork/exec;
  every detection-to-respawn interval is recorded as MTTR
  (``serve.recovery.mttr.ms``);
* **circuit breaker** -- worker-fatal attempts are charged to the job's
  *kind*; past a threshold the kind is refused (``overloaded`` with
  ``retry_after_ms``), except ``run`` jobs requesting the JIT, which
  *degrade* to the interpreter tier instead when the ``jit``/``compile``
  breaker is the open one;
* **digest quarantine** -- a job whose retry budget died fatally is
  quarantined by content digest (fault-injection options included), so
  resubmitting a poison job cannot keep killing workers;
* **checkpoint recovery** -- ``options.checkpoint_every`` makes the
  executor stream progress snapshots; when the worker dies mid-job the
  retry is rewritten into a ``resume`` from the last checkpoint, so the
  job finishes on a *sibling* instead of restarting from scratch
  (``serve.recovery.resumed`` vs ``.restarted``).

Backpressure: the pending queue is bounded (``queue_size``).  Under the
default ``"reject"`` policy ``submit`` either blocks or raises
:class:`QueueFull` (``block=False``) carrying a load-derived
``retry_after_ms``; under ``"shed-oldest"`` the oldest pending job is
evicted as an ``overloaded`` result to admit the new one.  Jobs carrying
``options.deadline_ms`` are shed (status ``timeout``) if still queued
when the deadline passes -- an expired job must not waste a worker.

A :class:`~repro.serve.cache.ResultCache` can be attached; ``submit``
then resolves content-addressed hits instantly and successful results are
inserted on completion (degraded and recovered results are *not*
cached).  Instrumentation (when :mod:`repro.obs` is enabled):
``serve.jobs.*`` / ``serve.worker.*`` / ``serve.recovery.*`` /
``serve.shed.*`` / ``serve.breaker.*`` counters, a ``serve.queue.depth``
gauge, ``serve.job.ms`` / ``serve.recovery.mttr.ms`` histograms, and one
``serve.job`` span per job covering submit -> resolve.
"""

from __future__ import annotations

import collections
import multiprocessing
import os
import selectors
import signal
import socket
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import PoolClosed, QueueFull
from repro.obs import events as obs_events
from repro.obs.distributed import new_trace_id, stitch_envelope
from repro.obs.events import OBS
from repro.serve.cache import ResultCache
from repro.serve.protocol import Job, JobOptions, JobResult
from repro.serve.supervisor import (
    CircuitBreaker, DigestQuarantine, RestartTracker, SupervisorConfig,
    job_fault_key,
)

__all__ = ["WorkerPool", "Ticket", "PoolClosed", "QueueFull",
           "SupervisorConfig", "DEFAULT_TIMEOUT"]

#: Per-job wall-clock budget when neither the job nor the pool sets one.
DEFAULT_TIMEOUT = 30.0


class Ticket:
    """A future for one submitted job."""

    __slots__ = ("job", "attempts", "not_before", "start_ns", "span_id",
                 "deadline_at", "checkpoint", "recovering", "degrade",
                 "promoted", "promote_payload",
                 "_event", "_lock", "_result", "_callbacks")

    def __init__(self, job: Job):
        self.job = job
        self.attempts = 0           # execution attempts charged so far
        self.not_before = 0.0       # backoff gate (monotonic seconds)
        self.start_ns = time.perf_counter_ns()
        self.deadline_at: Optional[float] = None  # admission deadline
        #: Last progress snapshot shipped by a worker mid-run
        #: (``{"snapshot", "spent", "remaining", "worker"}``); a retry
        #: after worker death resumes from here instead of restarting.
        self.checkpoint: Optional[Dict[str, Any]] = None
        self.recovering = False     # current dispatch is a resume rewrite
        self.degrade = False        # dispatch with the JIT tier disabled
        self.promoted = False       # dispatch at the digest's receipt tier
        #: Receipt payload stamped onto the wire options of a promoted
        #: dispatch (see :mod:`repro.tiering.coordinator`).
        self.promote_payload: Optional[Dict[str, Any]] = None
        # Pre-allocate the serve.job span id while a trace is being
        # recorded, so worker-side spans can be stitched under it.
        self.span_id = next(obs_events._span_ids) \
            if OBS.enabled and OBS.bus.active else 0
        self._event = threading.Event()
        self._lock = threading.Lock()
        self._result: Optional[JobResult] = None
        self._callbacks: List[Callable[[JobResult], None]] = []

    @property
    def done(self) -> bool:
        return self._event.is_set()

    @property
    def result(self) -> Optional[JobResult]:
        return self._result

    def wait(self, timeout: Optional[float] = None) -> Optional[JobResult]:
        """Block until resolved; None only if ``timeout`` elapses."""
        self._event.wait(timeout)
        return self._result

    def add_done_callback(self, fn: Callable[[JobResult], None]) -> None:
        """Run ``fn(result)`` on resolution (immediately if already
        done).  Callbacks fire on the resolving thread -- keep them
        short and thread-safe (e.g. ``loop.call_soon_threadsafe``)."""
        with self._lock:
            if self._result is None:
                self._callbacks.append(fn)
                return
        fn(self._result)

    def _resolve(self, result: JobResult) -> None:
        with self._lock:
            self._result = result
            callbacks, self._callbacks = self._callbacks, []
        self._event.set()
        for fn in callbacks:
            fn(result)

    def _timeout_for(self, default: float) -> float:
        return self.job.options.timeout or default


class _Worker:
    """Manager-thread-private record of one live worker process.

    ``inflight`` is the FIFO of tickets dispatched to this worker; the
    head is the job the worker is executing *right now* (it streams
    results back in order), so crash/timeout blame lands exactly there.
    """

    __slots__ = ("wid", "proc", "conn", "hb_conn", "inflight", "deadline",
                 "last_pong", "ping_sent")

    def __init__(self, wid: int, proc, conn, hb_conn):
        self.wid = wid
        self.proc = proc
        self.conn = conn
        self.hb_conn = hb_conn
        self.inflight: "collections.deque[Ticket]" = collections.deque()
        self.deadline = 0.0
        self.last_pong = time.monotonic()
        self.ping_sent = False


def _worker_main(conn, hb_conn) -> None:
    """The worker loop: recv a chunk of job dicts, execute in order,
    stream one result dict back per job (plus ``__progress__`` records
    for checkpointing jobs)."""
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    from repro.serve.executor import execute_job
    from repro.serve.protocol import Job, JobResult, ProtocolError

    def _echo() -> None:
        # Heartbeat echo: proof the *process* is schedulable.  A worker
        # busy in a long pure-Python job still answers (the GIL
        # rotates between threads), but a SIGSTOP'd or wedged process
        # goes silent and the manager declares it hung.
        while True:
            try:
                hb_conn.recv()
                hb_conn.send(os.getpid())
            except (EOFError, OSError):
                return

    threading.Thread(target=_echo, name="funtal-worker-hb",
                     daemon=True).start()

    while True:
        try:
            chunk = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        if chunk is None:
            break
        for msg in chunk:
            opts = msg.get("options") or {}
            if opts.get("inject_corrupt"):
                # Fault injection: ship a garbage result envelope.  The
                # manager cannot trust the stream afterwards, so this
                # costs the worker its life (the job reads as crashed).
                try:
                    conn.send({"id": msg.get("id", ""),
                               "status": "\x00garbage"})
                except (BrokenPipeError, EOFError, OSError):
                    return
                continue

            def _progress(payload: Dict[str, Any],
                          _id=str(msg.get("id", ""))) -> None:
                wire = dict(payload)
                wire["__progress__"] = True
                wire["id"] = _id
                try:
                    conn.send(wire)
                except (BrokenPipeError, EOFError, OSError):
                    pass

            try:
                result = execute_job(Job.from_dict(msg),
                                     progress=_progress)
            except ProtocolError as err:
                result = JobResult(id=str(msg.get("id", "")),
                                   kind=str(msg.get("kind", "")),
                                   status="rejected", error=str(err),
                                   error_type="ProtocolError",
                                   worker=os.getpid())
            except Exception as err:  # executor is total; belt and braces
                result = JobResult(id=str(msg.get("id", "")),
                                   kind=str(msg.get("kind", "")),
                                   status="error", error=str(err),
                                   error_type=type(err).__name__,
                                   worker=os.getpid())
            try:
                conn.send(result.to_dict())
            except (BrokenPipeError, EOFError, OSError):
                return


def _preload_executor_deps() -> None:
    """Import the executor's lazy dependencies *in the parent* before
    forking, so workers inherit warm modules instead of each paying the
    full import bill on its first job.  (Spawned workers on non-POSIX
    platforms still import on demand.)"""
    import repro.analysis.trace          # noqa: F401
    import repro.equiv.checker           # noqa: F401
    import repro.ft.machine              # noqa: F401
    import repro.ft.typecheck            # noqa: F401
    import repro.jit.compiler            # noqa: F401
    import repro.papers_examples         # noqa: F401
    import repro.surface.parser          # noqa: F401
    import repro.surface.pretty          # noqa: F401
    import repro.tiering.promote         # noqa: F401


def _pick_context(name: Optional[str]):
    """fork where available (instant respawns, no re-import); spawn
    elsewhere.  The worker target and executor are module-level, so every
    start method works."""
    if name:
        return multiprocessing.get_context(name)
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context("spawn")


class WorkerPool:
    """See the module docstring.  Thread-safe; use as a context manager."""

    def __init__(self, workers: int = 2, *,
                 max_retries: int = 2,
                 default_timeout: float = DEFAULT_TIMEOUT,
                 queue_size: int = 256,
                 retry_backoff: float = 0.05,
                 chunk_max: int = 16,
                 cache: Optional[ResultCache] = None,
                 mp_context: Optional[str] = None,
                 supervisor: Optional[SupervisorConfig] = None,
                 shed_policy: Optional[str] = None,
                 tiering: Optional[Any] = None):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.max_retries = max_retries
        self.default_timeout = default_timeout
        self.queue_size = queue_size
        self.retry_backoff = retry_backoff
        self.chunk_max = max(1, chunk_max)
        self.cache = cache
        self._ctx = _pick_context(mp_context)
        self._trace_id = new_trace_id()

        self._cfg = supervisor if supervisor is not None \
            else SupervisorConfig()
        self.shed_policy = shed_policy or self._cfg.shed_policy
        if self.shed_policy not in ("reject", "shed-oldest"):
            raise ValueError(f"unknown shed_policy {self.shed_policy!r}")
        self._breaker = CircuitBreaker(self._cfg.breaker_threshold,
                                       self._cfg.breaker_window,
                                       self._cfg.breaker_cooldown)
        self._quarantine = DigestQuarantine(self._cfg.quarantine_fatal)
        self._restarts = RestartTracker(self._cfg.restart_budget,
                                        self._cfg.restart_window,
                                        self._cfg.restart_backoff,
                                        self._cfg.restart_backoff_max)
        #: Adaptive tiering (a TieringPolicy with mode != "off"):
        #: observes results, schedules background promotions, stamps
        #: promoted dispatches.  None keeps historical behaviour.
        self._tiering = None
        if tiering is not None and getattr(tiering, "enabled", False):
            from repro.tiering.coordinator import TieringCoordinator

            self._tiering = TieringCoordinator(
                tiering, lambda j: self.submit(j, block=False))
        #: Slots waiting out a restart backoff: wid -> (due, death_at).
        self._cooldown: Dict[int, Tuple[float, float]] = {}
        self._mttr_ms: List[float] = []
        self._ewma_ms = 5.0         # smoothed job duration (retry_after)
        self._next_ping = time.monotonic() + self._cfg.heartbeat_interval

        self._lock = threading.Lock()
        self._not_full = threading.Condition(self._lock)
        self._all_done = threading.Condition(self._lock)
        self._pending: "collections.deque[Ticket]" = collections.deque()
        self._delayed: List[Ticket] = []
        self._outstanding = 0
        self._closing = False
        self._closed = False

        self._kick_r, self._kick_w = socket.socketpair()
        self._kick_r.setblocking(False)
        self._kick_w.setblocking(False)
        self._selector = selectors.DefaultSelector()
        self._selector.register(self._kick_r, selectors.EVENT_READ,
                                ("kick", None))

        # Workers are started before the manager thread so the first
        # forks happen from a single-threaded parent.
        _preload_executor_deps()
        self._workers: Dict[int, _Worker] = {}
        for wid in range(workers):
            self._workers[wid] = self._spawn(wid)
        self._manager = threading.Thread(target=self._loop,
                                         name="funtal-pool-manager",
                                         daemon=True)
        self._manager.start()

    # -- metrics helpers -------------------------------------------------

    @staticmethod
    def _inc(name: str) -> None:
        if OBS.enabled:
            OBS.metrics.inc(name)

    def _gauge_depth_locked(self) -> None:
        if OBS.enabled:
            OBS.metrics.set_gauge("serve.queue.depth",
                                  len(self._pending) + len(self._delayed))

    # -- submission ------------------------------------------------------

    def submit(self, job: Job, *, block: bool = True,
               timeout: Optional[float] = None) -> Ticket:
        """Enqueue ``job``; returns its :class:`Ticket`.  Resolves
        immediately on a cache hit, a quarantined digest (``rejected``)
        or an open circuit breaker (``overloaded``).  Raises
        :class:`PoolClosed` after :meth:`close`; :class:`QueueFull`
        (carrying ``retry_after_ms``) when the bounded queue is at
        capacity, ``block`` is false, and the policy is ``"reject"``."""
        ticket = Ticket(job)
        if self._closing:
            raise PoolClosed("pool is closed")
        if self._admit(job, ticket):
            return ticket
        self._enqueue([ticket], block=block, timeout=timeout)
        return ticket

    def submit_batch(self, jobs: List[Job]) -> List[Ticket]:
        """Bulk :meth:`submit`: cache hits and admission refusals
        resolve up front, the rest enter the queue under one lock
        acquisition and one manager wakeup, so the dispatcher sees the
        whole batch at once and can cut full-size chunks immediately."""
        if self._closing:
            raise PoolClosed("pool is closed")
        tickets = []
        queued = []
        for job in jobs:
            ticket = Ticket(job)
            tickets.append(ticket)
            if not self._admit(job, ticket):
                queued.append(ticket)
        if queued:
            self._enqueue(queued)
        return tickets

    def _admit(self, job: Job, ticket: Ticket) -> bool:
        """Admission control: resolve ``ticket`` immediately (True) or
        clear it for the queue (False), marking degraded dispatch and
        the admission deadline on the way."""
        key = job_fault_key(job)
        if key in self._quarantine:
            self._inc("serve.jobs.quarantined")
            ticket._resolve(JobResult.failure(
                job, "rejected",
                f"job digest quarantined: {self._quarantine.reason(key)}",
                error_type="QuarantinedJob"))
            return True
        if self.cache is not None:
            hit = self.cache.get(job)
            if hit is not None:
                ticket._resolve(hit)
                return True
        if self._breaker.enabled:
            if job.kind == "run" and job.options.jit and (
                    self._breaker.is_open("jit")
                    or self._breaker.is_open("compile")):
                # Graceful degradation: the compile tier is poisoned,
                # the interpreter tier is not -- serve, don't refuse.
                ticket.degrade = True
                self._inc("serve.degraded.breaker")
            if self._breaker.is_open(job.kind):
                self._inc("serve.breaker.rejected")
                ticket._resolve(JobResult.failure(
                    job, "overloaded",
                    f"circuit breaker open for job kind {job.kind!r}",
                    error_type="BreakerOpen",
                    output={"retry_after_ms": max(
                        50, self._breaker.retry_after_ms(job.kind))}))
                return True
        if job.options.deadline_ms:
            ticket.deadline_at = time.monotonic() \
                + job.options.deadline_ms / 1000.0
        if self._tiering is not None and not ticket.degrade:
            try:
                payload = self._tiering.dispatch_payload(job)
            except Exception:
                payload = None
                self._inc("tiering.error")
            if payload is not None:
                ticket.promoted = True
                ticket.promote_payload = payload
        return False

    def _retry_after_ms(self) -> int:
        """Load-derived backoff hint: the smoothed job duration scaled
        by queue depth per worker, clamped to [50ms, 5s].  Reads plain
        lengths and floats, so it is safe with or without the lock."""
        queued = len(self._pending) + len(self._delayed)
        workers = max(1, len(self._workers) + len(self._cooldown))
        est = self._ewma_ms * (queued / workers + 1.0)
        return int(min(5000.0, max(50.0, est)))

    def _overload_result(self, ticket: Ticket) -> JobResult:
        return JobResult.failure(
            ticket.job, "overloaded",
            "shed under queue pressure (shed-oldest policy)",
            error_type="QueueFull", attempts=ticket.attempts,
            output={"retry_after_ms": self._retry_after_ms()})

    def _enqueue(self, tickets: List[Ticket], *, block: bool = True,
                 timeout: Optional[float] = None) -> None:
        """Admit ``tickets`` to the bounded queue, applying the shed
        policy; evicted victims resolve ``overloaded`` after the lock
        is released (``_finish`` needs it)."""
        shed: List[Ticket] = []
        try:
            with self._not_full:
                offset = 0
                while offset < len(tickets):
                    while len(self._pending) + len(self._delayed) \
                            >= self.queue_size:
                        if self._closing:
                            raise PoolClosed("pool is closed")
                        if self.shed_policy == "shed-oldest" \
                                and self._pending:
                            shed.append(self._pending.popleft())
                            self._inc("serve.shed.oldest")
                            continue
                        if not block:
                            raise QueueFull(
                                f"pending queue at capacity "
                                f"({self.queue_size})",
                                retry_after_ms=self._retry_after_ms())
                        self._not_full.wait(timeout)
                    if self._closing:
                        raise PoolClosed("pool is closed")
                    room = self.queue_size - len(self._pending) \
                        - len(self._delayed)
                    take = tickets[offset:offset + room]
                    self._pending.extend(take)
                    self._outstanding += len(take)
                    if OBS.enabled:
                        OBS.metrics.inc("serve.jobs.submitted", len(take))
                    self._gauge_depth_locked()
                    offset += len(take)
                    self._kick()
        finally:
            for victim in shed:
                self._finish(victim, self._overload_result(victim))

    def run_batch(self, jobs: List[Job],
                  timeout: Optional[float] = None) -> List[JobResult]:
        """Submit everything, wait for everything; results in job order."""
        tickets = self.submit_batch(jobs)
        deadline = None if timeout is None else time.monotonic() + timeout
        results = []
        for t in tickets:
            left = None if deadline is None else \
                max(0.0, deadline - time.monotonic())
            result = t.wait(left)
            if result is None:
                result = JobResult.failure(t.job, "timeout",
                                           "client-side wait timed out",
                                           attempts=t.attempts)
            results.append(result)
        return results

    def _kick(self) -> None:
        try:
            self._kick_w.send(b"\0")
        except (BlockingIOError, OSError):
            pass  # manager already has a wakeup pending

    # -- worker lifecycle (manager thread only, after init) --------------

    def _spawn(self, wid: int) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe()
        parent_hb, child_hb = self._ctx.Pipe()
        proc = self._ctx.Process(target=_worker_main,
                                 args=(child_conn, child_hb),
                                 name=f"funtal-worker-{wid}", daemon=True)
        proc.start()
        child_conn.close()
        child_hb.close()
        worker = _Worker(wid, proc, parent_conn, parent_hb)
        self._selector.register(parent_conn, selectors.EVENT_READ,
                                ("conn", worker))
        self._selector.register(parent_hb, selectors.EVENT_READ,
                                ("hb", worker))
        self._selector.register(proc.sentinel, selectors.EVENT_READ,
                                ("sentinel", worker))
        self._inc("serve.worker.spawn")
        return worker

    def _record_mttr(self, death_at: float) -> None:
        ms = (time.monotonic() - death_at) * 1000.0
        self._mttr_ms.append(ms)
        if OBS.enabled:
            OBS.metrics.observe("serve.recovery.mttr.ms", ms)

    def _reap_and_respawn(self, worker: _Worker) -> None:
        death_at = time.monotonic()
        for key in (worker.conn, worker.hb_conn, worker.proc.sentinel):
            try:
                self._selector.unregister(key)
            except (KeyError, ValueError):
                pass
        for conn in (worker.conn, worker.hb_conn):
            try:
                conn.close()
            except OSError:
                pass
        if worker.proc.is_alive():
            worker.proc.kill()
        worker.proc.join(timeout=5.0)
        if self._closing:
            self._workers.pop(worker.wid, None)
            return
        delay = self._restarts.delay(worker.wid)
        if delay <= 0:
            self._workers[worker.wid] = self._spawn(worker.wid)
            self._inc("serve.worker.respawn")
            self._record_mttr(death_at)
        else:
            # Over the slot's restart budget: cool down before the
            # respawn instead of hot-looping fork/exec.
            self._workers.pop(worker.wid, None)
            self._cooldown[worker.wid] = (death_at + delay, death_at)
            self._inc("serve.worker.backoff")

    def _fail_worker(self, worker: _Worker, status: str, *,
                     hung: bool = False) -> None:
        """The worker crashed, went silent, or its head job overran the
        deadline: reap and respawn it, retry-or-fail the head (the job
        being executed), requeue the untouched chunk-mates without
        penalty."""
        inflight = worker.inflight
        worker.inflight = collections.deque()
        if hung:
            self._inc("serve.worker.hung")
        self._inc("serve.worker."
                  + ("timeout" if status == "timeout" else "crash"))
        self._reap_and_respawn(worker)
        if inflight:
            head = inflight.popleft()
            if self._breaker.record_fatal(head.job.kind):
                self._inc("serve.breaker.open")
            self._retry_or_fail(head, status)
        if inflight:
            with self._lock:
                self._pending.extendleft(reversed(inflight))
                self._gauge_depth_locked()

    def _retry_or_fail(self, ticket: Ticket, status: str) -> None:
        if ticket.attempts <= self.max_retries:
            delay = self.retry_backoff * (2 ** (ticket.attempts - 1))
            ticket.not_before = time.monotonic() + delay
            # Recovery accounting: a retry with a checkpoint in hand
            # resumes mid-run on a sibling; one without starts over.
            self._inc("serve.recovery.resumed"
                      if ticket.checkpoint is not None
                      else "serve.recovery.restarted")
            with self._lock:
                self._delayed.append(ticket)
                self._gauge_depth_locked()
            self._inc("serve.jobs.retried")
            return
        if status in ("crashed", "timeout"):
            self._quarantine.add(
                job_fault_key(ticket.job),
                f"{status} after {ticket.attempts} attempts")
            self._inc("serve.quarantine.added")
        what = "hung (wall-clock timeout)" if status == "timeout" \
            else "crashed its worker"
        self._finish(ticket, JobResult.failure(
            ticket.job, status,
            f"job {what} {ticket.attempts} time(s); retry budget "
            f"({self.max_retries}) exhausted", attempts=ticket.attempts))

    def _wire_job(self, ticket: Ticket) -> Dict[str, Any]:
        """The wire dict for one dispatch.

        A retry holding a progress checkpoint is rewritten into a
        ``resume`` job from that snapshot (fault-injection options
        deliberately stripped -- the fault already fired).  Degraded
        tickets carry ``options.degraded`` so the executor skips the
        JIT tier.  While instrumentation is on, jobs that do not
        already carry a trace context get one, so the worker ships its
        spans/metrics back for stitching (events only while a trace is
        actually being recorded)."""
        job = ticket.job
        if ticket.checkpoint is not None and job.kind in ("run", "resume"):
            opts = job.options
            resume = Job(
                kind="resume", id=job.id,
                snapshot=ticket.checkpoint["snapshot"],
                options=JobOptions(
                    fuel=max(1, int(ticket.checkpoint["remaining"])),
                    checkpoint=opts.checkpoint,
                    checkpoint_every=opts.checkpoint_every,
                    engine=opts.engine, trace=opts.trace))
            ticket.recovering = True
            wire = resume.to_dict()
        else:
            wire = job.to_dict()
            if ticket.degrade:
                options = dict(wire.get("options") or {})
                options["degraded"] = True
                wire["options"] = options
            elif ticket.promoted:
                options = dict(wire.get("options") or {})
                options["promoted"] = True
                options["tiering"] = ticket.promote_payload
                wire["options"] = options
        if OBS.enabled and "trace_ctx" not in wire:
            wire["trace_ctx"] = {
                "trace_id": self._trace_id,
                "parent_span_id": ticket.span_id,
                "record": bool(ticket.span_id),
            }
        return wire

    def _finish(self, ticket: Ticket, result: JobResult) -> None:
        result.attempts = max(result.attempts, ticket.attempts)
        if ticket.recovering:
            # The wire job was a resume rewrite; the caller submitted
            # (and the cache/clients key on) the original kind.
            result.kind = ticket.job.kind
            result.output["recovered"] = True
            result.output["recovered_from_worker"] = \
                ticket.checkpoint.get("worker")
            if result.ok:
                self._inc("serve.recovery.recovered")
        if self.cache is not None and not ticket.recovering \
                and not result.output.get("degraded"):
            self.cache.put(ticket.job, result)
        if self._tiering is not None and not ticket.recovering:
            # Tiering is advisory: a coordinator bug must degrade to
            # "no promotion", never break result delivery.
            try:
                self._tiering.observe(ticket.job, result,
                                      promoted=ticket.promoted)
            except Exception:
                self._inc("tiering.error")
        end_ns = time.perf_counter_ns()
        dur = result.duration_ms or (end_ns - ticket.start_ns) / 1e6
        self._ewma_ms = 0.8 * self._ewma_ms + 0.2 * dur
        if OBS.enabled:
            OBS.metrics.inc("serve.jobs.completed" if result.ok
                            else "serve.jobs.failed")
            OBS.metrics.observe("serve.job.ms",
                                (end_ns - ticket.start_ns) / 1e6)
            envelope = result.obs
            if envelope and envelope.get("metrics"):
                OBS.metrics.merge_snapshot(envelope["metrics"])
                OBS.metrics.inc("serve.obs.envelopes")
            if OBS.bus.active:
                span_id = ticket.span_id or next(obs_events._span_ids)
                if envelope and envelope.get("events"):
                    stitched = stitch_envelope(envelope, span_id)
                    for event in stitched:
                        OBS.bus.publish(event)
                    OBS.metrics.inc(
                        "serve.obs.spans_stitched",
                        sum(1 for e in stitched
                            if isinstance(e, obs_events.Span)))
                OBS.bus.publish(obs_events.Span(
                    "serve.job", "serve", ticket.start_ns, end_ns,
                    span_id, None,
                    (("kind", ticket.job.kind),
                     ("status", result.status),
                     ("attempts", str(ticket.attempts)),
                     ("worker", str(result.worker or "")))))
        ticket._resolve(result)
        with self._all_done:
            self._outstanding -= 1
            if self._outstanding == 0:
                self._all_done.notify_all()

    # -- the manager loop ------------------------------------------------

    def _arm_deadline(self, worker: _Worker) -> None:
        """(Re)start the head job's wall clock."""
        if worker.inflight:
            head = worker.inflight[0]
            head.attempts += 1
            worker.deadline = time.monotonic() \
                + head._timeout_for(self.default_timeout)

    def _assign(self) -> None:
        now = time.monotonic()
        expired: List[Ticket] = []
        with self._lock:
            if self._delayed:
                due = [t for t in self._delayed if t.not_before <= now]
                for t in due:
                    self._delayed.remove(t)
                    self._pending.appendleft(t)   # retries jump the queue
            # Admission deadlines: a job still queued past its deadline
            # is shed here, before it can waste a worker.
            if self._pending \
                    and any(t.deadline_at is not None
                            for t in self._pending):
                keep: "collections.deque[Ticket]" = collections.deque()
                for t in self._pending:
                    if t.deadline_at is not None and now > t.deadline_at:
                        expired.append(t)
                    else:
                        keep.append(t)
                if expired:
                    self._pending = keep
                    self._gauge_depth_locked()
                    self._not_full.notify(len(expired))
        for t in expired:
            self._inc("serve.shed.expired")
            self._finish(t, JobResult.failure(
                t.job, "timeout",
                f"deadline ({t.job.options.deadline_ms} ms) expired "
                f"before dispatch", error_type="DeadlineExpired",
                attempts=t.attempts, output={"shed": True}))
        idle = [w for w in self._workers.values() if not w.inflight]
        for i, worker in enumerate(idle):
            with self._not_full:
                if not self._pending:
                    break
                # Spread the queue over the remaining idle workers; a
                # shallow queue yields single-job chunks (low latency), a
                # deep one yields up to chunk_max (amortized round-trips).
                share = -(-len(self._pending) // (len(idle) - i))
                take = min(share, self.chunk_max, len(self._pending))
                chunk = [self._pending.popleft() for _ in range(take)]
                self._gauge_depth_locked()
                self._not_full.notify(take)
            worker.inflight.extend(chunk)
            self._arm_deadline(worker)
            try:
                worker.conn.send([self._wire_job(t) for t in chunk])
            except (BrokenPipeError, OSError):
                self._fail_worker(worker, "crashed")

    def _handle_progress(self, worker: _Worker,
                         data: Dict[str, Any]) -> None:
        """A mid-run checkpoint from the head job: remember it (a retry
        after worker death resumes from here) and re-arm the deadline --
        progress is proof of liveness."""
        if not worker.inflight:
            return
        head = worker.inflight[0]
        if data.get("id") and head.job.id and data["id"] != head.job.id:
            return
        head.checkpoint = {
            "snapshot": data.get("snapshot"),
            "spent": int(data.get("spent", 0)),
            "remaining": int(data.get("remaining", 0)),
            "worker": worker.proc.pid,
        }
        worker.deadline = time.monotonic() \
            + head._timeout_for(self.default_timeout)
        self._inc("serve.recovery.checkpoints")

    def _drain_results(self, worker: _Worker) -> None:
        """Consume every result the worker has streamed so far."""
        while worker.inflight:
            try:
                if not worker.conn.poll():
                    return
                data = worker.conn.recv()
                if isinstance(data, dict) and data.get("__progress__"):
                    self._handle_progress(worker, data)
                    continue
                result = JobResult.from_dict(data)
            except Exception:
                self._fail_worker(worker, "crashed")
                return
            ticket = worker.inflight.popleft()
            if self._breaker.enabled:
                self._breaker.record_ok(ticket.job.kind)
            self._finish(ticket, result)
            self._arm_deadline(worker)

    def _drain_pongs(self, worker: _Worker) -> None:
        try:
            while worker.hb_conn.poll():
                worker.hb_conn.recv()
                worker.last_pong = time.monotonic()
                worker.ping_sent = False
        except (EOFError, OSError):
            pass    # the sentinel reports the death

    def _heartbeat(self, now: float) -> None:
        """Ping every worker; replace the ones that went silent.  This
        is deliberately independent of job deadlines: a worker wedged
        between jobs (or SIGSTOP'd mid-chunk) has no deadline armed
        against it, yet must not hold its slot forever."""
        self._next_ping = now + self._cfg.heartbeat_interval
        limit = self._cfg.heartbeat_interval * self._cfg.heartbeat_misses
        for worker in list(self._workers.values()):
            if worker.ping_sent and now - worker.last_pong > limit:
                self._fail_worker(worker, "timeout", hung=True)
                continue
            try:
                worker.hb_conn.send(0)
                worker.ping_sent = True
            except (BrokenPipeError, OSError):
                pass    # the sentinel reports the death

    def _respawn_cooled(self, now: float) -> None:
        for wid, (due, death_at) in list(self._cooldown.items()):
            if self._closing:
                del self._cooldown[wid]
            elif now >= due:
                del self._cooldown[wid]
                self._workers[wid] = self._spawn(wid)
                self._inc("serve.worker.respawn")
                self._record_mttr(death_at)

    def _wait_timeout(self) -> float:
        now = time.monotonic()
        timeout = 0.2
        for w in self._workers.values():
            if w.inflight:
                timeout = min(timeout, max(0.0, w.deadline - now))
        if self._cfg.heartbeat_interval > 0:
            timeout = min(timeout, max(0.0, self._next_ping - now))
        for due, _ in self._cooldown.values():
            timeout = min(timeout, max(0.0, due - now))
        with self._lock:
            for t in self._delayed:
                timeout = min(timeout, max(0.0, t.not_before - now))
        return timeout

    def _loop(self) -> None:
        while True:
            with self._lock:
                idle_exit = (self._closed and not self._pending
                             and not self._delayed
                             and all(not w.inflight
                                     for w in self._workers.values()))
            if idle_exit:
                break
            if self._cooldown:
                self._respawn_cooled(time.monotonic())
            self._assign()

            ready = self._selector.select(self._wait_timeout())

            # Results first, so a job that finished just before its
            # deadline (or its worker's death rattle) still counts.
            dead: List[_Worker] = []
            for key, _ in ready:
                tag, worker = key.data
                if tag == "kick":
                    try:
                        while self._kick_r.recv(8192):
                            pass
                    except (BlockingIOError, OSError):
                        pass
                elif tag == "conn":
                    self._drain_results(worker)
                elif tag == "hb":
                    self._drain_pongs(worker)
                elif tag == "sentinel":
                    dead.append(worker)

            for worker in dead:
                if worker is not self._workers.get(worker.wid):
                    continue  # already reaped via its pipe this round
                if worker.proc.is_alive():
                    continue
                self._drain_results(worker)    # salvage the death rattle
                if worker is self._workers.get(worker.wid):
                    self._fail_worker(worker, "crashed")

            now = time.monotonic()
            for worker in list(self._workers.values()):
                if worker.inflight and now > worker.deadline:
                    self._fail_worker(worker, "timeout")
            if self._cfg.heartbeat_interval > 0 and now >= self._next_ping:
                self._heartbeat(now)

        # Shutdown: politely stop workers, then make sure.
        for worker in list(self._workers.values()):
            try:
                worker.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for worker in list(self._workers.values()):
            worker.proc.join(timeout=2.0)
            if worker.proc.is_alive():
                worker.proc.kill()
                worker.proc.join(timeout=5.0)
            for conn in (worker.conn, worker.hb_conn):
                try:
                    conn.close()
                except OSError:
                    pass
        self._selector.close()

    # -- lifecycle -------------------------------------------------------

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until every submitted job has resolved."""
        with self._all_done:
            if self._outstanding == 0:
                return True
            return self._all_done.wait_for(
                lambda: self._outstanding == 0, timeout)

    def close(self, drain: bool = True,
              timeout: Optional[float] = None) -> None:
        """Stop accepting work; by default wait for in-flight jobs, then
        shut the workers down.  ``drain=False`` abandons the queue
        (pending tickets resolve ``rejected``)."""
        with self._lock:
            already = self._closing
            self._closing = True
            self._not_full.notify_all()
        if already:
            self._manager.join(timeout=timeout)
            return
        if drain:
            self.drain(timeout)
        else:
            with self._lock:
                abandoned = list(self._pending) + list(self._delayed)
                self._pending.clear()
                self._delayed.clear()
            for ticket in abandoned:
                self._finish(ticket, JobResult.failure(
                    ticket.job, "rejected", "pool closed",
                    attempts=ticket.attempts))
        with self._lock:
            self._closed = True
        self._kick()
        self._manager.join(timeout=timeout or 30.0)
        self._kick_r.close()
        self._kick_w.close()

    def stats(self) -> Dict[str, object]:
        """Operational snapshot (workers, queue, cache, supervision)."""
        with self._lock:
            queued = len(self._pending) + len(self._delayed)
            outstanding = self._outstanding
        mttr = list(self._mttr_ms)
        return {
            "workers": len(self._workers),
            "queued": queued,
            "outstanding": outstanding,
            "queue_size": self.queue_size,
            "chunk_max": self.chunk_max,
            "max_retries": self.max_retries,
            "default_timeout": self.default_timeout,
            "cache": self.cache.stats() if self.cache is not None else None,
            "tiering": (self._tiering.stats()
                        if self._tiering is not None else None),
            "supervisor": {
                "heartbeat_interval": self._cfg.heartbeat_interval,
                "shed_policy": self.shed_policy,
                "breaker": self._breaker.snapshot(),
                "quarantine": self._quarantine.snapshot(),
                "restarts": self._restarts.snapshot(),
                "cooling": len(self._cooldown),
                "mttr_ms": {
                    "count": len(mttr),
                    "mean": (sum(mttr) / len(mttr)) if mttr else 0.0,
                    "max": max(mttr) if mttr else 0.0,
                },
            },
        }

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

"""The FT abstract machine: mixed-language evaluation (paper Figs 6 and 8).

Both languages execute against the *same* memory ``M = (H, R, S)``:

* F code reduces by the call-by-value rules of :mod:`repro.f.eval`, except
  that reaching a boundary ``tauFT e`` runs the T component ``e`` (merging
  its heap fragment, stepping its instructions) until it halts, then
  translates the halt register's word back to F via ``tauFT(w, M)``;
* T code executes by the rules of :mod:`repro.tal.machine`, except that

  - ``protect`` is a typing directive and erases to a no-op, and
  - ``import rd, sigma TFtau e`` evaluates the F expression ``e`` to a
    value (recursively entering F evaluation), translates it via
    ``TFtau(v, M)``, and moves the resulting word into ``rd`` -- exactly
    the paper's reduction to ``mv rd, w; I``.

A single *fuel* budget is shared across both languages and all nesting
levels, so the equivalence checker can observe co-divergence of mixed
programs (e.g. Fig 17's factorials on negative inputs): when the budget is
exhausted anywhere, :class:`~repro.errors.FuelExhausted` propagates out.

Boundary crossings emit ``boundary`` trace events, letting
:mod:`repro.analysis.trace` reconstruct the cross-language control-flow
diagram of Fig 12.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.errors import FuelExhausted, MachineError
from repro.f.eval import reduce_redex, split_context
from repro.obs.events import OBS
from repro.f.syntax import FExpr, is_value
from repro.ft.boundary import f_to_t, t_to_f
from repro.ft.syntax import Boundary, Import, Protect
from repro.tal.heap import Memory
from repro.tal.machine import HaltedState, MachineState, TalMachine
from repro.tal.syntax import Component, InstrSeq, Instruction, WordValue

__all__ = ["FTMachine", "evaluate_ft", "run_ft_component"]


class FTMachine(TalMachine):
    """The multi-language machine.

    Use :meth:`evaluate` for F-outside programs and the inherited
    :meth:`run_component` interface (via :meth:`run_ft_component`) for
    T-outside programs.
    """

    def __init__(self, memory: Optional[Memory] = None, trace: bool = False,
                 fuel: int = 1_000_000, max_events: Optional[int] = None):
        super().__init__(memory, trace, max_events=max_events)
        self.fuel = fuel            # the budget (for error reporting)
        self.fuel_left = fuel

    def consume(self, n: int = 1) -> None:
        if self.fuel_left < n:
            raise FuelExhausted(self.fuel)
        self.fuel_left -= n

    # ------------------------------------------------------------------
    # T side: the two new instructions
    # ------------------------------------------------------------------

    def exec_extended_instruction(self, i: Instruction,
                                  rest: InstrSeq) -> InstrSeq:
        if isinstance(i, Protect):
            # protect is erased at runtime; it only constrains typing.
            return rest
        if isinstance(i, Import):
            if OBS.enabled:
                OBS.metrics.inc("ft.boundary.t_to_f")
            with OBS.span("ft.import", "f", ty=i.ty):
                self.emit("boundary", None, detail=f"TF[{i.ty}] enter")
                value = self.eval_fexpr(i.expr)
                word = f_to_t(value, i.ty, self.memory)
                self.memory.set_reg(i.rd, word)
                self.emit("boundary", None,
                          detail=f"TF[{i.ty}] -> {i.rd} = {word}")
            return rest
        return super().exec_extended_instruction(i, rest)

    # ------------------------------------------------------------------
    # F side
    # ------------------------------------------------------------------

    def eval_fexpr(self, e: FExpr) -> FExpr:
        """Run an F(T) expression to a value under the shared fuel budget.

        This is a CEK-style loop: the evaluation context is kept as an
        explicit frame stack *across* steps, so deep contexts (divergent
        recursion) cost constant work per step instead of a full context
        rebuild -- :meth:`step_fexpr` exists for the one-step API but would
        be quadratic here.
        """
        frames = []
        cur = e
        while True:
            if is_value(cur):
                if not frames:
                    return cur
                cur = frames.pop()(cur)
                continue
            self.consume()
            if isinstance(cur, Boundary):
                cur = self._cross_boundary(cur)
                continue
            contracted = reduce_redex(cur)
            if contracted is not None:
                self.steps += 1
                if OBS.enabled:
                    OBS.metrics.inc("f.machine.steps")
                cur = contracted
                continue
            split = split_context(cur)
            if split is None:
                raise MachineError(
                    f"cannot step {type(cur).__name__}: not a value and "
                    "not a reducible FT form (free variable?)")
            frame, sub = split
            frames.append(frame)
            cur = sub

    def step_fexpr(self, e: FExpr) -> FExpr:
        """One F-level step (a boundary runs its whole component).

        Decomposition is iterative (explicit frame stack) so deep contexts
        built by divergent programs exhaust *fuel*, not Python's stack.
        """
        self.steps += 1
        frames = []
        cur = e
        while True:
            if isinstance(cur, Boundary):
                contracted = self._cross_boundary(cur)
                break
            contracted = reduce_redex(cur)
            if contracted is not None:
                break
            split = split_context(cur)
            if split is None:
                raise MachineError(
                    f"cannot step {type(cur).__name__}: not a value and "
                    "not a reducible FT form (free variable?)")
            frame, cur = split
            frames.append(frame)
        for frame in reversed(frames):
            contracted = frame(contracted)
        return contracted

    def _cross_boundary(self, e: Boundary) -> FExpr:
        if OBS.enabled:
            OBS.metrics.inc("ft.boundary.f_to_t")
        with OBS.span("ft.boundary", "t", ty=e.ty):
            self.emit("boundary", None, detail=f"FT[{e.ty}] enter")
            halted = self.run_t(self.load_component(e.comp))
            value = t_to_f(halted.word, e.ty, self.memory)
            self.emit("boundary", None, detail=f"FT[{e.ty}] -> {value}")
            return value

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------

    def run_t(self, state: MachineState) -> HaltedState:
        """Run a T machine state to halt under the shared fuel budget."""
        while not isinstance(state, HaltedState):
            self.consume()
            state = self.step(state)
        return state

    def evaluate(self, e: FExpr) -> FExpr:
        """Entry point for F-outside programs."""
        with OBS.span("ft.evaluate", "f"):
            return self.eval_fexpr(e)

    def run_component(self, comp: Component,
                      fuel: Optional[int] = None) -> HaltedState:
        """Entry point for T-outside programs (fuel defaults to the
        machine's remaining budget)."""
        if fuel is not None:
            self.fuel_left = fuel
        return self.run_t(self.load_component(comp))


def evaluate_ft(e: FExpr, fuel: int = 1_000_000, trace: bool = False,
                max_events: Optional[int] = None
                ) -> Tuple[FExpr, FTMachine]:
    """Evaluate a closed FT expression in a fresh memory."""
    machine = FTMachine(trace=trace, fuel=fuel, max_events=max_events)
    return machine.evaluate(e), machine


def run_ft_component(comp: Component, fuel: int = 1_000_000,
                     trace: bool = False,
                     max_events: Optional[int] = None
                     ) -> Tuple[HaltedState, FTMachine]:
    """Run a closed FT component (T outside) in a fresh memory."""
    machine = FTMachine(trace=trace, fuel=fuel, max_events=max_events)
    return machine.run_component(comp), machine

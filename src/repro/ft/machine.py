"""The FT abstract machine: mixed-language evaluation (paper Figs 6 and 8).

Both languages execute against the *same* memory ``M = (H, R, S)``:

* F code reduces by the call-by-value rules of :mod:`repro.f.eval`, except
  that reaching a boundary ``tauFT e`` runs the T component ``e`` (merging
  its heap fragment, stepping its instructions) until it halts, then
  translates the halt register's word back to F via ``tauFT(w, M)``;
* T code executes by the rules of :mod:`repro.tal.machine`, except that

  - ``protect`` is a typing directive and erases to a no-op, and
  - ``import rd, sigma TFtau e`` evaluates the F expression ``e`` to a
    value (recursively entering F evaluation), translates it via
    ``TFtau(v, M)``, and moves the resulting word into ``rd`` -- exactly
    the paper's reduction to ``mv rd, w; I``.

A single :class:`~repro.resilience.budget.Budget` is shared across both
languages and all nesting levels, so the equivalence checker can observe
co-divergence of mixed programs (e.g. Fig 17's factorials on negative
inputs): when the fuel is exhausted anywhere,
:class:`~repro.errors.FuelExhausted` propagates out -- and, new in the
resilience runtime, the machine records a *suspension*: as the exception
unwinds through the nested F/T evaluation levels, each level appends a
picklable continuation record (innermost first).  :meth:`FTMachine.resume`
replays those records in order, feeding each level's result outward, so a
fuel-suspended run can be checkpointed with :meth:`FTMachine.snapshot`,
shipped to another process, and finished there with bit-identical results.
Suspension is a fuel-epoch feature: heap/depth exhaustion and machine
errors are terminal verdicts, not suspension points.

Boundary crossings emit ``boundary`` trace events, letting
:mod:`repro.analysis.trace` reconstruct the cross-language control-flow
diagram of Fig 12.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from repro.errors import FuelExhausted, MachineError, SnapshotError
from repro.f.eval import reduce_redex, split_context
from repro.obs.events import OBS
from repro.obs.profile import PROFILER
from repro.f.syntax import App, FExpr, is_value, Lam
from repro.ft.boundary import f_to_t, t_to_f
from repro.ft.syntax import Boundary, Hole, Import, Protect
from repro.resilience.budget import Budget
from repro.tal.heap import Memory
from repro.tal.machine import HaltedState, MachineState, TalMachine
from repro.tal.syntax import Component, InstrSeq, Instruction

__all__ = ["FTMachine", "evaluate_ft", "run_ft_component"]

#: What a resumed run produces: an F value for F-outside programs, a
#: halt state for T-outside ones.
FTOutcome = Union[FExpr, HaltedState]


class FTMachine(TalMachine):
    """The multi-language machine.

    Use :meth:`evaluate` for F-outside programs and the inherited
    :meth:`run_component` interface (via :meth:`run_ft_component`) for
    T-outside programs.
    """

    kind = "ft"

    def __init__(self, memory: Optional[Memory] = None, trace: bool = False,
                 fuel: Optional[int] = None,
                 max_events: Optional[int] = None,
                 budget: Optional[Budget] = None,
                 engine: Optional[str] = None,
                 tal_engine: Optional[str] = None):
        # Imported lazily: repro.f.cek pulls in repro.ft.syntax, whose
        # package __init__ imports this module.
        from repro.f.cek import resolve_engine

        super().__init__(memory, trace, max_events=max_events,
                         budget=Budget.of(fuel=fuel, budget=budget),
                         tal_engine=tal_engine)
        #: Which F-side stepper drives pure-F segments: the environment
        #: machine of :mod:`repro.f.cek` (default) or the literal
        #: substitution loop.  Both are observably step-equivalent; the
        #: choice is operational and rides along in resumable snapshots.
        self.engine = resolve_engine(engine)
        # Suspension records, appended innermost-first as a FuelExhausted
        # unwinds through nested evaluation levels; see resume().
        self._suspension: List[tuple] = []
        # The value a replayed inner crossing produced, waiting to be
        # substituted at the Hole in the enclosing F expression.
        self._hole_value: Optional[FExpr] = None

    # -- old fuel API, preserved over the shared budget ----------------

    @property
    def fuel(self) -> int:
        """The fuel ceiling (historically a constructor argument)."""
        return self.budget.max_fuel

    @property
    def fuel_left(self) -> int:
        return self.budget.fuel_remaining

    def consume(self, n: int = 1) -> None:
        self.budget.consume_fuel(n)

    # ------------------------------------------------------------------
    # T side: the two new instructions
    # ------------------------------------------------------------------

    def exec_extended_instruction(self, i: Instruction,
                                  rest: InstrSeq) -> InstrSeq:
        if isinstance(i, Protect):
            # protect is erased at runtime; it only constrains typing.
            return rest
        if isinstance(i, Import):
            if OBS.enabled:
                OBS.metrics.inc("ft.boundary.t_to_f")
            with OBS.span("ft.import", "f", ty=i.ty):
                self.emit("boundary", None, detail=f"TF[{i.ty}] enter")
                try:
                    value = self.eval_fexpr(i.expr)
                except FuelExhausted:
                    # The inner F level recorded its continuation; ours
                    # is "translate whatever it produces into rd, then
                    # keep running rest".
                    self._suspension.append(("import", i.rd, i.ty, rest))
                    raise
                self._finish_import(i.rd, i.ty, value)
            return rest
        return super().exec_extended_instruction(i, rest)

    def _finish_import(self, rd: str, ty, value: FExpr) -> None:
        word = f_to_t(value, ty, self.memory)
        self.memory.set_reg(rd, word)
        self.emit("boundary", None, detail=f"TF[{ty}] -> {rd} = {word}")

    # ------------------------------------------------------------------
    # F side
    # ------------------------------------------------------------------

    def eval_fexpr(self, e: FExpr) -> FExpr:
        """Run an F(T) expression to a value under the shared budget,
        on whichever engine this machine was built with.

        The ``cek`` engine (default) evaluates with environments and
        closures (:class:`repro.f.cek.CEKEvaluator` with ``ft=self``), so
        beta steps cost an environment extension instead of a body copy;
        ``subst`` is the literal Fig-5 substitution loop below.  Both
        charge fuel at the same contractions, count the same
        ``f.machine.steps``, and record identical suspension/``Hole``
        continuations on fuel exhaustion.
        """
        if self.engine == "cek":
            from repro.f.cek import CEKEvaluator

            return CEKEvaluator(e, ft=self).run()
        return self._eval_fexpr_subst(e)

    def _eval_fexpr_subst(self, e: FExpr) -> FExpr:
        """The substitution engine's F loop (kept verbatim as the
        reference semantics the differential harness locksteps against).

        This is a CEK-style loop in shape: the evaluation context is kept
        as an explicit frame stack *across* steps, so deep contexts
        (divergent recursion) cost constant work per step instead of a
        full context rebuild -- :meth:`step_fexpr` exists for the one-step
        API but would be quadratic here.
        """
        budget = self.budget
        frames: List = []
        cur = e
        prof = PROFILER if PROFILER.enabled else None
        prof_base = prof.enter_engine() if prof is not None else 0
        try:
            while True:
                if isinstance(cur, Hole):
                    # A resumed expression: the replayed crossing's value
                    # lands here (set up by resume()).
                    if self._hole_value is None:
                        raise MachineError(
                            "resumption hole reached with no pending value")
                    cur, self._hole_value = self._hole_value, None
                    continue
                if is_value(cur):
                    if not frames:
                        return cur
                    cur = frames.pop()(cur)
                    continue
                # Fuel is charged on contractions and boundary entries
                # only -- never on context descent.  A resumed run
                # re-descends its rebuilt expression for free, so with
                # descent charged a short fuel slice could be spent
                # entirely on re-decomposition and a resume loop would
                # make no semantic progress; with this accounting,
                # run(n) == run(k); resume(n - k) holds *exactly*.
                if isinstance(cur, Boundary):
                    try:
                        self.consume()
                        cur = self._cross_boundary(cur)
                    except FuelExhausted:
                        if self._suspension:
                            # The crossing recorded its own continuation;
                            # our expression resumes with a hole where
                            # the crossing's value will land.
                            cur = Hole()
                        self._suspension.append(
                            ("f", _rebuild(cur, frames)))
                        raise
                    continue
                contracted = reduce_redex(cur)
                if contracted is not None:
                    try:
                        self.consume()
                    except FuelExhausted:
                        self._suspension.append(
                            ("f", _rebuild(cur, frames)))
                        raise
                    self.steps += 1
                    if OBS.enabled:
                        OBS.metrics.inc("f.machine.steps")
                    if prof is not None:
                        if cur.__class__ is App and isinstance(cur.fn, Lam):
                            prof.beta(cur.fn, len(frames))
                        else:
                            prof.step(len(frames))
                    cur = contracted
                    continue
                split = split_context(cur)
                if split is None:
                    raise MachineError(
                        f"cannot step {type(cur).__name__}: not a value and "
                        "not a reducible FT form (free variable?)")
                frame, sub = split
                frames.append(frame)
                budget.check_depth(len(frames))
                cur = sub
        except RecursionError:
            raise budget.depth_error(len(frames)) from None
        finally:
            if prof is not None:
                prof.exit_engine(prof_base)

    def step_fexpr(self, e: FExpr) -> FExpr:
        """One F-level step (a boundary runs its whole component).

        Decomposition is iterative (explicit frame stack) so deep contexts
        built by divergent programs exhaust *fuel*, not Python's stack.
        """
        self.steps += 1
        frames = []
        cur = e
        while True:
            if isinstance(cur, Boundary):
                contracted = self._cross_boundary(cur)
                break
            contracted = reduce_redex(cur)
            if contracted is not None:
                break
            split = split_context(cur)
            if split is None:
                raise MachineError(
                    f"cannot step {type(cur).__name__}: not a value and "
                    "not a reducible FT form (free variable?)")
            frame, cur = split
            frames.append(frame)
        for frame in reversed(frames):
            contracted = frame(contracted)
        return contracted

    def _cross_boundary(self, e: Boundary) -> FExpr:
        if OBS.enabled:
            OBS.metrics.inc("ft.boundary.f_to_t")
        with OBS.span("ft.boundary", "t", ty=e.ty):
            self.emit("boundary", None, detail=f"FT[{e.ty}] enter")
            try:
                halted = self.run_t(self.load_component(e.comp))
            except FuelExhausted:
                self._suspension.append(("boundary", e.ty))
                raise
            return self._finish_boundary(e.ty, halted)

    def _finish_boundary(self, ty, halted: HaltedState) -> FExpr:
        value = t_to_f(halted.word, ty, self.memory)
        self.emit("boundary", None, detail=f"FT[{ty}] -> {value}")
        return value

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------

    def run_t(self, state: MachineState) -> HaltedState:
        """Run a T machine state to halt under the shared budget."""
        if self.tal_engine == "fast":
            from repro.tal import fast
            if not fast.instrumented(self):
                return fast.fast_run_t(self, state)
        prof = PROFILER if PROFILER.enabled else None
        prof_base = prof.enter_engine() if prof is not None else 0
        try:
            while not isinstance(state, HaltedState):
                try:
                    self.consume()
                except FuelExhausted:
                    # Our own fuel check tripped: this pre-step state is
                    # the exact resume point.  (When step() raises
                    # instead, a nested import already recorded the finer
                    # continuation.)
                    self._suspension.append(("t", state))
                    raise
                state = self.step(state)
            return state
        finally:
            if prof is not None:
                prof.exit_engine(prof_base)

    def evaluate(self, e: FExpr) -> FExpr:
        """Entry point for F-outside programs."""
        self._begin_run()
        with OBS.span("ft.evaluate", "f"):
            return self.eval_fexpr(e)

    def run_component(self, comp: Component,
                      fuel: Optional[int] = None) -> HaltedState:
        """Entry point for T-outside programs (fuel defaults to the
        machine's remaining budget)."""
        if fuel is not None:
            self.budget.refill(fuel)
        self._begin_run()
        return self.run_t(self.load_component(comp))

    def _begin_run(self) -> None:
        self._suspension = []
        self._hole_value = None

    # ------------------------------------------------------------------
    # Suspension / resumption
    # ------------------------------------------------------------------

    @property
    def suspended(self) -> bool:
        return bool(self._suspension)

    def resume(self, fuel: Optional[int] = None) -> FTOutcome:
        """Continue a fuel-suspended run to its outcome.

        Replays the suspension records innermost-first, feeding each
        level's result outward: a suspended T state runs to halt, a
        pending boundary translates that halt back to F, a suspended F
        expression evaluates with the carried value substituted at its
        hole, and a pending import moves the carried value into its
        register and keeps executing.  ``fuel`` refills the budget for
        this slice; without it the run continues on whatever remains.
        If the refilled fuel runs out as well, the machine suspends
        again -- resumable snapshots compose across any number of hops.
        """
        if fuel is not None:
            self.budget.refill(fuel)
        records, self._suspension = self._suspension, []
        if not records:
            raise SnapshotError("machine has no suspended run to resume")
        carried: Optional[FTOutcome] = None
        for idx, record in enumerate(records):
            try:
                carried = self._replay(record, carried)
            except FuelExhausted:
                # The replayed level recorded its new (finer)
                # continuation; the levels we never reached still stand.
                self._suspension.extend(records[idx + 1:])
                raise
        return carried

    def _replay(self, record: tuple,
                carried: Optional[FTOutcome]) -> FTOutcome:
        tag = record[0]
        if tag == "t":
            return self.run_t(record[1])
        if tag == "boundary":
            if not isinstance(carried, HaltedState):
                raise SnapshotError(
                    "corrupt suspension: boundary record without a "
                    "halted T state to translate")
            return self._finish_boundary(record[1], carried)
        if tag == "f":
            if carried is not None:
                if not isinstance(carried, FExpr):
                    raise SnapshotError(
                        "corrupt suspension: F record fed a non-F value")
                self._hole_value = carried
            return self.eval_fexpr(record[1])
        if tag == "import":
            _, rd, ty, rest = record
            if not isinstance(carried, FExpr):
                raise SnapshotError(
                    "corrupt suspension: import record without an F value")
            with OBS.span("ft.import", "f", ty=ty):
                self._finish_import(rd, ty, carried)
            return self.run_t(rest)
        raise SnapshotError(f"corrupt suspension: unknown record {tag!r}")

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def snapshot_resumable(self) -> dict:
        state = super().snapshot_resumable()
        state["suspension"] = list(self._suspension)
        state["hole_value"] = self._hole_value
        state["engine"] = self.engine
        return state

    def _restore_resumable(self, state: dict) -> None:
        super()._restore_resumable(state)
        from repro.f.cek import resolve_engine

        self._suspension = list(state.get("suspension", ()))
        self._hole_value = state.get("hole_value")
        # Snapshots are engine-portable (suspension records are plain
        # terms), so a missing/foreign engine field just means "default".
        self.engine = resolve_engine(state.get("engine"))


def _rebuild(cur: FExpr, frames: List) -> FExpr:
    """Fold the frame stack back over the focus: the picklable whole-term
    form of a suspended F evaluation."""
    for frame in reversed(frames):
        cur = frame(cur)
    return cur


def evaluate_ft(e: FExpr, fuel: Optional[int] = None, trace: bool = False,
                max_events: Optional[int] = None,
                budget: Optional[Budget] = None,
                engine: Optional[str] = None,
                tal_engine: Optional[str] = None
                ) -> Tuple[FExpr, FTMachine]:
    """Evaluate a closed FT expression in a fresh memory."""
    machine = FTMachine(trace=trace, fuel=fuel, max_events=max_events,
                        budget=budget, engine=engine, tal_engine=tal_engine)
    return machine.evaluate(e), machine


def run_ft_component(comp: Component, fuel: Optional[int] = None,
                     trace: bool = False,
                     max_events: Optional[int] = None,
                     budget: Optional[Budget] = None,
                     engine: Optional[str] = None,
                     tal_engine: Optional[str] = None
                     ) -> Tuple[HaltedState, FTMachine]:
    """Run a closed FT component (T outside) in a fresh memory."""
    machine = FTMachine(trace=trace, fuel=fuel, max_events=max_events,
                        budget=budget, engine=engine, tal_engine=tal_engine)
    return machine.run_component(comp), machine

"""Abstract syntax of the FT multi-language (paper Fig 6).

FT is a Matthews-Findler multi-language: the syntactic categories of F and
T are merged, and *boundary* forms mediate between them:

* :class:`Boundary` -- ``tauFT e``: a T component used as an F expression
  of type ``tau`` (T inside, F outside);
* :class:`Import` -- ``import rd, sigma TFtau e; I``: an F expression used
  inside T, its translated value landing in ``rd`` (F inside, T outside);
* :class:`Protect` -- ``protect phi, zeta; I``: abstracts the current stack
  tail behind a fresh stack variable for the rest of the component;
* :class:`StackLam` / :class:`FStackArrow` -- stack-modifying lambdas
  ``lam[phi_i; phi_o](x:tau).e`` and their arrow type, which let embedded
  assembly legally change the protected stack;
* the return marker ``out`` (already in :mod:`repro.tal.syntax`) marks F
  code, which "returns" by being a value.

Because each language can be nested arbitrarily deep inside the other, the
traversal functions of both languages need to cross the boundary.  This
module wires those crossings up:

* T type substitution / free-variable hooks for ``import``/``protect`` are
  registered with :mod:`repro.tal.subst`;
* location renaming for ``import`` is registered with
  :mod:`repro.tal.machine`;
* F term substitution descends through boundaries via
  :func:`subst_boundary` (called from :func:`repro.f.syntax.subst_expr`);
* F type equality / substitution handle :class:`FStackArrow` via the hook
  registries added here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.caching import PicklableSlots, intern_singleton
from typing import Callable, Dict, Optional, Set, Tuple

from repro.f.syntax import (
    App, BinOp, FArrow, FExpr, Fold, FType, If0, IntE, Lam, Proj, TupleE,
    Unfold, UnitE, Var,
)
from repro.f import syntax as f_syntax
from repro.tal import syntax as tal_syntax
from repro.tal.machine import register_loc_renamer
from repro.tal.subst import (
    Subst, free_type_vars, register_binding_instr, register_simple_instr,
    subst_component, subst_instr_seq, subst_stack, subst_ty,
)
from repro.tal.syntax import (
    Component, InstrSeq, Instruction, KIND_ZETA, Loc, StackTy, TalType,
)

__all__ = [
    "FStackArrow", "StackLam", "Boundary", "StackDelta", "Import",
    "Protect", "Hole", "subst_boundary", "ft_free_vars",
    "subst_tal_in_fexpr", "rename_locs_in_fexpr",
    "tal_free_type_vars_of_fexpr",
]


# ---------------------------------------------------------------------------
# Types: the stack-modifying arrow
# ---------------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class FStackArrow(FType):
    """The stack-modifying arrow ``(tau...) [phi_i; phi_o] -> tau'``.

    ``phi_i`` is the stack prefix (T value types, top first) the function
    requires on call; ``phi_o`` is the prefix it leaves in place of
    ``phi_i`` on return.  The ordinary arrow is the special case where both
    prefixes are empty.
    """

    params: Tuple[FType, ...]
    result: FType
    phi_in: Tuple[TalType, ...] = ()
    phi_out: Tuple[TalType, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", tuple(self.params))
        object.__setattr__(self, "phi_in", tuple(self.phi_in))
        object.__setattr__(self, "phi_out", tuple(self.phi_out))

    def __str__(self) -> str:
        args = ", ".join(str(p) for p in self.params)
        pin = ", ".join(str(t) for t in self.phi_in)
        pout = ", ".join(str(t) for t in self.phi_out)
        return f"({args}) [{pin}; {pout}] -> {self.result}"


def _stack_arrow_equal(a: FType, b: FType, env) -> Optional[bool]:
    from repro.f.syntax import ftype_equal
    from repro.tal.equality import types_equal

    if isinstance(a, FStackArrow) != isinstance(b, FStackArrow):
        return False
    if not isinstance(a, FStackArrow):
        return None
    assert isinstance(b, FStackArrow)
    if (len(a.params) != len(b.params) or len(a.phi_in) != len(b.phi_in)
            or len(a.phi_out) != len(b.phi_out)):
        return False
    return (all(ftype_equal(pa, pb, env)
                for pa, pb in zip(a.params, b.params))
            and ftype_equal(a.result, b.result, env)
            and all(types_equal(ta, tb)
                    for ta, tb in zip(a.phi_in, b.phi_in))
            and all(types_equal(ta, tb)
                    for ta, tb in zip(a.phi_out, b.phi_out)))


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class StackDelta(PicklableSlots):
    """A boundary's declared stack effect: pop ``pops`` exposed slots, then
    push ``pushes`` (top first).

    The paper's boundary rule infers the component's output stack ``sigma'``
    from its ``end{tauT; sigma'}`` return marker; since a checker must know
    the marker *before* checking the component, we record the effect
    relative to the incoming stack.  The identity delta (the default) covers
    every boundary that restores the stack -- all of Fig 10's generated
    code and most programmer-written boundaries.
    """

    pops: int = 0
    pushes: Tuple[TalType, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "pushes", tuple(self.pushes))

    def apply(self, sigma: StackTy) -> StackTy:
        return sigma.drop(self.pops).cons(*self.pushes)

    def __str__(self) -> str:
        pushes = ", ".join(str(t) for t in self.pushes)
        return f"[-{self.pops}; +<{pushes}>]"


@dataclass(frozen=True, slots=True)
class Boundary(FExpr):
    """``tauFT e`` -- a T component embedded in F at type ``tau``."""

    ty: FType
    comp: Component
    delta: StackDelta = StackDelta()

    def __str__(self) -> str:
        if self.delta == StackDelta():
            return f"FT[{self.ty}]{self.comp}"
        pushes = ", ".join(str(t) for t in self.delta.pushes)
        return f"FT[{self.ty}; {self.delta.pops}; <{pushes}>]{self.comp}"


@intern_singleton
@dataclass(frozen=True, slots=True)
class Hole(FExpr):
    """The machine's resumption placeholder ``[]`` -- not surface syntax.

    When a fuel-suspended FT machine checkpoints an F evaluation whose
    focus was a boundary crossing, the in-flight crossing is recorded as
    its own suspension record and the enclosing expression is rebuilt
    with a ``Hole`` where the crossing's value will land.  On resume the
    evaluator substitutes the replayed crossing's value at the hole.  A
    hole is not a value and has no typing rule; it only ever occurs
    inside suspended machine states.
    """

    def __str__(self) -> str:
        return "[]"


@dataclass(frozen=True, slots=True)
class StackLam(Lam):
    """A stack-modifying lambda ``lam[phi_i; phi_o](x:tau, ...).e``."""

    phi_in: Tuple[TalType, ...] = ()
    phi_out: Tuple[TalType, ...] = ()

    def __post_init__(self) -> None:
        # Explicit base call: ``dataclass(slots=True)`` replaces the class
        # object, so zero-argument super() (which closes over the original
        # ``__class__`` cell) would not resolve here.
        Lam.__post_init__(self)
        object.__setattr__(self, "phi_in", tuple(self.phi_in))
        object.__setattr__(self, "phi_out", tuple(self.phi_out))

    def __str__(self) -> str:
        binder = ", ".join(f"{x}: {t}" for x, t in self.params)
        pin = ", ".join(str(t) for t in self.phi_in)
        pout = ", ".join(str(t) for t in self.phi_out)
        return f"lam[{pin}; {pout}] ({binder}). {self.body}"


# ---------------------------------------------------------------------------
# Instructions
# ---------------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class Import(Instruction):
    """``import rd, sigma TFtau e`` -- run the F expression ``e``, translate
    its value to T at type ``tau``, and put it in ``rd``.

    ``protected`` is the stack tail that embedded T code inside ``e`` may
    not touch; the current return marker must live inside it (or be
    ``end{...}``)."""

    rd: str
    protected: StackTy
    ty: FType
    expr: FExpr

    def __post_init__(self) -> None:
        tal_syntax.check_register(self.rd)

    def __str__(self) -> str:
        return f"import {self.rd}, {self.protected} TF[{self.ty}] ({self.expr})"


@dataclass(frozen=True, slots=True)
class Protect(Instruction):
    """``protect phi, zeta`` -- leave the prefix ``phi`` visible and
    abstract the rest of the stack as ``zeta`` for the rest of the
    component (irreversibly)."""

    phi: Tuple[TalType, ...]
    zeta: str

    def __post_init__(self) -> None:
        object.__setattr__(self, "phi", tuple(self.phi))

    def __str__(self) -> str:
        inner = ", ".join(str(t) for t in self.phi)
        return f"protect <{inner}>, {self.zeta}"


# ---------------------------------------------------------------------------
# F-side traversals across boundaries
# ---------------------------------------------------------------------------

def subst_boundary(e: Boundary, var: str, replacement: FExpr,
                   subst_expr: Callable) -> Boundary:
    """Substitute an F term variable inside a boundary's T component
    (it can occur free in ``import`` expressions)."""
    return Boundary(e.ty, subst_fexpr_in_component(
        e.comp, var, replacement, subst_expr), e.delta)


def subst_fexpr_in_component(comp: Component, var: str, replacement: FExpr,
                             subst_expr: Callable) -> Component:
    def in_seq(iseq: InstrSeq) -> InstrSeq:
        instrs = []
        for i in iseq.instrs:
            if isinstance(i, Import):
                instrs.append(Import(i.rd, i.protected, i.ty,
                                     subst_expr(i.expr, var, replacement)))
            else:
                instrs.append(i)
        return InstrSeq(tuple(instrs), iseq.term)

    heap = []
    for loc, h in comp.heap:
        if isinstance(h, tal_syntax.HCode):
            heap.append((loc, tal_syntax.HCode(
                h.delta, h.chi, h.sigma, h.q, in_seq(h.instrs))))
        else:
            heap.append((loc, h))
    return Component(in_seq(comp.instrs), tuple(heap))


def ft_free_vars(e: FExpr) -> frozenset:
    """Free F term variables of an FT expression (crossing boundaries)."""
    from repro.ft.lump import LumpVal

    if isinstance(e, LumpVal):
        return frozenset()
    if isinstance(e, Boundary):
        return _component_free_vars(e.comp)
    if isinstance(e, Var):
        return frozenset({e.name})
    if isinstance(e, (UnitE, IntE)):
        return frozenset()
    if isinstance(e, BinOp):
        return ft_free_vars(e.left) | ft_free_vars(e.right)
    if isinstance(e, If0):
        return (ft_free_vars(e.cond) | ft_free_vars(e.then)
                | ft_free_vars(e.els))
    if isinstance(e, Lam):
        bound = {x for x, _ in e.params}
        return ft_free_vars(e.body) - bound
    if isinstance(e, App):
        acc = ft_free_vars(e.fn)
        for a in e.args:
            acc |= ft_free_vars(a)
        return acc
    if isinstance(e, (Fold, Unfold, Proj)):
        return ft_free_vars(e.body)
    if isinstance(e, TupleE):
        acc = frozenset()
        for x in e.items:
            acc |= ft_free_vars(x)
        return acc
    raise TypeError(f"not an FT expression: {e!r}")


def _component_free_vars(comp: Component) -> frozenset:
    acc: frozenset = frozenset()

    def in_seq(iseq: InstrSeq) -> None:
        nonlocal acc
        for i in iseq.instrs:
            if isinstance(i, Import):
                acc |= ft_free_vars(i.expr)

    in_seq(comp.instrs)
    for _, h in comp.heap:
        if isinstance(h, tal_syntax.HCode):
            in_seq(h.instrs)
    return acc


# ---------------------------------------------------------------------------
# T-type traversals through F forms (for import/protect hooks)
# ---------------------------------------------------------------------------

def subst_tal_in_ftype(ty: FType, s: Subst) -> FType:
    """Apply a T type substitution to the T types embedded in an F type
    (stack-modifying arrows' prefixes and lump field types)."""
    from repro.ft.lump import FLump

    if isinstance(ty, FLump):
        return FLump(tuple(subst_ty(t, s) for t in ty.items))
    if isinstance(ty, FStackArrow):
        return FStackArrow(
            tuple(subst_tal_in_ftype(p, s) for p in ty.params),
            subst_tal_in_ftype(ty.result, s),
            tuple(subst_ty(t, s) for t in ty.phi_in),
            tuple(subst_ty(t, s) for t in ty.phi_out))
    if isinstance(ty, f_syntax.FArrow):
        return f_syntax.FArrow(
            tuple(subst_tal_in_ftype(p, s) for p in ty.params),
            subst_tal_in_ftype(ty.result, s))
    if isinstance(ty, f_syntax.FRec):
        return f_syntax.FRec(ty.var, subst_tal_in_ftype(ty.body, s))
    if isinstance(ty, f_syntax.FTupleT):
        return f_syntax.FTupleT(
            tuple(subst_tal_in_ftype(t, s) for t in ty.items))
    return ty  # FTVar / FUnit / FInt carry no T types


def subst_tal_in_fexpr(e: FExpr, s: Subst) -> FExpr:
    """Apply a T type substitution throughout an FT expression.

    Needed because an ``import`` instruction's F expression can mention the
    enclosing component's type variables inside nested boundaries, lambda
    annotations, and ``halt``/``call`` annotations."""
    from repro.ft.lump import LumpVal

    if isinstance(e, LumpVal):
        return e
    if isinstance(e, Boundary):
        return Boundary(subst_tal_in_ftype(e.ty, s),
                        subst_component(e.comp, s),
                        StackDelta(e.delta.pops,
                                   tuple(subst_ty(t, s)
                                         for t in e.delta.pushes)))
    if isinstance(e, (Var, UnitE, IntE)):
        return e
    if isinstance(e, BinOp):
        return BinOp(e.op, subst_tal_in_fexpr(e.left, s),
                     subst_tal_in_fexpr(e.right, s))
    if isinstance(e, If0):
        return If0(subst_tal_in_fexpr(e.cond, s),
                   subst_tal_in_fexpr(e.then, s),
                   subst_tal_in_fexpr(e.els, s))
    if isinstance(e, StackLam):
        return StackLam(
            tuple((x, subst_tal_in_ftype(t, s)) for x, t in e.params),
            subst_tal_in_fexpr(e.body, s),
            tuple(subst_ty(t, s) for t in e.phi_in),
            tuple(subst_ty(t, s) for t in e.phi_out))
    if isinstance(e, Lam):
        return Lam(tuple((x, subst_tal_in_ftype(t, s)) for x, t in e.params),
                   subst_tal_in_fexpr(e.body, s))
    if isinstance(e, App):
        return App(subst_tal_in_fexpr(e.fn, s),
                   tuple(subst_tal_in_fexpr(a, s) for a in e.args))
    if isinstance(e, Fold):
        return Fold(subst_tal_in_ftype(e.ann, s),
                    subst_tal_in_fexpr(e.body, s))
    if isinstance(e, Unfold):
        return Unfold(subst_tal_in_fexpr(e.body, s))
    if isinstance(e, TupleE):
        return TupleE(tuple(subst_tal_in_fexpr(x, s) for x in e.items))
    if isinstance(e, Proj):
        return Proj(e.index, subst_tal_in_fexpr(e.body, s))
    raise TypeError(f"not an FT expression: {e!r}")


def tal_free_type_vars_of_fexpr(e: FExpr) -> Set[Tuple[str, str]]:
    """Free T type variables occurring in an FT expression."""
    from repro.ft.lump import LumpVal

    acc: Set[Tuple[str, str]] = set()
    if isinstance(e, LumpVal):
        return acc
    if isinstance(e, Boundary):
        acc |= free_type_vars(e.comp)
        acc |= _tal_ftv_of_ftype(e.ty)
        for t in e.delta.pushes:
            acc |= free_type_vars(t)
        return acc
    if isinstance(e, (Var, UnitE, IntE)):
        return acc
    if isinstance(e, BinOp):
        return (tal_free_type_vars_of_fexpr(e.left)
                | tal_free_type_vars_of_fexpr(e.right))
    if isinstance(e, If0):
        return (tal_free_type_vars_of_fexpr(e.cond)
                | tal_free_type_vars_of_fexpr(e.then)
                | tal_free_type_vars_of_fexpr(e.els))
    if isinstance(e, StackLam):
        acc = tal_free_type_vars_of_fexpr(e.body)
        for t in e.phi_in + e.phi_out:
            acc |= free_type_vars(t)
        for _, t in e.params:
            acc |= _tal_ftv_of_ftype(t)
        return acc
    if isinstance(e, Lam):
        acc = tal_free_type_vars_of_fexpr(e.body)
        for _, t in e.params:
            acc |= _tal_ftv_of_ftype(t)
        return acc
    if isinstance(e, App):
        acc = tal_free_type_vars_of_fexpr(e.fn)
        for a in e.args:
            acc |= tal_free_type_vars_of_fexpr(a)
        return acc
    if isinstance(e, Fold):
        return (_tal_ftv_of_ftype(e.ann)
                | tal_free_type_vars_of_fexpr(e.body))
    if isinstance(e, (Unfold, Proj)):
        return tal_free_type_vars_of_fexpr(e.body)
    if isinstance(e, TupleE):
        for x in e.items:
            acc |= tal_free_type_vars_of_fexpr(x)
        return acc
    raise TypeError(f"not an FT expression: {e!r}")


def _tal_ftv_of_ftype(ty: FType) -> Set[Tuple[str, str]]:
    from repro.ft.lump import FLump

    acc: Set[Tuple[str, str]] = set()
    if isinstance(ty, FLump):
        for t in ty.items:
            acc |= free_type_vars(t)
        return acc
    if isinstance(ty, FStackArrow):
        for t in ty.phi_in + ty.phi_out:
            acc |= free_type_vars(t)
        for p in ty.params:
            acc |= _tal_ftv_of_ftype(p)
        acc |= _tal_ftv_of_ftype(ty.result)
        return acc
    if isinstance(ty, f_syntax.FArrow):
        for p in ty.params:
            acc |= _tal_ftv_of_ftype(p)
        return acc | _tal_ftv_of_ftype(ty.result)
    if isinstance(ty, f_syntax.FRec):
        return _tal_ftv_of_ftype(ty.body)
    if isinstance(ty, f_syntax.FTupleT):
        for t in ty.items:
            acc |= _tal_ftv_of_ftype(t)
        return acc
    return acc


def rename_locs_in_fexpr(e: FExpr, mapping: Dict[Loc, Loc],
                         rename_locs: Callable) -> FExpr:
    """Rename heap labels inside an FT expression (boundary components
    and lump handles)."""
    from repro.ft.lump import LumpVal

    if isinstance(e, LumpVal):
        return LumpVal(mapping.get(e.loc, e.loc))
    if isinstance(e, Boundary):
        return Boundary(e.ty, _rename_component(e.comp, mapping, rename_locs),
                        e.delta)
    if isinstance(e, (Var, UnitE, IntE)):
        return e
    if isinstance(e, BinOp):
        return BinOp(e.op, rename_locs_in_fexpr(e.left, mapping, rename_locs),
                     rename_locs_in_fexpr(e.right, mapping, rename_locs))
    if isinstance(e, If0):
        return If0(rename_locs_in_fexpr(e.cond, mapping, rename_locs),
                   rename_locs_in_fexpr(e.then, mapping, rename_locs),
                   rename_locs_in_fexpr(e.els, mapping, rename_locs))
    if isinstance(e, StackLam):
        return StackLam(e.params,
                        rename_locs_in_fexpr(e.body, mapping, rename_locs),
                        e.phi_in, e.phi_out)
    if isinstance(e, Lam):
        return Lam(e.params,
                   rename_locs_in_fexpr(e.body, mapping, rename_locs))
    if isinstance(e, App):
        return App(rename_locs_in_fexpr(e.fn, mapping, rename_locs),
                   tuple(rename_locs_in_fexpr(a, mapping, rename_locs)
                         for a in e.args))
    if isinstance(e, Fold):
        return Fold(e.ann, rename_locs_in_fexpr(e.body, mapping, rename_locs))
    if isinstance(e, Unfold):
        return Unfold(rename_locs_in_fexpr(e.body, mapping, rename_locs))
    if isinstance(e, TupleE):
        return TupleE(tuple(rename_locs_in_fexpr(x, mapping, rename_locs)
                            for x in e.items))
    if isinstance(e, Proj):
        return Proj(e.index,
                    rename_locs_in_fexpr(e.body, mapping, rename_locs))
    raise TypeError(f"not an FT expression: {e!r}")


def _rename_component(comp: Component, mapping, rename_locs) -> Component:
    # Heap entry *keys* are renamed along with references: a mapping that
    # covers a component's own labels must move the binding occurrence
    # too, or every renamed reference dangles.  Mappings that only touch
    # labels bound elsewhere (the machine's load-time freshening) leave
    # the keys alone via the ``get`` default.
    return Component(
        rename_locs(comp.instrs, mapping),
        tuple((mapping.get(loc, loc), rename_locs(h, mapping))
              for loc, h in comp.heap))


# ---------------------------------------------------------------------------
# Hook registration
# ---------------------------------------------------------------------------

def _import_subst(i: Import, s: Subst) -> Import:
    return Import(i.rd, subst_stack(i.protected, s),
                  subst_tal_in_ftype(i.ty, s), subst_tal_in_fexpr(i.expr, s))


def _import_ftv(i: Import) -> Set[Tuple[str, str]]:
    acc = free_type_vars(i.protected)
    acc |= tal_free_type_vars_of_fexpr(i.expr)
    acc |= _tal_ftv_of_ftype(i.ty)
    return acc


def _protect_subst(i: Protect, rest: InstrSeq,
                   s: Subst) -> Tuple[Protect, InstrSeq]:
    from repro.tal.subst import _avoid_capture_in_rest  # shared helper

    phi = tuple(subst_ty(t, s) for t in i.phi)
    zeta, rest, s_rest = _avoid_capture_in_rest(KIND_ZETA, i.zeta, rest, s)
    return Protect(phi, zeta), subst_instr_seq(rest, s_rest)


def _protect_ftv(i: Protect) -> Set[Tuple[str, str]]:
    acc: Set[Tuple[str, str]] = set()
    for t in i.phi:
        acc |= free_type_vars(t)
    return acc


def _import_rename(i: Import, mapping, rename_locs) -> Import:
    return Import(i.rd, i.protected, i.ty,
                  rename_locs_in_fexpr(i.expr, mapping, rename_locs))


def _stack_arrow_subst(ty: FType, var: str,
                       replacement: FType) -> Optional[FType]:
    if not isinstance(ty, FStackArrow):
        return None
    return FStackArrow(
        tuple(f_syntax.subst_ftype(p, var, replacement) for p in ty.params),
        f_syntax.subst_ftype(ty.result, var, replacement),
        ty.phi_in, ty.phi_out)


def _stack_arrow_ftv(ty: FType) -> Optional[frozenset]:
    if not isinstance(ty, FStackArrow):
        return None
    acc = f_syntax.free_tvars(ty.result)
    for p in ty.params:
        acc |= f_syntax.free_tvars(p)
    return acc


register_simple_instr(Import, _import_subst, _import_ftv)
register_binding_instr(Protect, _protect_subst, _protect_ftv,
                       lambda i: (KIND_ZETA, i.zeta))
register_loc_renamer(Import, _import_rename)
f_syntax.register_ftype_hooks(equal=_stack_arrow_equal,
                              subst=_stack_arrow_subst,
                              ftv=_stack_arrow_ftv)

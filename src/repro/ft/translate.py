"""The FT boundary type translation ``tau  |->  tauT`` (paper Fig 9).

The translation fixes the cross-language calling convention:

* base types and type variables map to themselves;
* ``mu`` and tuple types map structurally, with F tuples becoming
  *immutable* (``box``) T heap tuples;
* an arrow ``(tau_1, ..., tau_n) -> tau'`` becomes a code pointer that

  - abstracts a stack tail ``zeta`` and a return marker ``eps``,
  - takes its arguments on the stack, last argument on top
    (``tau_nT :: ... :: tau_1T :: zeta``),
  - takes its return continuation in ``ra`` at type
    ``box forall[].{r1: tau'T; zeta} eps``, and
  - has return marker ``ra``;

* a stack-modifying arrow additionally threads the declared prefixes:
  ``phi_i`` sits under the arguments on entry and the continuation's stack
  is ``phi_o :: zeta``.

Binder names are fixed (``z``/``e``); nested arrows shadow them, which is
harmless because T type equality is alpha-equivalence
(:mod:`repro.tal.equality`).
"""

from __future__ import annotations

from repro.errors import FTTypeError
from repro.f.syntax import (
    FArrow, FInt, FRec, FTupleT, FType, FTVar, FUnit,
)
from repro.ft.lump import FLump
from repro.ft.syntax import FStackArrow
from repro.tal.syntax import (
    CodeType, DeltaBind, KIND_EPS, KIND_ZETA, QEps, QReg, RegFileTy,
    StackTy, TalType, TBox, TInt, TRec, TRef, TupleTy, TUnit, TVar,
)

__all__ = ["type_translation", "arrow_code_type", "continuation_type"]

#: Fixed binder names used by every generated code type.
ZETA = "z"
EPS = "e"


def continuation_type(result: TalType, out_stack: StackTy,
                      eps: str = EPS) -> TBox:
    """``box forall[].{r1: result; out_stack} eps`` -- the calling
    convention's return-continuation type."""
    return TBox(CodeType((), RegFileTy.of(r1=result), out_stack, QEps(eps)))


def arrow_code_type(param_types, result: TalType,
                    phi_in=(), phi_out=()) -> CodeType:
    """The (unboxed) code type of a translated arrow.

    ``param_types``, ``phi_in``, ``phi_out`` are T value types; arguments
    are pushed first-to-last so the *last* argument is on top.
    """
    zeta_tail = StackTy(tuple(phi_out), ZETA)
    cont = continuation_type(result, zeta_tail)
    arg_stack = StackTy(
        tuple(reversed(tuple(param_types))) + tuple(phi_in), ZETA)
    return CodeType(
        (DeltaBind(KIND_ZETA, ZETA), DeltaBind(KIND_EPS, EPS)),
        RegFileTy.of(ra=cont), arg_stack, QReg("ra"))


def type_translation(ty: FType) -> TalType:
    """``tauT`` -- translate an F type to its T representation type."""
    if isinstance(ty, FTVar):
        return TVar(ty.name)
    if isinstance(ty, FUnit):
        return TUnit()
    if isinstance(ty, FInt):
        return TInt()
    if isinstance(ty, FRec):
        return TRec(ty.var, type_translation(ty.body))
    if isinstance(ty, FTupleT):
        return TBox(TupleTy(tuple(type_translation(t) for t in ty.items)))
    if isinstance(ty, FLump):
        # foreign pointers: the one mutable reference F may hold (sec 6)
        return TRef(ty.items)
    if isinstance(ty, FStackArrow):
        return TBox(arrow_code_type(
            tuple(type_translation(p) for p in ty.params),
            type_translation(ty.result), ty.phi_in, ty.phi_out))
    if isinstance(ty, FArrow):
        return TBox(arrow_code_type(
            tuple(type_translation(p) for p in ty.params),
            type_translation(ty.result)))
    raise FTTypeError(f"no translation for F type {ty}",
                      judgment="ft.type-translation", subject=str(ty))

"""Foreign pointers: the lump-type extension of paper section 6.

    "We could also add foreign pointers to FT, which would allow
     references to mutable T tuples to flow into F as opaque values of
     lump type (as in Matthews-Findler [16]), allowing them to be passed
     but only used in T.  Foreign pointers would have the form
     L<tau>FT l (where l : ref <tau>T)."

This module implements exactly that:

* :class:`FLump` -- the F-side lump type ``L<tau, ...>``, inhabiting the
  F type grammar but carrying the *T* field types of the referenced
  mutable tuple.  Its boundary translation is ``ref <tau...>`` (the one
  mutable thing that can now flow into F);
* :class:`LumpVal` -- the runtime F value: an opaque handle to a heap
  location.  F can bind it, pass it, and return it -- every *use* must
  cross back into T through a boundary.

With lumps, T libraries can hand F genuinely shared mutable state (see
:mod:`repro.stdlib.foreign` for a counter library and its tests), at the
cost the paper notes: equivalences that held in lump-free FT (where
embedded components cannot communicate) no longer do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import FTTypeError
from repro.f.syntax import (
    FExpr, FType, register_ftype_hooks, register_value_class,
)
from repro.tal.equality import types_equal
from repro.tal.syntax import Loc, TalType, TRef, TupleTy

__all__ = ["FLump", "LumpVal", "lump_type_of_ref"]


@dataclass(frozen=True, slots=True)
class FLump(FType):
    """The lump type ``L<tau, ...>`` of foreign pointers to mutable
    T tuples with the given field types."""

    items: Tuple[TalType, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "items", tuple(self.items))

    def __str__(self) -> str:
        inner = ", ".join(str(t) for t in self.items)
        return f"L<{inner}>"


@dataclass(frozen=True, slots=True)
class LumpVal(FExpr):
    """An opaque foreign pointer -- a runtime-only F value.

    F programs cannot construct these syntactically; they arrive through
    boundaries at lump type and can only be consumed by handing them back
    to T."""

    loc: Loc

    def __str__(self) -> str:
        return f"lump({self.loc})"


def lump_type_of_ref(ty: TalType) -> Optional[FLump]:
    """The lump type matching a ``ref <tau...>``, or None."""
    if isinstance(ty, TRef):
        return FLump(ty.items)
    return None


# -- hook registrations ------------------------------------------------

def _lump_equal(a: FType, b: FType, env) -> Optional[bool]:
    if isinstance(a, FLump) != isinstance(b, FLump):
        return False
    if not isinstance(a, FLump):
        return None
    assert isinstance(b, FLump)
    return (len(a.items) == len(b.items)
            and all(types_equal(x, y) for x, y in zip(a.items, b.items)))


def _lump_subst(ty: FType, var: str, replacement: FType) -> Optional[FType]:
    # lumps contain T types only; F type substitution does not reach them.
    return ty if isinstance(ty, FLump) else None


def _lump_ftv(ty: FType):
    return frozenset() if isinstance(ty, FLump) else None


register_ftype_hooks(equal=_lump_equal, subst=_lump_subst, ftv=_lump_ftv)
register_value_class(LumpVal)

"""FT: the FunTAL multi-language (paper sections 4-5).

Public surface:

* :mod:`repro.ft.syntax` -- boundaries, ``import``/``protect``,
  stack-modifying lambdas (paper Fig 6);
* :mod:`repro.ft.translate` -- the boundary type translation (Fig 9);
* :mod:`repro.ft.boundary` -- the boundary value translations (Fig 10);
* :mod:`repro.ft.typecheck` -- the combined type system (Fig 7);
* :mod:`repro.ft.machine` -- the mixed-language machine (Fig 8).
"""

from repro.ft.syntax import (  # noqa: F401
    Boundary, FStackArrow, Import, Protect, StackDelta, StackLam,
)
from repro.ft.translate import type_translation  # noqa: F401
from repro.ft.boundary import f_to_t, t_to_f  # noqa: F401
from repro.ft.typecheck import (  # noqa: F401
    check_ft_component, check_ft_expr, FTTypechecker,
)
from repro.ft.machine import (  # noqa: F401
    evaluate_ft, FTMachine, run_ft_component,
)

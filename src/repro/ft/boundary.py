"""FT boundary *value* translations (paper Fig 10).

Two type-directed metafunctions move values across the language boundary at
runtime:

* ``TFtau(v, M) = (w, M')`` (:func:`f_to_t`): an F value becomes a T word.
  Base values map directly; tuples are allocated as immutable heap tuples;
  a lambda becomes a *code block*, allocated in the heap, that implements
  the calling convention: save the return continuation on the stack, rebuild
  the original lambda application as an ``import``-ed F expression whose
  arguments are boundary components reading the stack, then restore the
  continuation, clear the arguments, and ``ret``.

* ``tauFT(w, M) = (v, M')`` (:func:`t_to_f`): a T word becomes an F value.
  Base values map directly; heap tuples are read back field by field; a
  code pointer becomes a *lambda* whose body is a boundary component that
  protects the stack, pushes the (translated) arguments, installs a fresh
  halting continuation ``l_end``, and ``call``s the original code pointer.

The generated wrappers are exactly Fig 10's, and they typecheck under
:class:`repro.ft.typecheck.FTTypechecker` (verified in the test suite).

Stack-modifying lambdas (elided in the paper's figure, "similar") follow
the same shape but must ferry the visible stack prefix through registers to
re-arrange the continuation past it; this bounds the supported arity by the
register count (see :func:`build_stack_lambda_wrapper`).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import MachineError
from repro.obs.events import OBS
from repro.resilience.chaos import probe
from repro.f.syntax import (
    App, FArrow, FExpr, FInt, Fold as FFold, FRec, FTupleT, FType, FUnit,
    IntE, is_value, Lam, TupleE, UnitE, Var,
)
from repro.ft.lump import FLump, LumpVal
from repro.ft.syntax import (
    Boundary, FStackArrow, Import, Protect, StackDelta, StackLam,
)
from repro.ft.translate import (
    arrow_code_type, continuation_type, EPS, type_translation, ZETA,
)
from repro.tal.heap import Memory
from repro.tal.syntax import (
    BOX, Call, CodeType, Component, DeltaBind, Fold as TFoldV, Halt, HCode,
    HTuple, InstrSeq, KIND_EPS, KIND_ZETA, Loc, Mv, NIL_STACK, Operand,
    QEnd, QEps, QIdx, QReg, RegFileTy, RegOp, Ret, Salloc, Sfree, Sld, Sst,
    StackTy, TalType, TBox, TupleTy, TyApp, WInt, WLoc, WordValue, WUnit,
    seq,
)

__all__ = [
    "f_to_t", "t_to_f", "build_lambda_wrapper",
    "build_stack_lambda_wrapper", "build_call_back_lambda",
]


# ---------------------------------------------------------------------------
# TFtau(v, M): F value -> T word
# ---------------------------------------------------------------------------

def f_to_t(v: FExpr, ty: FType, mem: Memory) -> WordValue:
    """``TFtau(v, M) = (w, M')`` -- translate an F value into T,
    allocating in ``mem`` as needed."""
    probe("boundary.translate", f"TF[{ty}]")
    if OBS.enabled:
        OBS.metrics.inc("ft.translate.f_to_t")
    if not is_value(v):
        raise MachineError(f"boundary translation of a non-value {v}")
    if isinstance(ty, FInt):
        if not isinstance(v, IntE):
            raise MachineError(f"TF[int] applied to {v}")
        return WInt(v.value)
    if isinstance(ty, FUnit):
        if not isinstance(v, UnitE):
            raise MachineError(f"TF[unit] applied to {v}")
        return WUnit()
    if isinstance(ty, FRec):
        if not isinstance(v, FFold):
            raise MachineError(f"TF[mu] applied to {v}")
        inner = f_to_t(v.body, ty.unroll(), mem)
        return TFoldV(type_translation(ty), inner)
    if isinstance(ty, FTupleT):
        if not isinstance(v, TupleE) or len(v.items) != len(ty.items):
            raise MachineError(f"TF[tuple] applied to {v}")
        words = tuple(f_to_t(item, item_ty, mem)
                      for item, item_ty in zip(v.items, ty.items))
        loc = mem.alloc(HTuple(words), BOX, base="tup")
        return WLoc(loc)
    if isinstance(ty, FLump):
        if not isinstance(v, LumpVal):
            raise MachineError(f"TF[lump] applied to {v}")
        cell = mem.lookup(v.loc)
        if cell.nu != "ref":
            raise MachineError(
                f"lump {v.loc} does not point at a mutable tuple")
        return WLoc(v.loc)
    if isinstance(ty, FStackArrow):
        if not isinstance(v, Lam):
            raise MachineError(f"TF[stack-arrow] applied to {v}")
        block = build_stack_lambda_wrapper(v, ty)
        return WLoc(mem.alloc(block, BOX, base="slam"))
    if isinstance(ty, FArrow):
        if not isinstance(v, Lam):
            raise MachineError(f"TF[arrow] applied to {v}")
        block = build_lambda_wrapper(v, ty)
        return WLoc(mem.alloc(block, BOX, base="lam"))
    raise MachineError(f"no value translation into T at type {ty}")


def build_lambda_wrapper(v: Lam, ty: FArrow) -> HCode:
    """Fig 10's ``TF(tau)->tau'`` code block for an F lambda ``v``.

    Calling convention: arguments on the stack (last on top), return
    continuation in ``ra``; the block saves the continuation to the stack,
    imports the F application whose arguments are boundary components that
    ``sld`` each argument and halt with it, then restores the continuation,
    frees the continuation + argument slots, and returns.
    """
    n = len(ty.params)
    result_t = type_translation(ty.result)
    param_ts = tuple(type_translation(p) for p in ty.params)
    cont = continuation_type(result_t, StackTy((), ZETA))
    # Stack during the import:  cont :: tau_nT :: ... :: tau_1T :: zeta
    inside = StackTy((cont,) + tuple(reversed(param_ts)), ZETA)
    args = tuple(
        Boundary(ty.params[i - 1],
                 Component(seq(
                     Sld("r1", n + 1 - i),
                     Halt(param_ts[i - 1], inside, "r1"))))
        for i in range(1, n + 1))
    body = App(v, args)
    return HCode(
        (DeltaBind(KIND_ZETA, ZETA), DeltaBind(KIND_EPS, EPS)),
        RegFileTy.of(ra=cont),
        StackTy(tuple(reversed(param_ts)), ZETA),
        QReg("ra"),
        seq(
            Salloc(1),
            Sst(0, "ra"),
            Import("r1", StackTy((), ZETA), ty.result, body),
            Sld("ra", 0),
            Sfree(n + 1),
            Ret("ra", "r1"),
        ))


def build_stack_lambda_wrapper(v: Lam, ty: FStackArrow) -> HCode:
    """The (paper-elided) wrapper for a stack-modifying lambda.

    The continuation must be stored *past* the exposed prefix ``phi_i``
    (paper section 4.2), so the block ferries the arguments and prefix
    through registers to rebuild the stack as
    ``phi_i :: args :: cont :: zeta``, imports the application, then
    ferries ``phi_o`` out of the way to drop the argument slots.

    Register budget: needs ``n + |phi_i| <= 7`` and ``|phi_o| + 1 <= 7``.
    """
    n = len(ty.params)
    p_in, p_out = len(ty.phi_in), len(ty.phi_out)
    if n + p_in > 7 or p_out + 1 > 7:
        raise MachineError(
            "stack-lambda wrapper exceeds the register budget "
            f"(n={n}, |phi_i|={p_in}, |phi_o|={p_out})")
    result_t = type_translation(ty.result)
    param_ts = tuple(type_translation(p) for p in ty.params)
    cont = continuation_type(result_t, StackTy(tuple(ty.phi_out), ZETA))
    entry_sigma = StackTy(
        tuple(reversed(param_ts)) + tuple(ty.phi_in), ZETA)

    instrs: List = []
    # 1. Ferry args (slots 0..n-1, top = last arg) and phi_i (slots
    #    n..n+p_in-1) into registers r1..r(n+p_in).
    for k in range(n + p_in):
        instrs.append(Sld(f"r{k + 1}", k))
    instrs.append(Sfree(n + p_in))
    # 2. Store the continuation at the bottom of the working area.
    instrs.append(Salloc(1))
    instrs.append(Sst(0, "ra"))
    # 3. Rebuild: args above cont (last arg on top), then phi_i on top.
    #    Register r(k+1) currently holds old slot k: r1..rn = args
    #    (r1 = last arg), r(n+1).. = phi_i (r(n+1) = top of phi_i).
    for k in range(n, 0, -1):          # push first-arg-deepest
        instrs.append(Salloc(1))
        instrs.append(Sst(0, f"r{k}"))
    for k in range(n + p_in, n, -1):
        instrs.append(Salloc(1))
        instrs.append(Sst(0, f"r{k}"))
    # Stack now: phi_i :: arg_n..arg_1 :: cont :: zeta; marker at n + p_in.
    inside = StackTy(
        tuple(ty.phi_in) + tuple(reversed(param_ts)) + (cont,), ZETA)
    args = tuple(
        Boundary(ty.params[i - 1],
                 Component(seq(
                     Sld("r1", p_in + n - i),
                     Halt(param_ts[i - 1], inside, "r1"))))
        for i in range(1, n + 1))
    body = App(v, args)
    instrs.append(Import(
        "r1", StackTy((), ZETA), ty.result, body))
    # Stack: phi_o :: args :: cont :: zeta; result in r1; marker at
    # p_out + n.  Ferry phi_o out, drop args, recover cont, restore phi_o.
    for k in range(p_out):
        instrs.append(Sld(f"r{k + 2}", k))
    instrs.append(Sfree(p_out + n))
    instrs.append(Sld("ra", 0))
    instrs.append(Sfree(1))
    for k in range(p_out, 0, -1):
        instrs.append(Salloc(1))
        instrs.append(Sst(0, f"r{k + 1}"))
    return HCode(
        (DeltaBind(KIND_ZETA, ZETA), DeltaBind(KIND_EPS, EPS)),
        RegFileTy.of(ra=cont), entry_sigma, QReg("ra"),
        InstrSeq(tuple(instrs), Ret("ra", "r1")))


# ---------------------------------------------------------------------------
# tauFT(w, M): T word -> F value
# ---------------------------------------------------------------------------

def t_to_f(w: WordValue, ty: FType, mem: Memory) -> FExpr:
    """``tauFT(w, M) = (v, M')`` -- translate a T word into F."""
    probe("boundary.translate", f"{ty}FT")
    if OBS.enabled:
        OBS.metrics.inc("ft.translate.t_to_f")
    if isinstance(ty, FInt):
        if not isinstance(w, WInt):
            raise MachineError(f"FT[int] applied to {w}")
        return IntE(w.value)
    if isinstance(ty, FUnit):
        if not isinstance(w, WUnit):
            raise MachineError(f"FT[unit] applied to {w}")
        return UnitE()
    if isinstance(ty, FRec):
        if not isinstance(w, TFoldV):
            raise MachineError(f"FT[mu] applied to {w}")
        return FFold(ty, t_to_f(w.body, ty.unroll(), mem))
    if isinstance(ty, FTupleT):
        if not isinstance(w, WLoc):
            raise MachineError(f"FT[tuple] applied to {w}")
        tup = mem.tuple_at(w.loc)
        if len(tup.words) != len(ty.items):
            raise MachineError(
                f"FT[tuple] width mismatch at {w.loc}: {len(tup.words)} "
                f"fields for {ty}")
        return TupleE(tuple(
            t_to_f(word, item_ty, mem)
            for word, item_ty in zip(tup.words, ty.items)))
    if isinstance(ty, FLump):
        if not isinstance(w, WLoc):
            raise MachineError(f"FT[lump] applied to {w}")
        cell = mem.lookup(w.loc)
        if cell.nu != "ref":
            raise MachineError(
                f"FT[lump]: {w.loc} is not a mutable tuple")
        return LumpVal(w.loc)
    if isinstance(ty, (FArrow, FStackArrow)):
        return build_call_back_lambda(w, ty, mem)
    raise MachineError(f"no value translation into F at type {ty}")


def build_call_back_lambda(w: WordValue, ty: FArrow, mem: Memory) -> Lam:
    """Fig 10's ``(tau)->tau'FT`` lambda wrapping a T code pointer ``w``.

    The body is a boundary component: ``protect`` the caller's stack
    (keeping ``phi_i`` visible for stack-arrows), import-and-push each
    argument, install a fresh halting continuation ``l_end``, and ``call``
    ``w``.  ``l_end`` is allocated in ``mem`` here, at translation time.
    """
    if isinstance(ty, FStackArrow):
        phi_in, phi_out = tuple(ty.phi_in), tuple(ty.phi_out)
    else:
        phi_in, phi_out = (), ()
    n = len(ty.params)
    result_t = type_translation(ty.result)
    param_ts = tuple(type_translation(p) for p in ty.params)
    out_stack = StackTy(phi_out, ZETA)

    hend = HCode(
        (DeltaBind(KIND_ZETA, ZETA),),
        RegFileTy.of(r1=result_t), out_stack,
        QEnd(result_t, out_stack),
        seq(Halt(result_t, out_stack, "r1")))
    lend = mem.alloc(hend, BOX, base="lend")

    params = tuple((f"x{i}", ty.params[i - 1]) for i in range(1, n + 1))
    instrs: List = [Protect(phi_in, ZETA)]
    for i in range(1, n + 1):
        # Protect the whole current stack: the imported expression is just
        # a variable reference and touches nothing.
        protected = StackTy(
            tuple(reversed(param_ts[:i - 1])) + phi_in, ZETA)
        instrs.append(Import("r1", protected, ty.params[i - 1],
                             Var(f"x{i}")))
        instrs.append(Salloc(1))
        instrs.append(Sst(0, "r1"))
    instrs.append(Mv("ra", TyApp(WLoc(lend), (StackTy(phi_out, ZETA),))))
    comp = Component(InstrSeq(
        tuple(instrs),
        Call(w, StackTy((), ZETA),
             QEnd(result_t, StackTy(phi_out, ZETA)))))
    body = Boundary(ty.result, comp,
                    StackDelta(pops=len(phi_in), pushes=phi_out))
    if isinstance(ty, FStackArrow):
        return StackLam(params, body, phi_in, phi_out)
    return Lam(params, body)

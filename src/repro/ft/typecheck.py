"""The FT multi-language type system (paper Fig 7).

The combined judgment types F expressions under the full T context --
``Psi; Delta; Gamma; chi; sigma; out |- e : tau; sigma'`` -- because
embedded assembly can change the stack: every F rule *threads the stack
typing through its subterms in evaluation order*, and the judgment
*synthesizes* the output stack ``sigma'`` alongside the type.

On the T side, the two new instructions are typed as in Fig 7:

* ``protect phi, zeta`` checks the declared prefix against the current
  stack, abstracts the remainder behind a fresh ``zeta`` (irreversibly),
  and re-expresses an ``end{tau; sigma}`` marker's stack relative to
  ``zeta`` -- the tail it promises to return is the tail just hidden.  A
  stack-index marker must stay inside the visible prefix.
* ``import rd, sigma_0 TFtau e`` types ``e`` at ``out`` under a stack whose
  tail ``sigma_0`` is abstracted (so embedded assembly inside ``e`` cannot
  touch it), requires the current marker to live in that protected tail (a
  stack index beyond the visible front) or be ``end{...}``, and afterwards
  *wipes the register file* down to ``rd : tauT`` -- embedded code may have
  clobbered every register.  A stack-index marker is shifted by the
  front-size change ``k - j`` (the paper's ``inc``).

Boundaries ``tauFT e`` check their component at empty ``chi`` and marker
``end{tauT; sigma'}``, with ``sigma'`` determined by the boundary's
declared :class:`~repro.ft.syntax.StackDelta` (see that class's docstring
for why the output stack is declared relative to the input).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Optional, Tuple

from repro.errors import FTTypeError
from repro.obs.events import OBS
from repro.f.syntax import (
    App, BinOp, FArrow, FExpr, FInt, Fold, FRec, FTupleT, FType, FUnit,
    ftype_equal, If0, IntE, Lam, Proj, TupleE, Unfold, UnitE, Var,
)
from repro.ft.syntax import Boundary, FStackArrow, Import, Protect, StackLam
from repro.ft.translate import type_translation
from repro.tal.equality import stacks_equal, types_equal
from repro.tal.subst import fresh_name
from repro.tal.syntax import (
    Component, Delta, DeltaBind, delta_contains, HeapTy, InstrSeq,
    Instruction, KIND_ZETA, NIL_STACK, QEnd, QEps, QIdx, QOut, QReg,
    RegFileTy, RetMarker, StackTy, TalType,
)
from repro.tal.typecheck import InstrState, TalTypechecker
from repro.tal.wellformed import check_stack_wf, check_type_wf

__all__ = ["FTTypechecker", "check_ft_expr", "check_ft_component",
           "strip_tail"]

GammaEnv = Dict[str, FType]


def _fail(msg: str, judgment: str, subject) -> FTTypeError:
    return FTTypeError(msg, judgment=judgment, subject=str(subject))


def strip_tail(sigma: StackTy, tail: StackTy, subject) -> Tuple[TalType, ...]:
    """Split ``sigma = front ++ tail`` and return ``front``.

    Raises when ``tail`` is not a suffix of ``sigma`` (same tail variable,
    prefix a type-equal suffix)."""
    if sigma.tail != tail.tail:
        raise _fail(
            f"stack {sigma} does not end in the protected tail {tail}",
            "ft.stack-split", subject)
    k = len(tail.prefix)
    if k > len(sigma.prefix):
        raise _fail(
            f"stack {sigma} is shorter than the protected tail {tail}",
            "ft.stack-split", subject)
    front = sigma.prefix[:len(sigma.prefix) - k] if k else sigma.prefix
    kept = sigma.prefix[len(sigma.prefix) - k:] if k else ()
    for got, want in zip(kept, tail.prefix):
        if not types_equal(got, want):
            raise _fail(
                f"stack {sigma} does not end in the protected tail {tail}: "
                f"{got} vs {want}", "ft.stack-split", subject)
    return front


class FTTypechecker(TalTypechecker):
    """Typechecker for the full multi-language.

    Extends the T checker with the F judgment (:meth:`check_fexpr`) and the
    ``import``/``protect`` instruction rules; ``gamma`` is the F variable
    environment, scoped by the lambda rules.
    """

    def __init__(self, psi: Optional[HeapTy] = None,
                 gamma: Optional[GammaEnv] = None):
        super().__init__(psi)
        self.gamma: GammaEnv = dict(gamma or {})

    # ------------------------------------------------------------------
    # T side: the two new instructions
    # ------------------------------------------------------------------

    def step_extended_instruction(self, st: InstrState,
                                  i: Instruction) -> InstrState:
        if isinstance(i, Protect):
            return self._step_protect(st, i)
        if isinstance(i, Import):
            return self._step_import(st, i)
        return super().step_extended_instruction(st, i)

    def step_in_sequence(self, st: InstrState, instr, rest):
        # protect binds its zeta over the rest of the sequence; when the
        # name would shadow an ambient binder (library code always uses a
        # canonical "z"), alpha-rename it in the remainder instead of
        # rejecting -- composition of generated components depends on it.
        if isinstance(instr, Protect) and \
                instr.zeta in {b.name for b in st.delta}:
            from repro.tal.subst import fresh_name, Subst, subst_instr_seq

            fresh = fresh_name(instr.zeta)
            renaming = Subst.single(KIND_ZETA, instr.zeta,
                                    StackTy((), fresh))
            rest = subst_instr_seq(rest, renaming)
            instr = Protect(instr.phi, fresh)
        return super().step_in_sequence(st, instr, rest)

    def _step_protect(self, st: InstrState, i: Protect) -> InstrState:
        if OBS.enabled:
            OBS.metrics.inc("typecheck.ft.protect")
        m = len(i.phi)
        if st.sigma.depth < m:
            raise _fail(
                f"protect exposes {m} slots but only {st.sigma.depth} are "
                f"visible in {st.sigma}", "ft.protect", i)
        for k, want in enumerate(i.phi):
            if not types_equal(st.sigma.prefix[k], want):
                raise _fail(
                    f"protect prefix slot {k} is {st.sigma.prefix[k]}, "
                    f"declared {want}", "ft.protect", i)
        if i.zeta in {b.name for b in st.delta}:
            raise _fail(
                f"protect binder {i.zeta} shadows an existing type "
                "variable", "ft.protect", i)
        hidden = st.sigma.drop(m)
        new_q = self._generalize_marker(st.q, hidden, i.zeta, m, i)
        return InstrState(
            st.delta + (DeltaBind(KIND_ZETA, i.zeta),),
            st.chi,
            StackTy(st.sigma.prefix[:m], i.zeta),
            new_q)

    def _generalize_marker(self, q: RetMarker, hidden: StackTy, zeta: str,
                           visible: int, subject) -> RetMarker:
        if isinstance(q, QEnd):
            front = strip_tail(q.sigma, hidden, subject)
            return QEnd(q.ty, StackTy(front, zeta))
        if isinstance(q, QIdx):
            if q.index >= visible:
                raise _fail(
                    f"protect would hide the return-marker slot {q.index}",
                    "ft.protect", subject)
            return q
        return q  # register and eps markers are unaffected

    def _step_import(self, st: InstrState, i: Import) -> InstrState:
        if OBS.enabled:
            OBS.metrics.inc("typecheck.ft.import")
        front = strip_tail(st.sigma, i.protected, i)
        m = len(front)
        if isinstance(st.q, QIdx):
            # The marker may sit anywhere on the exposed stack; its
            # position *relative to the protected tail* is preserved, so
            # after the front changes from m to n slots it resurfaces at
            # index + n - m (the paper's inc).  Fig 10's generated wrapper
            # relies on a front marker: the saved continuation at slot 0
            # above the argument slots.  The sequence judgment re-checks
            # that the shifted slot is continuation-shaped afterwards.
            pass
        elif not isinstance(st.q, QEnd):
            raise _fail(
                f"import requires a stack-index or end{{...}} return "
                f"marker so embedded code cannot clobber it; current is "
                f"{st.q}", "ft.import", i)
        # Abstract the protected tail for the inner F check unless it is
        # already a bare stack variable.
        if not i.protected.prefix and i.protected.tail is not None:
            inner_delta = st.delta
            inner_sigma = st.sigma
            inner_tail = i.protected.tail
        else:
            inner_tail = fresh_name("z")
            inner_delta = st.delta + (DeltaBind(KIND_ZETA, inner_tail),)
            inner_sigma = StackTy(front, inner_tail)
        e_ty, e_sigma = self.check_fexpr(inner_delta, st.chi, inner_sigma,
                                         i.expr)
        if not ftype_equal(e_ty, i.ty):
            raise _fail(
                f"imported expression has type {e_ty}, annotation says "
                f"{i.ty}", "ft.import", i)
        if e_sigma.tail != inner_tail:
            raise _fail(
                f"imported expression's output stack {e_sigma} lost the "
                f"protected tail {inner_tail}", "ft.import", i)
        new_front = e_sigma.prefix
        n = len(new_front)
        new_sigma = StackTy(new_front + i.protected.prefix,
                            i.protected.tail)
        new_q = st.q if isinstance(st.q, QEnd) else QIdx(
            st.q.index + n - m)
        # Embedded code may clobber every register: chi collapses to rd.
        new_chi = RegFileTy.of({i.rd: type_translation(i.ty)})
        return InstrState(st.delta, new_chi, new_sigma, new_q)

    # ------------------------------------------------------------------
    # F side:  Psi; Delta; Gamma; chi; sigma; out |- e : tau; sigma'
    # ------------------------------------------------------------------

    def check_fexpr(self, delta: Delta, chi: RegFileTy, sigma: StackTy,
                    e: FExpr) -> Tuple[FType, StackTy]:
        if OBS.enabled:
            OBS.metrics.inc(f"typecheck.ft.expr.{type(e).__name__.lower()}")
        if isinstance(e, Var):
            if e.name not in self.gamma:
                raise _fail(f"unbound variable {e.name!r}", "ft.expr", e)
            return self.gamma[e.name], sigma
        if isinstance(e, UnitE):
            return FUnit(), sigma
        if isinstance(e, IntE):
            return FInt(), sigma
        if isinstance(e, BinOp):
            lt, s1 = self.check_fexpr(delta, chi, sigma, e.left)
            self._expect_int(lt, "left operand", e)
            rt, s2 = self.check_fexpr(delta, chi, s1, e.right)
            self._expect_int(rt, "right operand", e)
            return FInt(), s2
        if isinstance(e, If0):
            ct, s1 = self.check_fexpr(delta, chi, sigma, e.cond)
            self._expect_int(ct, "if0 scrutinee", e)
            tt, s_then = self.check_fexpr(delta, chi, s1, e.then)
            et, s_else = self.check_fexpr(delta, chi, s1, e.els)
            if not ftype_equal(tt, et):
                raise _fail(f"if0 branches disagree: {tt} vs {et}",
                            "ft.expr", e)
            if not stacks_equal(s_then, s_else):
                raise _fail(
                    f"if0 branches leave different stacks: {s_then} vs "
                    f"{s_else}", "ft.expr", e)
            return tt, s_then
        if isinstance(e, StackLam):
            return self._check_lambda(delta, chi, sigma, e,
                                      e.phi_in, e.phi_out)
        if isinstance(e, Lam):
            return self._check_lambda(delta, chi, sigma, e, (), ())
        if isinstance(e, App):
            return self._check_app(delta, chi, sigma, e)
        if isinstance(e, Fold):
            if not isinstance(e.ann, FRec):
                raise _fail(f"fold annotation {e.ann} is not a mu type",
                            "ft.expr", e)
            body_ty, s1 = self.check_fexpr(delta, chi, sigma, e.body)
            unrolled = e.ann.unroll()
            if not ftype_equal(body_ty, unrolled):
                raise _fail(
                    f"fold body has type {body_ty}, expected {unrolled}",
                    "ft.expr", e)
            return e.ann, s1
        if isinstance(e, Unfold):
            body_ty, s1 = self.check_fexpr(delta, chi, sigma, e.body)
            if not isinstance(body_ty, FRec):
                raise _fail(f"unfold of non-mu type {body_ty}", "ft.expr", e)
            return body_ty.unroll(), s1
        if isinstance(e, TupleE):
            tys = []
            cur = sigma
            for item in e.items:
                ty, cur = self.check_fexpr(delta, chi, cur, item)
                tys.append(ty)
            return FTupleT(tuple(tys)), cur
        if isinstance(e, Proj):
            body_ty, s1 = self.check_fexpr(delta, chi, sigma, e.body)
            if not isinstance(body_ty, FTupleT):
                raise _fail(f"projection from non-tuple type {body_ty}",
                            "ft.expr", e)
            if not 0 <= e.index < len(body_ty.items):
                raise _fail(f"projection index {e.index} out of range",
                            "ft.expr", e)
            return body_ty.items[e.index], s1
        if isinstance(e, Boundary):
            return self._check_boundary(delta, sigma, e)
        from repro.ft.lump import FLump, LumpVal

        if isinstance(e, LumpVal):
            entry = self.psi.get(e.loc)
            if entry is None:
                raise _fail(f"lump points at unknown location {e.loc}",
                            "ft.expr", e)
            nu, psi_ty = entry
            from repro.tal.syntax import REF, TupleTy

            if nu != REF or not isinstance(psi_ty, TupleTy):
                raise _fail(
                    f"lump location {e.loc} is not a mutable tuple",
                    "ft.expr", e)
            return FLump(psi_ty.items), sigma
        raise _fail(f"unknown FT expression {type(e).__name__}",
                    "ft.expr", e)

    def _expect_int(self, ty: FType, what: str, e: FExpr) -> None:
        if not isinstance(ty, FInt):
            raise _fail(f"{what} has type {ty}, expected int", "ft.expr", e)

    def _check_lambda(self, delta: Delta, chi: RegFileTy, sigma: StackTy,
                      e: Lam, phi_in, phi_out) -> Tuple[FType, StackTy]:
        names = [x for x, _ in e.params]
        if len(set(names)) != len(names):
            raise _fail("duplicate parameter names in lambda", "ft.expr", e)
        zeta = fresh_name("z")
        inner_delta = delta + (DeltaBind(KIND_ZETA, zeta),)
        for t in tuple(phi_in) + tuple(phi_out):
            check_type_wf(delta, t)
        body_sigma = StackTy(tuple(phi_in), zeta)
        saved = dict(self.gamma)
        self.gamma.update({x: t for x, t in e.params})
        try:
            body_ty, out_sigma = self.check_fexpr(
                inner_delta, chi, body_sigma, e.body)
        finally:
            self.gamma.clear()
            self.gamma.update(saved)
        expected_out = StackTy(tuple(phi_out), zeta)
        if not stacks_equal(out_sigma, expected_out):
            raise _fail(
                f"lambda body leaves stack {out_sigma}, its type promises "
                f"{expected_out}", "ft.expr", e)
        param_tys = tuple(t for _, t in e.params)
        if isinstance(e, StackLam):
            return (FStackArrow(param_tys, body_ty, tuple(phi_in),
                                tuple(phi_out)), sigma)
        return FArrow(param_tys, body_ty), sigma

    def _check_app(self, delta: Delta, chi: RegFileTy, sigma: StackTy,
                   e: App) -> Tuple[FType, StackTy]:
        fn_ty, cur = self.check_fexpr(delta, chi, sigma, e.fn)
        if isinstance(fn_ty, FStackArrow):
            params, result = fn_ty.params, fn_ty.result
            phi_in, phi_out = fn_ty.phi_in, fn_ty.phi_out
        elif isinstance(fn_ty, FArrow):
            params, result = fn_ty.params, fn_ty.result
            phi_in, phi_out = (), ()
        else:
            raise _fail(f"applied expression has non-arrow type {fn_ty}",
                        "ft.expr", e)
        if len(params) != len(e.args):
            raise _fail(
                f"arity mismatch: {len(params)} parameters, "
                f"{len(e.args)} arguments", "ft.expr", e)
        for k, (arg, want) in enumerate(zip(e.args, params)):
            got, cur = self.check_fexpr(delta, chi, cur, arg)
            if not ftype_equal(got, want):
                raise _fail(
                    f"argument {k} has type {got}, expected {want}",
                    "ft.expr", e)
        if phi_in or phi_out:
            # The callee consumes the phi_in prefix and leaves phi_out.
            if cur.depth < len(phi_in):
                raise _fail(
                    f"stack {cur} lacks the callee's required prefix "
                    f"{[str(t) for t in phi_in]}", "ft.expr", e)
            for k, want in enumerate(phi_in):
                if not types_equal(cur.prefix[k], want):
                    raise _fail(
                        f"stack slot {k} is {cur.prefix[k]}, callee "
                        f"requires {want}", "ft.expr", e)
            cur = cur.drop(len(phi_in)).cons(*phi_out)
        return result, cur

    def _check_boundary(self, delta: Delta, sigma: StackTy,
                        e: Boundary) -> Tuple[FType, StackTy]:
        if OBS.enabled:
            OBS.metrics.inc("typecheck.ft.boundary")
        target = type_translation(e.ty)
        if e.delta.pops > sigma.depth:
            raise _fail(
                f"boundary pops {e.delta.pops} slots but only "
                f"{sigma.depth} are exposed", "ft.boundary", e)
        out_sigma = e.delta.apply(sigma)
        q = QEnd(target, out_sigma)
        st = InstrState(delta, RegFileTy(), sigma, q)
        self.check_component(st, e.comp)
        return e.ty, out_sigma


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------

def check_ft_expr(e: FExpr, *, gamma: Optional[GammaEnv] = None,
                  psi: Optional[HeapTy] = None,
                  delta: Delta = (), chi: Optional[RegFileTy] = None,
                  sigma: StackTy = NIL_STACK) -> Tuple[FType, StackTy]:
    """Type an FT expression (F outside); returns ``(tau, sigma')``."""
    checker = FTTypechecker(psi, gamma)
    return checker.check_fexpr(
        delta, chi if chi is not None else RegFileTy(), sigma, e)


def check_ft_component(comp: Component, *, gamma: Optional[GammaEnv] = None,
                       psi: Optional[HeapTy] = None, delta: Delta = (),
                       chi: Optional[RegFileTy] = None,
                       sigma: StackTy = NIL_STACK,
                       q: Optional[RetMarker] = None):
    """Type an FT component (T outside) under an explicit context."""
    if q is None:
        raise FTTypeError("a component needs a return marker q",
                          judgment="ft.component")
    checker = FTTypechecker(psi, gamma)
    st = InstrState(delta, chi if chi is not None else RegFileTy(), sigma, q)
    return checker.check_component(st, comp)

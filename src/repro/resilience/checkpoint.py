"""Content-addressed machine checkpoints.

A :class:`MachineSnapshot` is the picklable, hash-addressed form of a
suspended machine: the machine's own resumable state (built by each
machine's ``snapshot()`` method), plus the global fresh-name marks
needed to keep generated locations/variables collision-free when the
state is revived in a *different* process, all pickled into one payload
and named by its SHA-256 digest.

The digest makes snapshots content-addressed: two runs suspended in the
same state produce the same digest, the serve layer can dedupe them, and
restore verifies the payload against the digest so a truncated or
corrupted checkpoint surfaces as a structured
:class:`~repro.errors.SnapshotError` instead of a pickle crash or --
worse -- a silently wrong resumed run.

Fresh-name marks: ``fresh_loc`` (T heap locations) and ``fresh_var`` /
``fresh_tvar`` (F substitution) draw from module-global counters.  A
snapshot records each counter's position; restore advances the local
counters to at least those positions, so names minted after resume can
never collide with names already inside the revived state.
"""

from __future__ import annotations

import base64
import hashlib
import pickle
import sys
from dataclasses import dataclass
from typing import Any, Dict

from repro.errors import SnapshotError
from repro.obs.events import OBS
from repro.resilience.chaos import probe

__all__ = ["MachineSnapshot", "SNAPSHOT_VERSION"]

#: Bumped whenever the pickled layout changes incompatibly; restore
#: refuses snapshots from a different version rather than guessing.
SNAPSHOT_VERSION = 1

#: The pickler recurses once per AST node, so a machine suspended inside
#: a deep evaluation context needs more than Python's default ~1000
#: frames to serialize.  Capture temporarily raises the limit to this
#: ceiling; states deeper still fail as a clean :class:`SnapshotError`
#: (the machine stays live) rather than a hard interpreter crash.
#: Unpickling is stack-based in CPython and needs no such headroom.
PICKLE_RECURSION_LIMIT = 50_000


def _fresh_marks() -> Dict[str, int]:
    from repro.f import syntax as f_syntax
    from repro.tal import syntax as tal_syntax
    return {
        "loc": tal_syntax.fresh_mark(),
        "var": f_syntax.fresh_var_mark(),
        "tvar": f_syntax.fresh_tvar_mark(),
    }


def _advance_marks(marks: Dict[str, int]) -> None:
    from repro.f import syntax as f_syntax
    from repro.tal import syntax as tal_syntax
    tal_syntax.advance_fresh(marks.get("loc", 0))
    f_syntax.advance_fresh_var(marks.get("var", 0))
    f_syntax.advance_fresh_tvar(marks.get("tvar", 0))


@dataclass(frozen=True)
class MachineSnapshot:
    """A suspended machine, pickled and named by its content hash.

    ``kind`` records which machine family produced it (``"f"``, ``"t"``
    or ``"ft"``) so a resume entry point can refuse a snapshot meant for
    a different machine.
    """

    kind: str
    payload: bytes
    digest: str

    # -- capture ---------------------------------------------------------

    @classmethod
    def capture(cls, kind: str, state: Any) -> "MachineSnapshot":
        """Pickle ``state`` (plus fresh-name marks) into a snapshot.

        Raises :class:`SnapshotError` if any part of the state resists
        pickling -- the machine is then still live and can keep running;
        a failed checkpoint never corrupts the run it tried to save.
        """
        probe("snapshot.pickle", kind)
        record = {
            "version": SNAPSHOT_VERSION,
            "kind": kind,
            "state": state,
            "marks": _fresh_marks(),
        }
        limit = sys.getrecursionlimit()
        try:
            sys.setrecursionlimit(max(limit, PICKLE_RECURSION_LIMIT))
            payload = pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:  # pickle raises a zoo of types
            raise SnapshotError(
                f"cannot pickle {kind!r} machine state: {exc}") from exc
        finally:
            sys.setrecursionlimit(limit)
        digest = hashlib.sha256(payload).hexdigest()
        if OBS.enabled:
            OBS.metrics.inc("resilience.snapshot.captured")
            OBS.metrics.observe("resilience.snapshot.bytes", len(payload))
        return cls(kind=kind, payload=payload, digest=digest)

    # -- restore ---------------------------------------------------------

    def state(self) -> Any:
        """Verify the digest, unpickle, and advance fresh-name counters.

        Returns the machine-specific resumable state that was passed to
        :meth:`capture`.
        """
        probe("snapshot.restore", self.kind)
        actual = hashlib.sha256(self.payload).hexdigest()
        if actual != self.digest:
            raise SnapshotError(
                f"snapshot digest mismatch: expected {self.digest[:12]}..., "
                f"payload hashes to {actual[:12]}...")
        try:
            record = pickle.loads(self.payload)
        except Exception as exc:
            raise SnapshotError(f"cannot unpickle snapshot: {exc}") from exc
        if not isinstance(record, dict) or record.get("version") != SNAPSHOT_VERSION:
            raise SnapshotError(
                f"unsupported snapshot version "
                f"{record.get('version') if isinstance(record, dict) else '?'} "
                f"(expected {SNAPSHOT_VERSION})")
        if record.get("kind") != self.kind:
            raise SnapshotError(
                f"snapshot kind mismatch: wrapper says {self.kind!r}, "
                f"payload says {record.get('kind')!r}")
        _advance_marks(record.get("marks", {}))
        if OBS.enabled:
            OBS.metrics.inc("resilience.snapshot.restored")
        return record["state"]

    # -- wire form (JSON-safe, for the serve protocol) -------------------

    def to_wire(self) -> Dict[str, str]:
        return {
            "kind": self.kind,
            "digest": self.digest,
            "data": base64.b64encode(self.payload).decode("ascii"),
        }

    @classmethod
    def from_wire(cls, obj: Dict[str, Any]) -> "MachineSnapshot":
        try:
            kind = obj["kind"]
            digest = obj["digest"]
            payload = base64.b64decode(obj["data"])
        except (KeyError, TypeError, ValueError) as exc:
            raise SnapshotError(f"malformed wire snapshot: {exc}") from exc
        return cls(kind=kind, payload=payload, digest=digest)

    def __repr__(self) -> str:
        return (f"MachineSnapshot(kind={self.kind!r}, "
                f"digest={self.digest[:12]}..., "
                f"{len(self.payload)} bytes)")

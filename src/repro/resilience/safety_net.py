"""JIT safety net: differential guard + quarantine circuit breaker.

The JIT (:mod:`repro.jit.compiler`) replaces eligible F lambdas with
compiled T components behind boundaries.  Its correctness obligation is
the paper's ``E[e_S] ~ E[FT e_T]``; this module is the *runtime*
enforcement of that obligation: if anything faults while compiling or
while running jitted code -- a compiler bug, a miscompile tripping the
machine's stuck-state checks, an injected chaos fault -- the safety net

1. falls back to the interpreter and returns *its* result, so callers
   never observe a jit-induced failure or wrong answer;
2. quarantines the offending source lambda in a circuit breaker
   (:class:`Quarantine`), so it is never handed to the compiler again in
   this process.

Resource exhaustion (fuel/heap/depth) is *not* treated as a JIT fault:
it is a legitimate verdict of bounded evaluation -- and the compilable
fragment (first-order arithmetic) cannot introduce divergence -- so it
propagates to the caller unchanged.

Quarantine statistics surface in ``funtal stats`` and in the
``jit.quarantine.*`` metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ResourceExhausted
from repro.f.syntax import (
    App, BinOp, FExpr, Fold, If0, IntE, Lam, Proj, TupleE, Unfold, UnitE,
    Var,
)
from repro.ft.machine import FTMachine, evaluate_ft
from repro.ft.syntax import StackLam
from repro.jit.compiler import compile_function
from repro.compile.pipeline import eligible_tier
from repro.obs.events import OBS
from repro.resilience.budget import Budget
from repro.resilience.chaos import probe

__all__ = ["Quarantine", "QUARANTINE", "SafetyNetReport",
           "jit_rewrite_guarded", "run_guarded"]


class Quarantine:
    """Circuit breaker over source lambdas the JIT has faulted on.

    Keyed on the (frozen, hashable) source :class:`Lam` itself, exactly
    like the compile cache -- structurally identical lambdas share a
    verdict.  Once a lambda is quarantined it is never re-jitted; the
    interpreter runs it instead, permanently, until :meth:`clear`.
    """

    def __init__(self) -> None:
        self._entries: Dict[Lam, str] = {}
        self.hits = 0        # rewrites that skipped a quarantined lambda

    def __contains__(self, lam: Lam) -> bool:
        return lam in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def add(self, lam: Lam, reason: str) -> None:
        if lam in self._entries:
            return
        self._entries[lam] = reason
        if OBS.enabled:
            OBS.metrics.inc("jit.quarantine.added")
            OBS.gauge("jit.quarantine.size", len(self._entries))

    def skip(self, lam: Lam) -> None:
        """Record that a rewrite left ``lam`` interpreted because it is
        quarantined."""
        self.hits += 1
        if OBS.enabled:
            OBS.metrics.inc("jit.quarantine.hits")

    def reasons(self) -> List[Tuple[str, str]]:
        """(pretty lambda, reason) pairs, insertion-ordered."""
        return [(str(lam), why) for lam, why in self._entries.items()]

    def stats(self) -> Dict[str, object]:
        return {"size": len(self._entries), "hits": self.hits,
                "entries": self.reasons()}

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0


#: The process-wide quarantine, shared by every guarded run (and by the
#: serve executor's workers, each in its own process).
QUARANTINE = Quarantine()


@dataclass
class SafetyNetReport:
    """What the guard did for one program."""

    jitted: int = 0                  # lambdas compiled into this program
    skipped: int = 0                 # lambdas left interpreted (quarantined)
    fell_back: bool = False          # a fault forced an interpreter re-run
    fault: Optional[str] = None      # pretty form of the triggering fault
    quarantined: Tuple[str, ...] = ()  # lambdas quarantined by this run

    def to_json(self) -> Dict[str, object]:
        return {"jitted": self.jitted, "skipped": self.skipped,
                "fell_back": self.fell_back, "fault": self.fault,
                "quarantined": list(self.quarantined)}


def jit_rewrite_guarded(
        e: FExpr, quarantine: Optional[Quarantine] = None,
        tiers: Optional[Tuple[str, ...]] = None
) -> Tuple[FExpr, List[Lam], SafetyNetReport]:
    """Like :func:`repro.jit.compiler.jit_rewrite`, but faults degrade.

    Quarantined lambdas are skipped (left interpreted); a lambda whose
    *compilation* faults is quarantined on the spot and left interpreted.
    Tier eligibility defers to the active tiering policy when ``tiers``
    is ``None`` (exactly as in ``jit_rewrite``).  Returns the rewritten
    program, the source lambdas that were compiled into it (for
    run-time quarantining), and a report.
    """
    if tiers is None:
        from repro.tiering.policy import resolve_tiers

        tiers = resolve_tiers(None, "jit")
    q = quarantine if quarantine is not None else QUARANTINE
    report = SafetyNetReport()
    compiled_sources: List[Lam] = []
    quarantined_now: List[str] = []

    def rewrite(e: FExpr) -> FExpr:
        if (isinstance(e, Lam) and not isinstance(e, StackLam)
                and eligible_tier(e, None, tiers) is not None):
            if e in q:
                q.skip(e)
                report.skipped += 1
                return Lam(e.params, rewrite(e.body))
            try:
                compiled = compile_function(e, tiers)
            except ResourceExhausted:
                raise
            except Exception as exc:
                q.add(e, f"compile fault: {exc}")
                quarantined_now.append(str(e))
                if OBS.enabled:
                    OBS.metrics.inc("resilience.jit_fallback.compile")
                return Lam(e.params, rewrite(e.body))
            compiled_sources.append(e)
            report.jitted += 1
            return compiled
        if isinstance(e, (Var, IntE, UnitE)):
            return e
        if isinstance(e, BinOp):
            return BinOp(e.op, rewrite(e.left), rewrite(e.right))
        if isinstance(e, If0):
            return If0(rewrite(e.cond), rewrite(e.then), rewrite(e.els))
        if isinstance(e, StackLam):
            return StackLam(e.params, rewrite(e.body), e.phi_in, e.phi_out)
        if isinstance(e, Lam):
            return Lam(e.params, rewrite(e.body))
        if isinstance(e, App):
            return App(rewrite(e.fn), tuple(rewrite(a) for a in e.args))
        if isinstance(e, Fold):
            return Fold(e.ann, rewrite(e.body))
        if isinstance(e, Unfold):
            return Unfold(rewrite(e.body))
        if isinstance(e, TupleE):
            return TupleE(tuple(rewrite(x) for x in e.items))
        if isinstance(e, Proj):
            return Proj(e.index, rewrite(e.body))
        return e  # boundaries and other leaves are left untouched

    rewritten = rewrite(e)
    report.quarantined = tuple(quarantined_now)
    return rewritten, compiled_sources, report


def run_guarded(e: FExpr, fuel: Optional[int] = None,
                heap: Optional[int] = None, depth: Optional[int] = None,
                trace: bool = False,
                quarantine: Optional[Quarantine] = None,
                tiers: Optional[Tuple[str, ...]] = None,
                tal_engine: Optional[str] = None
                ) -> Tuple[FExpr, FTMachine, SafetyNetReport]:
    """JIT-rewrite ``e`` and run it under the differential guard.

    On any compile- or run-time fault in jitted code the guard re-runs
    the *original* program on the interpreter, quarantines every lambda
    that was compiled into the faulting program, and returns the
    interpreter's (authoritative) result -- so the caller's observable
    outcome is identical to never having jitted at all.  Resource
    exhaustion propagates: it is a verdict, not a fault.

    ``tal_engine`` selects the T engine for the *optimistic* run (a
    promoted digest runs its blocks on the fast tier); the fallback
    re-run always uses the reference engine, so a fast-tier fault can
    never decide the answer.
    """
    q = quarantine if quarantine is not None else QUARANTINE
    rewritten, compiled_sources, report = jit_rewrite_guarded(e, q, tiers)

    def interpret(tal: Optional[str] = None) -> Tuple[FExpr, FTMachine]:
        return evaluate_ft(e, fuel=fuel, trace=trace,
                           budget=Budget.of(fuel, heap, depth),
                           tal_engine=tal)

    if not compiled_sources:
        try:
            if tal_engine is not None:
                probe("jit.run")
            value, machine = interpret(tal_engine)
            return value, machine, report
        except ResourceExhausted:
            raise
        except Exception as exc:
            if tal_engine is None:
                raise
            # Fast-tier fault on an un-jitted program: degrade to the
            # reference engine, which is authoritative.
            report.fell_back = True
            report.fault = f"{type(exc).__name__}: {exc}"
            if OBS.enabled:
                OBS.metrics.inc("resilience.jit_fallback.run")
            value, machine = interpret()
            return value, machine, report

    try:
        probe("jit.run")
        value, machine = evaluate_ft(rewritten, fuel=fuel, trace=trace,
                                     budget=Budget.of(fuel, heap, depth),
                                     tal_engine=tal_engine)
        return value, machine, report
    except ResourceExhausted:
        raise
    except Exception as exc:
        report.fell_back = True
        report.fault = f"{type(exc).__name__}: {exc}"
        quarantined_now = list(report.quarantined)
        for lam in compiled_sources:
            if lam not in q:
                q.add(lam, report.fault)
                quarantined_now.append(str(lam))
        report.quarantined = tuple(quarantined_now)
        if OBS.enabled:
            OBS.metrics.inc("resilience.jit_fallback.run")
        value, machine = interpret()
        return value, machine, report

"""Resilient execution runtime: governors, checkpoints, chaos, safety net.

Four pieces, one goal -- faults degrade instead of crash:

* :mod:`~repro.resilience.budget` -- the unified :class:`Budget`
  governor (fuel + heap cells + stack depth) threaded through all three
  machines, replacing the old per-machine fuel parameters.
* :mod:`~repro.resilience.checkpoint` -- picklable, content-hashed
  :class:`MachineSnapshot` so a run can suspend at a fuel epoch and
  resume elsewhere (another process, another serve worker).
* :mod:`~repro.resilience.safety_net` -- a differential guard around the
  JIT: any fault in jitted code falls back to the interpreter and
  quarantines the offending lambda in a circuit breaker.
* :mod:`~repro.resilience.chaos` -- a seeded :class:`FaultPlane`
  injecting deterministic faults at named seams, so every one of the
  degradation paths above is exercised by tests and ``funtal chaos``.

``safety_net`` is exported lazily: it imports :mod:`repro.jit.compiler`,
which itself probes :mod:`repro.resilience.chaos`, so an eager re-export
here would close an import cycle through this package ``__init__``.
"""

from repro.resilience.budget import (
    Budget, DEFAULT_BUDGET, DEFAULT_DEPTH, DEFAULT_FUEL, DEFAULT_HEAP,
)
from repro.resilience.chaos import SEAMS, FaultPlane, active_plane, probe
from repro.resilience.checkpoint import MachineSnapshot

__all__ = [
    "Budget", "DEFAULT_BUDGET", "DEFAULT_FUEL", "DEFAULT_HEAP",
    "DEFAULT_DEPTH",
    "FaultPlane", "SEAMS", "probe", "active_plane",
    "MachineSnapshot",
    "Quarantine", "QUARANTINE", "SafetyNetReport",
    "jit_rewrite_guarded", "run_guarded",
]

_LAZY = {"Quarantine", "QUARANTINE", "SafetyNetReport",
         "jit_rewrite_guarded", "run_guarded"}


def __getattr__(name):
    if name in _LAZY:
        from repro.resilience import safety_net
        return getattr(safety_net, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
